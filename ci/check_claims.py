#!/usr/bin/env python3
"""Diff a fresh brbsim paper-scenario JSON against the checked-in
nightly reference, with tolerances.

Headline claims guarded here (the reproduction's versions of the
paper's Figure 2 story):

  Claim A  BRB (equalmax-credits) beats C3 on task p99 by a clear
           factor (reference ~1.9x at the nightly config).
  Claim B  the credits realization tracks the ideal global-queue model
           within a bounded p99 gap (reference ~22%).

Per-case percentile means are also diffed against the reference. The
simulation is bit-deterministic for a fixed seed/binary, so drift here
means a behavior change (intended or not) — the tolerance only absorbs
toolchain-level floating-point variation, which should be zero on the
pinned CI image.

usage: check_claims.py fresh.json reference.json [--tolerance 0.10]
"""

import argparse
import json
import sys


def case_p99(doc, label):
    for case in doc["cases"]:
        if case["label"] == label:
            return case["task_latency_ms"]["p99_ms"]["mean"]
    raise SystemExit(f"case '{label}' missing from report")


def claim_metrics(doc):
    c3 = case_p99(doc, "c3")
    credits = case_p99(doc, "equalmax-credits")
    model = case_p99(doc, "equalmax-model")
    return {
        "claim_a_c3_over_credits_p99": c3 / credits,
        "claim_b_credits_over_model_p99": credits / model,
    }


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("fresh")
    parser.add_argument("reference")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="max relative drift per metric (default 0.10)")
    args = parser.parse_args()

    with open(args.fresh) as f:
        fresh = json.load(f)
    with open(args.reference) as f:
        reference = json.load(f)

    failures = []

    def check(name, got, want):
        drift = abs(got - want) / abs(want) if want else abs(got)
        status = "ok" if drift <= args.tolerance else "FAIL"
        print(f"{status:4} {name}: got {got:.4f}, reference {want:.4f}, drift {drift:.2%}")
        if drift > args.tolerance:
            failures.append(name)

    fresh_claims = claim_metrics(fresh)
    ref_claims = claim_metrics(reference)
    for name in fresh_claims:
        check(name, fresh_claims[name], ref_claims[name])

    ref_cases = {case["label"]: case for case in reference["cases"]}
    for case in fresh["cases"]:
        ref = ref_cases.get(case["label"])
        if ref is None:
            print(f"note: case '{case['label']}' not in reference, skipping")
            continue
        for metric in ("p50_ms", "p95_ms", "p99_ms", "mean_ms"):
            check(f"{case['label']}/{metric}",
                  case["task_latency_ms"][metric]["mean"],
                  ref["task_latency_ms"][metric]["mean"])

    if failures:
        print(f"\n{len(failures)} metric(s) drifted past tolerance "
              f"{args.tolerance:.0%}: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("\nall claim metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
