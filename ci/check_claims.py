#!/usr/bin/env python3
"""CI gate for brbsim JSON artifacts. Three modes:

Reference diff (default):
    check_claims.py fresh.json reference.json [--tolerance 0.10]

  Diffs a fresh paper-scenario report against the checked-in nightly
  reference. Headline claims guarded (the reproduction's versions of
  the paper's Figure 2 story):

    Claim A  BRB (equalmax-credits) beats C3 on task p99 by a clear
             factor (reference ~1.9x at the nightly config).
    Claim B  the credits realization tracks the ideal global-queue
             model within a bounded p99 gap (reference ~22%).

  Per-case percentile means are also diffed. The simulation is
  bit-deterministic for a fixed seed/binary, so drift here means a
  behavior change (intended or not) — the tolerance only absorbs
  toolchain-level floating-point variation, which should be zero on
  the pinned CI image.

Invariant check (scenario-diversity nightly matrix):
    check_claims.py --invariants report.json [--max-tenant-p99-ratio R]

  Scenario-independent health checks on every run of every case:
  all submitted tasks completed, nothing left held at a dispatch gate,
  write replica copies all acknowledged, and (for multi-tenant cases)
  the per-tenant p99 spread within a bound.

Policy sanity (policy-shootout nightly):
    check_claims.py --policy-sanity shootout.json [--margin 1.0]

  Asserts the control plane's literature baselines are ordered sanely
  at the swept (high-load) config: C3's replica ranking (the
  "c3-noderate" case — the ranking without its rate gate, which needs
  a longer horizon than nightly runs to amortize) must beat uniform
  random selection on task p99:  p99(c3-noderate) < margin * p99(random).

Hedge sanity (hedging-shootout nightly):
    check_claims.py --hedge-sanity shootout.json [--max-dwf 0.1]

  Asserts tail-cutting pays for itself on every workload of the
  hedging-shootout sweep: for each workload prefix (diurnal,
  multi-tenant), the hedged case must beat the single-target reference
  on task p99 while keeping the duplicate-work fraction (wasted full
  services / all full services) under the bound — hedging that burns
  more than that is load amplification, not tail-cutting.

Engine throughput gate (nightly perf trajectory):
    check_claims.py --engine-budget BENCH_engine.json \
        ci/reference/engine_baseline.json [--budget 0.03]

  Compares the fresh bench_micro_engine headline (paper-scenario
  events/sec) against the checked-in baseline and fails when it drops
  past the regression budget (default -3%). The engine config
  (scenario, task count) must match the baseline's or the comparison
  is refused. Micro-bench deltas are printed for the log but not
  gated — they are too machine-sensitive for a hard budget.

Scale sanity (mega-fleet nightly):
    check_claims.py --scale-sanity mega.json \
        [--max-wall-seconds W] [--max-rss-mb M] [--sketch-tolerance T]

  Gates the million-client scale case: the sweep must complete every
  task of every run under the wall-clock budget with the worst single
  process's peak RSS under the memory budget (merged artifacts carry
  the max across shard workers), the sparse signal store must actually
  have engaged (a dense fallback would "pass" by luck on a small CI
  shape), and the mergeable quantile sketch must agree with the exact
  per-run percentiles (p50/p95/p99) within a relative-error bound.
  The sketch's documented accuracy is alpha = 1% relative on values;
  the default bound (5%) adds slack for the exact path's histogram
  quantization. Pooled case-level sketch counts must equal the sum of
  their per-run sketches (merge lost or double-counted nothing).

Determinism check:
    check_claims.py --identical a.json b.json

  Asserts two reports are identical except wall-clock time — the
  --threads invariance and shard-merge gates (fixed seed + any worker
  count, thread or process, must give byte-identical artifacts).
  Format-2 artifacts quarantine wall-clock time in one top-level
  "timing" object, so this drops exactly that subtree (plus legacy
  per-run "wall_seconds" fields from format-1 reports).
"""

import argparse
import json
import sys


def case_p99(doc, label):
    for case in doc["cases"]:
        if case["label"] == label:
            return case["task_latency_ms"]["p99_ms"]["mean"]
    raise SystemExit(f"case '{label}' missing from report")


def claim_metrics(doc):
    c3 = case_p99(doc, "c3")
    credits = case_p99(doc, "equalmax-credits")
    model = case_p99(doc, "equalmax-model")
    return {
        "claim_a_c3_over_credits_p99": c3 / credits,
        "claim_b_credits_over_model_p99": credits / model,
    }


def run_reference_diff(fresh_path, reference_path, tolerance):
    with open(fresh_path) as f:
        fresh = json.load(f)
    with open(reference_path) as f:
        reference = json.load(f)

    failures = []

    def check(name, got, want):
        drift = abs(got - want) / abs(want) if want else abs(got)
        status = "ok" if drift <= tolerance else "FAIL"
        print(f"{status:4} {name}: got {got:.4f}, reference {want:.4f}, drift {drift:.2%}")
        if drift > tolerance:
            failures.append(name)

    fresh_claims = claim_metrics(fresh)
    ref_claims = claim_metrics(reference)
    for name in fresh_claims:
        check(name, fresh_claims[name], ref_claims[name])

    ref_cases = {case["label"]: case for case in reference["cases"]}
    for case in fresh["cases"]:
        ref = ref_cases.get(case["label"])
        if ref is None:
            print(f"note: case '{case['label']}' not in reference, skipping")
            continue
        for metric in ("p50_ms", "p95_ms", "p99_ms", "mean_ms"):
            check(f"{case['label']}/{metric}",
                  case["task_latency_ms"][metric]["mean"],
                  ref["task_latency_ms"][metric]["mean"])

    if failures:
        print(f"\n{len(failures)} metric(s) drifted past tolerance "
              f"{tolerance:.0%}: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("\nall claim metrics within tolerance")
    return 0


def run_invariants(report_path, max_tenant_p99_ratio):
    with open(report_path) as f:
        doc = json.load(f)

    failures = []
    checked = 0

    def check(name, ok, detail):
        nonlocal checked
        checked += 1
        print(f"{'ok' if ok else 'FAIL':4} {name}: {detail}")
        if not ok:
            failures.append(name)

    for case in doc.get("cases", []):
        label = case["label"]
        # Expanders may override the task count per case; the case
        # block carries its own copy, the base config is the fallback.
        expected_tasks = case.get("tasks", doc["config"]["tasks"])
        if not case.get("runs"):
            check(f"{label}/runs", False, "case has no runs")
            continue
        for run in case["runs"]:
            tag = f"{label}/seed={run['seed']}"
            check(f"{tag}/tasks_completed",
                  run["tasks_completed"] == expected_tasks,
                  f"{run['tasks_completed']} of {expected_tasks}")
            check(f"{tag}/gate_held_requests",
                  run["gate_held_requests"] == 0,
                  f"{run['gate_held_requests']} held at teardown")
            if case.get("write_fraction", 0) > 0:
                check(f"{tag}/write_requests",
                      run.get("write_requests", 0) > 0,
                      f"{run.get('write_requests', 0)} write copies acked")
            tenants = run.get("tenants")
            if tenants:
                total = sum(t["tasks_completed"] for t in tenants)
                check(f"{tag}/tenant_task_sum",
                      total == run["tasks_completed"],
                      f"tenant tasks sum {total} vs {run['tasks_completed']}")
                ratio = run.get("tenant_p99_ratio", 0.0)
                check(f"{tag}/tenant_p99_ratio",
                      0.0 < ratio <= max_tenant_p99_ratio,
                      f"{ratio:.2f} (bound {max_tenant_p99_ratio})")

    if failures:
        print(f"\n{len(failures)} of {checked} invariant(s) violated: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"\nall {checked} invariants hold")
    return 0


def run_policy_sanity(report_path, margin):
    with open(report_path) as f:
        doc = json.load(f)
    c3 = case_p99(doc, "c3-noderate")
    random_p99 = case_p99(doc, "random")
    ok = c3 < margin * random_p99
    print(f"{'ok' if ok else 'FAIL':4} policy sanity: p99(c3-noderate)={c3:.3f} ms "
          f"vs p99(random)={random_p99:.3f} ms (margin {margin:.2f})")
    if not ok:
        print("policy sanity violated: C3's replica ranking should beat random "
              "selection on p99 at high load", file=sys.stderr)
        return 1
    return 0


def run_hedge_sanity(report_path, max_dwf):
    with open(report_path) as f:
        doc = json.load(f)

    # Group hedging-shootout cases by workload prefix ("diurnal/...").
    workloads = {}
    for case in doc["cases"]:
        prefix, _, mode = case["label"].rpartition("/")
        if not prefix:
            raise SystemExit(f"case '{case['label']}' has no workload/mode label "
                             "(is this a hedging-shootout report?)")
        workloads.setdefault(prefix, {})[mode] = case

    failures = []

    def check(name, ok, detail):
        print(f"{'ok' if ok else 'FAIL':4} {name}: {detail}")
        if not ok:
            failures.append(name)

    for prefix, modes in sorted(workloads.items()):
        single = modes.get("single")
        hedged = next((c for m, c in modes.items() if m.startswith("hedge")), None)
        if single is None or hedged is None:
            raise SystemExit(f"workload '{prefix}' is missing its single or hedge "
                             "case — the sanity gate needs both")
        single_p99 = single["task_latency_ms"]["p99_ms"]["mean"]
        hedged_p99 = hedged["task_latency_ms"]["p99_ms"]["mean"]
        check(f"{prefix}/hedge_beats_single_p99",
              hedged_p99 < single_p99,
              f"p99(hedge)={hedged_p99:.3f} ms vs p99(single)={single_p99:.3f} ms")
        dwfs = [run.get("duplicate_work_fraction", 0.0) for run in hedged["runs"]]
        worst = max(dwfs) if dwfs else 0.0
        check(f"{prefix}/hedge_duplicate_work",
              worst < max_dwf,
              f"duplicate_work_fraction={worst:.4f} (bound {max_dwf})")

    if failures:
        print(f"\nhedge sanity violated: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("\nhedging pays for itself on every workload")
    return 0


def run_engine_budget(bench_path, baseline_path, budget):
    with open(bench_path) as f:
        bench = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    fresh = bench["engine"]
    ref = baseline["engine"]
    for key in ("scenario", "tasks"):
        if fresh.get(key) != ref.get(key):
            print(f"FAIL: engine config mismatch on '{key}': bench has "
                  f"{fresh.get(key)!r}, baseline has {ref.get(key)!r} — "
                  "refusing an apples-to-oranges comparison", file=sys.stderr)
            return 1

    got = fresh["events_per_sec"]
    want = ref["events_per_sec"]
    ratio = got / want
    ok = ratio >= 1.0 - budget
    print(f"{'ok' if ok else 'FAIL':4} engine events/sec: {got:,.0f} vs "
          f"baseline {want:,.0f} ({ratio - 1.0:+.2%}, budget -{budget:.0%})")

    # Hot-path micro rows are gated like the headline number: the
    # task-generation and service fast paths carry the workload/service
    # fast-path win, so a silent regression there erodes the headline
    # next. Both files must carry the row — a baseline predating the
    # row is a config mismatch, not a free pass.
    gated_rows = ("task_gen_fill", "service_start")
    ref_micro = baseline.get("micro_ops_per_sec", {})
    fresh_micro = bench.get("micro_ops_per_sec", {})
    # Micro rows are noisier than the best-of-3 headline; give them
    # double the relative budget.
    micro_budget = 2.0 * budget
    failed_micros = []
    for name in gated_rows:
        fresh_ops = fresh_micro.get(name)
        base_ops = ref_micro.get(name)
        if fresh_ops is None or base_ops is None:
            missing = "bench" if fresh_ops is None else "baseline"
            print(f"FAIL: gated micro row '{name}' missing from the {missing} "
                  "file — refusing an apples-to-oranges comparison "
                  "(re-run bench_micro_engine / refresh the baseline)",
                  file=sys.stderr)
            return 1
        row_ok = fresh_ops / base_ops >= 1.0 - micro_budget
        if not row_ok:
            failed_micros.append(name)
        print(f"{'ok' if row_ok else 'FAIL':4} micro {name}: {fresh_ops:,.0f} ops/s "
              f"vs baseline {base_ops:,.0f} ({fresh_ops / base_ops - 1.0:+.1%}, "
              f"budget -{micro_budget:.0%})")

    # Remaining micro-bench trajectory, informational only.
    for name, fresh_ops in sorted(fresh_micro.items()):
        if name in gated_rows:
            continue
        base_ops = ref_micro.get(name)
        if base_ops:
            print(f"note micro {name}: {fresh_ops:,.0f} ops/s "
                  f"({fresh_ops / base_ops - 1.0:+.1%} vs baseline)")
        else:
            print(f"note micro {name}: {fresh_ops:,.0f} ops/s (no baseline)")

    if not ok or failed_micros:
        what = "engine throughput" if not ok else \
            "micro row(s) " + ", ".join(failed_micros)
        print(f"\n{what} regressed past the budget; "
              "if the slowdown is intended, refresh "
              "ci/reference/engine_baseline.json in the same change",
              file=sys.stderr)
        return 1
    return 0


def run_scale_sanity(report_path, max_wall_seconds, max_rss_mb, sketch_tolerance):
    with open(report_path) as f:
        doc = json.load(f)

    failures = []
    checked = 0

    def check(name, ok, detail):
        nonlocal checked
        checked += 1
        print(f"{'ok' if ok else 'FAIL':4} {name}: {detail}")
        if not ok:
            failures.append(name)

    timing = doc.get("timing", {})
    wall = timing.get("total_wall_seconds")
    check("wall_budget", wall is not None and wall <= max_wall_seconds,
          f"{wall:.1f}s (budget {max_wall_seconds:.0f}s)" if wall is not None
          else "timing.total_wall_seconds missing")
    rss = timing.get("peak_rss_mb")
    check("rss_budget", rss is not None and rss <= max_rss_mb,
          f"peak {rss:.0f} MB per process (budget {max_rss_mb:.0f} MB)"
          if rss is not None else "timing.peak_rss_mb missing")

    for case in doc.get("cases", []):
        label = case["label"]
        expected_tasks = case.get("tasks", doc["config"]["tasks"])
        if not case.get("runs"):
            check(f"{label}/runs", False, "case has no runs")
            continue
        pooled = case.get("task_latency_sketch")
        check(f"{label}/pooled_sketch", pooled is not None,
              f"count={pooled['count']}" if pooled else "case-level sketch missing")
        run_sketch_total = 0
        for run in case["runs"]:
            tag = f"{label}/seed={run['seed']}"
            check(f"{tag}/tasks_completed",
                  run["tasks_completed"] == expected_tasks,
                  f"{run['tasks_completed']} of {expected_tasks}")
            check(f"{tag}/sparse_store",
                  run.get("sparse_signal_store") is True,
                  "sparse signal store engaged" if run.get("sparse_signal_store")
                  else "ran on the dense store — not a scale test")
            sketch = run.get("task_latency_sketch")
            if sketch is None:
                check(f"{tag}/sketch", False, "per-run sketch missing")
                continue
            run_sketch_total += sketch["count"]
            measured = run.get("tasks_measured", run["tasks_completed"])
            check(f"{tag}/sketch_count",
                  sketch["count"] == measured,
                  f"sketch holds {sketch['count']} of {measured} measured samples")
            for metric in ("p50_ms", "p95_ms", "p99_ms"):
                exact = run[metric]
                est = sketch[metric]
                rel = abs(est - exact) / exact if exact else abs(est)
                check(f"{tag}/sketch_{metric}",
                      rel <= sketch_tolerance,
                      f"sketch {est:.3f} ms vs exact {exact:.3f} ms "
                      f"(rel {rel:.2%}, bound {sketch_tolerance:.0%})")
        if pooled is not None:
            check(f"{label}/pooled_sketch_count",
                  pooled["count"] == run_sketch_total,
                  f"pooled {pooled['count']} vs per-run sum {run_sketch_total}")

    if failures:
        print(f"\n{len(failures)} of {checked} scale check(s) failed: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"\nall {checked} scale checks hold")
    return 0


def strip_wall_clock(node, top=True):
    """Drops wall-clock time (the one legitimately nondeterministic
    part of a report): the top-level "timing" object in format-2
    artifacts, plus per-run "wall_seconds" fields in format-1 ones."""
    if isinstance(node, dict):
        return {k: strip_wall_clock(v, top=False) for k, v in node.items()
                if k != "wall_seconds" and not (top and k == "timing")}
    if isinstance(node, list):
        return [strip_wall_clock(v, top=False) for v in node]
    return node


def run_identical(a_path, b_path):
    with open(a_path) as f:
        a = strip_wall_clock(json.load(f))
    with open(b_path) as f:
        b = strip_wall_clock(json.load(f))
    if a != b:
        print(f"FAIL: {a_path} and {b_path} differ beyond wall-clock timing "
              "(thread/shard determinism broken)", file=sys.stderr)
        return 1
    print(f"ok: {a_path} == {b_path} (modulo wall-clock timing)")
    return 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("files", nargs="+",
                        help="fresh.json reference.json | --invariants report.json | "
                             "--identical a.json b.json")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="max relative drift per metric (default 0.10)")
    parser.add_argument("--invariants", action="store_true",
                        help="scenario-independent health checks on one report")
    parser.add_argument("--identical", action="store_true",
                        help="two reports must match modulo wall_seconds")
    parser.add_argument("--policy-sanity", action="store_true",
                        help="policy-shootout report: c3-noderate must beat random on p99")
    parser.add_argument("--hedge-sanity", action="store_true",
                        help="hedging-shootout report: hedge beats single on p99 with "
                             "bounded duplicate work, per workload")
    parser.add_argument("--max-dwf", type=float, default=0.1,
                        help="bound on duplicate_work_fraction (hedge-sanity mode)")
    parser.add_argument("--scale-sanity", action="store_true",
                        help="mega-fleet report: wall/RSS budgets, sparse store "
                             "engaged, sketch percentiles within bound of exact")
    parser.add_argument("--max-wall-seconds", type=float, default=1800.0,
                        help="wall-clock budget in seconds (scale-sanity mode)")
    parser.add_argument("--max-rss-mb", type=float, default=12288.0,
                        help="peak-RSS budget per process in MB (scale-sanity mode)")
    parser.add_argument("--sketch-tolerance", type=float, default=0.05,
                        help="max relative sketch-vs-exact percentile error "
                             "(scale-sanity mode)")
    parser.add_argument("--engine-budget", action="store_true",
                        help="BENCH_engine.json vs engine_baseline.json throughput gate")
    parser.add_argument("--budget", type=float, default=0.03,
                        help="max relative events/sec drop (engine-budget mode)")
    parser.add_argument("--margin", type=float, default=1.0,
                        help="p99(c3-noderate) < margin * p99(random) (policy-sanity mode)")
    parser.add_argument("--max-tenant-p99-ratio", type=float, default=100.0,
                        help="bound on per-tenant p99 spread (invariants mode)")
    args = parser.parse_args()

    if args.policy_sanity:
        if len(args.files) != 1:
            parser.error("--policy-sanity takes exactly one report")
        return run_policy_sanity(args.files[0], args.margin)
    if args.hedge_sanity:
        if len(args.files) != 1:
            parser.error("--hedge-sanity takes exactly one report")
        return run_hedge_sanity(args.files[0], args.max_dwf)
    if args.scale_sanity:
        if len(args.files) != 1:
            parser.error("--scale-sanity takes exactly one report")
        return run_scale_sanity(args.files[0], args.max_wall_seconds,
                                args.max_rss_mb, args.sketch_tolerance)
    if args.engine_budget:
        if len(args.files) != 2:
            parser.error("--engine-budget takes BENCH_engine.json baseline.json")
        return run_engine_budget(args.files[0], args.files[1], args.budget)
    if args.invariants:
        if len(args.files) != 1:
            parser.error("--invariants takes exactly one report")
        return run_invariants(args.files[0], args.max_tenant_p99_ratio)
    if args.identical:
        if len(args.files) != 2:
            parser.error("--identical takes exactly two reports")
        return run_identical(args.files[0], args.files[1])
    if len(args.files) != 2:
        parser.error("reference diff takes fresh.json reference.json")
    return run_reference_diff(args.files[0], args.files[1], args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
