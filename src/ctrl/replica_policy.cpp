#include "ctrl/replica_policy.hpp"

#include <cmath>
#include <stdexcept>

#include "util/flags.hpp"

namespace brb::ctrl {

store::ServerId RandomPolicy::select(const SignalTable&,
                                     const std::vector<store::ServerId>& replicas,
                                     sim::Duration) {
  if (replicas.empty()) throw std::invalid_argument("RandomPolicy: empty replica set");
  const auto idx = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(replicas.size()) - 1));
  return replicas[idx];
}

store::ServerId RoundRobinPolicy::select(const SignalTable&,
                                         const std::vector<store::ServerId>& replicas,
                                         sim::Duration) {
  if (replicas.empty()) throw std::invalid_argument("RoundRobinPolicy: empty replica set");
  return replicas[static_cast<std::size_t>(counter_++ % replicas.size())];
}

store::ServerId LeastOutstandingPolicy::select(const SignalTable& signals,
                                               const std::vector<store::ServerId>& replicas,
                                               sim::Duration) {
  if (replicas.empty()) throw std::invalid_argument("LeastOutstandingPolicy: empty replicas");
  // Rotate the scan start so ties do not herd every client onto the
  // lowest server id (a classic cause of load concentration).
  const std::size_t start = static_cast<std::size_t>(rotation_++) % replicas.size();
  store::ServerId best = replicas[start];
  std::uint32_t best_count = signals.outstanding(best);
  for (std::size_t step = 1; step < replicas.size(); ++step) {
    const store::ServerId candidate = replicas[(start + step) % replicas.size()];
    const std::uint32_t count = signals.outstanding(candidate);
    if (count < best_count) {
      best = candidate;
      best_count = count;
    }
  }
  return best;
}

store::ServerId TwoChoicesPolicy::select(const SignalTable& signals,
                                         const std::vector<store::ServerId>& replicas,
                                         sim::Duration) {
  if (replicas.empty()) throw std::invalid_argument("TwoChoicesPolicy: empty replica set");
  const std::size_t n = replicas.size();
  if (n == 1) return replicas.front();
  // Two distinct uniform indices; the second draw excludes the first.
  const auto i = static_cast<std::size_t>(rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  auto j = static_cast<std::size_t>(rng_.uniform_int(0, static_cast<std::int64_t>(n) - 2));
  if (j >= i) ++j;
  const store::ServerId a = replicas[i];
  const store::ServerId b = replicas[j];
  const std::uint32_t load_a = signals.outstanding(a);
  const std::uint32_t load_b = signals.outstanding(b);
  if (load_a != load_b) return load_a < load_b ? a : b;
  return a < b ? a : b;
}

store::ServerId LeastPendingCostPolicy::select(const SignalTable& signals,
                                               const std::vector<store::ServerId>& replicas,
                                               sim::Duration) {
  if (replicas.empty()) throw std::invalid_argument("LeastPendingCostPolicy: empty replicas");
  const std::size_t start = static_cast<std::size_t>(rotation_++) % replicas.size();
  store::ServerId best = replicas[start];
  sim::Duration best_cost = signals.pending_cost(best);
  for (std::size_t step = 1; step < replicas.size(); ++step) {
    const store::ServerId candidate = replicas[(start + step) % replicas.size()];
    const sim::Duration cost = signals.pending_cost(candidate);
    if (cost < best_cost) {
      best = candidate;
      best_cost = cost;
    }
  }
  return best;
}

C3ScorePolicy::C3ScorePolicy(C3ScoreConfig config, std::string registered_name)
    : config_(config), name_(std::move(registered_name)) {
  if (config_.queue_exponent < 1.0) {
    throw std::invalid_argument("C3ScorePolicy: queue_exponent must be >= 1");
  }
  if (config_.num_clients == 0) throw std::invalid_argument("C3ScorePolicy: num_clients == 0");
}

double C3ScorePolicy::score(const SignalTable& signals, store::ServerId server) const {
  // Column reads, not an of() row snapshot: scoring strides the same
  // few columns across every replica, so this keeps the scan cache-hot.
  const bool seen = signals.seen(server);
  const double ewma_service_ns = signals.ewma_service_time_ns(server);
  const double prior_ns = static_cast<double>(config_.prior_service_time.count_nanos());
  const double service_ns = seen && ewma_service_ns > 0 ? ewma_service_ns : prior_ns;
  const double response_ns = seen ? signals.ewma_response_ns(server) : 0.0;
  const double q_hat =
      1.0 +
      static_cast<double>(signals.outstanding(server)) * static_cast<double>(config_.num_clients) +
      signals.ewma_queue(server);
  // Psi = R - 1/mu + q^b / mu, all in nanoseconds.
  return response_ns - service_ns + std::pow(q_hat, config_.queue_exponent) * service_ns;
}

store::ServerId C3ScorePolicy::select(const SignalTable& signals,
                                      const std::vector<store::ServerId>& replicas,
                                      sim::Duration) {
  if (replicas.empty()) throw std::invalid_argument("C3ScorePolicy: empty replica set");
  store::ServerId best = replicas.front();
  double best_score = score(signals, best);
  for (std::size_t i = 1; i < replicas.size(); ++i) {
    const double candidate = score(signals, replicas[i]);
    if (candidate < best_score || (candidate == best_score && replicas[i] < best)) {
      best = replicas[i];
      best_score = candidate;
    }
  }
  return best;
}

store::ServerId FirstReplicaPolicy::select(const SignalTable&,
                                           const std::vector<store::ServerId>& replicas,
                                           sim::Duration) {
  if (replicas.empty()) throw std::invalid_argument("FirstReplicaPolicy: empty replica set");
  return replicas.front();
}

CreditAwarePolicy::CreditAwarePolicy(std::unique_ptr<ReplicaPolicy> inner)
    : inner_(std::move(inner)) {
  if (!inner_) throw std::invalid_argument("CreditAwarePolicy: null inner policy");
}

store::ServerId CreditAwarePolicy::select(const SignalTable& signals,
                                          const std::vector<store::ServerId>& replicas,
                                          sim::Duration expected_cost) {
  funded_scratch_.clear();
  for (const store::ServerId s : replicas) {
    if (signals.credit_balance(s) >= 1.0) funded_scratch_.push_back(s);
  }
  if (funded_scratch_.empty() || funded_scratch_.size() == replicas.size()) {
    return inner_->select(signals, replicas, expected_cost);
  }
  return inner_->select(signals, funded_scratch_, expected_cost);
}

// ---------------------------------------------------------------------------
// Registry

const std::vector<ReplicaPolicyInfo>& replica_policy_catalog() {
  static const std::vector<ReplicaPolicyInfo> catalog = {
      {"random", {}, "-", "uniform random choice (memcached-era baseline)"},
      {"round-robin", {"rr"}, "-", "deterministic cycling through the replica list"},
      {"least-outstanding",
       {"lor"},
       "outstanding",
       "fewest in-flight requests (classic least-outstanding-requests)"},
      {"two-choices",
       {"2c", "p2c"},
       "outstanding",
       "power of two random choices over outstanding counts (Mitzenmacher)"},
      {"least-pending-cost",
       {"lpc"},
       "pending_cost",
       "least forecast work in flight (BRB's default selector)"},
      {"c3",
       {},
       "ewma_response, ewma_queue, ewma_service_time, outstanding",
       "C3 cubic replica ranking (Suresh et al., NSDI '15)"},
      {"c3-noderate",
       {},
       "ewma_response, ewma_queue, ewma_service_time, outstanding",
       "C3 ranking without C3's cubic rate gate (selection-only ablation)"},
      {"first", {}, "-", "always the first replica (ideal-model systems)"},
  };
  return catalog;
}

std::string canonical_policy_name(const std::string& name) {
  std::vector<std::string> known;
  for (const ReplicaPolicyInfo& info : replica_policy_catalog()) {
    if (info.name == name) return info.name;
    for (const std::string& alias : info.aliases) {
      if (alias == name) return info.name;
    }
    known.push_back(info.name);
  }
  std::string message = "unknown replica policy '" + name + "'";
  if (const auto suggestion = util::closest_name(name, known)) {
    message += " (did you mean '" + *suggestion + "'?)";
  }
  throw std::invalid_argument(message);
}

std::unique_ptr<ReplicaPolicy> make_replica_policy(const std::string& name,
                                                   const C3ScoreConfig& c3, util::Rng rng) {
  const std::string canonical = canonical_policy_name(name);
  if (canonical == "random") return std::make_unique<RandomPolicy>(rng);
  if (canonical == "round-robin") return std::make_unique<RoundRobinPolicy>();
  if (canonical == "least-outstanding") return std::make_unique<LeastOutstandingPolicy>();
  if (canonical == "two-choices") return std::make_unique<TwoChoicesPolicy>(rng);
  if (canonical == "least-pending-cost") return std::make_unique<LeastPendingCostPolicy>();
  if (canonical == "c3" || canonical == "c3-noderate") {
    return std::make_unique<C3ScorePolicy>(c3, canonical);
  }
  if (canonical == "first") return std::make_unique<FirstReplicaPolicy>();
  throw std::logic_error("make_replica_policy: catalog/factory mismatch for " + canonical);
}

}  // namespace brb::ctrl
