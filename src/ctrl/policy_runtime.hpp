// The policy runtime — layer 3 of the control plane.
//
// Binds a dispatch stack (replica policy + dispatch mode) per tenant
// onto each client's SignalTable and supports epoch-scheduled mid-run
// switching:
//
//   --policy=c3                        one policy for every tenant
//   --policy=tenantA:c3,tenantB:lor    per-tenant bindings
//   --dispatch=hedge:q95               one dispatch mode for every tenant
//   --dispatch=tenantA:tied            per-tenant dispatch modes
//   --policy-switch=t0:random,30s:c3   epoch schedule; entries may name
//                                      a policy OR a dispatch mode
//                                      ("30s:hedge:q95"), optionally
//                                      tenant-qualified
//                                      ("30s:tenantA:tied")
//
// A switch replaces only the decision procedure; the accumulated
// signals (EWMAs, outstanding counts, balances) live in the
// SignalTable and survive the swap — the new policy starts warm.
// Switching the dispatch mode keeps the tenant's current policy, and
// vice versa.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ctrl/dispatch_policy.hpp"
#include "ctrl/replica_policy.hpp"
#include "ctrl/signal_table.hpp"
#include "sim/simulator.hpp"
#include "store/types.hpp"
#include "util/rng.hpp"

namespace brb::ctrl {

/// One "[tenant:]policy" entry of a --policy spec. An empty tenant
/// applies to every tenant.
struct PolicyBinding {
  std::string tenant;
  std::string policy;  // canonical name
};

/// One "[tenant:]mode" entry of a --dispatch spec. An empty tenant
/// applies to every tenant.
struct DispatchBinding {
  std::string tenant;
  DispatchModeConfig mode;
};

/// One "TIME:[tenant:]payload" entry of a --policy-switch spec, where
/// the payload is a replica-policy name or a dispatch-mode spec.
struct PolicySwitch {
  enum class Kind : std::uint8_t { kPolicy, kMode };

  sim::Time at;
  std::string tenant;  // empty = all tenants
  Kind kind = Kind::kPolicy;
  std::string policy;       // canonical name (kind == kPolicy)
  DispatchModeConfig mode;  // kind == kMode
};

/// Parses "--policy" ("name" | "tenant:name,..." | a mix; later entries
/// win). Policy names are canonicalized (aliases resolve); unknown
/// names throw with a did-you-mean hint.
std::vector<PolicyBinding> parse_policy_spec(const std::string& spec);

/// Parses "--dispatch" ("mode" | "tenant:mode,..."; later entries win).
/// Mode heads are disambiguated from tenant names by the mode-keyword
/// set {single, hedge, tied, kofn}; unknown modes throw with a
/// did-you-mean hint.
std::vector<DispatchBinding> parse_dispatch_spec(const std::string& spec);

/// Parses "--policy-switch" ("t0:random,30s:c3,45s:tenantA:lor,
/// 60s:hedge:q95"). Times are "t0" or a positive duration with an
/// s/ms/us suffix. Each payload resolves to a policy name or a
/// dispatch-mode spec; unknown payloads throw with a did-you-mean hint
/// over the combined policy + mode catalog. Entries keep spec order;
/// callers sort by time where needed.
std::vector<PolicySwitch> parse_policy_switch_spec(const std::string& spec);

class PolicyRuntime {
 public:
  struct Config {
    /// The system profile's selector (or --selector override): the
    /// binding every tenant starts from when --policy says nothing.
    std::string default_policy = "least-outstanding";
    /// --policy / --dispatch / --policy-switch specs ("" = none).
    std::string policy_spec;
    std::string dispatch_spec;
    std::string switch_spec;
    /// Table smoothing + C3 scoring parameters shared by all clients.
    SignalTableConfig signals{};
    C3ScoreConfig c3{};
    /// Wrap every bound dispatch stack credit-aware (credits admission).
    bool credit_aware = false;
    /// Tenant names in tenant-index order; empty = one anonymous
    /// tenant. Tenant-qualified spec entries must name one of these.
    std::vector<std::string> tenants;
  };

  PolicyRuntime(sim::Simulator& sim, Config config);

  /// Resolved t=0 policy name / dispatch mode for tenant `tenant`.
  const std::string& initial_policy(store::TenantId tenant) const;
  const DispatchModeConfig& initial_mode(store::TenantId tenant) const;

  /// True if any binding or switch epoch can issue duplicate copies
  /// (some dispatch mode other than `single` is reachable) — gates the
  /// executor wiring (server-side admission filters) so single-mode
  /// runs pay nothing.
  bool may_dispatch_duplicates() const;

  /// Creates client `id`'s control-plane endpoint: a SignalTable plus
  /// the tenant's bound dispatch stack. `rng` seeds randomized
  /// policies exactly as the pre-runtime wiring did (by value; the
  /// endpoint keeps its own copy for constructing replacement stacks
  /// at switch epochs).
  std::unique_ptr<DispatchEndpoint> bind_client(store::ClientId id, store::TenantId tenant,
                                                util::Rng rng);

  /// The client's SignalTable (valid for the bound endpoint's
  /// lifetime) — admission gates attach their mirrors here.
  SignalTable& signals_of(store::ClientId id);

  /// Schedules the switch epochs on the simulator. Call once, after
  /// every client is bound. No-op without a switch spec.
  void start();

  /// Per-client rebinds actually applied (epochs past the end of the
  /// run never fire).
  std::uint64_t switches_applied() const noexcept { return switches_applied_; }
  /// Scheduled future epochs (post-t0 entries in the switch spec).
  std::size_t num_epochs() const noexcept { return epochs_.size(); }
  const Config& config() const noexcept { return config_; }

 private:
  /// One bound client: the endpoint plus its current (policy, mode)
  /// pair, so a switch can replace one axis and keep the other.
  struct ClientBinding {
    DispatchEndpoint* endpoint = nullptr;  // non-owning; the client owns it
    std::string policy;
    DispatchModeConfig mode;
    store::TenantId tenant{0};
  };

  std::unique_ptr<DispatchPolicy> make_bound_stack(const std::string& policy,
                                                   const DispatchModeConfig& mode,
                                                   util::Rng rng) const;
  store::TenantId tenant_index(const std::string& name) const;
  void apply_epoch(std::size_t epoch_index);

  sim::Simulator* sim_;
  Config config_;
  std::vector<std::string> initial_policy_;       // per tenant
  std::vector<DispatchModeConfig> initial_mode_;  // per tenant
  std::vector<PolicySwitch> epochs_;              // time-ordered, t > 0 only
  std::vector<ClientBinding> clients_;
  std::uint64_t switches_applied_ = 0;
  bool started_ = false;
};

}  // namespace brb::ctrl
