// The policy runtime — layer 3 of the control plane.
//
// Binds a ReplicaPolicy per tenant onto each client's SignalTable and
// supports epoch-scheduled mid-run switching:
//
//   --policy=c3                        one policy for every tenant
//   --policy=tenantA:c3,tenantB:lor    per-tenant bindings
//   --policy-switch=t0:random,30s:c3   epoch schedule (applies to all
//                                      tenants; per-tenant epochs via
//                                      "30s:tenantA:c3")
//
// A switch replaces only the decision procedure; the accumulated
// signals (EWMAs, outstanding counts, balances) live in the
// SignalTable and survive the swap — the new policy starts warm.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ctrl/replica_policy.hpp"
#include "ctrl/signal_table.hpp"
#include "policy/replica_selector.hpp"
#include "sim/simulator.hpp"
#include "store/types.hpp"
#include "util/rng.hpp"

namespace brb::ctrl {

/// One "[tenant:]policy" entry of a --policy spec. An empty tenant
/// applies to every tenant.
struct PolicyBinding {
  std::string tenant;
  std::string policy;  // canonical name
};

/// One "TIME:[tenant:]policy" entry of a --policy-switch spec.
struct PolicySwitch {
  sim::Time at;
  std::string tenant;  // empty = all tenants
  std::string policy;  // canonical name
};

/// Parses "--policy" ("name" | "tenant:name,..." | a mix; later entries
/// win). Policy names are canonicalized (aliases resolve); unknown
/// names throw with a did-you-mean hint.
std::vector<PolicyBinding> parse_policy_spec(const std::string& spec);

/// Parses "--policy-switch" ("t0:random,30s:c3,45s:tenantA:lor").
/// Times are "t0" or a positive duration with an s/ms/us suffix.
/// Entries keep spec order; callers sort by time where needed.
std::vector<PolicySwitch> parse_policy_switch_spec(const std::string& spec);

class PolicyRuntime {
 public:
  struct Config {
    /// The system profile's selector (or --selector override): the
    /// binding every tenant starts from when --policy says nothing.
    std::string default_policy = "least-outstanding";
    /// --policy / --policy-switch specs ("" = none).
    std::string policy_spec;
    std::string switch_spec;
    /// Table smoothing + C3 scoring parameters shared by all clients.
    SignalTableConfig signals{};
    C3ScoreConfig c3{};
    /// Wrap every bound policy credit-aware (credits admission).
    bool credit_aware = false;
    /// Tenant names in tenant-index order; empty = one anonymous
    /// tenant. Tenant-qualified spec entries must name one of these.
    std::vector<std::string> tenants;
  };

  PolicyRuntime(sim::Simulator& sim, Config config);

  /// Resolved t=0 policy name for tenant `tenant`.
  const std::string& initial_policy(store::TenantId tenant) const;

  /// Creates client `id`'s control-plane endpoint: a SignalTable plus
  /// the tenant's bound policy, packaged as the ReplicaSelector the
  /// client owns. `rng` seeds randomized policies exactly as the
  /// pre-runtime wiring did (by value; the runtime keeps its own copy
  /// for constructing replacement policies at switch epochs).
  std::unique_ptr<policy::ReplicaSelector> bind_client(store::ClientId id, store::TenantId tenant,
                                                       util::Rng rng);

  /// The client's SignalTable (valid for the bound selector's
  /// lifetime) — admission gates attach their mirrors here.
  SignalTable& signals_of(store::ClientId id);

  /// Schedules the switch epochs on the simulator. Call once, after
  /// every client is bound. No-op without a switch spec.
  void start();

  /// Per-client rebinds actually applied (epochs past the end of the
  /// run never fire).
  std::uint64_t switches_applied() const noexcept { return switches_applied_; }
  /// Scheduled future epochs (post-t0 entries in the switch spec).
  std::size_t num_epochs() const noexcept { return epochs_.size(); }
  const Config& config() const noexcept { return config_; }

 private:
  class BoundSelector;

  std::unique_ptr<ReplicaPolicy> make_bound_policy(const std::string& name, util::Rng rng) const;
  store::TenantId tenant_index(const std::string& name) const;
  void apply_epoch(std::size_t epoch_index);

  sim::Simulator* sim_;
  Config config_;
  std::vector<std::string> initial_;  // per tenant
  std::vector<PolicySwitch> epochs_;  // time-ordered, t > 0 only
  std::vector<BoundSelector*> clients_;  // non-owning; clients own them
  std::uint64_t switches_applied_ = 0;
  bool started_ = false;
};

}  // namespace brb::ctrl
