// The dispatch-plan API — the control plane's request-layer surface.
//
// Replica selection used to answer "which one server?"; tail-cutting
// mechanisms (hedged and tied requests, k-of-n partial fanout — the
// "Tail at Scale" family) need an ordered *set* of targets plus a rule
// for when duplicates are issued and when losers are cancelled. A
// DispatchPolicy therefore returns a DispatchPlan:
//
//   single            one target, no duplicates (the legacy contract)
//   hedge{q}          primary now; back-up re-issued to a second
//                     replica if no response within the per-server
//                     latency-quantile deadline (EWMA-fed), loser
//                     cancelled best-effort
//   tied              two copies enqueued at once; the first to reach
//                     service claims the request and the sibling is
//                     cancelled at dequeue
//   kofn{k}           fan out to n replicas, complete on the k-th
//                     response, cancel the stragglers
//
// Every legacy ReplicaPolicy lifts into this API through
// SingleTargetAdapter bit-identically: in single mode the adapter's
// plan() is exactly one inner select() call, so the eight registered
// selectors keep their decision sequences (and artifacts) unchanged.
// The executor lives in client::AppClient; cancellation rides the
// engine's generation-validated event cancel and the servers'
// service-admission filter.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ctrl/replica_policy.hpp"
#include "ctrl/signal_table.hpp"
#include "sim/time.hpp"
#include "store/ids.hpp"
#include "store/types.hpp"
#include "util/rng.hpp"

namespace brb::sim {
class Simulator;
}

namespace brb::ctrl {

enum class DispatchMode : std::uint8_t {
  kSingle = 0,
  kHedge,
  kTied,
  kKofn,
};

const char* to_string(DispatchMode mode);

/// An ordered target list plus the duplicate/cancellation rule.
/// Fixed capacity — plans live on the submit hot path and must stay
/// allocation-free.
struct DispatchPlan {
  static constexpr std::size_t kMaxTargets = 4;

  std::array<store::ServerId, kMaxTargets> targets{};
  std::uint8_t num_targets = 0;
  DispatchMode mode = DispatchMode::kSingle;
  /// Responses required to complete the logical request (k of k-of-n;
  /// 1 for every other mode).
  std::uint8_t needed = 1;
  /// Hedge mode only: how long the primary may stay unanswered before
  /// the back-up copy is issued.
  sim::Duration hedge_delay = sim::Duration::zero();
  /// Signal-aware hedge suppression fired: the primary's feedback was
  /// fresher than the configured age threshold, so the plan degraded
  /// to single and no back-up will be armed (counted in artifacts as
  /// `hedges_skipped_fresh`).
  bool skipped_fresh = false;

  store::ServerId primary() const { return targets[0]; }

  static DispatchPlan single(store::ServerId target) {
    DispatchPlan plan;
    plan.targets[0] = target;
    plan.num_targets = 1;
    return plan;
  }
};

/// Decision surface: reads the client's SignalTable, returns a plan.
/// Like ReplicaPolicy, instances hold only private decision state, so
/// the PolicyRuntime can swap them mid-run over the same signals.
class DispatchPolicy {
 public:
  virtual ~DispatchPolicy() = default;

  /// `replicas` is never empty.
  virtual DispatchPlan plan(const SignalTable& signals,
                            const std::vector<store::ServerId>& replicas,
                            sim::Duration expected_cost) = 0;

  virtual std::string name() const = 0;
};

/// Lifts a legacy single-winner ReplicaPolicy into the plan API.
/// plan() is exactly one inner select() call — bit-identical decision
/// streams for all eight registered selectors.
class SingleTargetAdapter final : public DispatchPolicy {
 public:
  explicit SingleTargetAdapter(std::unique_ptr<ReplicaPolicy> inner);

  DispatchPlan plan(const SignalTable& signals, const std::vector<store::ServerId>& replicas,
                    sim::Duration expected_cost) override;
  std::string name() const override { return inner_->name(); }

  ReplicaPolicy& inner() noexcept { return *inner_; }

 private:
  std::unique_ptr<ReplicaPolicy> inner_;
};

/// Parsed form of one dispatch-mode spec ("single",
/// "hedge[:qNN][:fresh=MS]", "tied", "kofn[:K]").
struct DispatchModeConfig {
  DispatchMode mode = DispatchMode::kSingle;
  /// Hedge deadline quantile of the per-server response distribution.
  double hedge_quantile = 0.95;
  /// k of k-of-n.
  std::uint8_t k = 2;
  /// Hedge only: suppress the back-up when the primary's last feedback
  /// is younger than this (signal-aware hedge skip). Zero = disabled —
  /// the pre-existing always-hedge behavior, and the default, so
  /// artifacts without `fresh=` stay byte-identical.
  sim::Duration fresh_age = sim::Duration::zero();

  /// Canonical spelling ("hedge:q95", "hedge:q95:fresh=2", "kofn:2",
  /// "tied", "single").
  std::string canonical() const;
  bool is_single() const noexcept { return mode == DispatchMode::kSingle; }
};

/// Hedged requests: the inner policy picks the primary; the back-up
/// target is the inner choice over the remaining replicas. The hedge
/// deadline is the configured quantile of the primary's response-time
/// EWMA (exponential-tail assumption: t_q = -ln(1-q) * mean), falling
/// back to the C3 prior for unseen servers.
///
/// Signal-aware skip (`fresh_age` > 0 and a clock wired): when the
/// primary's last feedback is younger than `fresh_age`, the queue
/// estimate that picked it is trusted and the plan degrades to single
/// (`skipped_fresh` set) — the duplicate-work budget is spent only
/// where the signals are stale enough to doubt.
class HedgeDispatchPolicy final : public DispatchPolicy {
 public:
  HedgeDispatchPolicy(std::unique_ptr<DispatchPolicy> inner, double quantile,
                      sim::Duration prior_response,
                      sim::Duration fresh_age = sim::Duration::zero(),
                      const sim::Simulator* sim = nullptr);

  DispatchPlan plan(const SignalTable& signals, const std::vector<store::ServerId>& replicas,
                    sim::Duration expected_cost) override;
  std::string name() const override;

 private:
  std::unique_ptr<DispatchPolicy> inner_;
  double quantile_factor_;  // -ln(1 - q)
  double quantile_;
  sim::Duration prior_response_;
  sim::Duration fresh_age_;    // zero: skip disabled
  const sim::Simulator* sim_;  // clock for feedback ages (may be null)
  std::vector<store::ServerId> rest_scratch_;  // replicas minus primary
};

/// Tied requests: two copies enqueued at once; first service start
/// wins, the sibling is cancelled at its dequeue.
class TiedDispatchPolicy final : public DispatchPolicy {
 public:
  explicit TiedDispatchPolicy(std::unique_ptr<DispatchPolicy> inner);

  DispatchPlan plan(const SignalTable& signals, const std::vector<store::ServerId>& replicas,
                    sim::Duration expected_cost) override;
  std::string name() const override { return "tied(" + inner_->name() + ")"; }

 private:
  std::unique_ptr<DispatchPolicy> inner_;
  std::vector<store::ServerId> rest_scratch_;
};

/// k-of-n partial fanout (the SCDP rateless-coding idea at the request
/// layer): fan out to n replicas ranked by repeated inner selection,
/// complete on the k-th response, cancel the stragglers.
class KofnDispatchPolicy final : public DispatchPolicy {
 public:
  KofnDispatchPolicy(std::unique_ptr<DispatchPolicy> inner, std::uint8_t k);

  DispatchPlan plan(const SignalTable& signals, const std::vector<store::ServerId>& replicas,
                    sim::Duration expected_cost) override;
  std::string name() const override;

 private:
  std::unique_ptr<DispatchPolicy> inner_;
  std::uint8_t k_;
  std::vector<store::ServerId> rest_scratch_;
};

/// Credits decorator at the plan layer: restrict the replica set to
/// servers the client can pay for right now (gate-mirrored balances),
/// then defer to the inner policy over that set — one uniform wrapper
/// for every mode instead of the old select()-special-cased decorator.
class CreditAwareDispatchPolicy final : public DispatchPolicy {
 public:
  explicit CreditAwareDispatchPolicy(std::unique_ptr<DispatchPolicy> inner);

  DispatchPlan plan(const SignalTable& signals, const std::vector<store::ServerId>& replicas,
                    sim::Duration expected_cost) override;
  std::string name() const override { return "credit-aware(" + inner_->name() + ")"; }

 private:
  std::unique_ptr<DispatchPolicy> inner_;
  std::vector<store::ServerId> funded_scratch_;  // reused per plan
};

// ---------------------------------------------------------------------------
// Mode registry

/// One catalog row (drives --help and the README mode table).
struct DispatchModeInfo {
  std::string name;
  std::string grammar;
  std::string summary;
};

const std::vector<DispatchModeInfo>& dispatch_mode_catalog();

/// True if `head` (the text before the first ':' of a spec entry) names
/// a dispatch mode — the disambiguator between "tenant:policy" and
/// mode specs like "hedge:q95" in shared binding grammars.
bool is_dispatch_mode_name(const std::string& head);

/// Parses one mode spec; throws std::invalid_argument with a
/// did-you-mean hint on unknown modes and on malformed parameters.
DispatchModeConfig parse_dispatch_mode(const std::string& spec);

/// Composes the full dispatch stack for one binding:
/// credit-aware?( mode-wrapper?( SingleTargetAdapter(policy) ) ).
/// In single mode no wrapper is added, so the call sequence equals the
/// legacy selector path exactly. `prior_response` seeds hedge
/// deadlines for servers without feedback yet. `sim` supplies the
/// clock for the hedge freshness skip; when null (or `fresh_age` is
/// zero) hedging always issues a back-up, as before.
std::unique_ptr<DispatchPolicy> make_dispatch_policy(const std::string& policy_name,
                                                     const DispatchModeConfig& mode,
                                                     const C3ScoreConfig& c3, bool credit_aware,
                                                     sim::Duration prior_response, util::Rng rng,
                                                     const sim::Simulator* sim = nullptr);

// ---------------------------------------------------------------------------
// DispatchEndpoint

class PolicyRuntime;

/// One client's control-plane endpoint: the SignalTable plus the bound
/// DispatchPolicy, with the *single* feedback entry point the client
/// drives. All outstanding/pending-cost accounting funnels through
/// on_send/on_response/on_cancel here — there is no second forwarding
/// path a hedged duplicate could double-count through.
class DispatchEndpoint final {
 public:
  DispatchEndpoint(SignalTableConfig signals, std::unique_ptr<DispatchPolicy> policy,
                   util::Rng rng, store::TenantId tenant);

  DispatchPlan plan(const std::vector<store::ServerId>& replicas, sim::Duration expected_cost) {
    return policy_->plan(signals_, replicas, expected_cost);
  }
  /// A copy was bound to `server` (offer time, before any gate hold).
  void on_send(store::ServerId server, sim::Duration expected_cost) {
    signals_.on_send(server, expected_cost);
  }
  /// A copy's response arrived (real server work: full feedback fold).
  /// `at` stamps the fold on the simulated clock (hedge freshness).
  void on_response(store::ServerId server, const store::ServerFeedback& feedback,
                   sim::Duration rtt, sim::Duration expected_cost,
                   sim::Time at = sim::Time::zero()) {
    signals_.on_response(server, feedback, rtt, expected_cost, at);
  }
  /// A copy was cancelled before service: release the in-flight
  /// accounting its on_send charged, with no EWMA fold (no feedback
  /// was produced) — C3's estimates stay uncorrupted by duplicates.
  void on_cancel(store::ServerId server, sim::Duration expected_cost) {
    signals_.on_cancel(server, expected_cost);
  }

  std::string name() const { return policy_->name(); }
  SignalTable& signals() noexcept { return signals_; }
  const SignalTable& signals() const noexcept { return signals_; }
  store::TenantId tenant() const noexcept { return tenant_; }

  /// Swaps the decision procedure; the accumulated signals survive.
  void rebind(std::unique_ptr<DispatchPolicy> policy);

 private:
  friend class PolicyRuntime;

  SignalTable signals_;
  std::unique_ptr<DispatchPolicy> policy_;
  /// Stream for policies constructed at switch epochs (split per
  /// rebind; the t=0 policy uses the client's original stream copy).
  util::Rng rng_;
  store::TenantId tenant_;
};

}  // namespace brb::ctrl
