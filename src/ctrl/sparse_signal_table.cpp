#include "ctrl/sparse_signal_table.hpp"

#include <stdexcept>

#include "util/ewma.hpp"

namespace brb::ctrl {

namespace {
constexpr std::size_t kInitialSlots = 8;  // power of two
constexpr std::uint64_t kHashMultiplier = 0x9E3779B97F4A7C15ULL;
}  // namespace

SparseSignalTable::SparseSignalTable(double ewma_alpha, std::uint32_t entry_cap,
                                     std::uint32_t group_size)
    : ewma_alpha_(ewma_alpha), entry_cap_(entry_cap), group_size_(group_size) {
  if (entry_cap_ == 0) throw std::invalid_argument("SparseSignalTable: entry cap must be > 0");
  if (group_size_ == 0) throw std::invalid_argument("SparseSignalTable: group size must be > 0");
  slots_.resize(kInitialSlots);
}

std::size_t SparseSignalTable::slot_of(store::ServerId server) const {
  // Multiply-shift on the dense id; table size is a power of two.
  const std::uint64_t h = static_cast<std::uint64_t>(server) * kHashMultiplier;
  return static_cast<std::size_t>(h >> 32) & (slots_.size() - 1);
}

const SparseSignalTable::Entry* SparseSignalTable::find(store::ServerId server) const {
  std::size_t slot = slot_of(server);
  while (slots_[slot].occupied) {
    if (slots_[slot].server == server) return &slots_[slot];
    slot = (slot + 1) & (slots_.size() - 1);
  }
  return nullptr;
}

const SparseSignalTable::GroupAggregate* SparseSignalTable::group_of(
    store::ServerId server) const {
  const std::size_t group = server / group_size_;
  if (group >= groups_.size() || groups_[group].folds == 0) return nullptr;
  return &groups_[group];
}

void SparseSignalTable::grow_table() {
  std::vector<Entry> old;
  old.swap(slots_);
  slots_.resize(old.size() * 2);
  for (const Entry& e : old) {
    if (!e.occupied) continue;
    std::size_t slot = slot_of(e.server);
    while (slots_[slot].occupied) slot = (slot + 1) & (slots_.size() - 1);
    slots_[slot] = e;
  }
}

void SparseSignalTable::remove_slot(std::size_t slot) {
  // Backward-shift deletion: re-seat the probe chain after the hole so
  // linear probing never needs tombstones.
  const std::size_t mask = slots_.size() - 1;
  slots_[slot].occupied = false;
  std::size_t next = (slot + 1) & mask;
  while (slots_[next].occupied) {
    const Entry moved = slots_[next];
    slots_[next].occupied = false;
    std::size_t reseat = slot_of(moved.server);
    while (slots_[reseat].occupied) reseat = (reseat + 1) & mask;
    slots_[reseat] = moved;
    next = (next + 1) & mask;
  }
  --live_;
}

void SparseSignalTable::evict_one() {
  // LRU among unpinned entries, scanning slots in order (deterministic:
  // ties broken by lowest slot, and slot layout is a pure function of
  // the insertion history). An entry is pinned while it holds state
  // that must not silently vanish: in-flight accounting (a response or
  // cancel will come back for it) or a gate mirror (balances and caps
  // are the gate's authoritative view for selection).
  std::size_t victim = slots_.size();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Entry& e = slots_[i];
    if (!e.occupied) continue;
    if (e.outstanding > 0 || e.pending_cost_ns > 0 || e.credit_balance != 0.0 ||
        e.rate_cap != 0.0) {
      continue;
    }
    if (victim == slots_.size() || e.lru_tick < slots_[victim].lru_tick) victim = i;
  }
  if (victim == slots_.size()) return;  // everything pinned: soft cap grows

  const Entry& e = slots_[victim];
  if (e.seen != 0) {
    // Fold the response-path EWMAs into the group's running means; the
    // group becomes the fallback answer for this (and any untracked)
    // server in it.
    const std::size_t group = e.server / group_size_;
    if (group >= groups_.size()) groups_.resize(group + 1);
    GroupAggregate& agg = groups_[group];
    ++agg.folds;
    const double n = static_cast<double>(agg.folds);
    agg.mean_response_ns += (e.ewma_response_ns - agg.mean_response_ns) / n;
    agg.mean_queue += (e.ewma_queue - agg.mean_queue) / n;
    agg.mean_service_ns += (e.ewma_service_ns - agg.mean_service_ns) / n;
  }
  ++evictions_;
  remove_slot(victim);
}

SparseSignalTable::Entry& SparseSignalTable::touch(store::ServerId server) {
  std::size_t slot = slot_of(server);
  while (slots_[slot].occupied) {
    if (slots_[slot].server == server) {
      slots_[slot].lru_tick = ++tick_;
      return slots_[slot];
    }
    slot = (slot + 1) & (slots_.size() - 1);
  }

  if (live_ >= entry_cap_) evict_one();
  if ((live_ + 1) * 2 > slots_.size()) {
    grow_table();
  }
  // Re-probe: both eviction and growth may have moved the hole.
  slot = slot_of(server);
  while (slots_[slot].occupied) slot = (slot + 1) & (slots_.size() - 1);

  Entry& e = slots_[slot];
  e = Entry{};
  e.server = server;
  e.occupied = true;
  e.lru_tick = ++tick_;
  if (const GroupAggregate* agg = group_of(server)) {
    // Seed from the group prior: an evicted-then-recontacted server
    // resumes from its group's collective memory, and the first real
    // response blends into (rather than replaces) it.
    e.seen = 1;
    e.ewma_response_ns = agg->mean_response_ns;
    e.ewma_queue = agg->mean_queue;
    e.ewma_service_ns = agg->mean_service_ns;
  }
  ++live_;
  return e;
}

void SparseSignalTable::on_send(store::ServerId server, sim::Duration expected_cost) {
  Entry& e = touch(server);
  ++e.outstanding;
  e.pending_cost_ns += expected_cost.count_nanos();
}

void SparseSignalTable::on_response(store::ServerId server, const store::ServerFeedback& feedback,
                                    sim::Duration rtt, sim::Duration expected_cost, sim::Time at) {
  Entry& e = touch(server);
  // Release + raw-feedback + EWMA fold, immediately. Per-server sample
  // order equals arrival order, and the arithmetic below is the exact
  // dense flush arithmetic, so the values are bit-identical to the
  // dense store's column-wise batch application.
  if (e.outstanding > 0) --e.outstanding;
  e.pending_cost_ns -= expected_cost.count_nanos();
  if (e.pending_cost_ns < 0) e.pending_cost_ns = 0;
  e.last_queue_length = feedback.queue_length;
  e.last_service_rate = feedback.service_rate;
  e.last_feedback_ns = at.count_nanos();

  const double rtt_ns = static_cast<double>(rtt.count_nanos());
  const double queue = static_cast<double>(feedback.queue_length);
  const double service_ns = feedback.service_rate > 0
                                ? 1e9 / feedback.service_rate
                                : static_cast<double>(feedback.service_time.count_nanos());
  if (e.seen == 0) {
    e.seen = 1;
    e.ewma_response_ns = rtt_ns;
    e.ewma_queue = queue;
    e.ewma_service_ns = service_ns;
  } else {
    e.ewma_response_ns = util::ewma_update(e.ewma_response_ns, ewma_alpha_, rtt_ns);
    e.ewma_queue = util::ewma_update(e.ewma_queue, ewma_alpha_, queue);
    e.ewma_service_ns = util::ewma_update(e.ewma_service_ns, ewma_alpha_, service_ns);
  }
}

void SparseSignalTable::on_cancel(store::ServerId server, sim::Duration expected_cost) {
  Entry& e = touch(server);
  if (e.outstanding > 0) --e.outstanding;
  e.pending_cost_ns -= expected_cost.count_nanos();
  if (e.pending_cost_ns < 0) e.pending_cost_ns = 0;
}

void SparseSignalTable::set_credit_balance(store::ServerId server, double balance) {
  touch(server).credit_balance = balance;
}

void SparseSignalTable::set_rate_cap(store::ServerId server, double rate) {
  touch(server).rate_cap = rate;
}

SignalTable::Signals SparseSignalTable::of(store::ServerId server) const {
  SignalTable::Signals s;
  if (const Entry* e = find(server)) {
    s.ewma_response_ns = e->ewma_response_ns;
    s.ewma_queue = e->ewma_queue;
    s.ewma_service_time_ns = e->ewma_service_ns;
    s.seen = e->seen != 0;
    s.outstanding = e->outstanding;
    s.pending_cost_ns = e->pending_cost_ns;
    s.credit_balance = e->credit_balance;
    s.rate_cap = e->rate_cap;
    s.last_queue_length = e->last_queue_length;
    s.last_service_rate = e->last_service_rate;
    s.last_feedback_ns = e->last_feedback_ns;
    return s;
  }
  if (const GroupAggregate* agg = group_of(server)) {
    s.seen = true;
    s.ewma_response_ns = agg->mean_response_ns;
    s.ewma_queue = agg->mean_queue;
    s.ewma_service_time_ns = agg->mean_service_ns;
  }
  return s;
}

std::uint32_t SparseSignalTable::outstanding(store::ServerId server) const {
  const Entry* e = find(server);
  return e != nullptr ? e->outstanding : 0;
}

sim::Duration SparseSignalTable::pending_cost(store::ServerId server) const {
  const Entry* e = find(server);
  return sim::Duration::nanos(e != nullptr ? e->pending_cost_ns : 0);
}

bool SparseSignalTable::seen(store::ServerId server) const {
  const Entry* e = find(server);
  if (e != nullptr) return e->seen != 0;
  return group_of(server) != nullptr;
}

double SparseSignalTable::ewma_response_ns(store::ServerId server) const {
  const Entry* e = find(server);
  if (e != nullptr) return e->ewma_response_ns;
  const GroupAggregate* agg = group_of(server);
  return agg != nullptr ? agg->mean_response_ns : 0.0;
}

double SparseSignalTable::ewma_queue(store::ServerId server) const {
  const Entry* e = find(server);
  if (e != nullptr) return e->ewma_queue;
  const GroupAggregate* agg = group_of(server);
  return agg != nullptr ? agg->mean_queue : 0.0;
}

double SparseSignalTable::ewma_service_time_ns(store::ServerId server) const {
  const Entry* e = find(server);
  if (e != nullptr) return e->ewma_service_ns;
  const GroupAggregate* agg = group_of(server);
  return agg != nullptr ? agg->mean_service_ns : 0.0;
}

double SparseSignalTable::credit_balance(store::ServerId server) const {
  const Entry* e = find(server);
  return e != nullptr ? e->credit_balance : 0.0;
}

double SparseSignalTable::rate_cap(store::ServerId server) const {
  const Entry* e = find(server);
  return e != nullptr ? e->rate_cap : 0.0;
}

std::int64_t SparseSignalTable::last_feedback_ns(store::ServerId server) const {
  const Entry* e = find(server);
  return e != nullptr ? e->last_feedback_ns : -1;
}

}  // namespace brb::ctrl
