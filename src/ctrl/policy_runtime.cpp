#include "ctrl/policy_runtime.hpp"

#include <algorithm>
#include <stdexcept>

namespace brb::ctrl {

namespace {

std::vector<std::string> split_list(const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string part = spec.substr(start, comma == std::string::npos ? std::string::npos
                                                                           : comma - start);
    if (!part.empty()) parts.push_back(part);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

PolicyBinding parse_binding(const std::string& entry, const char* flag) {
  const std::size_t colon = entry.find(':');
  if (colon == std::string::npos) return {"", canonical_policy_name(entry)};
  const std::string tenant = entry.substr(0, colon);
  const std::string name = entry.substr(colon + 1);
  if (tenant.empty() || name.empty()) {
    throw std::invalid_argument(std::string(flag) + ": malformed entry '" + entry +
                                "' (want [tenant:]policy)");
  }
  return {tenant, canonical_policy_name(name)};
}

sim::Time parse_switch_time(const std::string& text) {
  if (text == "t0") return sim::Time::zero();
  double scale_to_seconds = 0.0;
  std::string number;
  if (text.size() > 2 && text.substr(text.size() - 2) == "ms") {
    scale_to_seconds = 1e-3;
    number = text.substr(0, text.size() - 2);
  } else if (text.size() > 2 && text.substr(text.size() - 2) == "us") {
    scale_to_seconds = 1e-6;
    number = text.substr(0, text.size() - 2);
  } else if (text.size() > 1 && text.back() == 's') {
    scale_to_seconds = 1.0;
    number = text.substr(0, text.size() - 1);
  } else {
    throw std::invalid_argument("--policy-switch: bad time '" + text +
                                "' (want t0 or a duration like 30s / 500ms / 250us)");
  }
  double value = 0.0;
  std::size_t consumed = 0;
  try {
    value = std::stod(number, &consumed);
  } catch (const std::exception&) {
    consumed = std::string::npos;  // force the error below
  }
  if (consumed != number.size() || value < 0.0) {
    throw std::invalid_argument("--policy-switch: bad time '" + text + "'");
  }
  return sim::Time::zero() + sim::Duration::seconds(value * scale_to_seconds);
}

}  // namespace

std::vector<PolicyBinding> parse_policy_spec(const std::string& spec) {
  std::vector<PolicyBinding> bindings;
  for (const std::string& entry : split_list(spec)) {
    bindings.push_back(parse_binding(entry, "--policy"));
  }
  if (!spec.empty() && bindings.empty()) {
    throw std::invalid_argument("--policy: empty spec");
  }
  return bindings;
}

std::vector<PolicySwitch> parse_policy_switch_spec(const std::string& spec) {
  std::vector<PolicySwitch> switches;
  for (const std::string& entry : split_list(spec)) {
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= entry.size()) {
      throw std::invalid_argument("--policy-switch: malformed entry '" + entry +
                                  "' (want TIME:[tenant:]policy)");
    }
    const sim::Time at = parse_switch_time(entry.substr(0, colon));
    const PolicyBinding binding = parse_binding(entry.substr(colon + 1), "--policy-switch");
    switches.push_back({at, binding.tenant, binding.policy});
  }
  if (!spec.empty() && switches.empty()) {
    throw std::invalid_argument("--policy-switch: empty spec");
  }
  return switches;
}

// ---------------------------------------------------------------------------
// BoundSelector: one client's control-plane endpoint.

class PolicyRuntime::BoundSelector final : public policy::ReplicaSelector {
 public:
  BoundSelector(SignalTableConfig signals, std::unique_ptr<ReplicaPolicy> active, util::Rng rng,
                store::TenantId tenant)
      : signals_(signals), active_(std::move(active)), rng_(rng), tenant_(tenant) {}

  store::ServerId select(const std::vector<store::ServerId>& replicas,
                         sim::Duration expected_cost) override {
    return active_->select(signals_, replicas, expected_cost);
  }
  void on_send(store::ServerId server, sim::Duration expected_cost) override {
    signals_.on_send(server, expected_cost);
  }
  void on_response(store::ServerId server, const store::ServerFeedback& feedback,
                   sim::Duration rtt, sim::Duration expected_cost) override {
    signals_.on_response(server, feedback, rtt, expected_cost);
  }
  std::string name() const override { return active_->name(); }

 private:
  friend class PolicyRuntime;

  SignalTable signals_;
  std::unique_ptr<ReplicaPolicy> active_;
  /// Stream for policies constructed at switch epochs (split per
  /// rebind; the t=0 policy uses the client's original stream copy).
  util::Rng rng_;
  store::TenantId tenant_;
};

// ---------------------------------------------------------------------------
// PolicyRuntime

PolicyRuntime::PolicyRuntime(sim::Simulator& sim, Config config)
    : sim_(&sim), config_(std::move(config)) {
  const std::size_t num_tenants = std::max<std::size_t>(1, config_.tenants.size());
  initial_.assign(num_tenants, canonical_policy_name(config_.default_policy));

  const auto apply_binding = [&](const std::string& tenant, const std::string& policy) {
    if (tenant.empty()) {
      std::fill(initial_.begin(), initial_.end(), policy);
    } else {
      initial_[tenant_index(tenant).value()] = policy;
    }
  };
  for (const PolicyBinding& binding : parse_policy_spec(config_.policy_spec)) {
    apply_binding(binding.tenant, binding.policy);
  }
  for (const PolicySwitch& entry : parse_policy_switch_spec(config_.switch_spec)) {
    if (entry.at == sim::Time::zero()) {
      apply_binding(entry.tenant, entry.policy);
    } else {
      if (!entry.tenant.empty()) tenant_index(entry.tenant);  // validate eagerly
      epochs_.push_back(entry);
    }
  }
  std::stable_sort(epochs_.begin(), epochs_.end(),
                   [](const PolicySwitch& a, const PolicySwitch& b) { return a.at < b.at; });
}

store::TenantId PolicyRuntime::tenant_index(const std::string& name) const {
  if (config_.tenants.empty()) {
    throw std::invalid_argument("policy spec names tenant '" + name +
                                "' but the scenario has no tenant mix (--tenants)");
  }
  for (std::size_t i = 0; i < config_.tenants.size(); ++i) {
    if (config_.tenants[i] == name) return store::TenantId{static_cast<std::uint32_t>(i)};
  }
  std::string known;
  for (const std::string& tenant : config_.tenants) {
    if (!known.empty()) known += ", ";
    known += tenant;
  }
  throw std::invalid_argument("policy spec names unknown tenant '" + name + "' (tenants: " +
                              known + ")");
}

const std::string& PolicyRuntime::initial_policy(store::TenantId tenant) const {
  if (tenant.value() >= initial_.size()) {
    throw std::out_of_range("PolicyRuntime::initial_policy: bad tenant index");
  }
  return initial_[tenant.value()];
}

std::unique_ptr<ReplicaPolicy> PolicyRuntime::make_bound_policy(const std::string& name,
                                                                util::Rng rng) const {
  std::unique_ptr<ReplicaPolicy> policy = make_replica_policy(name, config_.c3, rng);
  if (config_.credit_aware) {
    // Credits systems select jointly over replica load *and* credit
    // balances (the gate mirrors balances into the SignalTable).
    policy = std::make_unique<CreditAwarePolicy>(std::move(policy));
  }
  return policy;
}

std::unique_ptr<policy::ReplicaSelector> PolicyRuntime::bind_client(store::ClientId id,
                                                                    store::TenantId tenant,
                                                                    util::Rng rng) {
  if (tenant.value() >= initial_.size()) {
    throw std::invalid_argument("PolicyRuntime::bind_client: tenant index out of range");
  }
  auto bound = std::make_unique<BoundSelector>(
      config_.signals, make_bound_policy(initial_[tenant.value()], rng), rng, tenant);
  if (id >= clients_.size()) clients_.resize(id + 1, nullptr);
  if (clients_[id] != nullptr) {
    throw std::logic_error("PolicyRuntime::bind_client: client bound twice");
  }
  clients_[id] = bound.get();
  return bound;
}

SignalTable& PolicyRuntime::signals_of(store::ClientId id) {
  if (id >= clients_.size() || clients_[id] == nullptr) {
    throw std::out_of_range("PolicyRuntime::signals_of: unbound client");
  }
  return clients_[id]->signals_;
}

void PolicyRuntime::apply_epoch(std::size_t epoch_index) {
  const PolicySwitch& epoch = epochs_[epoch_index];
  for (BoundSelector* client : clients_) {
    if (client == nullptr) continue;
    if (!epoch.tenant.empty() &&
        config_.tenants[client->tenant_.value()] != epoch.tenant) {
      continue;
    }
    // The replacement policy reads the same SignalTable the old one
    // fed from — it starts with warm estimates, not a cold cache.
    client->active_ = make_bound_policy(epoch.policy, client->rng_.split());
    ++switches_applied_;
  }
}

void PolicyRuntime::start() {
  if (started_) throw std::logic_error("PolicyRuntime::start: called twice");
  started_ = true;
  for (std::size_t i = 0; i < epochs_.size(); ++i) {
    sim_->schedule_at(epochs_[i].at, [this, i] { apply_epoch(i); });
  }
}

}  // namespace brb::ctrl
