#include "ctrl/policy_runtime.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/flags.hpp"

namespace brb::ctrl {

namespace {

std::vector<std::string> split_list(const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string part = spec.substr(start, comma == std::string::npos ? std::string::npos
                                                                           : comma - start);
    if (!part.empty()) parts.push_back(part);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

PolicyBinding parse_binding(const std::string& entry, const char* flag) {
  const std::size_t colon = entry.find(':');
  if (colon == std::string::npos) return {"", canonical_policy_name(entry)};
  const std::string tenant = entry.substr(0, colon);
  const std::string name = entry.substr(colon + 1);
  if (tenant.empty() || name.empty()) {
    throw std::invalid_argument(std::string(flag) + ": malformed entry '" + entry +
                                "' (want [tenant:]policy)");
  }
  return {tenant, canonical_policy_name(name)};
}

sim::Time parse_switch_time(const std::string& text) {
  if (text == "t0") return sim::Time::zero();
  double scale_to_seconds = 0.0;
  std::string number;
  if (text.size() > 2 && text.substr(text.size() - 2) == "ms") {
    scale_to_seconds = 1e-3;
    number = text.substr(0, text.size() - 2);
  } else if (text.size() > 2 && text.substr(text.size() - 2) == "us") {
    scale_to_seconds = 1e-6;
    number = text.substr(0, text.size() - 2);
  } else if (text.size() > 1 && text.back() == 's') {
    scale_to_seconds = 1.0;
    number = text.substr(0, text.size() - 1);
  } else {
    throw std::invalid_argument("--policy-switch: bad time '" + text +
                                "' (want t0 or a duration like 30s / 500ms / 250us)");
  }
  double value = 0.0;
  std::size_t consumed = 0;
  try {
    value = std::stod(number, &consumed);
  } catch (const std::exception&) {
    consumed = std::string::npos;  // force the error below
  }
  if (consumed != number.size() || value < 0.0) {
    throw std::invalid_argument("--policy-switch: bad time '" + text + "'");
  }
  return sim::Time::zero() + sim::Duration::seconds(value * scale_to_seconds);
}

/// Resolves a bare switch payload that is not a dispatch-mode spec as
/// a policy name; on failure, the did-you-mean hint spans the combined
/// policy + mode catalog (the payload grammar accepts both).
std::string canonical_policy_or_hint(const std::string& text) {
  try {
    return canonical_policy_name(text);
  } catch (const std::invalid_argument&) {
    std::vector<std::string> known;
    for (const ReplicaPolicyInfo& info : replica_policy_catalog()) known.push_back(info.name);
    for (const DispatchModeInfo& info : dispatch_mode_catalog()) known.push_back(info.name);
    std::string message = "unknown policy or dispatch mode '" + text + "'";
    if (const auto suggestion = util::closest_name(text, known)) {
      message += " (did you mean '" + *suggestion + "'?)";
    }
    throw std::invalid_argument(message);
  }
}

/// Resolves one switch payload: "c3" | "hedge:q95" | "tenantA:c3" |
/// "tenantA:tied". The mode-keyword set disambiguates mode heads from
/// tenant names.
PolicySwitch parse_switch_payload(sim::Time at, const std::string& payload) {
  PolicySwitch sw;
  sw.at = at;
  const std::size_t colon = payload.find(':');
  const std::string head = payload.substr(0, colon);

  if (is_dispatch_mode_name(head)) {  // fleet-wide mode switch
    sw.kind = PolicySwitch::Kind::kMode;
    sw.mode = parse_dispatch_mode(payload);
    return sw;
  }
  if (colon == std::string::npos) {  // fleet-wide policy switch
    sw.kind = PolicySwitch::Kind::kPolicy;
    sw.policy = canonical_policy_or_hint(payload);
    return sw;
  }

  const std::string rest = payload.substr(colon + 1);
  if (head.empty() || rest.empty()) {
    throw std::invalid_argument("--policy-switch: malformed entry payload '" + payload +
                                "' (want [tenant:]policy or [tenant:]mode)");
  }
  sw.tenant = head;
  const std::string rest_head = rest.substr(0, rest.find(':'));
  if (is_dispatch_mode_name(rest_head)) {
    sw.kind = PolicySwitch::Kind::kMode;
    sw.mode = parse_dispatch_mode(rest);
  } else {
    sw.kind = PolicySwitch::Kind::kPolicy;
    sw.policy = canonical_policy_or_hint(rest);
  }
  return sw;
}

}  // namespace

std::vector<PolicyBinding> parse_policy_spec(const std::string& spec) {
  std::vector<PolicyBinding> bindings;
  for (const std::string& entry : split_list(spec)) {
    bindings.push_back(parse_binding(entry, "--policy"));
  }
  if (!spec.empty() && bindings.empty()) {
    throw std::invalid_argument("--policy: empty spec");
  }
  return bindings;
}

std::vector<DispatchBinding> parse_dispatch_spec(const std::string& spec) {
  std::vector<DispatchBinding> bindings;
  for (const std::string& entry : split_list(spec)) {
    const std::size_t colon = entry.find(':');
    const std::string head = entry.substr(0, colon);
    if (is_dispatch_mode_name(head)) {
      bindings.push_back({"", parse_dispatch_mode(entry)});
      continue;
    }
    if (colon == std::string::npos) {
      parse_dispatch_mode(entry);  // throws with the did-you-mean hint
      continue;                    // unreachable
    }
    const std::string rest = entry.substr(colon + 1);
    if (head.empty() || rest.empty()) {
      throw std::invalid_argument("--dispatch: malformed entry '" + entry +
                                  "' (want [tenant:]mode)");
    }
    bindings.push_back({head, parse_dispatch_mode(rest)});
  }
  if (!spec.empty() && bindings.empty()) {
    throw std::invalid_argument("--dispatch: empty spec");
  }
  return bindings;
}

std::vector<PolicySwitch> parse_policy_switch_spec(const std::string& spec) {
  std::vector<PolicySwitch> switches;
  for (const std::string& entry : split_list(spec)) {
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= entry.size()) {
      throw std::invalid_argument("--policy-switch: malformed entry '" + entry +
                                  "' (want TIME:[tenant:]policy or TIME:[tenant:]mode)");
    }
    const sim::Time at = parse_switch_time(entry.substr(0, colon));
    switches.push_back(parse_switch_payload(at, entry.substr(colon + 1)));
  }
  if (!spec.empty() && switches.empty()) {
    throw std::invalid_argument("--policy-switch: empty spec");
  }
  return switches;
}

// ---------------------------------------------------------------------------
// PolicyRuntime

PolicyRuntime::PolicyRuntime(sim::Simulator& sim, Config config)
    : sim_(&sim), config_(std::move(config)) {
  const std::size_t num_tenants = std::max<std::size_t>(1, config_.tenants.size());
  initial_policy_.assign(num_tenants, canonical_policy_name(config_.default_policy));
  initial_mode_.assign(num_tenants, DispatchModeConfig{});

  const auto apply_policy = [&](const std::string& tenant, const std::string& policy) {
    if (tenant.empty()) {
      std::fill(initial_policy_.begin(), initial_policy_.end(), policy);
    } else {
      initial_policy_[tenant_index(tenant).value()] = policy;
    }
  };
  const auto apply_mode = [&](const std::string& tenant, const DispatchModeConfig& mode) {
    if (tenant.empty()) {
      std::fill(initial_mode_.begin(), initial_mode_.end(), mode);
    } else {
      initial_mode_[tenant_index(tenant).value()] = mode;
    }
  };
  for (const PolicyBinding& binding : parse_policy_spec(config_.policy_spec)) {
    apply_policy(binding.tenant, binding.policy);
  }
  for (const DispatchBinding& binding : parse_dispatch_spec(config_.dispatch_spec)) {
    apply_mode(binding.tenant, binding.mode);
  }
  for (const PolicySwitch& entry : parse_policy_switch_spec(config_.switch_spec)) {
    if (entry.at == sim::Time::zero()) {
      if (entry.kind == PolicySwitch::Kind::kPolicy) {
        apply_policy(entry.tenant, entry.policy);
      } else {
        apply_mode(entry.tenant, entry.mode);
      }
    } else {
      if (!entry.tenant.empty()) tenant_index(entry.tenant);  // validate eagerly
      epochs_.push_back(entry);
    }
  }
  std::stable_sort(epochs_.begin(), epochs_.end(),
                   [](const PolicySwitch& a, const PolicySwitch& b) { return a.at < b.at; });
}

store::TenantId PolicyRuntime::tenant_index(const std::string& name) const {
  if (config_.tenants.empty()) {
    throw std::invalid_argument("policy spec names tenant '" + name +
                                "' but the scenario has no tenant mix (--tenants)");
  }
  for (std::size_t i = 0; i < config_.tenants.size(); ++i) {
    if (config_.tenants[i] == name) return store::TenantId{static_cast<std::uint32_t>(i)};
  }
  std::string known;
  for (const std::string& tenant : config_.tenants) {
    if (!known.empty()) known += ", ";
    known += tenant;
  }
  throw std::invalid_argument("policy spec names unknown tenant '" + name + "' (tenants: " +
                              known + ")");
}

const std::string& PolicyRuntime::initial_policy(store::TenantId tenant) const {
  if (tenant.value() >= initial_policy_.size()) {
    throw std::out_of_range("PolicyRuntime::initial_policy: bad tenant index");
  }
  return initial_policy_[tenant.value()];
}

const DispatchModeConfig& PolicyRuntime::initial_mode(store::TenantId tenant) const {
  if (tenant.value() >= initial_mode_.size()) {
    throw std::out_of_range("PolicyRuntime::initial_mode: bad tenant index");
  }
  return initial_mode_[tenant.value()];
}

bool PolicyRuntime::may_dispatch_duplicates() const {
  for (const DispatchModeConfig& mode : initial_mode_) {
    if (!mode.is_single()) return true;
  }
  for (const PolicySwitch& epoch : epochs_) {
    if (epoch.kind == PolicySwitch::Kind::kMode && !epoch.mode.is_single()) return true;
  }
  return false;
}

std::unique_ptr<DispatchPolicy> PolicyRuntime::make_bound_stack(const std::string& policy,
                                                                const DispatchModeConfig& mode,
                                                                util::Rng rng) const {
  // Credits systems select jointly over replica load *and* credit
  // balances (the gate mirrors balances into the SignalTable); the
  // credit-aware wrapper composes outermost, uniformly for every mode.
  return make_dispatch_policy(policy, mode, config_.c3, config_.credit_aware,
                              config_.c3.prior_service_time, rng, sim_);
}

std::unique_ptr<DispatchEndpoint> PolicyRuntime::bind_client(store::ClientId id,
                                                             store::TenantId tenant,
                                                             util::Rng rng) {
  if (tenant.value() >= initial_policy_.size()) {
    throw std::invalid_argument("PolicyRuntime::bind_client: tenant index out of range");
  }
  const std::string& policy = initial_policy_[tenant.value()];
  const DispatchModeConfig& mode = initial_mode_[tenant.value()];
  auto endpoint = std::make_unique<DispatchEndpoint>(
      config_.signals, make_bound_stack(policy, mode, rng), rng, tenant);
  if (id >= clients_.size()) clients_.resize(id + 1);
  if (clients_[id].endpoint != nullptr) {
    throw std::logic_error("PolicyRuntime::bind_client: client bound twice");
  }
  clients_[id] = ClientBinding{endpoint.get(), policy, mode, tenant};
  return endpoint;
}

SignalTable& PolicyRuntime::signals_of(store::ClientId id) {
  if (id >= clients_.size() || clients_[id].endpoint == nullptr) {
    throw std::out_of_range("PolicyRuntime::signals_of: unbound client");
  }
  return clients_[id].endpoint->signals_;
}

void PolicyRuntime::apply_epoch(std::size_t epoch_index) {
  const PolicySwitch& epoch = epochs_[epoch_index];
  for (ClientBinding& client : clients_) {
    if (client.endpoint == nullptr) continue;
    if (!epoch.tenant.empty() && config_.tenants[client.tenant.value()] != epoch.tenant) {
      continue;
    }
    // A switch replaces one axis of the (policy, mode) pair and keeps
    // the other; the replacement stack reads the same SignalTable the
    // old one fed from — it starts with warm estimates, not a cold
    // cache.
    if (epoch.kind == PolicySwitch::Kind::kPolicy) {
      client.policy = epoch.policy;
    } else {
      client.mode = epoch.mode;
    }
    client.endpoint->policy_ =
        make_bound_stack(client.policy, client.mode, client.endpoint->rng_.split());
    ++switches_applied_;
  }
}

void PolicyRuntime::start() {
  if (started_) throw std::logic_error("PolicyRuntime::start: called twice");
  started_ = true;
  for (std::size_t i = 0; i < epochs_.size(); ++i) {
    sim_->schedule_at(epochs_[i].at, [this, i] { apply_epoch(i); });
  }
}

}  // namespace brb::ctrl
