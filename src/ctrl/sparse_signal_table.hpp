// Sparse backing store for the SignalTable — million-client scale.
//
// The dense SignalTable allocates every column out to the highest
// ServerId a client has touched: exact and fast at paper scale, but
// O(clients x servers) across a fleet — a 10k-server x 1M-client run
// would spend ~6.6 TB on columns alone. The sparse store keeps only
// the pairs a client has actually touched, in one open-addressed
// table keyed by dense ServerId:
//
//   * power-of-two capacity, multiply-shift hash, linear probing,
//     backward-shift deletion (no tombstones); starts at 8 slots and
//     doubles at 1/2 load, so a client that only ever contacts its
//     replication groups pays ~1 KB, not ~1 MB;
//   * a *soft* per-client entry cap with LRU eviction: writes stamp a
//     deterministic tick, inserts over the cap evict the
//     least-recently-written entry that holds no live state
//     (in-flight accounting and admission mirrors pin an entry — a
//     gate's balance must never silently vanish). When every entry is
//     pinned the table grows past the cap instead of corrupting state;
//   * hierarchical per-server-group aggregation as the fallback: an
//     evicted entry folds its response-path EWMAs into its group's
//     running means (group = server / group_size), and reads of a
//     never-held pair in a group with history answer with the group
//     aggregate (seen, EWMAs = group means, counters zero). New
//     entries in such a group seed their EWMAs from the aggregate, so
//     an evicted-then-recontacted server starts from the group prior
//     rather than from scratch.
//
// Determinism: ticks are a simple write counter, eviction scans the
// table in slot order with strict tie-breaks, and the hash depends
// only on ServerId — identical runs evict identically. When the cap
// exceeds the fleet size nothing is ever evicted and every read and
// EWMA fold is bit-identical to the dense store (the differential
// test in tests/control_plane_test.cpp pins this).
//
// Feedback is applied immediately rather than staged: the dense
// store's column-wise flush applies per-server samples in arrival
// order with the same seed-then-blend arithmetic, so immediate
// application produces bit-identical values — and the sparse store's
// entries are struct-of-fields anyway, so there is no column sweep to
// batch for.
#pragma once

#include <cstdint>
#include <vector>

#include "ctrl/signal_table.hpp"
#include "sim/time.hpp"
#include "store/types.hpp"

namespace brb::ctrl {

class SparseSignalTable {
 public:
  SparseSignalTable(double ewma_alpha, std::uint32_t entry_cap, std::uint32_t group_size);

  void on_send(store::ServerId server, sim::Duration expected_cost);
  void on_response(store::ServerId server, const store::ServerFeedback& feedback,
                   sim::Duration rtt, sim::Duration expected_cost, sim::Time at);
  void on_cancel(store::ServerId server, sim::Duration expected_cost);
  void set_credit_balance(store::ServerId server, double balance);
  void set_rate_cap(store::ServerId server, double rate);

  /// Row snapshot. A pair not in the table answers with its group
  /// aggregate when one exists (seen, EWMAs = group means, all
  /// counters and mirrors zero), else the neutral zero state.
  SignalTable::Signals of(store::ServerId server) const;

  std::uint32_t outstanding(store::ServerId server) const;
  sim::Duration pending_cost(store::ServerId server) const;
  bool seen(store::ServerId server) const;
  double ewma_response_ns(store::ServerId server) const;
  double ewma_queue(store::ServerId server) const;
  double ewma_service_time_ns(store::ServerId server) const;
  double credit_balance(store::ServerId server) const;
  double rate_cap(store::ServerId server) const;
  std::int64_t last_feedback_ns(store::ServerId server) const;

  /// Live (non-evicted) entries.
  std::size_t live_entries() const noexcept { return live_; }
  /// Entries evicted into group aggregates over the store's lifetime.
  std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  struct Entry {
    store::ServerId server = 0;
    bool occupied = false;
    std::uint8_t seen = 0;
    std::uint32_t outstanding = 0;
    std::uint64_t lru_tick = 0;
    std::int64_t pending_cost_ns = 0;
    std::int64_t last_feedback_ns = -1;
    double ewma_response_ns = 0.0;
    double ewma_queue = 0.0;
    double ewma_service_ns = 0.0;
    double credit_balance = 0.0;
    double rate_cap = 0.0;
    std::uint32_t last_queue_length = 0;
    double last_service_rate = 0.0;
  };

  /// Running means of the response-path EWMAs folded out of evicted
  /// entries — the group's collective memory of servers the window no
  /// longer tracks individually.
  struct GroupAggregate {
    std::uint64_t folds = 0;
    double mean_response_ns = 0.0;
    double mean_queue = 0.0;
    double mean_service_ns = 0.0;
  };

  std::size_t slot_of(store::ServerId server) const;
  const Entry* find(store::ServerId server) const;
  /// Finds or creates the entry (seeding from the group aggregate),
  /// evicting the LRU unpinned entry when the soft cap is reached.
  Entry& touch(store::ServerId server);
  void grow_table();
  void evict_one();
  void remove_slot(std::size_t slot);
  const GroupAggregate* group_of(store::ServerId server) const;

  double ewma_alpha_;
  std::uint32_t entry_cap_;
  std::uint32_t group_size_;
  std::vector<Entry> slots_;
  std::size_t live_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t evictions_ = 0;
  /// Indexed by group id; empty until the first eviction.
  std::vector<GroupAggregate> groups_;
};

}  // namespace brb::ctrl
