// The unified per-(client,server) signal table — layer 1 of the
// control plane.
//
// The paper's feedback loop (per-replica signals driving replica
// selection and admission) used to be smeared across four components,
// each scraping its own copy of the observables: the C3 selector kept
// EWMAs, the least-outstanding/least-pending selectors kept counters,
// the credit gate kept balances, and the rate controller kept caps.
// The SignalTable centralizes all of them in one flat dense-ID store
// per client, updated from a single feedback path (the client's
// on-send / on-response hooks plus the admission gate's mirrors).
// Policies (ctrl/replica_policy.hpp) become pure readers — which is
// what makes them swappable mid-run: a policy switch binds a new
// decision procedure to the *same* accumulated signals.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "store/types.hpp"
#include "util/ewma.hpp"

namespace brb::ctrl {

struct SignalTableConfig {
  /// Weight of the newest sample in the response-path EWMAs (0..1].
  /// This is C3's `ewma_alpha`; the table smooths identically for
  /// every policy so estimates survive a mid-run policy switch.
  double ewma_alpha = 0.5;
};

/// One client's view of every server, indexed densely by ServerId.
/// Grows on first contact; unseen servers read as the neutral zero
/// state (exactly the behavior the per-selector tables had).
class SignalTable {
 public:
  struct Signals {
    // --- response-path estimates (seeded by the first response) ---
    /// EWMA of measured response time (request RTT), nanoseconds.
    double ewma_response_ns = 0.0;
    /// EWMA of the server-reported queue length.
    double ewma_queue = 0.0;
    /// EWMA of the server-reported per-request service time, ns.
    double ewma_service_time_ns = 0.0;
    /// At least one response has been observed from this server.
    bool seen = false;

    // --- in-flight accounting (updated at offer / response) ---
    /// Requests bound for this server that have not yet responded.
    std::uint32_t outstanding = 0;
    /// Forecast work in flight (summed expected costs), nanoseconds.
    std::int64_t pending_cost_ns = 0;

    // --- admission-side state (mirrored by the dispatch gates) ---
    /// Current credit balance (credits systems; 0 otherwise).
    double credit_balance = 0.0;
    /// Current sending-rate cap, req/s (cubic-rate systems; 0 otherwise).
    double rate_cap = 0.0;

    // --- raw last feedback (un-smoothed) ---
    std::uint32_t last_queue_length = 0;
    double last_service_rate = 0.0;
  };

  explicit SignalTable(SignalTableConfig config = {});

  /// A request was bound to `server` (counted at *offer* time, before
  /// any gate hold, so throttled replicas keep accumulating believed
  /// load — the invariant the old selector-side accounting relied on).
  void on_send(store::ServerId server, sim::Duration expected_cost);

  /// A response arrived: releases in-flight accounting and folds the
  /// piggybacked feedback into the EWMAs. The smoothing is exactly the
  /// C3 selector's original arithmetic (seed-first-sample, then
  /// `util::ewma_update`), so C3 scores over this table are
  /// bit-identical to the pre-refactor implementation.
  void on_response(store::ServerId server, const store::ServerFeedback& feedback,
                   sim::Duration rtt, sim::Duration expected_cost);

  /// Admission mirrors (called by the credit gate / rate gate whenever
  /// their state changes, so selection policies can read balances and
  /// caps without reaching into gate internals).
  void set_credit_balance(store::ServerId server, double balance);
  void set_rate_cap(store::ServerId server, double rate);

  /// Read access; servers beyond the table read as the zero state.
  const Signals& of(store::ServerId server) const;

  std::uint32_t outstanding(store::ServerId server) const { return of(server).outstanding; }
  sim::Duration pending_cost(store::ServerId server) const {
    return sim::Duration::nanos(of(server).pending_cost_ns);
  }
  double credit_balance(store::ServerId server) const { return of(server).credit_balance; }

  /// Servers contacted so far (table growth high-water mark).
  std::size_t size() const noexcept { return servers_.size(); }
  const SignalTableConfig& config() const noexcept { return config_; }

  /// Cumulative update counts (observability + bench).
  std::uint64_t sends_recorded() const noexcept { return sends_; }
  std::uint64_t responses_recorded() const noexcept { return responses_; }

 private:
  Signals& slot(store::ServerId server);

  SignalTableConfig config_;
  std::vector<Signals> servers_;
  std::uint64_t sends_ = 0;
  std::uint64_t responses_ = 0;
};

}  // namespace brb::ctrl
