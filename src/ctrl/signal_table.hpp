// The unified per-(client,server) signal table — layer 1 of the
// control plane.
//
// The paper's feedback loop (per-replica signals driving replica
// selection and admission) used to be smeared across four components,
// each scraping its own copy of the observables: the C3 selector kept
// EWMAs, the least-outstanding/least-pending selectors kept counters,
// the credit gate kept balances, and the rate controller kept caps.
// The SignalTable centralizes all of them in one flat dense-ID store
// per client, updated from a single feedback path (the client's
// on-send / on-response hooks plus the admission gate's mirrors).
// Policies (ctrl/replica_policy.hpp) become pure readers — which is
// what makes them swappable mid-run: a policy switch binds a new
// decision procedure to the *same* accumulated signals.
//
// Layout: structure-of-arrays. Each signal lives in its own dense
// column indexed by ServerId, and response feedback is *staged* into a
// batch rather than applied immediately: `on_response()` only appends
// the raw sample, and the accumulated batch is folded in column-wise
// (all response EWMAs, then all queue EWMAs, ...) at the next read or
// send. Bursts of responses between selections — the common shape
// under gated admission — thus update each column in one contiguous
// sweep instead of striding across per-pair structs. The flush applies
// samples in arrival order per column with the exact original
// arithmetic (seed-first-sample, then `util::ewma_update`), so every
// observable value is bit-identical to immediate application.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "store/types.hpp"
#include "util/ewma.hpp"

namespace brb::ctrl {

struct SignalTableConfig {
  /// Weight of the newest sample in the response-path EWMAs (0..1].
  /// This is C3's `ewma_alpha`; the table smooths identically for
  /// every policy so estimates survive a mid-run policy switch.
  double ewma_alpha = 0.5;
};

/// One client's view of every server, indexed densely by ServerId.
/// Grows on first contact; unseen servers read as the neutral zero
/// state (exactly the behavior the per-selector tables had).
class SignalTable {
 public:
  /// Materialized snapshot of one server's signals (row view over the
  /// columns; taken at call time, does not track later updates).
  struct Signals {
    // --- response-path estimates (seeded by the first response) ---
    /// EWMA of measured response time (request RTT), nanoseconds.
    double ewma_response_ns = 0.0;
    /// EWMA of the server-reported queue length.
    double ewma_queue = 0.0;
    /// EWMA of the server-reported per-request service time, ns.
    double ewma_service_time_ns = 0.0;
    /// At least one response has been observed from this server.
    bool seen = false;

    // --- in-flight accounting (updated at offer / response) ---
    /// Requests bound for this server that have not yet responded.
    std::uint32_t outstanding = 0;
    /// Forecast work in flight (summed expected costs), nanoseconds.
    std::int64_t pending_cost_ns = 0;

    // --- admission-side state (mirrored by the dispatch gates) ---
    /// Current credit balance (credits systems; 0 otherwise).
    double credit_balance = 0.0;
    /// Current sending-rate cap, req/s (cubic-rate systems; 0 otherwise).
    double rate_cap = 0.0;

    // --- raw last feedback (un-smoothed) ---
    std::uint32_t last_queue_length = 0;
    double last_service_rate = 0.0;
  };

  explicit SignalTable(SignalTableConfig config = {});

  /// A request was bound to `server` (counted at *offer* time, before
  /// any gate hold, so throttled replicas keep accumulating believed
  /// load — the invariant the old selector-side accounting relied on).
  /// Flushes any staged feedback first: sends and responses touch the
  /// same in-flight columns and must apply in call order.
  void on_send(store::ServerId server, sim::Duration expected_cost);

  /// A response arrived: stages the sample into the feedback batch.
  /// The in-flight release and EWMA folds happen column-wise at the
  /// next flush point (any read, or the next on_send).
  void on_response(store::ServerId server, const store::ServerFeedback& feedback,
                   sim::Duration rtt, sim::Duration expected_cost);

  /// A request bound to `server` was cancelled before service (hedge
  /// loser dropped at the gate or rejected at dequeue): releases the
  /// in-flight accounting its on_send charged. No EWMA fold and no
  /// response count — cancelled copies produce no feedback.
  void on_cancel(store::ServerId server, sim::Duration expected_cost);

  /// Admission mirrors (called by the credit gate / rate gate whenever
  /// their state changes, so selection policies can read balances and
  /// caps without reaching into gate internals). These columns are
  /// never staged, so mirror writes need no flush and stay correctly
  /// ordered relative to batched feedback.
  void set_credit_balance(store::ServerId server, double balance);
  void set_rate_cap(store::ServerId server, double rate);

  /// Row snapshot; servers beyond the table read as the zero state.
  Signals of(store::ServerId server) const;

  // --- column reads (each flushes staged feedback first) ---
  std::uint32_t outstanding(store::ServerId server) const {
    flush();
    return server < outstanding_.size() ? outstanding_[server] : 0;
  }
  sim::Duration pending_cost(store::ServerId server) const {
    flush();
    return sim::Duration::nanos(server < pending_cost_ns_.size() ? pending_cost_ns_[server] : 0);
  }
  bool seen(store::ServerId server) const {
    flush();
    return server < seen_.size() && seen_[server] != 0;
  }
  double ewma_response_ns(store::ServerId server) const {
    flush();
    return server < ewma_response_ns_.size() ? ewma_response_ns_[server] : 0.0;
  }
  double ewma_queue(store::ServerId server) const {
    flush();
    return server < ewma_queue_.size() ? ewma_queue_[server] : 0.0;
  }
  double ewma_service_time_ns(store::ServerId server) const {
    flush();
    return server < ewma_service_ns_.size() ? ewma_service_ns_[server] : 0.0;
  }

  // --- mirror columns (never staged; no flush required) ---
  double credit_balance(store::ServerId server) const {
    return server < credit_balance_.size() ? credit_balance_[server] : 0.0;
  }
  double rate_cap(store::ServerId server) const {
    return server < rate_cap_.size() ? rate_cap_[server] : 0.0;
  }

  /// Servers contacted so far (table growth high-water mark).
  std::size_t size() const noexcept { return columns_size_; }
  const SignalTableConfig& config() const noexcept { return config_; }

  /// Cumulative update counts (observability + bench).
  std::uint64_t sends_recorded() const noexcept { return sends_; }
  std::uint64_t responses_recorded() const noexcept { return responses_; }
  std::uint64_t cancels_recorded() const noexcept { return cancels_; }

  /// Staged-but-unapplied feedback samples (observability + bench).
  std::size_t staged_feedback() const noexcept { return staged_.size(); }

  /// Applies the staged feedback batch column-wise. Reads do this
  /// lazily; exposed for benches that want to time the fold itself.
  void flush() const {
    if (!staged_.empty()) flush_staged();
  }

 private:
  /// One raw response sample, as staged by on_response(). The expected
  /// service time is precomputed here so the flush's EWMA pass is a
  /// pure column sweep.
  struct StagedFeedback {
    store::ServerId server = 0;
    std::uint32_t queue_length = 0;
    double rtt_ns = 0.0;
    double service_ns = 0.0;
    double service_rate = 0.0;
    std::int64_t expected_cost_ns = 0;
  };

  void grow(store::ServerId server) const;
  void flush_staged() const;

  SignalTableConfig config_;

  // Columns (mutable: flushing from const readers is not an observable
  // state change). All share columns_size_.
  mutable std::size_t columns_size_ = 0;
  mutable std::vector<double> ewma_response_ns_;
  mutable std::vector<double> ewma_queue_;
  mutable std::vector<double> ewma_service_ns_;
  mutable std::vector<std::uint8_t> seen_;
  mutable std::vector<std::uint32_t> outstanding_;
  mutable std::vector<std::int64_t> pending_cost_ns_;
  mutable std::vector<double> credit_balance_;
  mutable std::vector<double> rate_cap_;
  mutable std::vector<std::uint32_t> last_queue_length_;
  mutable std::vector<double> last_service_rate_;

  mutable std::vector<StagedFeedback> staged_;
  mutable std::vector<std::uint8_t> seed_scratch_;  // per-entry first-contact flags

  std::uint64_t sends_ = 0;
  std::uint64_t responses_ = 0;
  std::uint64_t cancels_ = 0;
};

}  // namespace brb::ctrl
