// The unified per-(client,server) signal table — layer 1 of the
// control plane.
//
// The paper's feedback loop (per-replica signals driving replica
// selection and admission) used to be smeared across four components,
// each scraping its own copy of the observables: the C3 selector kept
// EWMAs, the least-outstanding/least-pending selectors kept counters,
// the credit gate kept balances, and the rate controller kept caps.
// The SignalTable centralizes all of them in one flat dense-ID store
// per client, updated from a single feedback path (the client's
// on-send / on-response hooks plus the admission gate's mirrors).
// Policies (ctrl/replica_policy.hpp) become pure readers — which is
// what makes them swappable mid-run: a policy switch binds a new
// decision procedure to the *same* accumulated signals.
//
// Layout: structure-of-arrays. Each signal lives in its own dense
// column indexed by ServerId, and response feedback is *staged* into a
// batch rather than applied immediately: `on_response()` only appends
// the raw sample, and the accumulated batch is folded in column-wise
// (all response EWMAs, then all queue EWMAs, ...) at the next read or
// send. Bursts of responses between selections — the common shape
// under gated admission — thus update each column in one contiguous
// sweep instead of striding across per-pair structs. The flush applies
// samples in arrival order per column with the exact original
// arithmetic (seed-first-sample, then `util::ewma_update`), so every
// observable value is bit-identical to immediate application.
// At fleet scale the dense columns are the scaling blocker: every
// client paying O(num_servers) memory is O(clients x servers) across
// the run. `SignalTableConfig::sparse` switches the backing store to a
// SparseSignalTable (ctrl/sparse_signal_table.hpp): touched pairs
// only, LRU-windowed to a per-client cap, per-server-group aggregates
// as the fallback for evicted/never-touched pairs. Every reader below
// reads through unchanged, so selection policies cannot tell the
// stores apart — and with a cap above the fleet size the sparse store
// is bit-identical to the dense one (nothing ever evicts).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/time.hpp"
#include "store/types.hpp"
#include "util/ewma.hpp"

namespace brb::ctrl {

class SparseSignalTable;

struct SignalTableConfig {
  /// Weight of the newest sample in the response-path EWMAs (0..1].
  /// This is C3's `ewma_alpha`; the table smooths identically for
  /// every policy so estimates survive a mid-run policy switch.
  double ewma_alpha = 0.5;
  /// Back the table with the sparse windowed store instead of dense
  /// columns (million-client scale). Default off: dense remains the
  /// byte-identical paper path.
  bool sparse = false;
  /// Sparse only: soft cap on tracked (client,server) pairs. Entries
  /// holding live state (in-flight, gate mirrors) never evict, so the
  /// table may exceed the cap rather than corrupt accounting.
  std::uint32_t sparse_cap = 128;
  /// Sparse only: servers per aggregation group (the eviction
  /// fallback granularity).
  std::uint32_t sparse_group_size = 32;
};

/// One client's view of every server, indexed densely by ServerId.
/// Grows on first contact; unseen servers read as the neutral zero
/// state (exactly the behavior the per-selector tables had).
class SignalTable {
 public:
  /// Materialized snapshot of one server's signals (row view over the
  /// columns; taken at call time, does not track later updates).
  struct Signals {
    // --- response-path estimates (seeded by the first response) ---
    /// EWMA of measured response time (request RTT), nanoseconds.
    double ewma_response_ns = 0.0;
    /// EWMA of the server-reported queue length.
    double ewma_queue = 0.0;
    /// EWMA of the server-reported per-request service time, ns.
    double ewma_service_time_ns = 0.0;
    /// At least one response has been observed from this server.
    bool seen = false;

    // --- in-flight accounting (updated at offer / response) ---
    /// Requests bound for this server that have not yet responded.
    std::uint32_t outstanding = 0;
    /// Forecast work in flight (summed expected costs), nanoseconds.
    std::int64_t pending_cost_ns = 0;

    // --- admission-side state (mirrored by the dispatch gates) ---
    /// Current credit balance (credits systems; 0 otherwise).
    double credit_balance = 0.0;
    /// Current sending-rate cap, req/s (cubic-rate systems; 0 otherwise).
    double rate_cap = 0.0;

    // --- raw last feedback (un-smoothed) ---
    std::uint32_t last_queue_length = 0;
    double last_service_rate = 0.0;
    /// Simulated time of the last response fold (-1: never) — the
    /// freshness signal hedge suppression reads.
    std::int64_t last_feedback_ns = -1;
  };

  explicit SignalTable(SignalTableConfig config = {});
  ~SignalTable();
  SignalTable(SignalTable&&) noexcept;
  SignalTable& operator=(SignalTable&&) noexcept;

  /// A request was bound to `server` (counted at *offer* time, before
  /// any gate hold, so throttled replicas keep accumulating believed
  /// load — the invariant the old selector-side accounting relied on).
  /// Flushes any staged feedback first: sends and responses touch the
  /// same in-flight columns and must apply in call order.
  void on_send(store::ServerId server, sim::Duration expected_cost);

  /// A response arrived: stages the sample into the feedback batch.
  /// The in-flight release and EWMA folds happen column-wise at the
  /// next flush point (any read, or the next on_send). `at` stamps the
  /// feedback's arrival on the simulated clock (freshness signal);
  /// callers without a clock may omit it — the column then reads as
  /// "stale forever", which disables freshness-gated behaviors.
  void on_response(store::ServerId server, const store::ServerFeedback& feedback,
                   sim::Duration rtt, sim::Duration expected_cost,
                   sim::Time at = sim::Time::zero());

  /// A request bound to `server` was cancelled before service (hedge
  /// loser dropped at the gate or rejected at dequeue): releases the
  /// in-flight accounting its on_send charged. No EWMA fold and no
  /// response count — cancelled copies produce no feedback.
  void on_cancel(store::ServerId server, sim::Duration expected_cost);

  /// Admission mirrors (called by the credit gate / rate gate whenever
  /// their state changes, so selection policies can read balances and
  /// caps without reaching into gate internals). These columns are
  /// never staged, so mirror writes need no flush and stay correctly
  /// ordered relative to batched feedback.
  void set_credit_balance(store::ServerId server, double balance);
  void set_rate_cap(store::ServerId server, double rate);

  /// Row snapshot; servers beyond the table read as the zero state.
  Signals of(store::ServerId server) const;

  // --- column reads (each flushes staged feedback first; the sparse
  // branch is out of line so the dense hot path stays inline) ---
  std::uint32_t outstanding(store::ServerId server) const {
    if (sparse_) return sparse_outstanding(server);
    flush();
    return server < outstanding_.size() ? outstanding_[server] : 0;
  }
  sim::Duration pending_cost(store::ServerId server) const {
    if (sparse_) return sparse_pending_cost(server);
    flush();
    return sim::Duration::nanos(server < pending_cost_ns_.size() ? pending_cost_ns_[server] : 0);
  }
  bool seen(store::ServerId server) const {
    if (sparse_) return sparse_seen(server);
    flush();
    return server < seen_.size() && seen_[server] != 0;
  }
  double ewma_response_ns(store::ServerId server) const {
    if (sparse_) return sparse_ewma_response_ns(server);
    flush();
    return server < ewma_response_ns_.size() ? ewma_response_ns_[server] : 0.0;
  }
  double ewma_queue(store::ServerId server) const {
    if (sparse_) return sparse_ewma_queue(server);
    flush();
    return server < ewma_queue_.size() ? ewma_queue_[server] : 0.0;
  }
  double ewma_service_time_ns(store::ServerId server) const {
    if (sparse_) return sparse_ewma_service_time_ns(server);
    flush();
    return server < ewma_service_ns_.size() ? ewma_service_ns_[server] : 0.0;
  }
  /// Simulated nanoseconds of the last response fold; -1 when this
  /// server has never produced feedback (or the pair was evicted).
  std::int64_t last_feedback_ns(store::ServerId server) const {
    if (sparse_) return sparse_last_feedback_ns(server);
    flush();
    return server < last_feedback_ns_.size() ? last_feedback_ns_[server] : -1;
  }

  // --- mirror columns (never staged; no flush required) ---
  double credit_balance(store::ServerId server) const {
    if (sparse_) return sparse_credit_balance(server);
    return server < credit_balance_.size() ? credit_balance_[server] : 0.0;
  }
  double rate_cap(store::ServerId server) const {
    if (sparse_) return sparse_rate_cap(server);
    return server < rate_cap_.size() ? rate_cap_[server] : 0.0;
  }

  /// Dense: servers contacted so far (table growth high-water mark).
  /// Sparse: live (windowed, non-evicted) entries.
  std::size_t size() const noexcept;
  /// Sparse backing store, nullptr in dense mode (observability).
  const SparseSignalTable* sparse_store() const noexcept { return sparse_.get(); }
  const SignalTableConfig& config() const noexcept { return config_; }

  /// Cumulative update counts (observability + bench).
  std::uint64_t sends_recorded() const noexcept { return sends_; }
  std::uint64_t responses_recorded() const noexcept { return responses_; }
  std::uint64_t cancels_recorded() const noexcept { return cancels_; }

  /// Staged-but-unapplied feedback samples (observability + bench).
  std::size_t staged_feedback() const noexcept { return staged_.size(); }

  /// Applies the staged feedback batch column-wise. Reads do this
  /// lazily; exposed for benches that want to time the fold itself.
  void flush() const {
    if (!staged_.empty()) flush_staged();
  }

 private:
  /// One raw response sample, as staged by on_response(). The expected
  /// service time is precomputed here so the flush's EWMA pass is a
  /// pure column sweep.
  struct StagedFeedback {
    store::ServerId server = 0;
    std::uint32_t queue_length = 0;
    double rtt_ns = 0.0;
    double service_ns = 0.0;
    double service_rate = 0.0;
    std::int64_t expected_cost_ns = 0;
    std::int64_t at_ns = 0;
  };

  void grow(store::ServerId server) const;
  void flush_staged() const;

  // Out-of-line sparse delegates (SparseSignalTable is incomplete
  // here; the dense readers above must stay header-inline).
  std::uint32_t sparse_outstanding(store::ServerId server) const;
  sim::Duration sparse_pending_cost(store::ServerId server) const;
  bool sparse_seen(store::ServerId server) const;
  double sparse_ewma_response_ns(store::ServerId server) const;
  double sparse_ewma_queue(store::ServerId server) const;
  double sparse_ewma_service_time_ns(store::ServerId server) const;
  double sparse_credit_balance(store::ServerId server) const;
  double sparse_rate_cap(store::ServerId server) const;
  std::int64_t sparse_last_feedback_ns(store::ServerId server) const;

  SignalTableConfig config_;

  // Columns (mutable: flushing from const readers is not an observable
  // state change). All share columns_size_.
  mutable std::size_t columns_size_ = 0;
  mutable std::vector<double> ewma_response_ns_;
  mutable std::vector<double> ewma_queue_;
  mutable std::vector<double> ewma_service_ns_;
  mutable std::vector<std::uint8_t> seen_;
  mutable std::vector<std::uint32_t> outstanding_;
  mutable std::vector<std::int64_t> pending_cost_ns_;
  mutable std::vector<double> credit_balance_;
  mutable std::vector<double> rate_cap_;
  mutable std::vector<std::uint32_t> last_queue_length_;
  mutable std::vector<double> last_service_rate_;
  mutable std::vector<std::int64_t> last_feedback_ns_;

  mutable std::vector<StagedFeedback> staged_;
  mutable std::vector<std::uint8_t> seed_scratch_;  // per-entry first-contact flags

  /// Non-null iff config_.sparse: the windowed backing store every
  /// call above delegates to.
  std::unique_ptr<SparseSignalTable> sparse_;

  std::uint64_t sends_ = 0;
  std::uint64_t responses_ = 0;
  std::uint64_t cancels_ = 0;
};

}  // namespace brb::ctrl
