#include "ctrl/dispatch_policy.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "sim/simulator.hpp"
#include "util/flags.hpp"

namespace brb::ctrl {

const char* to_string(DispatchMode mode) {
  switch (mode) {
    case DispatchMode::kSingle:
      return "single";
    case DispatchMode::kHedge:
      return "hedge";
    case DispatchMode::kTied:
      return "tied";
    case DispatchMode::kKofn:
      return "kofn";
  }
  return "?";
}

namespace {

/// Quantile as a percent with minimal digits ("95", "99.9").
std::string format_quantile_percent(double quantile) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", quantile * 100.0);
  return buf;
}

/// Milliseconds with minimal digits ("2", "0.5").
std::string format_millis(sim::Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", d.as_millis());
  return buf;
}

}  // namespace

std::string DispatchModeConfig::canonical() const {
  switch (mode) {
    case DispatchMode::kSingle:
      return "single";
    case DispatchMode::kHedge: {
      std::string spec = "hedge:q" + format_quantile_percent(hedge_quantile);
      if (fresh_age > sim::Duration::zero()) spec += ":fresh=" + format_millis(fresh_age);
      return spec;
    }
    case DispatchMode::kTied:
      return "tied";
    case DispatchMode::kKofn:
      return "kofn:" + std::to_string(static_cast<unsigned>(k));
  }
  return "?";
}

// ---------------------------------------------------------------------------
// SingleTargetAdapter

SingleTargetAdapter::SingleTargetAdapter(std::unique_ptr<ReplicaPolicy> inner)
    : inner_(std::move(inner)) {
  if (!inner_) throw std::invalid_argument("SingleTargetAdapter: null inner policy");
}

DispatchPlan SingleTargetAdapter::plan(const SignalTable& signals,
                                       const std::vector<store::ServerId>& replicas,
                                       sim::Duration expected_cost) {
  return DispatchPlan::single(inner_->select(signals, replicas, expected_cost));
}

// ---------------------------------------------------------------------------
// HedgeDispatchPolicy

HedgeDispatchPolicy::HedgeDispatchPolicy(std::unique_ptr<DispatchPolicy> inner, double quantile,
                                         sim::Duration prior_response, sim::Duration fresh_age,
                                         const sim::Simulator* sim)
    : inner_(std::move(inner)),
      quantile_factor_(-std::log(1.0 - quantile)),
      quantile_(quantile),
      prior_response_(prior_response),
      fresh_age_(fresh_age),
      sim_(sim) {
  if (!inner_) throw std::invalid_argument("HedgeDispatchPolicy: null inner policy");
  if (!(quantile > 0.0 && quantile < 1.0)) {
    throw std::invalid_argument("HedgeDispatchPolicy: quantile must be in (0, 1)");
  }
  if (prior_response_ <= sim::Duration::zero()) {
    throw std::invalid_argument("HedgeDispatchPolicy: prior response must be positive");
  }
}

std::string HedgeDispatchPolicy::name() const {
  return "hedge:q" + format_quantile_percent(quantile_) + "(" + inner_->name() + ")";
}

DispatchPlan HedgeDispatchPolicy::plan(const SignalTable& signals,
                                       const std::vector<store::ServerId>& replicas,
                                       sim::Duration expected_cost) {
  DispatchPlan primary = inner_->plan(signals, replicas, expected_cost);
  if (replicas.size() < 2) return primary;  // nobody to hedge onto

  // Signal-aware skip: when the primary's feedback is fresher than the
  // configured age, the queue estimate that chose it is current enough
  // to trust — spend no duplicate work. Checked before the back-up
  // selection so the inner policy's decision stream is untouched too.
  if (fresh_age_ > sim::Duration::zero() && sim_ != nullptr) {
    const std::int64_t last_ns = signals.last_feedback_ns(primary.primary());
    if (last_ns >= 0 &&
        sim_->now() - sim::Time::nanos(last_ns) < fresh_age_) {
      primary.skipped_fresh = true;
      return primary;
    }
  }

  rest_scratch_.clear();
  for (const store::ServerId s : replicas) {
    if (s != primary.primary()) rest_scratch_.push_back(s);
  }
  const DispatchPlan backup = inner_->plan(signals, rest_scratch_, expected_cost);

  // Deadline: configured quantile of the primary's response-time
  // distribution under an exponential-tail assumption, t_q =
  // -ln(1-q) * mean. Unseen servers fall back to the configured prior.
  const double ewma_ns = signals.ewma_response_ns(primary.primary());
  const double mean_ns = signals.seen(primary.primary()) && ewma_ns > 0.0
                             ? ewma_ns
                             : static_cast<double>(prior_response_.count_nanos());

  DispatchPlan out = primary;
  out.targets[1] = backup.primary();
  out.num_targets = 2;
  out.mode = DispatchMode::kHedge;
  out.hedge_delay = sim::Duration::nanos(static_cast<std::int64_t>(quantile_factor_ * mean_ns));
  return out;
}

// ---------------------------------------------------------------------------
// TiedDispatchPolicy

TiedDispatchPolicy::TiedDispatchPolicy(std::unique_ptr<DispatchPolicy> inner)
    : inner_(std::move(inner)) {
  if (!inner_) throw std::invalid_argument("TiedDispatchPolicy: null inner policy");
}

DispatchPlan TiedDispatchPolicy::plan(const SignalTable& signals,
                                      const std::vector<store::ServerId>& replicas,
                                      sim::Duration expected_cost) {
  DispatchPlan primary = inner_->plan(signals, replicas, expected_cost);
  if (replicas.size() < 2) return primary;

  rest_scratch_.clear();
  for (const store::ServerId s : replicas) {
    if (s != primary.primary()) rest_scratch_.push_back(s);
  }
  const DispatchPlan sibling = inner_->plan(signals, rest_scratch_, expected_cost);

  DispatchPlan out = primary;
  out.targets[1] = sibling.primary();
  out.num_targets = 2;
  out.mode = DispatchMode::kTied;
  return out;
}

// ---------------------------------------------------------------------------
// KofnDispatchPolicy

KofnDispatchPolicy::KofnDispatchPolicy(std::unique_ptr<DispatchPolicy> inner, std::uint8_t k)
    : inner_(std::move(inner)), k_(k) {
  if (!inner_) throw std::invalid_argument("KofnDispatchPolicy: null inner policy");
  if (k_ < 1 || k_ > DispatchPlan::kMaxTargets) {
    throw std::invalid_argument("KofnDispatchPolicy: k must be in [1, " +
                                std::to_string(DispatchPlan::kMaxTargets) + "]");
  }
}

std::string KofnDispatchPolicy::name() const {
  return "kofn:" + std::to_string(static_cast<unsigned>(k_)) + "(" + inner_->name() + ")";
}

DispatchPlan KofnDispatchPolicy::plan(const SignalTable& signals,
                                      const std::vector<store::ServerId>& replicas,
                                      sim::Duration expected_cost) {
  const std::size_t n = std::min(replicas.size(), DispatchPlan::kMaxTargets);
  if (n < 2) return inner_->plan(signals, replicas, expected_cost);

  // Rank n distinct targets by repeated inner selection over the
  // remaining set — target i is the inner policy's choice once targets
  // 0..i-1 are off the table.
  rest_scratch_.assign(replicas.begin(), replicas.end());
  DispatchPlan out;
  out.mode = DispatchMode::kKofn;
  for (std::size_t i = 0; i < n; ++i) {
    const store::ServerId chosen = inner_->plan(signals, rest_scratch_, expected_cost).primary();
    out.targets[i] = chosen;
    ++out.num_targets;
    for (std::size_t j = 0; j < rest_scratch_.size(); ++j) {
      if (rest_scratch_[j] == chosen) {
        rest_scratch_.erase(rest_scratch_.begin() + static_cast<std::ptrdiff_t>(j));
        break;
      }
    }
  }
  out.needed = static_cast<std::uint8_t>(std::min<std::size_t>(k_, n));
  return out;
}

// ---------------------------------------------------------------------------
// CreditAwareDispatchPolicy

CreditAwareDispatchPolicy::CreditAwareDispatchPolicy(std::unique_ptr<DispatchPolicy> inner)
    : inner_(std::move(inner)) {
  if (!inner_) throw std::invalid_argument("CreditAwareDispatchPolicy: null inner policy");
}

DispatchPlan CreditAwareDispatchPolicy::plan(const SignalTable& signals,
                                             const std::vector<store::ServerId>& replicas,
                                             sim::Duration expected_cost) {
  funded_scratch_.clear();
  for (const store::ServerId s : replicas) {
    if (signals.credit_balance(s) >= 1.0) funded_scratch_.push_back(s);
  }
  if (funded_scratch_.empty() || funded_scratch_.size() == replicas.size()) {
    return inner_->plan(signals, replicas, expected_cost);
  }
  return inner_->plan(signals, funded_scratch_, expected_cost);
}

// ---------------------------------------------------------------------------
// Mode registry

const std::vector<DispatchModeInfo>& dispatch_mode_catalog() {
  static const std::vector<DispatchModeInfo> catalog = {
      {"single", "single", "one target per request, no duplicates (legacy behavior)"},
      {"hedge", "hedge[:qNN][:fresh=MS]",
       "back-up copy if the primary misses its qNN response-EWMA deadline (default q95); "
       "fresh=MS skips the back-up when the primary's feedback is younger than MS milliseconds"},
      {"tied", "tied", "two copies enqueued at once; first service start cancels the sibling"},
      {"kofn", "kofn[:K]",
       "fan out to up to 4 replicas, complete on the K-th response (default K=2)"},
  };
  return catalog;
}

bool is_dispatch_mode_name(const std::string& head) {
  for (const DispatchModeInfo& info : dispatch_mode_catalog()) {
    if (info.name == head) return true;
  }
  return false;
}

DispatchModeConfig parse_dispatch_mode(const std::string& spec) {
  if (spec.empty()) throw std::invalid_argument("empty dispatch mode spec");
  const auto colon = spec.find(':');
  const std::string head = spec.substr(0, colon);
  const std::string param = colon == std::string::npos ? "" : spec.substr(colon + 1);
  const bool has_param = colon != std::string::npos;

  if (!is_dispatch_mode_name(head)) {
    std::vector<std::string> known;
    for (const DispatchModeInfo& info : dispatch_mode_catalog()) known.push_back(info.name);
    std::string message = "unknown dispatch mode '" + head + "'";
    if (const auto suggestion = util::closest_name(head, known)) {
      message += " (did you mean '" + *suggestion + "'?)";
    }
    throw std::invalid_argument(message);
  }

  DispatchModeConfig config;
  if (head == "single" || head == "tied") {
    if (has_param) {
      throw std::invalid_argument("dispatch mode '" + head + "' takes no parameter (got '" + spec +
                                  "')");
    }
    config.mode = head == "tied" ? DispatchMode::kTied : DispatchMode::kSingle;
    return config;
  }

  if (head == "hedge") {
    config.mode = DispatchMode::kHedge;
    // Zero or more ':'-separated parameters, each qNN (deadline
    // quantile, percent) or fresh=MS (freshness-skip age threshold,
    // milliseconds).
    std::string rest = has_param ? param : "";
    while (!rest.empty()) {
      const auto next = rest.find(':');
      const std::string token = rest.substr(0, next);
      rest = next == std::string::npos ? "" : rest.substr(next + 1);
      if (token.size() >= 2 && token[0] == 'q') {
        std::size_t consumed = 0;
        double percent = 0.0;
        try {
          percent = std::stod(token.substr(1), &consumed);
        } catch (const std::exception&) {
          throw std::invalid_argument("hedge parameter must be qNN (a percent), got '" + spec +
                                      "'");
        }
        if (consumed != token.size() - 1 || !(percent > 0.0 && percent < 100.0)) {
          throw std::invalid_argument("hedge quantile must be a percent in (0, 100), got '" +
                                      spec + "'");
        }
        config.hedge_quantile = percent / 100.0;
      } else if (token.rfind("fresh=", 0) == 0) {
        const std::string value = token.substr(6);
        std::size_t consumed = 0;
        double millis = 0.0;
        try {
          millis = std::stod(value, &consumed);
        } catch (const std::exception&) {
          throw std::invalid_argument("hedge fresh= must be milliseconds, got '" + spec + "'");
        }
        if (value.empty() || consumed != value.size() || !(millis > 0.0)) {
          throw std::invalid_argument("hedge fresh= must be positive milliseconds, got '" + spec +
                                      "'");
        }
        config.fresh_age = sim::Duration::millis(millis);
      } else {
        throw std::invalid_argument("hedge parameter must be qNN or fresh=MS, got '" + spec +
                                    "'");
      }
    }
    return config;
  }

  // kofn
  config.mode = DispatchMode::kKofn;
  if (has_param) {
    std::size_t consumed = 0;
    long k = 0;
    try {
      k = std::stol(param, &consumed);
    } catch (const std::exception&) {
      throw std::invalid_argument("kofn parameter must be an integer k, got '" + spec + "'");
    }
    if (consumed != param.size() || k < 1 ||
        k > static_cast<long>(DispatchPlan::kMaxTargets)) {
      throw std::invalid_argument("kofn k must be in [1, " +
                                  std::to_string(DispatchPlan::kMaxTargets) + "], got '" + spec +
                                  "'");
    }
    config.k = static_cast<std::uint8_t>(k);
  }
  return config;
}

std::unique_ptr<DispatchPolicy> make_dispatch_policy(const std::string& policy_name,
                                                     const DispatchModeConfig& mode,
                                                     const C3ScoreConfig& c3, bool credit_aware,
                                                     sim::Duration prior_response, util::Rng rng,
                                                     const sim::Simulator* sim) {
  std::unique_ptr<DispatchPolicy> stack =
      std::make_unique<SingleTargetAdapter>(make_replica_policy(policy_name, c3, rng));
  switch (mode.mode) {
    case DispatchMode::kSingle:
      break;  // no wrapper: the call chain equals the legacy selector path
    case DispatchMode::kHedge:
      stack = std::make_unique<HedgeDispatchPolicy>(std::move(stack), mode.hedge_quantile,
                                                    prior_response, mode.fresh_age, sim);
      break;
    case DispatchMode::kTied:
      stack = std::make_unique<TiedDispatchPolicy>(std::move(stack));
      break;
    case DispatchMode::kKofn:
      stack = std::make_unique<KofnDispatchPolicy>(std::move(stack), mode.k);
      break;
  }
  if (credit_aware) stack = std::make_unique<CreditAwareDispatchPolicy>(std::move(stack));
  return stack;
}

// ---------------------------------------------------------------------------
// DispatchEndpoint

DispatchEndpoint::DispatchEndpoint(SignalTableConfig signals,
                                   std::unique_ptr<DispatchPolicy> policy, util::Rng rng,
                                   store::TenantId tenant)
    : signals_(signals), policy_(std::move(policy)), rng_(rng), tenant_(tenant) {
  if (!policy_) throw std::invalid_argument("DispatchEndpoint: null policy");
}

void DispatchEndpoint::rebind(std::unique_ptr<DispatchPolicy> policy) {
  if (!policy) throw std::invalid_argument("DispatchEndpoint::rebind: null policy");
  policy_ = std::move(policy);
}

}  // namespace brb::ctrl
