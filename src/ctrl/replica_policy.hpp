// Replica-selection policies over the unified SignalTable — layer 2 of
// the control plane.
//
// A ReplicaPolicy is pure decision logic: it reads the client's
// SignalTable (maintained by the single feedback path) and picks a
// replica. Observable state lives in the table; a policy instance
// keeps only private decision state (cycle counters, RNG), which is
// why the PolicyRuntime can swap policies mid-run without losing the
// accumulated signals.
//
// The catalog spans the literature baselines the paper's evaluation
// invites comparison against:
//   random             uniform choice (memcached-era floor)
//   round-robin        deterministic cycling
//   least-outstanding  fewest in-flight requests (classic LOR)
//   two-choices        power of two random choices (Mitzenmacher '01)
//   least-pending-cost least forecast work in flight (BRB's default)
//   c3 / c3-noderate   C3's cubic replica ranking (Suresh et al. '15);
//                      the -noderate alias names the ranking run
//                      without C3's cubic rate gate
//   first              degenerate first-replica choice (model systems)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ctrl/signal_table.hpp"
#include "sim/time.hpp"
#include "store/types.hpp"
#include "util/rng.hpp"

namespace brb::ctrl {

class ReplicaPolicy {
 public:
  virtual ~ReplicaPolicy() = default;

  /// Chooses one replica for a request with the given forecast cost,
  /// reading only `signals`. `replicas` is never empty.
  virtual store::ServerId select(const SignalTable& signals,
                                 const std::vector<store::ServerId>& replicas,
                                 sim::Duration expected_cost) = 0;

  virtual std::string name() const = 0;
};

/// Parameters of the C3 scoring function (the EWMA weight lives in
/// SignalTableConfig — smoothing belongs to the table, scoring to the
/// policy).
struct C3ScoreConfig {
  /// Exponent b of the queue-size penalty (the paper uses b = 3).
  double queue_exponent = 3.0;
  /// Concurrency compensation: number of clients sharing each server.
  std::uint32_t num_clients = 1;
  /// Initial per-server service-time guess until feedback arrives.
  sim::Duration prior_service_time = sim::Duration::micros(285);
};

/// Uniform random choice.
class RandomPolicy final : public ReplicaPolicy {
 public:
  explicit RandomPolicy(util::Rng rng) : rng_(rng) {}
  store::ServerId select(const SignalTable& signals, const std::vector<store::ServerId>& replicas,
                         sim::Duration expected_cost) override;
  std::string name() const override { return "random"; }

 private:
  util::Rng rng_;
};

/// Cycles deterministically through the replica list.
class RoundRobinPolicy final : public ReplicaPolicy {
 public:
  store::ServerId select(const SignalTable& signals, const std::vector<store::ServerId>& replicas,
                         sim::Duration expected_cost) override;
  std::string name() const override { return "round-robin"; }

 private:
  std::uint64_t counter_ = 0;
};

/// Fewest outstanding requests from this client. The scan start
/// rotates so ties do not herd every client onto the lowest server id.
class LeastOutstandingPolicy final : public ReplicaPolicy {
 public:
  store::ServerId select(const SignalTable& signals, const std::vector<store::ServerId>& replicas,
                         sim::Duration expected_cost) override;
  std::string name() const override { return "least-outstanding"; }

 private:
  std::uint64_t rotation_ = 0;
};

/// Power of two choices: sample two distinct replicas uniformly and
/// take the one with fewer outstanding requests (ties break on the
/// lower server id). O(1) per decision with most of
/// least-outstanding's balance — the classic Mitzenmacher result.
class TwoChoicesPolicy final : public ReplicaPolicy {
 public:
  explicit TwoChoicesPolicy(util::Rng rng) : rng_(rng) {}
  store::ServerId select(const SignalTable& signals, const std::vector<store::ServerId>& replicas,
                         sim::Duration expected_cost) override;
  std::string name() const override { return "two-choices"; }

 private:
  util::Rng rng_;
};

/// Least forecast work in flight (outstanding expected cost) — BRB's
/// default: cheap, cost-aware, and sub-task friendly.
class LeastPendingCostPolicy final : public ReplicaPolicy {
 public:
  store::ServerId select(const SignalTable& signals, const std::vector<store::ServerId>& replicas,
                         sim::Duration expected_cost) override;
  std::string name() const override { return "least-pending-cost"; }

 private:
  std::uint64_t rotation_ = 0;
};

/// C3's cubic replica ranking (Suresh et al., NSDI 2015) over the
/// table's EWMAs:
///     q_hat = 1 + outstanding * n + ewma_queue
///     Psi   = R_bar - 1/mu_bar + q_hat^b / mu_bar
/// Registered under both "c3" and "c3-noderate" (the scoring is the
/// same; the names differ in which admission policy the system runs).
class C3ScorePolicy final : public ReplicaPolicy {
 public:
  C3ScorePolicy(C3ScoreConfig config, std::string registered_name = "c3");

  store::ServerId select(const SignalTable& signals, const std::vector<store::ServerId>& replicas,
                         sim::Duration expected_cost) override;
  std::string name() const override { return name_; }

  /// The scoring function, exposed for tests and the C3Selector shim.
  double score(const SignalTable& signals, store::ServerId server) const;

 private:
  C3ScoreConfig config_;
  std::string name_;
};

/// Always the first replica (the ideal-model systems, where placement
/// is irrelevant because servers work-pull from the global queue).
class FirstReplicaPolicy final : public ReplicaPolicy {
 public:
  store::ServerId select(const SignalTable& signals, const std::vector<store::ServerId>& replicas,
                         sim::Duration expected_cost) override;
  std::string name() const override { return "first"; }
};

/// Decorator for credits systems: prefer replicas the client can pay
/// for right now. Among replicas with at least one credit (read from
/// the table's gate-mirrored balances), defer to the inner policy;
/// when every replica is broke, fall through unconstrained.
class CreditAwarePolicy final : public ReplicaPolicy {
 public:
  explicit CreditAwarePolicy(std::unique_ptr<ReplicaPolicy> inner);

  store::ServerId select(const SignalTable& signals, const std::vector<store::ServerId>& replicas,
                         sim::Duration expected_cost) override;
  std::string name() const override { return "credit-aware(" + inner_->name() + ")"; }

 private:
  std::unique_ptr<ReplicaPolicy> inner_;
  std::vector<store::ServerId> funded_scratch_;  // reused per select
};

// ---------------------------------------------------------------------------
// Registry

/// One catalog row (drives --help, README's policy table, and the
/// policy-shootout scenario's case list).
struct ReplicaPolicyInfo {
  std::string name;
  std::vector<std::string> aliases;
  /// SignalTable fields the policy reads ("-" for oblivious policies).
  std::string signals;
  /// One-line provenance + behavior summary.
  std::string summary;
};

/// All registered replica policies, in presentation order.
const std::vector<ReplicaPolicyInfo>& replica_policy_catalog();

/// Resolves a name or alias ("lor" -> "least-outstanding"); throws
/// std::invalid_argument with a did-you-mean hint on unknown names.
std::string canonical_policy_name(const std::string& name);

/// Constructs a policy by (canonical or alias) name. `rng` seeds the
/// randomized policies; `c3` parameterizes the C3 ranking.
std::unique_ptr<ReplicaPolicy> make_replica_policy(const std::string& name,
                                                   const C3ScoreConfig& c3, util::Rng rng);

}  // namespace brb::ctrl
