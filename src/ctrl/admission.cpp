#include "ctrl/admission.hpp"

#include <stdexcept>

#include "util/flags.hpp"

namespace brb::ctrl {

const std::vector<AdmissionPolicyInfo>& admission_policy_catalog() {
  static const std::vector<AdmissionPolicyInfo> catalog = {
      {"direct", "no gating: transmit immediately"},
      {"cubic-rate", "C3's cubic rate controller: per-server token buckets, "
                     "multiplicative decrease / cubic recovery"},
      {"credits", "the paper's credits scheme: spend controller-granted credits, "
                  "hold excess in a per-server priority queue"},
  };
  return catalog;
}

std::string canonical_admission_name(const std::string& name) {
  std::vector<std::string> known;
  for (const AdmissionPolicyInfo& info : admission_policy_catalog()) {
    if (info.name == name) return info.name;
    known.push_back(info.name);
  }
  std::string message = "unknown admission policy '" + name + "'";
  if (const auto suggestion = util::closest_name(name, known)) {
    message += " (did you mean '" + *suggestion + "'?)";
  }
  throw std::invalid_argument(message);
}

std::unique_ptr<AdmissionPolicy> make_admission_policy(const std::string& name,
                                                       const AdmissionContext& context) {
  const std::string canonical = canonical_admission_name(name);
  if (canonical == "direct") return std::make_unique<client::DirectGate>();
  if (canonical == "cubic-rate") {
    if (context.sim == nullptr) {
      throw std::invalid_argument("make_admission_policy: cubic-rate needs a simulator");
    }
    auto gate = std::make_unique<client::RateLimitedGate>(*context.sim, context.rate);
    if (context.signals != nullptr) gate->attach_signals(context.signals, context.num_servers);
    return gate;
  }
  if (canonical == "credits") {
    if (context.sparse_credits) {
      if (context.sim == nullptr) {
        throw std::invalid_argument("make_admission_policy: credits needs a simulator");
      }
      auto gate = std::make_unique<core::CreditGate>(*context.sim, context.credits,
                                                     context.sparse_default_credit);
      if (context.signals != nullptr) gate->attach_signals(context.signals);
      return gate;
    }
    if (context.sim == nullptr || context.num_servers == 0 ||
        context.initial_credits.size() != context.num_servers) {
      throw std::invalid_argument(
          "make_admission_policy: credits needs a simulator and one initial balance per server");
    }
    auto gate = std::make_unique<core::CreditGate>(*context.sim, context.num_servers,
                                                   context.credits, context.initial_credits);
    if (context.signals != nullptr) gate->attach_signals(context.signals);
    return gate;
  }
  throw std::logic_error("make_admission_policy: catalog/factory mismatch for " + canonical);
}

}  // namespace brb::ctrl
