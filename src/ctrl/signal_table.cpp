#include "ctrl/signal_table.hpp"

namespace brb::ctrl {

SignalTable::SignalTable(SignalTableConfig config) : config_(config) {
  util::validate_ewma_alpha(config_.ewma_alpha, "SignalTable");
}

const SignalTable::Signals& SignalTable::of(store::ServerId server) const {
  static const Signals kEmpty{};
  return server < servers_.size() ? servers_[server] : kEmpty;
}

SignalTable::Signals& SignalTable::slot(store::ServerId server) {
  if (server >= servers_.size()) servers_.resize(server + 1);
  return servers_[server];
}

void SignalTable::on_send(store::ServerId server, sim::Duration expected_cost) {
  Signals& s = slot(server);
  ++s.outstanding;
  s.pending_cost_ns += expected_cost.count_nanos();
  ++sends_;
}

void SignalTable::on_response(store::ServerId server, const store::ServerFeedback& feedback,
                              sim::Duration rtt, sim::Duration expected_cost) {
  Signals& s = slot(server);
  ++responses_;

  // In-flight release. Guards match the old per-selector counters: a
  // duplicate response must not underflow either account.
  if (s.outstanding > 0) --s.outstanding;
  s.pending_cost_ns -= expected_cost.count_nanos();
  if (s.pending_cost_ns < 0) s.pending_cost_ns = 0;

  s.last_queue_length = feedback.queue_length;
  s.last_service_rate = feedback.service_rate;

  // Server-wide rate mu (req/s) -> expected per-request service time.
  const double a = config_.ewma_alpha;
  const double rtt_ns = static_cast<double>(rtt.count_nanos());
  const double service_ns =
      feedback.service_rate > 0 ? 1e9 / feedback.service_rate
                                : static_cast<double>(feedback.service_time.count_nanos());
  if (!s.seen) {
    s.ewma_response_ns = rtt_ns;
    s.ewma_queue = feedback.queue_length;
    s.ewma_service_time_ns = service_ns;
    s.seen = true;
    return;
  }
  s.ewma_response_ns = util::ewma_update(s.ewma_response_ns, a, rtt_ns);
  s.ewma_queue = util::ewma_update(s.ewma_queue, a, static_cast<double>(feedback.queue_length));
  s.ewma_service_time_ns = util::ewma_update(s.ewma_service_time_ns, a, service_ns);
}

void SignalTable::set_credit_balance(store::ServerId server, double balance) {
  slot(server).credit_balance = balance;
}

void SignalTable::set_rate_cap(store::ServerId server, double rate) {
  slot(server).rate_cap = rate;
}

}  // namespace brb::ctrl
