#include "ctrl/signal_table.hpp"

namespace brb::ctrl {

SignalTable::SignalTable(SignalTableConfig config) : config_(config) {
  util::validate_ewma_alpha(config_.ewma_alpha, "SignalTable");
}

void SignalTable::grow(store::ServerId server) const {
  if (server < columns_size_) return;
  const std::size_t n = server + 1;
  ewma_response_ns_.resize(n, 0.0);
  ewma_queue_.resize(n, 0.0);
  ewma_service_ns_.resize(n, 0.0);
  seen_.resize(n, 0);
  outstanding_.resize(n, 0);
  pending_cost_ns_.resize(n, 0);
  credit_balance_.resize(n, 0.0);
  rate_cap_.resize(n, 0.0);
  last_queue_length_.resize(n, 0);
  last_service_rate_.resize(n, 0.0);
  columns_size_ = n;
}

SignalTable::Signals SignalTable::of(store::ServerId server) const {
  flush();
  if (server >= columns_size_) return Signals{};
  Signals s;
  s.ewma_response_ns = ewma_response_ns_[server];
  s.ewma_queue = ewma_queue_[server];
  s.ewma_service_time_ns = ewma_service_ns_[server];
  s.seen = seen_[server] != 0;
  s.outstanding = outstanding_[server];
  s.pending_cost_ns = pending_cost_ns_[server];
  s.credit_balance = credit_balance_[server];
  s.rate_cap = rate_cap_[server];
  s.last_queue_length = last_queue_length_[server];
  s.last_service_rate = last_service_rate_[server];
  return s;
}

void SignalTable::on_send(store::ServerId server, sim::Duration expected_cost) {
  flush();  // sends and staged responses share the in-flight columns
  grow(server);
  ++outstanding_[server];
  pending_cost_ns_[server] += expected_cost.count_nanos();
  ++sends_;
}

void SignalTable::on_response(store::ServerId server, const store::ServerFeedback& feedback,
                              sim::Duration rtt, sim::Duration expected_cost) {
  grow(server);
  ++responses_;
  StagedFeedback e;
  e.server = server;
  e.queue_length = feedback.queue_length;
  e.rtt_ns = static_cast<double>(rtt.count_nanos());
  // Server-wide rate mu (req/s) -> expected per-request service time.
  e.service_ns = feedback.service_rate > 0
                     ? 1e9 / feedback.service_rate
                     : static_cast<double>(feedback.service_time.count_nanos());
  e.service_rate = feedback.service_rate;
  e.expected_cost_ns = expected_cost.count_nanos();
  staged_.push_back(e);
}

void SignalTable::on_cancel(store::ServerId server, sim::Duration expected_cost) {
  flush();  // cancels and staged responses share the in-flight columns
  grow(server);
  // Release the accounting the copy's on_send charged, with the same
  // underflow guards as the response-side release. No EWMA fold and no
  // response count: a cancelled copy produced no feedback, and folding
  // one in would corrupt C3's estimates with phantom samples.
  if (outstanding_[server] > 0) --outstanding_[server];
  pending_cost_ns_[server] -= expected_cost.count_nanos();
  if (pending_cost_ns_[server] < 0) pending_cost_ns_[server] = 0;
  ++cancels_;
}

void SignalTable::flush_staged() const {
  // In-flight release + raw last-feedback columns. Applied in arrival
  // order: the underflow guards match the old per-selector counters (a
  // duplicate response must not underflow either account), and "last"
  // means last-arrived.
  for (const StagedFeedback& e : staged_) {
    if (outstanding_[e.server] > 0) --outstanding_[e.server];
    pending_cost_ns_[e.server] -= e.expected_cost_ns;
    if (pending_cost_ns_[e.server] < 0) pending_cost_ns_[e.server] = 0;
    last_queue_length_[e.server] = e.queue_length;
    last_service_rate_[e.server] = e.service_rate;
  }

  // First-contact prepass: entry i seeds its server's EWMAs iff no
  // response preceded it (in the table or earlier in this batch). The
  // flags let each EWMA pass below stay a branch-light column sweep
  // while reproducing seed-then-blend bit-exactly.
  seed_scratch_.resize(staged_.size());
  for (std::size_t i = 0; i < staged_.size(); ++i) {
    const std::uint32_t s = staged_[i].server;
    seed_scratch_[i] = seen_[s] == 0 ? 1 : 0;
    seen_[s] = 1;
  }

  const double a = config_.ewma_alpha;
  for (std::size_t i = 0; i < staged_.size(); ++i) {
    const StagedFeedback& e = staged_[i];
    ewma_response_ns_[e.server] =
        seed_scratch_[i] ? e.rtt_ns : util::ewma_update(ewma_response_ns_[e.server], a, e.rtt_ns);
  }
  for (std::size_t i = 0; i < staged_.size(); ++i) {
    const StagedFeedback& e = staged_[i];
    const double q = static_cast<double>(e.queue_length);
    ewma_queue_[e.server] =
        seed_scratch_[i] ? q : util::ewma_update(ewma_queue_[e.server], a, q);
  }
  for (std::size_t i = 0; i < staged_.size(); ++i) {
    const StagedFeedback& e = staged_[i];
    ewma_service_ns_[e.server] =
        seed_scratch_[i] ? e.service_ns
                         : util::ewma_update(ewma_service_ns_[e.server], a, e.service_ns);
  }
  staged_.clear();
}

void SignalTable::set_credit_balance(store::ServerId server, double balance) {
  grow(server);
  credit_balance_[server] = balance;
}

void SignalTable::set_rate_cap(store::ServerId server, double rate) {
  grow(server);
  rate_cap_[server] = rate;
}

}  // namespace brb::ctrl
