#include "ctrl/signal_table.hpp"

#include "ctrl/sparse_signal_table.hpp"

namespace brb::ctrl {

SignalTable::SignalTable(SignalTableConfig config) : config_(config) {
  util::validate_ewma_alpha(config_.ewma_alpha, "SignalTable");
  if (config_.sparse) {
    sparse_ = std::make_unique<SparseSignalTable>(config_.ewma_alpha, config_.sparse_cap,
                                                  config_.sparse_group_size);
  }
}

SignalTable::~SignalTable() = default;
SignalTable::SignalTable(SignalTable&&) noexcept = default;
SignalTable& SignalTable::operator=(SignalTable&&) noexcept = default;

void SignalTable::grow(store::ServerId server) const {
  if (server < columns_size_) return;
  const std::size_t n = server + 1;
  ewma_response_ns_.resize(n, 0.0);
  ewma_queue_.resize(n, 0.0);
  ewma_service_ns_.resize(n, 0.0);
  seen_.resize(n, 0);
  outstanding_.resize(n, 0);
  pending_cost_ns_.resize(n, 0);
  credit_balance_.resize(n, 0.0);
  rate_cap_.resize(n, 0.0);
  last_queue_length_.resize(n, 0);
  last_service_rate_.resize(n, 0.0);
  last_feedback_ns_.resize(n, -1);
  columns_size_ = n;
}

SignalTable::Signals SignalTable::of(store::ServerId server) const {
  if (sparse_) return sparse_->of(server);
  flush();
  if (server >= columns_size_) return Signals{};
  Signals s;
  s.ewma_response_ns = ewma_response_ns_[server];
  s.ewma_queue = ewma_queue_[server];
  s.ewma_service_time_ns = ewma_service_ns_[server];
  s.seen = seen_[server] != 0;
  s.outstanding = outstanding_[server];
  s.pending_cost_ns = pending_cost_ns_[server];
  s.credit_balance = credit_balance_[server];
  s.rate_cap = rate_cap_[server];
  s.last_queue_length = last_queue_length_[server];
  s.last_service_rate = last_service_rate_[server];
  s.last_feedback_ns = last_feedback_ns_[server];
  return s;
}

void SignalTable::on_send(store::ServerId server, sim::Duration expected_cost) {
  ++sends_;
  if (sparse_) {
    sparse_->on_send(server, expected_cost);
    return;
  }
  flush();  // sends and staged responses share the in-flight columns
  grow(server);
  ++outstanding_[server];
  pending_cost_ns_[server] += expected_cost.count_nanos();
}

void SignalTable::on_response(store::ServerId server, const store::ServerFeedback& feedback,
                              sim::Duration rtt, sim::Duration expected_cost, sim::Time at) {
  ++responses_;
  if (sparse_) {
    // Immediate application: per-server arrival order is preserved and
    // the arithmetic matches the dense flush, so the resulting values
    // are bit-identical — there are no columns to sweep in the sparse
    // entry layout, hence nothing to gain by staging.
    sparse_->on_response(server, feedback, rtt, expected_cost, at);
    return;
  }
  grow(server);
  StagedFeedback e;
  e.server = server;
  e.queue_length = feedback.queue_length;
  e.rtt_ns = static_cast<double>(rtt.count_nanos());
  // Server-wide rate mu (req/s) -> expected per-request service time.
  e.service_ns = feedback.service_rate > 0
                     ? 1e9 / feedback.service_rate
                     : static_cast<double>(feedback.service_time.count_nanos());
  e.service_rate = feedback.service_rate;
  e.expected_cost_ns = expected_cost.count_nanos();
  e.at_ns = at.count_nanos();
  staged_.push_back(e);
}

void SignalTable::on_cancel(store::ServerId server, sim::Duration expected_cost) {
  ++cancels_;
  if (sparse_) {
    sparse_->on_cancel(server, expected_cost);
    return;
  }
  flush();  // cancels and staged responses share the in-flight columns
  grow(server);
  // Release the accounting the copy's on_send charged, with the same
  // underflow guards as the response-side release. No EWMA fold and no
  // response count: a cancelled copy produced no feedback, and folding
  // one in would corrupt C3's estimates with phantom samples.
  if (outstanding_[server] > 0) --outstanding_[server];
  pending_cost_ns_[server] -= expected_cost.count_nanos();
  if (pending_cost_ns_[server] < 0) pending_cost_ns_[server] = 0;
}

void SignalTable::flush_staged() const {
  // In-flight release + raw last-feedback columns. Applied in arrival
  // order: the underflow guards match the old per-selector counters (a
  // duplicate response must not underflow either account), and "last"
  // means last-arrived.
  for (const StagedFeedback& e : staged_) {
    if (outstanding_[e.server] > 0) --outstanding_[e.server];
    pending_cost_ns_[e.server] -= e.expected_cost_ns;
    if (pending_cost_ns_[e.server] < 0) pending_cost_ns_[e.server] = 0;
    last_queue_length_[e.server] = e.queue_length;
    last_service_rate_[e.server] = e.service_rate;
    last_feedback_ns_[e.server] = e.at_ns;
  }

  // First-contact prepass: entry i seeds its server's EWMAs iff no
  // response preceded it (in the table or earlier in this batch). The
  // flags let each EWMA pass below stay a branch-light column sweep
  // while reproducing seed-then-blend bit-exactly.
  seed_scratch_.resize(staged_.size());
  for (std::size_t i = 0; i < staged_.size(); ++i) {
    const std::uint32_t s = staged_[i].server;
    seed_scratch_[i] = seen_[s] == 0 ? 1 : 0;
    seen_[s] = 1;
  }

  const double a = config_.ewma_alpha;
  for (std::size_t i = 0; i < staged_.size(); ++i) {
    const StagedFeedback& e = staged_[i];
    ewma_response_ns_[e.server] =
        seed_scratch_[i] ? e.rtt_ns : util::ewma_update(ewma_response_ns_[e.server], a, e.rtt_ns);
  }
  for (std::size_t i = 0; i < staged_.size(); ++i) {
    const StagedFeedback& e = staged_[i];
    const double q = static_cast<double>(e.queue_length);
    ewma_queue_[e.server] =
        seed_scratch_[i] ? q : util::ewma_update(ewma_queue_[e.server], a, q);
  }
  for (std::size_t i = 0; i < staged_.size(); ++i) {
    const StagedFeedback& e = staged_[i];
    ewma_service_ns_[e.server] =
        seed_scratch_[i] ? e.service_ns
                         : util::ewma_update(ewma_service_ns_[e.server], a, e.service_ns);
  }
  staged_.clear();
}

void SignalTable::set_credit_balance(store::ServerId server, double balance) {
  if (sparse_) {
    sparse_->set_credit_balance(server, balance);
    return;
  }
  grow(server);
  credit_balance_[server] = balance;
}

void SignalTable::set_rate_cap(store::ServerId server, double rate) {
  if (sparse_) {
    sparse_->set_rate_cap(server, rate);
    return;
  }
  grow(server);
  rate_cap_[server] = rate;
}

std::size_t SignalTable::size() const noexcept {
  return sparse_ ? sparse_->live_entries() : columns_size_;
}

std::uint32_t SignalTable::sparse_outstanding(store::ServerId server) const {
  return sparse_->outstanding(server);
}
sim::Duration SignalTable::sparse_pending_cost(store::ServerId server) const {
  return sparse_->pending_cost(server);
}
bool SignalTable::sparse_seen(store::ServerId server) const { return sparse_->seen(server); }
double SignalTable::sparse_ewma_response_ns(store::ServerId server) const {
  return sparse_->ewma_response_ns(server);
}
double SignalTable::sparse_ewma_queue(store::ServerId server) const {
  return sparse_->ewma_queue(server);
}
double SignalTable::sparse_ewma_service_time_ns(store::ServerId server) const {
  return sparse_->ewma_service_time_ns(server);
}
double SignalTable::sparse_credit_balance(store::ServerId server) const {
  return sparse_->credit_balance(server);
}
double SignalTable::sparse_rate_cap(store::ServerId server) const {
  return sparse_->rate_cap(server);
}
std::int64_t SignalTable::sparse_last_feedback_ns(store::ServerId server) const {
  return sparse_->last_feedback_ns(server);
}

}  // namespace brb::ctrl
