// Admission policies by name — the other half of the control plane's
// policy interface pair.
//
// An admission policy decides *when* a planned request leaves the
// client: immediately ("direct"), when a token bucket with a cubic
// rate cap allows it ("cubic-rate", C3's controller), or when the
// client holds a credit for the target server ("credits", the paper's
// scheme). The uniform interface is client::DispatchGate — offer() a
// planned request, feed on_response() feedback, report held() backlog
// — and this registry makes the implementations constructible by name,
// replacing the hard-coded per-system switch the scenario runner
// carried.
//
// The stateful admission gates mirror their observable state (credit
// balances, rate caps) into the client's SignalTable so selection
// policies can read it without reaching into gate internals.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "client/dispatch_gate.hpp"
#include "core/credits.hpp"
#include "ctrl/signal_table.hpp"
#include "sim/simulator.hpp"

namespace brb::ctrl {

/// The uniform admission interface: a dispatch gate (offer /
/// on_response / held / name). Kept as an alias — the gate contract
/// predates the registry and every implementation already speaks it.
using AdmissionPolicy = client::DispatchGate;

/// Everything a registered admission policy may need at construction.
struct AdmissionContext {
  sim::Simulator* sim = nullptr;
  std::uint32_t num_servers = 0;
  /// Credits admission: controller parameters + bootstrap balances
  /// (one per server).
  core::CreditsConfig credits{};
  std::vector<double> initial_credits;
  /// Credits admission, sparse mode: per-server slots materialize on
  /// first touch with `sparse_default_credit` as the opening balance;
  /// `initial_credits` is ignored. Pairs with the sparse signal store
  /// — per-client memory stays O(servers contacted).
  bool sparse_credits = false;
  double sparse_default_credit = 0.0;
  /// Cubic-rate admission: controller config with initial_rate already
  /// resolved (> 0).
  policy::CubicRateController::Config rate{};
  /// When set, the constructed gate mirrors its per-server state
  /// (credit balances, rate caps) into this table.
  SignalTable* signals = nullptr;
};

struct AdmissionPolicyInfo {
  std::string name;
  std::string summary;
};

/// All registered admission policies, in presentation order.
const std::vector<AdmissionPolicyInfo>& admission_policy_catalog();

/// Resolves an admission policy name; throws std::invalid_argument
/// with a did-you-mean hint on unknown names.
std::string canonical_admission_name(const std::string& name);

/// Constructs an admission policy by name ("direct" | "cubic-rate" |
/// "credits"). Throws on unknown names or a context missing what the
/// named policy needs.
std::unique_ptr<AdmissionPolicy> make_admission_policy(const std::string& name,
                                                       const AdmissionContext& context);

}  // namespace brb::ctrl
