// Key partitioning and replica placement.
//
// The paper's system model: a set S of "flexible" servers where every
// server belongs to R replica groups; a replica group is the set of
// servers holding one data partition. We implement the Cassandra-style
// ring placement that induces exactly this structure (group g is served
// by servers g, g+1, ..., g+R-1 mod |S|), plus a consistent-hash ring
// with virtual nodes for cluster-resizing scenarios.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "store/types.hpp"

namespace brb::store {

/// Deterministic 64-bit key hash (SplitMix64 finalizer) used by every
/// partitioner so placement is stable across runs and platforms.
/// Inline: sits inside the Zipf key-scramble on the workload hot path.
inline std::uint64_t hash_key(KeyId key) noexcept {
  std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Maps keys to replica groups and groups to server sets.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  virtual GroupId group_of(KeyId key) const = 0;
  virtual const std::vector<ServerId>& replicas_of(GroupId group) const = 0;
  virtual std::uint32_t num_groups() const noexcept = 0;
  virtual std::uint32_t num_servers() const noexcept = 0;
  virtual std::uint32_t replication_factor() const noexcept = 0;

  /// Replica set for a key (convenience).
  const std::vector<ServerId>& replicas_for_key(KeyId key) const {
    return replicas_of(group_of(key));
  }
};

/// Ring placement: one group per server; group g -> servers
/// {g, g+1, ..., g+R-1 mod S}; key -> group via hash mod S. This is the
/// paper's "flexible servers" model (each server participates in R
/// groups) in its simplest deterministic form.
class RingPartitioner final : public Partitioner {
 public:
  RingPartitioner(std::uint32_t num_servers, std::uint32_t replication_factor);

  GroupId group_of(KeyId key) const override;
  const std::vector<ServerId>& replicas_of(GroupId group) const override;
  std::uint32_t num_groups() const noexcept override { return num_servers_; }
  std::uint32_t num_servers() const noexcept override { return num_servers_; }
  std::uint32_t replication_factor() const noexcept override { return replication_; }

 private:
  std::uint32_t num_servers_;
  std::uint32_t replication_;
  std::vector<std::vector<ServerId>> groups_;
};

/// Consistent-hash ring with virtual nodes; groups are the distinct
/// replica sets formed by walking the ring. Supports add/remove of
/// servers with minimal key movement — exercised by tests and the
/// elasticity example, not by the paper's fixed 9-server evaluation.
class ConsistentHashPartitioner final : public Partitioner {
 public:
  ConsistentHashPartitioner(std::vector<ServerId> servers, std::uint32_t replication_factor,
                            std::uint32_t vnodes_per_server = 64);

  GroupId group_of(KeyId key) const override;
  const std::vector<ServerId>& replicas_of(GroupId group) const override;
  std::uint32_t num_groups() const noexcept override;
  std::uint32_t num_servers() const noexcept override;
  std::uint32_t replication_factor() const noexcept override { return replication_; }

  void add_server(ServerId server);
  void remove_server(ServerId server);

  /// Fraction of a uniform keyspace owned by each server as primary.
  std::map<ServerId, double> ownership(std::size_t probe_keys = 100'000) const;

 private:
  void rebuild_groups();
  std::vector<ServerId> walk_ring(std::uint64_t point) const;

  std::vector<ServerId> servers_;
  std::uint32_t replication_;
  std::uint32_t vnodes_;
  std::map<std::uint64_t, ServerId> ring_;  // hash point -> server
  std::vector<std::vector<ServerId>> groups_;
  std::map<std::uint64_t, GroupId> point_to_group_;  // ring point -> group index
};

}  // namespace brb::store
