// In-memory key-value storage engine.
//
// Each backend server owns one engine holding the replicas of its
// partitions. The simulator needs value *sizes* (they drive service
// time); real payload bytes are optional so examples can exercise a
// genuine get/put path without inflating experiment memory.
//
// Size lookups happen twice per served request, which made the old
// all-hash-map layout the single hottest function at paper scale.
// Workload keys are small dense integers (datasets number keys
// 0..N-1), so sizes for keys below `kDenseLimit` live in a flat
// array; the hash map only holds payload-bearing entries and keys
// outside the dense range (e.g. raw 64-bit trace keys).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/types.hpp"

namespace brb::store {

struct ValueMeta {
  std::uint32_t size_bytes = 0;
  /// Inline payload; empty when the engine runs in metadata-only mode.
  std::string payload;
};

class StorageEngine {
 public:
  /// Keys below this bound use the dense size table.
  static constexpr KeyId kDenseLimit = KeyId{1} << 22;

  /// The dense table only grows while it stays within this factor of
  /// the number of stored keys (plus a free initial allowance). A
  /// server holding a dense slice of the keyspace (paper scale: each
  /// replica stores ~1/3 of all keys, inserted in ascending order)
  /// keeps the flat-array hot path; a server holding a few dozen keys
  /// of a huge keyspace (mega-fleet: 10k servers sharding 100k keys)
  /// stays in the hash map instead of allocating a keyspace-sized
  /// array per server. Lookups are unaffected — size_of already falls
  /// through to the map.
  static constexpr std::uint64_t kDenseGrowthFactor = 8;
  static constexpr std::uint64_t kDenseGrowthAllowance = 1024;

  /// `store_payloads` controls whether put() keeps the actual bytes.
  explicit StorageEngine(bool store_payloads = false) : store_payloads_(store_payloads) {}

  /// Inserts or replaces a value described only by its size.
  void put_meta(KeyId key, std::uint32_t size_bytes);

  /// Inserts or replaces a value with payload (size derived).
  void put(KeyId key, std::string payload);

  /// Size lookup; nullopt when the key is absent. O(1) array read for
  /// dense keys — the service hot path.
  std::optional<std::uint32_t> size_of(KeyId key) const {
    if (key < dense_size_plus1_.size()) {
      const std::uint32_t plus1 = dense_size_plus1_[key];
      if (plus1 != 0) return plus1 - 1;
    }
    return sparse_size_of(key);
  }

  /// Full lookup (payload empty in metadata-only mode).
  std::optional<ValueMeta> get(KeyId key) const;

  bool erase(KeyId key);
  bool contains(KeyId key) const { return size_of(key).has_value(); }

  std::size_t num_keys() const noexcept { return num_keys_; }
  std::uint64_t stored_bytes() const noexcept { return stored_bytes_; }

 private:
  std::optional<std::uint32_t> sparse_size_of(KeyId key) const;
  /// Removes any existing entry for `key` from both structures,
  /// returning its size for the bytes accounting.
  std::optional<std::uint32_t> remove_entry(KeyId key);
  bool dense_eligible(KeyId key, std::uint32_t size_bytes) const noexcept {
    // size+1 must fit (UINT32_MAX-sized values take the sparse path).
    return key < kDenseLimit && size_bytes != std::numeric_limits<std::uint32_t>::max();
  }

  bool store_payloads_;
  /// dense_size_plus1_[key] = size + 1; 0 means absent.
  std::vector<std::uint32_t> dense_size_plus1_;
  /// Payload-bearing entries and keys outside the dense range only.
  /// Lookup-only (find/erase/indexed insert by key) — never iterated,
  /// so hash order cannot reach service order or artifacts.
  std::unordered_map<KeyId, ValueMeta> values_;  // brblint:allow(BRB-D01): lookup-only, never iterated
  std::size_t num_keys_ = 0;
  std::uint64_t stored_bytes_ = 0;
};

}  // namespace brb::store
