// In-memory key-value storage engine.
//
// Each backend server owns one engine holding the replicas of its
// partitions. The simulator needs value *sizes* (they drive service
// time); real payload bytes are optional so examples can exercise a
// genuine get/put path without inflating experiment memory.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "store/types.hpp"

namespace brb::store {

struct ValueMeta {
  std::uint32_t size_bytes = 0;
  /// Inline payload; empty when the engine runs in metadata-only mode.
  std::string payload;
};

class StorageEngine {
 public:
  /// `store_payloads` controls whether put() keeps the actual bytes.
  explicit StorageEngine(bool store_payloads = false) : store_payloads_(store_payloads) {}

  /// Inserts or replaces a value described only by its size.
  void put_meta(KeyId key, std::uint32_t size_bytes);

  /// Inserts or replaces a value with payload (size derived).
  void put(KeyId key, std::string payload);

  /// Size lookup; nullopt when the key is absent.
  std::optional<std::uint32_t> size_of(KeyId key) const;

  /// Full lookup (payload empty in metadata-only mode).
  std::optional<ValueMeta> get(KeyId key) const;

  bool erase(KeyId key);
  bool contains(KeyId key) const { return values_.count(key) > 0; }

  std::size_t num_keys() const noexcept { return values_.size(); }
  std::uint64_t stored_bytes() const noexcept { return stored_bytes_; }

 private:
  bool store_payloads_;
  std::unordered_map<KeyId, ValueMeta> values_;
  std::uint64_t stored_bytes_ = 0;
};

}  // namespace brb::store
