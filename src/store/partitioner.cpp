#include "store/partitioner.hpp"

#include <algorithm>
#include <set>

namespace brb::store {

RingPartitioner::RingPartitioner(std::uint32_t num_servers, std::uint32_t replication_factor)
    : num_servers_(num_servers), replication_(replication_factor) {
  if (num_servers_ == 0) throw std::invalid_argument("RingPartitioner: no servers");
  if (replication_ == 0 || replication_ > num_servers_) {
    throw std::invalid_argument("RingPartitioner: replication factor must be in [1, |S|]");
  }
  groups_.resize(num_servers_);
  for (std::uint32_t g = 0; g < num_servers_; ++g) {
    groups_[g].reserve(replication_);
    for (std::uint32_t r = 0; r < replication_; ++r) {
      groups_[g].push_back((g + r) % num_servers_);
    }
  }
}

GroupId RingPartitioner::group_of(KeyId key) const {
  return static_cast<GroupId>(hash_key(key) % num_servers_);
}

const std::vector<ServerId>& RingPartitioner::replicas_of(GroupId group) const {
  if (group >= groups_.size()) throw std::out_of_range("RingPartitioner: bad group");
  return groups_[group];
}

ConsistentHashPartitioner::ConsistentHashPartitioner(std::vector<ServerId> servers,
                                                     std::uint32_t replication_factor,
                                                     std::uint32_t vnodes_per_server)
    : servers_(std::move(servers)), replication_(replication_factor), vnodes_(vnodes_per_server) {
  if (servers_.empty()) throw std::invalid_argument("ConsistentHashPartitioner: no servers");
  if (replication_ == 0 || replication_ > servers_.size()) {
    throw std::invalid_argument("ConsistentHashPartitioner: bad replication factor");
  }
  if (vnodes_ == 0) throw std::invalid_argument("ConsistentHashPartitioner: vnodes == 0");
  std::sort(servers_.begin(), servers_.end());
  for (const ServerId s : servers_) {
    for (std::uint32_t v = 0; v < vnodes_; ++v) {
      ring_.emplace(hash_key((static_cast<std::uint64_t>(s) << 20) ^ v), s);
    }
  }
  rebuild_groups();
}

std::vector<ServerId> ConsistentHashPartitioner::walk_ring(std::uint64_t point) const {
  std::vector<ServerId> replicas;
  replicas.reserve(replication_);
  auto it = ring_.lower_bound(point);
  std::set<ServerId> seen;
  while (replicas.size() < replication_) {
    if (it == ring_.end()) it = ring_.begin();
    if (seen.insert(it->second).second) replicas.push_back(it->second);
    ++it;
  }
  return replicas;
}

void ConsistentHashPartitioner::rebuild_groups() {
  groups_.clear();
  point_to_group_.clear();
  std::map<std::vector<ServerId>, GroupId> dedup;
  for (const auto& [point, server] : ring_) {
    auto replicas = walk_ring(point);
    auto [it, inserted] = dedup.emplace(replicas, static_cast<GroupId>(groups_.size()));
    if (inserted) groups_.push_back(std::move(replicas));
    point_to_group_[point] = it->second;
  }
}

GroupId ConsistentHashPartitioner::group_of(KeyId key) const {
  const std::uint64_t point = hash_key(key);
  auto it = point_to_group_.lower_bound(point);
  if (it == point_to_group_.end()) it = point_to_group_.begin();
  return it->second;
}

const std::vector<ServerId>& ConsistentHashPartitioner::replicas_of(GroupId group) const {
  if (group >= groups_.size()) throw std::out_of_range("ConsistentHashPartitioner: bad group");
  return groups_[group];
}

std::uint32_t ConsistentHashPartitioner::num_groups() const noexcept {
  return static_cast<std::uint32_t>(groups_.size());
}

std::uint32_t ConsistentHashPartitioner::num_servers() const noexcept {
  return static_cast<std::uint32_t>(servers_.size());
}

void ConsistentHashPartitioner::add_server(ServerId server) {
  if (std::binary_search(servers_.begin(), servers_.end(), server)) {
    throw std::invalid_argument("ConsistentHashPartitioner: server already present");
  }
  servers_.insert(std::upper_bound(servers_.begin(), servers_.end(), server), server);
  for (std::uint32_t v = 0; v < vnodes_; ++v) {
    ring_.emplace(hash_key((static_cast<std::uint64_t>(server) << 20) ^ v), server);
  }
  rebuild_groups();
}

void ConsistentHashPartitioner::remove_server(ServerId server) {
  const auto it = std::lower_bound(servers_.begin(), servers_.end(), server);
  if (it == servers_.end() || *it != server) {
    throw std::invalid_argument("ConsistentHashPartitioner: unknown server");
  }
  if (servers_.size() - 1 < replication_) {
    throw std::invalid_argument("ConsistentHashPartitioner: would drop below replication factor");
  }
  servers_.erase(it);
  for (std::uint32_t v = 0; v < vnodes_; ++v) {
    ring_.erase(hash_key((static_cast<std::uint64_t>(server) << 20) ^ v));
  }
  rebuild_groups();
}

std::map<ServerId, double> ConsistentHashPartitioner::ownership(std::size_t probe_keys) const {
  std::map<ServerId, double> share;
  for (const ServerId s : servers_) share[s] = 0.0;
  for (std::size_t i = 0; i < probe_keys; ++i) {
    const auto& replicas = replicas_of(group_of(static_cast<KeyId>(i) * 2'654'435'761ULL));
    share[replicas.front()] += 1.0;
  }
  for (auto& [server, count] : share) count /= static_cast<double>(probe_keys);
  return share;
}

}  // namespace brb::store
