// Identifier types for the replicated data store and its workloads.
//
// Split out of store/types.hpp so ID-only consumers (capacity
// planning, workload generators) don't drag in the protocol structs'
// simulator dependencies.
//
// Two tiers, both enforced by brblint's BRB-D04 check:
//
//   * Dense aliases (ClientId, ServerId, KeyId, ...) — raw integers by
//     construction because they index flat arrays on the hot path and
//     double as net::NodeIds. API boundaries must spell the alias, not
//     the underlying integer, so a reader (and the linter) can tell
//     which ID kind crosses.
//   * Strong wrappers (TenantId) — distinct types with explicit
//     construction. Tenant indices select per-tenant result slots,
//     policy bindings and client blocks; confusing one with a
//     client/server index would corrupt artifacts silently. New ID
//     kinds should start strong and only decay to an alias with a
//     measured hot-path justification.
#pragma once

#include <cstdint>

#include "net/node_id.hpp"
#include "util/strong_id.hpp"

namespace brb::store {

/// Key in the data store's flat 64-bit keyspace.
using KeyId = std::uint64_t;

/// A replica group: the set of servers holding one data partition.
using GroupId = std::uint32_t;

/// Backend server index within the cluster (also its net::NodeId).
using ServerId = net::NodeId;

/// Application-server (client) index (also its net::NodeId).
using ClientId = net::NodeId;

/// Globally unique task identifier.
using TaskId = std::uint64_t;

/// Globally unique request identifier.
using RequestId = std::uint64_t;

/// Tenant index in a multi-tenant workload (0 in single-tenant runs).
/// Strong: tenant indices address per-tenant result slots and policy
/// bindings, never network endpoints, and must not mix with
/// ClientId/ServerId arithmetic.
using TenantId = util::StrongId<struct TenantIdTag, std::uint32_t>;

}  // namespace brb::store
