// Shared protocol types for the replicated data store. The identifier
// types (ClientId, ServerId, TenantId, ...) live in store/ids.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "sim/time.hpp"
#include "store/ids.hpp"

namespace brb::store {

/// Scheduling priority attached to a read request. Lower values are
/// served first. BRB policies encode costs/slacks (in nanoseconds of
/// expected work) here; FIFO encodes the arrival timestamp.
using Priority = double;

/// Server-side load feedback piggybacked on every response (the
/// mechanism C3 relies on; free for BRB to observe as well).
struct ServerFeedback {
  /// Requests waiting in the server queue when the response was sent.
  std::uint32_t queue_length = 0;
  /// EWMA of the server's observed service rate, requests/second.
  double service_rate = 0.0;
  /// Actual service duration of this request.
  sim::Duration service_time = sim::Duration::zero();
};

/// A read (or write) for one key, stamped with scheduling metadata.
/// Writes fan out to every replica of the key's group and carry the
/// new value size; the serving replica resizes its stored value at
/// completion. The struct keeps its historical name — the scheduling
/// path (priorities, queues, credits) treats both kinds identically.
struct ReadRequest {
  RequestId request_id = 0;
  TaskId task_id = 0;
  KeyId key = 0;
  ClientId client = 0;
  Priority priority = 0.0;
  /// Client-forecast service cost (used by cost-aware disciplines).
  sim::Duration expected_cost = sim::Duration::zero();
  /// Time the client handed the request to the transport.
  sim::Time sent_at;
  bool is_write = false;
  /// New stored size installed by a write (ignored for reads).
  std::uint32_t write_size = 0;
};

/// Completion record delivered back to the client.
struct ReadResponse {
  RequestId request_id = 0;
  TaskId task_id = 0;
  KeyId key = 0;
  ClientId client = 0;
  ServerId server = 0;
  /// Payload bytes returned; 0 for a write acknowledgement.
  std::uint32_t value_size = 0;
  bool is_write = false;
  ServerFeedback feedback;
};

/// Approximate wire sizes for traffic accounting (header + key for a
/// request; header + value payload for a response). Writes invert the
/// payload direction: the request carries the new value, the response
/// is a bare acknowledgement.
constexpr std::uint32_t kRequestWireBytes = 64;
constexpr std::uint32_t kResponseHeaderBytes = 64;

/// Wire bytes for one outbound request (reads: header only; writes:
/// header + payload being written).
inline std::uint32_t request_wire_bytes(const ReadRequest& request) noexcept {
  return kRequestWireBytes + (request.is_write ? request.write_size : 0);
}

}  // namespace brb::store
