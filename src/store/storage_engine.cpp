#include "store/storage_engine.hpp"

#include <utility>

namespace brb::store {

// Invariant: every stored key lives in exactly one structure — the
// dense size table (metadata-only, key < kDenseLimit) or the hash map
// (payload entries, out-of-range keys, UINT32_MAX-sized values).

std::optional<std::uint32_t> StorageEngine::sparse_size_of(KeyId key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second.size_bytes;
}

std::optional<std::uint32_t> StorageEngine::remove_entry(KeyId key) {
  if (key < dense_size_plus1_.size() && dense_size_plus1_[key] != 0) {
    const std::uint32_t size = dense_size_plus1_[key] - 1;
    dense_size_plus1_[key] = 0;
    return size;
  }
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  const std::uint32_t size = it->second.size_bytes;
  values_.erase(it);
  return size;
}

void StorageEngine::put_meta(KeyId key, std::uint32_t size_bytes) {
  if (const auto old = remove_entry(key)) {
    stored_bytes_ -= *old;
  } else {
    ++num_keys_;
  }
  stored_bytes_ += size_bytes;
  if (dense_eligible(key, size_bytes) &&
      (key < dense_size_plus1_.size() ||
       key < kDenseGrowthAllowance + kDenseGrowthFactor * num_keys_)) {
    if (key >= dense_size_plus1_.size()) dense_size_plus1_.resize(key + 1, 0);
    dense_size_plus1_[key] = size_bytes + 1;
  } else {
    values_[key] = ValueMeta{size_bytes, std::string()};
  }
}

void StorageEngine::put(KeyId key, std::string payload) {
  const auto size_bytes = static_cast<std::uint32_t>(payload.size());
  if (!store_payloads_) {
    put_meta(key, size_bytes);
    return;
  }
  if (const auto old = remove_entry(key)) {
    stored_bytes_ -= *old;
  } else {
    ++num_keys_;
  }
  stored_bytes_ += size_bytes;
  values_[key] = ValueMeta{size_bytes, std::move(payload)};
}

std::optional<ValueMeta> StorageEngine::get(KeyId key) const {
  if (key < dense_size_plus1_.size() && dense_size_plus1_[key] != 0) {
    return ValueMeta{dense_size_plus1_[key] - 1, std::string()};
  }
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool StorageEngine::erase(KeyId key) {
  const auto old = remove_entry(key);
  if (!old) return false;
  stored_bytes_ -= *old;
  --num_keys_;
  return true;
}

}  // namespace brb::store
