#include "store/storage_engine.hpp"

namespace brb::store {

void StorageEngine::put_meta(KeyId key, std::uint32_t size_bytes) {
  auto& slot = values_[key];
  stored_bytes_ -= slot.size_bytes;
  slot.size_bytes = size_bytes;
  slot.payload.clear();
  stored_bytes_ += size_bytes;
}

void StorageEngine::put(KeyId key, std::string payload) {
  auto& slot = values_[key];
  stored_bytes_ -= slot.size_bytes;
  slot.size_bytes = static_cast<std::uint32_t>(payload.size());
  stored_bytes_ += slot.size_bytes;
  if (store_payloads_) {
    slot.payload = std::move(payload);
  } else {
    slot.payload.clear();
  }
}

std::optional<std::uint32_t> StorageEngine::size_of(KeyId key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second.size_bytes;
}

std::optional<ValueMeta> StorageEngine::get(KeyId key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool StorageEngine::erase(KeyId key) {
  const auto it = values_.find(key);
  if (it == values_.end()) return false;
  stored_bytes_ -= it->second.size_bytes;
  values_.erase(it);
  return true;
}

}  // namespace brb::store
