// Message-level network model.
//
// The paper's simulation assumes a fixed one-way latency (50 us) between
// application servers and the backend tier. `Network` models point-to-
// point delivery with a base latency plus optional jitter, delivering a
// typed closure at the receiver after that delay. Delivery is reliable
// and per-pair FIFO (jitter can reorder across pairs, matching a
// datacenter fabric with per-flow ordering).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace brb::net {

/// Identifies an endpoint (client, server, controller) in the topology.
using NodeId = std::uint32_t;

/// Cumulative traffic counters, exposed for tests and reports.
struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
};

class Network {
 public:
  struct Config {
    /// Base one-way propagation + switching delay.
    sim::Duration one_way_latency = sim::Duration::micros(50);
    /// Uniform jitter added on top: U[0, jitter_max].
    sim::Duration jitter_max = sim::Duration::zero();
  };

  Network(sim::Simulator& sim, Config config, util::Rng rng);

  /// Delivers `on_deliver` at the receiver after the one-way delay.
  /// `bytes` is accounted in stats only (the model is latency-bound, as
  /// in the paper; bandwidth is not a simulated resource).
  void send(NodeId from, NodeId to, std::uint32_t bytes, std::function<void()> on_deliver);

  /// Overrides the latency for one ordered pair (used in tests and in
  /// heterogeneous-topology ablations).
  void set_pair_latency(NodeId from, NodeId to, sim::Duration latency);

  sim::Duration latency(NodeId from, NodeId to) const;

  const NetworkStats& stats() const noexcept { return stats_; }
  const Config& config() const noexcept { return config_; }

 private:
  /// Per-ordered-pair FIFO guarantee: the next delivery on a pair never
  /// precedes the previous one even with jitter.
  sim::Time reserve_delivery_slot(NodeId from, NodeId to);

  sim::Simulator* sim_;
  Config config_;
  util::Rng rng_;
  NetworkStats stats_;
  std::unordered_map<std::uint64_t, sim::Duration> pair_latency_;
  std::unordered_map<std::uint64_t, sim::Time> last_delivery_;
};

}  // namespace brb::net
