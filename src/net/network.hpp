// Message-level network model.
//
// The paper's simulation assumes a fixed one-way latency (50 us) between
// application servers and the backend tier. `Network` models point-to-
// point delivery with a base latency plus optional jitter, delivering a
// typed closure at the receiver after that delay. Delivery is reliable
// and per-pair FIFO (jitter can reorder across pairs, matching a
// datacenter fabric with per-flow ordering).
//
// Per-pair state (FIFO delivery horizon) lives in a dense NodeId x
// NodeId table — ids are small dense integers assigned by the cluster
// wiring, so a flat array replaces the per-send hash lookup that
// dominated large-cluster runs. Per-pair latency overrides (used only
// by tests and heterogeneous-latency ablations) stay in a sparse map
// that the common path skips entirely.
//
// Scale: the horizon is only *needed* when jitter can reorder a pair —
// with a constant per-pair delay, successive sends depart at
// nondecreasing times and arrive in order automatically. The zero-
// jitter/no-override path therefore skips horizon bookkeeping entirely
// (bit-identical: the clamp could never fire), and topologies beyond
// kDenseHorizonLimit nodes store what horizon they do need in a sparse
// map instead of the O(nodes^2) table — at a million clients the dense
// table would be terabytes.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/node_id.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace brb::net {

/// Cumulative traffic counters, exposed for tests and reports.
struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
};

class Network {
 public:
  /// Largest `num_nodes` for which the FIFO horizon uses the dense
  /// pair table; beyond it (mega-fleet topologies) a sparse map holds
  /// only the pairs actually communicating under jitter.
  static constexpr std::uint32_t kDenseHorizonLimit = 4096;

  struct Config {
    /// Base one-way propagation + switching delay.
    sim::Duration one_way_latency = sim::Duration::micros(50);
    /// Uniform jitter added on top: U[0, jitter_max].
    sim::Duration jitter_max = sim::Duration::zero();
    /// Number of endpoints, when known upfront (servers + clients +
    /// controller + global queue). Sizes the dense pair table once;
    /// 0 lets it grow on demand as node ids appear.
    std::uint32_t num_nodes = 0;
  };

  Network(sim::Simulator& sim, Config config, util::Rng rng);

  /// Delivers `on_deliver` at the receiver after the one-way delay.
  /// `bytes` is accounted in stats only (the model is latency-bound, as
  /// in the paper; bandwidth is not a simulated resource). Any
  /// callable; the closure lands directly in the event queue.
  template <typename F>
  void send(NodeId from, NodeId to, std::uint32_t bytes, F&& on_deliver) {
    ++stats_.messages_sent;
    stats_.bytes_sent += bytes;
    const sim::Time deliver_at = reserve_delivery_slot(from, to);
    sim_->schedule_at(deliver_at, std::forward<F>(on_deliver));
  }

  /// Overrides the latency for one ordered pair (used in tests and in
  /// heterogeneous-topology ablations).
  void set_pair_latency(NodeId from, NodeId to, sim::Duration latency);

  sim::Duration latency(NodeId from, NodeId to) const;

  const NetworkStats& stats() const noexcept { return stats_; }
  const Config& config() const noexcept { return config_; }

 private:
  /// Per-ordered-pair FIFO guarantee: the next delivery on a pair never
  /// precedes the previous one even with jitter.
  sim::Time reserve_delivery_slot(NodeId from, NodeId to);

  /// Grows the dense table so ids up to `node` are addressable.
  void ensure_node(NodeId node);

  std::size_t pair_index(NodeId from, NodeId to) const noexcept {
    return static_cast<std::size_t>(from) * stride_ + to;
  }

  sim::Simulator* sim_;
  Config config_;
  util::Rng rng_;
  NetworkStats stats_;
  /// Dense FIFO horizon per ordered pair, `stride_` x `stride_`.
  std::vector<sim::Time> last_delivery_;
  std::size_t stride_ = 0;
  /// Sparse-horizon mode (num_nodes > kDenseHorizonLimit): per-pair
  /// horizons materialize on demand. Lookup-only (operator[] by packed
  /// pair key) — never iterated, so hash order cannot reach delivery
  /// order or artifacts.
  bool sparse_horizon_ = false;
  std::unordered_map<std::uint64_t, sim::Time> sparse_last_delivery_;  // brblint:allow(BRB-D01): lookup-only, never iterated
  /// Sparse latency overrides; empty in every homogeneous run.
  /// Lookup-only (find/insert by packed pair key) — never iterated, so
  /// hash order cannot reach delivery order or artifacts.
  std::unordered_map<std::uint64_t, sim::Duration> pair_latency_override_;  // brblint:allow(BRB-D01): lookup-only, never iterated
};

}  // namespace brb::net
