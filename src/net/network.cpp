#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace brb::net {

namespace {

constexpr std::uint64_t override_key(NodeId from, NodeId to) noexcept {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

Network::Network(sim::Simulator& sim, Config config, util::Rng rng)
    : sim_(&sim), config_(config), rng_(rng) {
  if (config_.one_way_latency.is_negative() || config_.jitter_max.is_negative()) {
    throw std::invalid_argument("Network: negative latency");
  }
  if (config_.num_nodes > kDenseHorizonLimit) {
    sparse_horizon_ = true;
  } else if (config_.num_nodes > 0) {
    stride_ = config_.num_nodes;
    last_delivery_.assign(stride_ * stride_, sim::Time::zero());
  }
}

void Network::ensure_node(NodeId node) {
  if (node < stride_) return;
  // Geometric growth keeps amortized cost low when ids appear one by
  // one (tests); sized-upfront configs never reach this path.
  std::size_t new_stride = std::max<std::size_t>(stride_ * 2, 16);
  while (new_stride <= node) new_stride *= 2;
  std::vector<sim::Time> grown(new_stride * new_stride, sim::Time::zero());
  for (std::size_t from = 0; from < stride_; ++from) {
    std::copy_n(last_delivery_.begin() + static_cast<std::ptrdiff_t>(from * stride_), stride_,
                grown.begin() + static_cast<std::ptrdiff_t>(from * new_stride));
  }
  last_delivery_ = std::move(grown);
  stride_ = new_stride;
}

sim::Duration Network::latency(NodeId from, NodeId to) const {
  if (!pair_latency_override_.empty()) {
    if (const auto it = pair_latency_override_.find(override_key(from, to));
        it != pair_latency_override_.end()) {
      return it->second;
    }
  }
  return config_.one_way_latency;
}

void Network::set_pair_latency(NodeId from, NodeId to, sim::Duration latency) {
  if (latency.is_negative()) throw std::invalid_argument("Network: negative latency");
  pair_latency_override_[override_key(from, to)] = latency;
}

sim::Time Network::reserve_delivery_slot(NodeId from, NodeId to) {
  sim::Duration delay = latency(from, to);
  if (config_.jitter_max > sim::Duration::zero()) {
    delay += config_.jitter_max * rng_.uniform();
  }
  sim::Time deliver_at = sim_->now() + delay;
  // Constant per-pair delay: departures at nondecreasing times arrive
  // in order by construction, so the FIFO clamp could never fire.
  // (Mid-run set_pair_latency can lower a pair's delay, so any
  // override re-enables the horizon.)
  if (config_.jitter_max <= sim::Duration::zero() && pair_latency_override_.empty()) {
    return deliver_at;
  }
  if (sparse_horizon_) {
    sim::Time& last = sparse_last_delivery_[override_key(from, to)];
    if (deliver_at < last) deliver_at = last;  // keep the pair FIFO
    last = deliver_at;
    return deliver_at;
  }
  ensure_node(std::max(from, to));
  sim::Time& last = last_delivery_[pair_index(from, to)];
  if (deliver_at < last) deliver_at = last;  // keep the pair FIFO
  last = deliver_at;
  return deliver_at;
}

}  // namespace brb::net
