#include "net/network.hpp"

#include <utility>

namespace brb::net {

namespace {

constexpr std::uint64_t pair_key(NodeId from, NodeId to) noexcept {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

Network::Network(sim::Simulator& sim, Config config, util::Rng rng)
    : sim_(&sim), config_(config), rng_(rng) {
  if (config_.one_way_latency.is_negative() || config_.jitter_max.is_negative()) {
    throw std::invalid_argument("Network: negative latency");
  }
}

sim::Duration Network::latency(NodeId from, NodeId to) const {
  if (const auto it = pair_latency_.find(pair_key(from, to)); it != pair_latency_.end()) {
    return it->second;
  }
  return config_.one_way_latency;
}

void Network::set_pair_latency(NodeId from, NodeId to, sim::Duration latency) {
  if (latency.is_negative()) throw std::invalid_argument("Network: negative latency");
  pair_latency_[pair_key(from, to)] = latency;
}

sim::Time Network::reserve_delivery_slot(NodeId from, NodeId to) {
  sim::Duration delay = latency(from, to);
  if (config_.jitter_max > sim::Duration::zero()) {
    delay += config_.jitter_max * rng_.uniform();
  }
  sim::Time deliver_at = sim_->now() + delay;
  auto& last = last_delivery_[pair_key(from, to)];
  if (deliver_at < last) deliver_at = last;  // keep the pair FIFO
  last = deliver_at;
  return deliver_at;
}

void Network::send(NodeId from, NodeId to, std::uint32_t bytes,
                   std::function<void()> on_deliver) {
  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;
  const sim::Time deliver_at = reserve_delivery_slot(from, to);
  sim_->schedule_at(deliver_at, std::move(on_deliver));
}

}  // namespace brb::net
