// The network-endpoint identifier, split out of network.hpp so that
// headers needing only the ID type (store/ids.hpp, workload/capacity)
// don't pull in the simulator.
#pragma once

#include <cstdint>

namespace brb::net {

/// Identifies an endpoint (client, server, controller) in the topology.
/// Dense: the cluster wiring assigns 0..num_nodes-1 contiguously
/// (servers first, then clients, then controller/global-queue nodes).
using NodeId = std::uint32_t;

}  // namespace brb::net
