// Console table and CSV rendering for bench harness output.
//
// The bench binaries print the paper's figures as aligned text tables
// (stdout) and optionally CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace brb::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a rule under the header.
  void print(std::ostream& os) const;

  /// Comma-separated form with the same content.
  void print_csv(std::ostream& os) const;

  std::size_t num_rows() const noexcept { return rows_.size(); }
  const std::vector<std::string>& headers() const noexcept { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting helpers for table cells.
std::string fmt_double(double v, int precision = 3);
std::string fmt_millis(double millis, int precision = 3);
std::string fmt_ratio(double v, int precision = 2);

}  // namespace brb::stats
