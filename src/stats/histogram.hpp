// HDR-style log-linear histogram for latency recording.
//
// Values are bucketed with bounded relative error (configurable
// significant digits), giving O(1) insertion, compact memory and
// accurate high quantiles — the shape of tool the paper's evaluation
// needs for p99 over millions of samples.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace brb::stats {

class Histogram {
 public:
  /// `max_value` is the largest recordable value (larger inputs clamp
  /// and are counted in `overflow()`), `sig_digits` in [1,5] bounds the
  /// relative bucket error at 10^-sig_digits.
  explicit Histogram(std::int64_t max_value = 3'600'000'000'000LL, int sig_digits = 3);

  void record(std::int64_t value);
  void record_n(std::int64_t value, std::uint64_t times);

  /// Quantile in [0,1]; returns a representative value of the bucket
  /// containing that rank. Throws if the histogram is empty.
  std::int64_t value_at_quantile(double q) const;

  std::int64_t percentile(double p) const { return value_at_quantile(p / 100.0); }
  std::int64_t median() const { return value_at_quantile(0.50); }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::int64_t min() const noexcept { return count_ > 0 ? min_ : 0; }
  std::int64_t max() const noexcept { return count_ > 0 ? max_ : 0; }
  double mean() const noexcept { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }

  void merge(const Histogram& other);
  void reset();

  /// Largest relative error a recorded value can incur.
  double max_relative_error() const noexcept;

 private:
  std::size_t bucket_index(std::int64_t value) const noexcept;
  std::int64_t bucket_representative(std::size_t index) const noexcept;

  std::int64_t max_value_;
  int sig_digits_;
  int sub_bucket_bits_;            // log2 of sub-buckets per half-decade
  std::int64_t sub_bucket_count_;  // 2^sub_bucket_bits_
  std::int64_t sub_bucket_half_;   // sub_bucket_count_ / 2
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t overflow_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace brb::stats
