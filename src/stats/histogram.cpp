#include "stats/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace brb::stats {

namespace {

// Number of leading zeros treating value as 64-bit; value must be > 0.
int high_bit(std::int64_t value) noexcept {
  return 63 - std::countl_zero(static_cast<std::uint64_t>(value));
}

}  // namespace

Histogram::Histogram(std::int64_t max_value, int sig_digits)
    : max_value_(max_value), sig_digits_(sig_digits) {
  if (max_value_ < 2) throw std::invalid_argument("Histogram: max_value must be >= 2");
  if (sig_digits_ < 1 || sig_digits_ > 5) {
    throw std::invalid_argument("Histogram: sig_digits must be in [1,5]");
  }
  // Need 2 * 10^sig sub-buckets so the relative error within a
  // half-decade stays below 10^-sig (same construction as HdrHistogram).
  const double needed = 2.0 * std::pow(10.0, sig_digits_);
  sub_bucket_bits_ = 1;
  while ((1LL << sub_bucket_bits_) < static_cast<std::int64_t>(needed)) ++sub_bucket_bits_;
  sub_bucket_count_ = 1LL << sub_bucket_bits_;
  sub_bucket_half_ = sub_bucket_count_ / 2;

  // One "bucket" per power of two above the sub-bucket range; each
  // bucket contributes sub_bucket_half_ slots (upper half), the first
  // bucket contributes all sub_bucket_count_ slots.
  int buckets = 1;
  std::int64_t smallest_untrackable = sub_bucket_count_;
  while (smallest_untrackable <= max_value_ &&
         smallest_untrackable < (std::int64_t{1} << 62)) {
    smallest_untrackable <<= 1;
    ++buckets;
  }
  const std::size_t slots =
      static_cast<std::size_t>(buckets + 1) * static_cast<std::size_t>(sub_bucket_half_) +
      static_cast<std::size_t>(sub_bucket_half_);
  counts_.assign(slots, 0);
}

std::size_t Histogram::bucket_index(std::int64_t value) const noexcept {
  if (value < 0) value = 0;
  if (value < sub_bucket_count_) return static_cast<std::size_t>(value);
  const int msb = high_bit(value);
  const int bucket = msb - (sub_bucket_bits_ - 1);  // which power-of-two band
  const std::int64_t sub = value >> bucket;         // in [half, count)
  return static_cast<std::size_t>(sub_bucket_count_ + (bucket - 1) * sub_bucket_half_ +
                                  (sub - sub_bucket_half_));
}

std::int64_t Histogram::bucket_representative(std::size_t index) const noexcept {
  const auto i = static_cast<std::int64_t>(index);
  if (i < sub_bucket_count_) return i;
  const std::int64_t band = (i - sub_bucket_count_) / sub_bucket_half_ + 1;
  const std::int64_t sub = (i - sub_bucket_count_) % sub_bucket_half_ + sub_bucket_half_;
  // Midpoint of the bucket keeps the error two-sided.
  const std::int64_t lo = sub << band;
  const std::int64_t width = std::int64_t{1} << band;
  return lo + width / 2;
}

void Histogram::record(std::int64_t value) { record_n(value, 1); }

void Histogram::record_n(std::int64_t value, std::uint64_t times) {
  if (times == 0) return;
  if (value < 0) value = 0;
  if (value > max_value_) {
    overflow_ += times;
    value = max_value_;
  }
  const std::size_t idx = std::min(bucket_index(value), counts_.size() - 1);
  counts_[idx] += times;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += times;
  sum_ += static_cast<double>(value) * static_cast<double>(times);
}

std::int64_t Histogram::value_at_quantile(double q) const {
  if (count_ == 0) throw std::logic_error("Histogram::value_at_quantile: empty histogram");
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based, ceil as in HdrHistogram).
  const auto target =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_))));
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i];
    if (running >= target) {
      const std::int64_t rep = bucket_representative(i);
      return std::min({rep, max_, max_value_});
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.sub_bucket_bits_ != sub_bucket_bits_ || other.counts_.size() != counts_.size()) {
    // Different geometry: re-record representative values.
    for (std::size_t i = 0; i < other.counts_.size(); ++i) {
      if (other.counts_[i] > 0) record_n(other.bucket_representative(i), other.counts_[i]);
    }
    return;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  overflow_ += other.overflow_;
  sum_ += other.sum_;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  overflow_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0.0;
}

double Histogram::max_relative_error() const noexcept {
  return 1.0 / static_cast<double>(sub_bucket_half_);
}

}  // namespace brb::stats
