#include "stats/report.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace brb::stats {

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) throw std::logic_error("Json::operator[]: not an object");
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(key, Json{});
  return object_.back().second;
}

void Json::push_back(Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) throw std::logic_error("Json::push_back: not an array");
  array_.push_back(std::move(value));
}

std::size_t Json::size() const noexcept {
  switch (kind_) {
    case Kind::kArray:
      return array_.size();
    case Kind::kObject:
      return object_.size();
    default:
      return 0;
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void dump_double(std::ostream& os, double v) {
  // JSON has no NaN/Inf literals; emit null like common encoders do.
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  os << buf;
  // Keep a numeric-looking token numeric ("1e+06" fine, "5" fine).
}

void newline_indent(std::ostream& os, int indent, int depth) {
  if (indent < 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

}  // namespace

void Json::dump_impl(std::ostream& os, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Kind::kInt:
      os << int_;
      break;
    case Kind::kDouble:
      dump_double(os, double_);
      break;
    case Kind::kString:
      os << '"' << json_escape(string_) << '"';
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) os << ',';
        newline_indent(os, indent, depth + 1);
        array_[i].dump_impl(os, indent, depth + 1);
      }
      newline_indent(os, indent, depth);
      os << ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) os << ',';
        newline_indent(os, indent, depth + 1);
        os << '"' << json_escape(object_[i].first) << "\":" << (indent < 0 ? "" : " ");
        object_[i].second.dump_impl(os, indent, depth + 1);
      }
      newline_indent(os, indent, depth);
      os << '}';
      break;
    }
  }
}

void Json::dump(std::ostream& os, int indent) const { dump_impl(os, indent, 0); }

std::string Json::dump_string(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace brb::stats
