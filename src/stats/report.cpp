#include "stats/report.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace brb::stats {

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) throw std::logic_error("Json::as_bool: not a bool");
  return bool_;
}

std::int64_t Json::as_int() const {
  if (kind_ != Kind::kInt) throw std::logic_error("Json::as_int: not an integer");
  return int_;
}

double Json::as_double() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  if (kind_ != Kind::kDouble) throw std::logic_error("Json::as_double: not a number");
  return double_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) throw std::logic_error("Json::as_string: not a string");
  return string_;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  if (const Json* value = find(key)) return *value;
  throw std::out_of_range("Json::at: no member '" + std::string(key) + "'");
}

Json& Json::at(std::size_t index) {
  if (kind_ != Kind::kArray || index >= array_.size()) {
    throw std::out_of_range("Json::at: array index out of range");
  }
  return array_[index];
}

const Json& Json::at(std::size_t index) const {
  if (kind_ != Kind::kArray || index >= array_.size()) {
    throw std::out_of_range("Json::at: array index out of range");
  }
  return array_[index];
}

bool Json::erase(std::string_view key) {
  if (kind_ != Kind::kObject) return false;
  for (auto it = object_.begin(); it != object_.end(); ++it) {
    if (it->first == key) {
      object_.erase(it);
      return true;
    }
  }
  return false;
}

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) throw std::logic_error("Json::operator[]: not an object");
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(key, Json{});
  return object_.back().second;
}

void Json::push_back(Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) throw std::logic_error("Json::push_back: not an array");
  array_.push_back(std::move(value));
}

std::size_t Json::size() const noexcept {
  switch (kind_) {
    case Kind::kArray:
      return array_.size();
    case Kind::kObject:
      return object_.size();
    default:
      return 0;
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void dump_double(std::ostream& os, double v) {
  // JSON has no NaN/Inf literals; emit null like common encoders do.
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  // Shortest representation that parses back to the same double, so
  // parse(dump(x)) == x exactly. Sharded artifact merging relies on
  // this: re-aggregating cross-seed statistics from parsed per-seed
  // rows must reproduce the single-process numbers bit for bit.
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  os << buf;
  // Keep a numeric-looking token numeric ("1e+06" fine, "5" fine).
}

void newline_indent(std::ostream& os, int indent, int depth) {
  if (indent < 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

}  // namespace

void Json::dump_impl(std::ostream& os, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Kind::kInt:
      os << int_;
      break;
    case Kind::kDouble:
      dump_double(os, double_);
      break;
    case Kind::kString:
      os << '"' << json_escape(string_) << '"';
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) os << ',';
        newline_indent(os, indent, depth + 1);
        array_[i].dump_impl(os, indent, depth + 1);
      }
      newline_indent(os, indent, depth);
      os << ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) os << ',';
        newline_indent(os, indent, depth + 1);
        os << '"' << json_escape(object_[i].first) << "\":" << (indent < 0 ? "" : " ");
        object_[i].second.dump_impl(os, indent, depth + 1);
      }
      newline_indent(os, indent, depth);
      os << '}';
      break;
    }
  }
}

void Json::dump(std::ostream& os, int indent) const { dump_impl(os, indent, 0); }

std::string Json::dump_string(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

namespace {

/// Recursive-descent JSON reader over a string_view. Errors carry the
/// byte offset so a malformed artifact points at the problem.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json parse_document() {
    skip_whitespace();
    Json value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("Json::parse: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) {
      throw std::invalid_argument("Json::parse: unexpected end of input at offset " +
                                  std::to_string(pos_));
    }
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  void expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail("invalid literal (expected '" + std::string(literal) + "')");
    }
    pos_ += literal.size();
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    switch (peek()) {
      case 'n':
        expect_literal("null");
        return Json{};
      case 't':
        expect_literal("true");
        return Json(true);
      case 'f':
        expect_literal("false");
        return Json(false);
      case '"':
        return Json(parse_string());
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      default:
        return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json object = Json::object();
    skip_whitespace();
    if (consume('}')) return object;
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      skip_whitespace();
      object[key] = parse_value(depth + 1);
      skip_whitespace();
      if (consume('}')) return object;
      expect(',');
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json array = Json::array();
    skip_whitespace();
    if (consume(']')) return array;
    while (true) {
      skip_whitespace();
      array.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (consume(']')) return array;
      expect(',');
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    bool is_double = false;
    if (consume('-')) {
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    if (!is_double && token != "-0") {  // "-0" stays a double so it re-emits as "-0"
      errno = 0;
      const long long parsed = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size() && errno != ERANGE) {
        return Json(static_cast<std::int64_t>(parsed));
      }
      // Out of int64 range: degrade to double, mirroring the emitter.
    }
    errno = 0;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("invalid number '" + token + "'");
    }
    return Json(parsed);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char escape = peek();
      ++pos_;
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_codepoint(out); break;
        default:
          pos_ -= 1;
          fail("invalid escape");
      }
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<std::uint32_t>(c - 'A' + 10);
      else {
        --pos_;
        fail("invalid \\u escape");
      }
    }
    return value;
  }

  void append_codepoint(std::string& out) {
    std::uint32_t code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: the low half must follow as another \uXXXX.
      if (!consume('\\') || !consume('u')) fail("unpaired surrogate");
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return JsonParser(text).parse_document(); }

std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace brb::stats
