#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace brb::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        for (std::size_t pad = cells[c].size(); pad < widths[c] + 2; ++pad) os << ' ';
      }
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_double(double v, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, v);
  return buffer;
}

std::string fmt_millis(double millis, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*fms", precision, millis);
  return buffer;
}

std::string fmt_ratio(double v, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*fx", precision, v);
  return buffer;
}

}  // namespace brb::stats
