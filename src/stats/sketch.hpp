// Mergeable quantile sketch (DDSketch-style, relative-error bounded).
//
// `QuantileSketch` buckets positive samples on a logarithmic grid:
// bucket i covers (gamma^(i-1), gamma^i] with gamma = (1+alpha)/(1-alpha),
// so any quantile estimate is within relative error `alpha` of the true
// sample quantile (default alpha 0.01 = 1%). Buckets are never
// collapsed: the index range for nanosecond latencies up to an hour is
// ~1500 buckets at the default alpha, so the O(samples) raw vector is
// replaced by a small fixed-size structure.
//
// The merge contract is the whole point: a sketch holds only integer
// bucket counts plus order-independent min/max, so `merge` is a pure
// commutative, associative count addition. Merging per-shard sketches
// yields a sketch *byte-identical in serialized form* to the sketch of
// the unsharded stream, for ANY partition of the samples — the property
// `brbsim merge` relies on to reassemble sharded sweeps exactly.
// Deliberately absent: sum/mean (their floating-point addition order
// would break that identity; the existing `Summary` supplies means).
#pragma once

#include <cstdint>
#include <vector>

#include "stats/report.hpp"

namespace brb::stats {

class QuantileSketch {
 public:
  /// Relative error bound; gamma = (1+alpha)/(1-alpha). Throws
  /// std::invalid_argument unless 0 < alpha < 1.
  explicit QuantileSketch(double alpha = kDefaultAlpha);

  static constexpr double kDefaultAlpha = 0.01;

  /// Non-positive samples land in the dedicated zero bucket (latencies
  /// are clamped non-negative upstream, so "zero or negative" means an
  /// instantaneous completion).
  void add(double x);

  /// Adds every count of `other` into this sketch. Commutative and
  /// associative. Throws std::invalid_argument on an alpha mismatch —
  /// sketches on different grids cannot be merged exactly.
  void merge(const QuantileSketch& other);

  std::uint64_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  double alpha() const noexcept { return alpha_; }
  /// Exact (not bucketed) extremes of the stream.
  double min() const;
  double max() const;
  /// Distinct non-empty log-grid buckets currently held (excludes the
  /// zero bucket) — the O(sketch) size the artifact contract bounds.
  std::size_t bucket_count() const noexcept;

  /// q in [0,1]. Relative error at most `alpha` versus the exact
  /// sample quantile. Throws std::logic_error when empty.
  double quantile(double q) const;
  double percentile(double p) const { return quantile(p / 100.0); }

  void clear();

  /// Deterministic serialization: counts in ascending bucket order.
  /// Two sketches holding the same multiset of samples — however the
  /// samples were partitioned and merged — dump identical JSON.
  Json to_json() const;
  /// Inverse of `to_json`. Throws std::runtime_error on a malformed
  /// document.
  static QuantileSketch from_json(const Json& j);

 private:
  int index_of(double x) const;
  double value_of(int index) const;
  void ensure_index(int index);

  double alpha_;
  double gamma_;
  double log_gamma_;
  std::uint64_t count_ = 0;
  std::uint64_t zero_count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  /// Contiguous counts for indices [offset_, offset_ + size); grown on
  /// demand at either end. Empty until the first positive sample.
  std::vector<std::uint64_t> buckets_;
  int offset_ = 0;
};

}  // namespace brb::stats
