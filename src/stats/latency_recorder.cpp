#include "stats/latency_recorder.hpp"

namespace brb::stats {

namespace {
// Latencies above one hour are clamped; the simulator never produces
// them in a stable system, and the cap bounds histogram memory.
constexpr std::int64_t kMaxLatencyNanos = 3'600'000'000'000LL;
}  // namespace

LatencyRecorder::LatencyRecorder(bool keep_raw)
    : keep_raw_(keep_raw), histogram_(kMaxLatencyNanos, 3) {}

LatencyRecorder::LatencyRecorder(const LatencyRecorder& other)
    : keep_raw_(other.keep_raw_),
      histogram_(other.histogram_),
      summary_(other.summary_),
      raw_(other.raw_),
      sketch_(other.sketch_ ? std::make_unique<QuantileSketch>(*other.sketch_) : nullptr) {}

LatencyRecorder& LatencyRecorder::operator=(const LatencyRecorder& other) {
  if (this != &other) {
    keep_raw_ = other.keep_raw_;
    histogram_ = other.histogram_;
    summary_ = other.summary_;
    raw_ = other.raw_;
    sketch_ = other.sketch_ ? std::make_unique<QuantileSketch>(*other.sketch_) : nullptr;
  }
  return *this;
}

void LatencyRecorder::record(sim::Duration latency) {
  const std::int64_t ns = latency.count_nanos() < 0 ? 0 : latency.count_nanos();
  histogram_.record(ns);
  summary_.add(static_cast<double>(ns));
  if (keep_raw_) raw_.add(static_cast<double>(ns));
  if (sketch_) sketch_->add(static_cast<double>(ns));
}

void LatencyRecorder::enable_sketch(double alpha) {
  sketch_ = std::make_unique<QuantileSketch>(alpha);
}

sim::Duration LatencyRecorder::mean() const {
  return sim::Duration::nanos(static_cast<std::int64_t>(summary_.mean()));
}

sim::Duration LatencyRecorder::min() const {
  return sim::Duration::nanos(static_cast<std::int64_t>(summary_.min()));
}

sim::Duration LatencyRecorder::max() const {
  return sim::Duration::nanos(static_cast<std::int64_t>(summary_.max()));
}

sim::Duration LatencyRecorder::percentile(double p) const {
  if (keep_raw_ && !raw_.empty()) {
    return sim::Duration::nanos(static_cast<std::int64_t>(raw_.percentile(p)));
  }
  return sim::Duration::nanos(histogram_.percentile(p));
}

void LatencyRecorder::merge(const LatencyRecorder& other) {
  histogram_.merge(other.histogram_);
  summary_.merge(other.summary_);
  if (keep_raw_ && other.keep_raw_) {
    for (const double v : other.raw_.values()) raw_.add(v);
  }
  if (sketch_ && other.sketch_) sketch_->merge(*other.sketch_);
}

void LatencyRecorder::reset() {
  histogram_.reset();
  summary_.reset();
  raw_.clear();
  if (sketch_) sketch_->clear();
}

}  // namespace brb::stats
