// Machine-readable experiment artifacts.
//
// `Json` is a minimal ordered JSON document — objects, arrays, strings,
// numbers, booleans, null — sufficient for the `BENCH_*.json` artifacts
// the experiment driver emits, without an external dependency. Keys
// keep insertion order so artifacts diff cleanly across runs.
//
// Documents round-trip: `Json::parse` reads anything `dump` emits back
// into an identical document (doubles are serialized with the shortest
// representation that re-parses to the same bits), which is what lets
// `brbsim merge` reassemble sharded sweep artifacts byte-identically.
// `csv_field` quotes a value for the companion CSV emitter.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace brb::stats {

class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() noexcept : kind_(Kind::kNull) {}
  Json(bool b) noexcept : kind_(Kind::kBool), bool_(b) {}
  /// Any integer type; a uint64 above int64 range degrades to double.
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>, int> = 0>
  Json(T v) noexcept : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {
    if constexpr (std::is_unsigned_v<T> && sizeof(T) >= sizeof(std::int64_t)) {
      if (v > static_cast<T>(std::numeric_limits<std::int64_t>::max())) {
        kind_ = Kind::kDouble;
        double_ = static_cast<double>(v);
      }
    }
  }
  Json(double v) noexcept : kind_(Kind::kDouble), double_(v) {}
  Json(const char* s) : kind_(Kind::kString), string_(s) {}
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  /// Parses a complete JSON document (the inverse of `dump`). Throws
  /// std::invalid_argument with a character offset on malformed input.
  /// Numbers without '.', 'e' or 'E' that fit in int64 parse as kInt;
  /// everything else numeric parses as kDouble.
  static Json parse(std::string_view text);

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kInt || kind_ == Kind::kDouble; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  /// Scalar reads; each throws std::logic_error on a kind mismatch
  /// (as_double additionally accepts kInt).
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;

  /// Object access; inserts a null member on first use. The document
  /// must be an object (or null, which is promoted).
  Json& operator[](const std::string& key);

  /// Object member lookup: nullptr when absent (or not an object).
  const Json* find(std::string_view key) const noexcept;
  /// Object member lookup; throws std::out_of_range when absent.
  const Json& at(std::string_view key) const;
  /// Array element access; throws std::out_of_range when out of bounds.
  Json& at(std::size_t index);
  const Json& at(std::size_t index) const;

  /// Removes an object member; returns false when absent. Keeps the
  /// order of the remaining members.
  bool erase(std::string_view key);

  /// Array append. The document must be an array (or null, promoted).
  void push_back(Json value);

  /// Array elements / object members, in document order (empty for
  /// scalars).
  const std::vector<Json>& items() const noexcept { return array_; }
  const std::vector<std::pair<std::string, Json>>& members() const noexcept { return object_; }

  std::size_t size() const noexcept;

  /// Serializes with two-space indentation (compact with indent < 0).
  void dump(std::ostream& os, int indent = 2) const;
  std::string dump_string(int indent = 2) const;

 private:
  void dump_impl(std::ostream& os, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// Escapes a string for JSON (quotes not included).
std::string json_escape(const std::string& s);

/// Quotes a CSV field when it contains a comma, quote, or newline.
std::string csv_field(const std::string& s);

}  // namespace brb::stats
