// Latency collection facade used by clients and the experiment runner.
//
// Records `sim::Duration` samples into both an HDR histogram (for
// robust tail quantiles) and summary statistics; can optionally keep
// the raw samples for exact quantiles in smaller runs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/time.hpp"
#include "stats/histogram.hpp"
#include "stats/quantile.hpp"
#include "stats/sketch.hpp"
#include "stats/summary.hpp"

namespace brb::stats {

class LatencyRecorder {
 public:
  /// `keep_raw` additionally retains every sample (exact quantiles;
  /// memory proportional to sample count).
  explicit LatencyRecorder(bool keep_raw = false);

  // Copies deep-copy the optional sketch (run results are copied into
  // aggregates); moves transfer it.
  LatencyRecorder(const LatencyRecorder& other);
  LatencyRecorder& operator=(const LatencyRecorder& other);
  LatencyRecorder(LatencyRecorder&&) noexcept = default;
  LatencyRecorder& operator=(LatencyRecorder&&) noexcept = default;

  void record(sim::Duration latency);

  std::uint64_t count() const noexcept { return histogram_.count(); }
  sim::Duration mean() const;
  sim::Duration min() const;
  sim::Duration max() const;

  /// Percentile p in [0,100]. Uses exact samples when kept, else the
  /// histogram. Throws when empty.
  sim::Duration percentile(double p) const;

  const Histogram& histogram() const noexcept { return histogram_; }
  const Summary& summary() const noexcept { return summary_; }
  bool keeps_raw() const noexcept { return keep_raw_; }

  /// Opt-in mergeable sketch (`--stats=sketch`): subsequent samples are
  /// additionally recorded into a `QuantileSketch`, whose serialized
  /// form lands in artifacts as the O(sketch) replacement for raw
  /// samples. Off by default — existing artifacts stay byte-identical.
  void enable_sketch(double alpha = QuantileSketch::kDefaultAlpha);
  const QuantileSketch* sketch() const noexcept { return sketch_.get(); }

  void merge(const LatencyRecorder& other);
  void reset();

 private:
  bool keep_raw_;
  Histogram histogram_;
  Summary summary_;
  ExactQuantiles raw_;
  std::unique_ptr<QuantileSketch> sketch_;
};

}  // namespace brb::stats
