#include "stats/quantile.hpp"

#include <algorithm>
#include <cmath>

namespace brb::stats {

namespace {

/// Type-7 interpolation (the R/NumPy default) over sorted order
/// statistics. The single definition every estimator here shares, so
/// exact, warmup and reservoir quantiles can never drift apart.
double type7(const std::vector<double>& sorted, double q) {
  const double h =
      std::clamp(q, 0.0, 1.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  return sorted[lo] + (h - static_cast<double>(lo)) * (sorted[hi] - sorted[lo]);
}

}  // namespace

double ExactQuantiles::quantile(double q) const {
  if (values_.empty()) throw std::logic_error("ExactQuantiles::quantile: no samples");
  std::lock_guard<std::mutex> lock(mutex_);
  // `add` only appends, so a size mismatch is the complete staleness
  // signal (and `clear` empties both vectors).
  if (sorted_.size() != values_.size()) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
  }
  return type7(sorted_, q);
}

P2Quantile::P2Quantile(double q) : q_(q) {
  if (!(q > 0.0 && q < 1.0)) throw std::invalid_argument("P2Quantile: q must be in (0,1)");
  desired_[0] = 1;
  desired_[1] = 1 + 2 * q;
  desired_[2] = 1 + 4 * q;
  desired_[3] = 3 + 2 * q;
  desired_[4] = 5;
  increments_[0] = 0;
  increments_[1] = q / 2;
  increments_[2] = q;
  increments_[3] = (1 + q) / 2;
  increments_[4] = 1;
  warmup_.reserve(5);
}

void P2Quantile::add(double x) {
  ++n_;
  if (warmup_.size() < 5) {
    warmup_.push_back(x);
    if (warmup_.size() == 5) {
      std::sort(warmup_.begin(), warmup_.end());
      for (int i = 0; i < 5; ++i) heights_[i] = warmup_[i];
    }
    return;
  }

  int cell;
  if (x < heights_[0]) {
    heights_[0] = x;
    cell = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && x >= heights_[cell + 1]) ++cell;
  }

  for (int i = cell + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double step_up = positions_[i + 1] - positions_[i];
    const double step_down = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && step_up > 1.0) || (d <= -1.0 && step_down < -1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      double candidate = parabolic(i, sign);
      if (!(heights_[i - 1] < candidate && candidate < heights_[i + 1])) {
        candidate = linear(i, sign);
      }
      heights_[i] = candidate;
      positions_[i] += sign;
    }
  }
}

double P2Quantile::parabolic(int i, double d) const {
  const double num1 = positions_[i] - positions_[i - 1] + d;
  const double num2 = positions_[i + 1] - positions_[i] - d;
  const double den_up = positions_[i + 1] - positions_[i];
  const double den_down = positions_[i] - positions_[i - 1];
  return heights_[i] +
         d / (positions_[i + 1] - positions_[i - 1]) *
             (num1 * (heights_[i + 1] - heights_[i]) / den_up +
              num2 * (heights_[i] - heights_[i - 1]) / den_down);
}

double P2Quantile::linear(int i, double d) const {
  const int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) / (positions_[j] - positions_[i]);
}

double P2Quantile::value() const {
  if (n_ == 0) throw std::logic_error("P2Quantile::value: no samples");
  if (warmup_.size() < 5 || n_ <= 5) {
    // Exact small-sample answer, interpolated consistently with the
    // rest of the stats module (ExactQuantiles, ReservoirSample).
    std::vector<double> sorted = warmup_;
    std::sort(sorted.begin(), sorted.end());
    return type7(sorted, q_);
  }
  return heights_[2];
}

ReservoirSample::ReservoirSample(std::size_t capacity, util::Rng rng)
    : capacity_(capacity), rng_(rng) {
  if (capacity_ == 0) throw std::invalid_argument("ReservoirSample: capacity == 0");
  sample_.reserve(capacity_);
}

void ReservoirSample::add(double x) {
  ++seen_;
  if (sample_.size() < capacity_) {
    sample_.push_back(x);
    return;
  }
  // Full-width draw: `seen_` is a uint64 and may legitimately exceed
  // the int64 range that `uniform_int` covers.
  const std::uint64_t j = replacement_index(rng_, seen_);
  if (j < capacity_) sample_[static_cast<std::size_t>(j)] = x;
}

double ReservoirSample::quantile(double q) const {
  if (sample_.empty()) throw std::logic_error("ReservoirSample::quantile: no samples");
  std::vector<double> sorted = sample_;
  std::sort(sorted.begin(), sorted.end());
  return type7(sorted, q);
}

}  // namespace brb::stats
