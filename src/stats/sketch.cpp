#include "stats/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace brb::stats {

QuantileSketch::QuantileSketch(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    throw std::invalid_argument("QuantileSketch: alpha must be in (0,1)");
  }
  gamma_ = (1.0 + alpha) / (1.0 - alpha);
  log_gamma_ = std::log(gamma_);
}

int QuantileSketch::index_of(double x) const {
  // Bucket i covers (gamma^(i-1), gamma^i]; ceil puts exact powers of
  // gamma in their own bucket.
  return static_cast<int>(std::ceil(std::log(x) / log_gamma_));
}

double QuantileSketch::value_of(int index) const {
  // Midpoint estimate 2*gamma^i/(gamma+1): at most `alpha` relative
  // error from any point in the bucket's (gamma^(i-1), gamma^i] span.
  return 2.0 * std::pow(gamma_, index) / (gamma_ + 1.0);
}

void QuantileSketch::ensure_index(int index) {
  if (buckets_.empty()) {
    offset_ = index;
    buckets_.assign(1, 0);
    return;
  }
  if (index < offset_) {
    buckets_.insert(buckets_.begin(), static_cast<std::size_t>(offset_ - index), 0);
    offset_ = index;
  } else if (index >= offset_ + static_cast<int>(buckets_.size())) {
    buckets_.resize(static_cast<std::size_t>(index - offset_) + 1, 0);
  }
}

void QuantileSketch::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  if (x <= 0.0) {
    ++zero_count_;
    return;
  }
  const int index = index_of(x);
  ensure_index(index);
  ++buckets_[static_cast<std::size_t>(index - offset_)];
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.alpha_ != alpha_) {
    throw std::invalid_argument("QuantileSketch::merge: alpha mismatch");
  }
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  zero_count_ += other.zero_count_;
  if (!other.buckets_.empty()) {
    ensure_index(other.offset_);
    ensure_index(other.offset_ + static_cast<int>(other.buckets_.size()) - 1);
    for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
      buckets_[static_cast<std::size_t>(other.offset_ - offset_) + i] += other.buckets_[i];
    }
  }
}

double QuantileSketch::min() const {
  if (count_ == 0) throw std::logic_error("QuantileSketch::min: empty");
  return min_;
}

double QuantileSketch::max() const {
  if (count_ == 0) throw std::logic_error("QuantileSketch::max: empty");
  return max_;
}

std::size_t QuantileSketch::bucket_count() const noexcept {
  std::size_t n = 0;
  for (const std::uint64_t c : buckets_) {
    if (c > 0) ++n;
  }
  return n;
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) throw std::logic_error("QuantileSketch::quantile: empty");
  q = std::clamp(q, 0.0, 1.0);
  // DDSketch rank convention: the bucket holding the floor(q*(n-1))-th
  // order statistic (0-based).
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t cum = zero_count_;
  if (rank < cum) return std::max(0.0, min_);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (rank < cum) {
      const double v = value_of(offset_ + static_cast<int>(i));
      // Bucket midpoints can stick out past the observed extremes;
      // clamping only tightens the error bound.
      return std::clamp(v, min_, max_);
    }
  }
  return max_;
}

void QuantileSketch::clear() {
  count_ = 0;
  zero_count_ = 0;
  min_ = 0.0;
  max_ = 0.0;
  buckets_.clear();
  offset_ = 0;
}

Json QuantileSketch::to_json() const {
  Json j = Json::object();
  j["alpha"] = Json(alpha_);
  j["count"] = Json(count_);
  j["zero"] = Json(zero_count_);
  if (count_ > 0) {
    j["min"] = Json(min_);
    j["max"] = Json(max_);
  }
  Json buckets = Json::array();
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    Json pair = Json::array();
    pair.push_back(Json(offset_ + static_cast<int>(i)));
    pair.push_back(Json(buckets_[i]));
    buckets.push_back(std::move(pair));
  }
  j["buckets"] = std::move(buckets);
  return j;
}

QuantileSketch QuantileSketch::from_json(const Json& j) {
  const Json* alpha = j.find("alpha");
  const Json* count = j.find("count");
  const Json* zero = j.find("zero");
  const Json* buckets = j.find("buckets");
  if (alpha == nullptr || !alpha->is_number() || count == nullptr || !count->is_number() ||
      zero == nullptr || !zero->is_number() || buckets == nullptr || !buckets->is_array()) {
    throw std::runtime_error("QuantileSketch::from_json: malformed sketch document");
  }
  QuantileSketch sketch(alpha->as_double());
  sketch.count_ = static_cast<std::uint64_t>(count->as_int());
  sketch.zero_count_ = static_cast<std::uint64_t>(zero->as_int());
  if (sketch.count_ > 0) {
    const Json* min = j.find("min");
    const Json* max = j.find("max");
    if (min == nullptr || !min->is_number() || max == nullptr || !max->is_number()) {
      throw std::runtime_error("QuantileSketch::from_json: missing min/max");
    }
    sketch.min_ = min->as_double();
    sketch.max_ = max->as_double();
  }
  for (const Json& pair : buckets->items()) {
    if (!pair.is_array() || pair.size() != 2 || !pair.at(0).is_number() ||
        !pair.at(1).is_number()) {
      throw std::runtime_error("QuantileSketch::from_json: malformed bucket entry");
    }
    const int index = static_cast<int>(pair.at(0).as_int());
    const std::uint64_t bucket_count = static_cast<std::uint64_t>(pair.at(1).as_int());
    sketch.ensure_index(index);
    sketch.buckets_[static_cast<std::size_t>(index - sketch.offset_)] = bucket_count;
  }
  return sketch;
}

}  // namespace brb::stats
