// Exact and streaming quantile estimators.
//
// `ExactQuantiles` keeps every sample (used in tests as ground truth
// and in moderate-scale experiments); `P2Quantile` is the classic
// Jain & Chlamtac (1985) constant-space estimator used where memory is
// at a premium; `ReservoirSample` gives a fixed-size uniform sample.
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace brb::stats {

/// Stores all samples; quantiles computed from a lazily-sorted cache
/// with linear interpolation (type-7, the R/NumPy default).
///
/// Thread safety: concurrent `quantile` calls are safe (the sort cache
/// is mutex-guarded, so reads from the parallel multi-seed runner do
/// not race). Mutation (`add`, `clear`) must still be externally
/// serialized against readers, like any container.
class ExactQuantiles {
 public:
  ExactQuantiles() = default;
  ExactQuantiles(const ExactQuantiles& other) : values_(other.values_) {}
  ExactQuantiles(ExactQuantiles&& other) noexcept : values_(std::move(other.values_)) {}
  ExactQuantiles& operator=(const ExactQuantiles& other) {
    if (this != &other) {
      values_ = other.values_;
      sorted_.clear();
    }
    return *this;
  }
  ExactQuantiles& operator=(ExactQuantiles&& other) noexcept {
    values_ = std::move(other.values_);
    sorted_.clear();
    return *this;
  }

  void add(double x) { values_.push_back(x); }
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t count() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }

  /// q in [0,1]. Throws when empty. O(n log n) the first time after a
  /// mutation (sorts into the cache), O(1) for repeated queries.
  double quantile(double q) const;
  double percentile(double p) const { return quantile(p / 100.0); }

  void clear() {
    values_.clear();
    sorted_.clear();
  }
  /// Samples in insertion order (never reordered by quantile queries).
  const std::vector<double>& values() const noexcept { return values_; }

 private:
  std::vector<double> values_;
  mutable std::mutex mutex_;            // guards sorted_
  mutable std::vector<double> sorted_;  // cache; stale when size differs
};

/// P² single-quantile estimator: five markers, O(1) per observation.
class P2Quantile {
 public:
  /// q in (0,1).
  explicit P2Quantile(double q);

  void add(double x);
  /// Current estimate; exact while fewer than five samples seen.
  double value() const;
  std::uint64_t count() const noexcept { return n_; }

 private:
  double parabolic(int i, double d) const;
  double linear(int i, double d) const;

  double q_;
  std::uint64_t n_ = 0;
  double heights_[5] = {0, 0, 0, 0, 0};
  double positions_[5] = {1, 2, 3, 4, 5};
  double desired_[5] = {0, 0, 0, 0, 0};
  double increments_[5] = {0, 0, 0, 0, 0};
  std::vector<double> warmup_;
};

/// Algorithm-R uniform reservoir of fixed capacity.
class ReservoirSample {
 public:
  ReservoirSample(std::size_t capacity, util::Rng rng);

  void add(double x);
  std::uint64_t seen() const noexcept { return seen_; }
  const std::vector<double>& sample() const noexcept { return sample_; }

  /// Quantile over the reservoir contents. Throws when empty.
  double quantile(double q) const;

  /// Algorithm-R's replacement draw for the `seen`-th observation:
  /// uniform in [0, seen). Exposed for tests because it must stay
  /// correct past the int64 boundary `Rng::uniform_int` cannot span.
  static std::uint64_t replacement_index(util::Rng& rng, std::uint64_t seen) {
    return rng.uniform_u64_below(seen);
  }

 private:
  std::size_t capacity_;
  util::Rng rng_;
  std::uint64_t seen_ = 0;
  std::vector<double> sample_;
};

}  // namespace brb::stats
