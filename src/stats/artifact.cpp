#include "stats/artifact.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace brb::stats {

Json summary_json(const Summary& summary) {
  Json j = Json::object();
  j["mean"] = summary.mean();
  j["stddev"] = summary.stddev();
  j["min"] = summary.min();
  j["max"] = summary.max();
  return j;
}

Json sketch_block_json(const QuantileSketch& sketch) {
  // Sketches record nanoseconds; artifacts report milliseconds.
  Json j = Json::object();
  j["count"] = sketch.count();
  j["p50_ms"] = sketch.percentile(50) / 1e6;
  j["p95_ms"] = sketch.percentile(95) / 1e6;
  j["p99_ms"] = sketch.percentile(99) / 1e6;
  j["p999_ms"] = sketch.percentile(99.9) / 1e6;
  j["sketch"] = sketch.to_json();
  return j;
}

namespace {

[[noreturn]] void merge_fail(const std::string& what) {
  throw std::runtime_error("merge_artifacts: " + what);
}

void validate_envelope(const Json& doc, const std::string& context) {
  const auto need = [&](const char* key) -> const Json& {
    const Json* value = doc.find(key);
    if (value == nullptr) {
      throw std::runtime_error(context + ": not a brbsim artifact (missing '" +
                               std::string(key) + "')");
    }
    return *value;
  };
  if (!doc.is_object() || need("tool").as_string() != "brbsim") {
    throw std::runtime_error(context + ": not a brbsim artifact");
  }
  const std::int64_t format = need("format").as_int();
  if (format != kArtifactFormat) {
    throw std::runtime_error(context + ": artifact format " + std::to_string(format) +
                             " (this build reads format " + std::to_string(kArtifactFormat) +
                             ")");
  }
  need("scenario");
  need("config");
  need("seeds");
  need("cases");
  need("timing");
}

/// The shard-invariant part of an artifact: everything except which
/// units ran here (runs, aggregates, timing) and the shard tag itself.
/// Every shard of one sweep must serialize this identically.
std::string plan_fingerprint(const Json& doc) {
  Json stripped = doc;
  stripped.erase("shard");
  stripped.erase("timing");
  Json& cases = stripped["cases"];
  for (std::size_t i = 0; i < cases.size(); ++i) {
    cases.at(i).erase("task_latency_ms");
    cases.at(i).erase("task_latency_sketch");
    cases.at(i).erase("runs");
  }
  return stripped.dump_string(-1);
}

}  // namespace

Json read_artifact_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open artifact: " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  Json doc;
  try {
    doc = Json::parse(buffer.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
  validate_envelope(doc, path);
  return doc;
}

Json merge_artifacts(const std::vector<Json>& shards) {
  if (shards.empty()) merge_fail("no artifacts to merge");
  for (std::size_t i = 0; i < shards.size(); ++i) {
    validate_envelope(shards[i], "artifact #" + std::to_string(i + 1));
  }
  const std::string fingerprint = plan_fingerprint(shards[0]);
  for (std::size_t i = 1; i < shards.size(); ++i) {
    if (plan_fingerprint(shards[i]) != fingerprint) {
      merge_fail("artifact #" + std::to_string(i + 1) +
                 " describes a different sweep (scenario/config/seeds/cases mismatch)");
    }
  }

  std::vector<std::int64_t> seed_order;
  for (const Json& seed : shards[0].at("seeds").items()) seed_order.push_back(seed.as_int());

  Json merged = shards[0];
  merged.erase("shard");
  Json& cases = merged["cases"];
  double total_wall_seconds = 0.0;
  Json timing_cases = Json::array();

  for (std::size_t case_index = 0; case_index < cases.size(); ++case_index) {
    // By value: inserting task_latency_ms/runs below may reallocate the
    // case object's member storage.
    const std::string label = cases.at(case_index).at("label").as_string();
    // (seed -> (run row, wall seconds)), unioned across shards.
    std::map<std::int64_t, std::pair<Json, double>> by_seed;
    for (const Json& shard : shards) {
      const Json& shard_case = shard.at("cases").at(case_index);
      const Json& runs = shard_case.at("runs");
      const Json& walls = shard.at("timing").at("cases").at(case_index).at("wall_seconds");
      if (walls.size() != runs.size()) {
        merge_fail("case '" + label + "': timing rows do not match runs");
      }
      for (std::size_t j = 0; j < runs.size(); ++j) {
        const std::int64_t seed = runs.at(j).at("seed").as_int();
        if (!by_seed.emplace(seed, std::make_pair(runs.at(j), walls.at(j).as_double()))
                 .second) {
          merge_fail("case '" + label + "' seed " + std::to_string(seed) +
                     " executed by more than one shard");
        }
      }
    }

    // Reassemble in planned seed order and re-aggregate the cross-seed
    // summaries from the per-seed percentiles (exact: doubles
    // round-trip through the artifact bit for bit).
    Json runs = Json::array();
    Json walls = Json::array();
    Summary p50, p95, p99, mean;
    // Case-level pooled sketch, rebuilt from the per-seed sketches in
    // planned seed order. Sketch merging is exact (integer bucket
    // addition), so this reproduces the unsharded pooled block byte
    // for byte.
    std::unique_ptr<QuantileSketch> pooled_sketch;
    for (const std::int64_t seed : seed_order) {
      const auto it = by_seed.find(seed);
      if (it == by_seed.end()) {
        merge_fail("case '" + label + "' seed " + std::to_string(seed) +
                   " missing from every shard");
      }
      const Json& run = it->second.first;
      p50.add(run.at("p50_ms").as_double());
      p95.add(run.at("p95_ms").as_double());
      p99.add(run.at("p99_ms").as_double());
      mean.add(run.at("mean_ms").as_double());
      if (const Json* run_sketch = run.find("task_latency_sketch")) {
        const QuantileSketch parsed = QuantileSketch::from_json(run_sketch->at("sketch"));
        if (pooled_sketch == nullptr) {
          pooled_sketch = std::make_unique<QuantileSketch>(parsed);
        } else {
          pooled_sketch->merge(parsed);
        }
      }
      // Wall seconds live in the timing subtree of the artifact, which the
      // identity gate drops; order-sensitivity here cannot affect identity.
      // brblint:allow(BRB-D03): wall timing, excluded from artifact identity
      total_wall_seconds += it->second.second;
      walls.push_back(it->second.second);
      runs.push_back(std::move(it->second.first));
    }
    if (by_seed.size() != seed_order.size()) {
      merge_fail("case '" + label + "' has runs for unplanned seeds");
    }

    Json latency = Json::object();
    latency["p50_ms"] = summary_json(p50);
    latency["p95_ms"] = summary_json(p95);
    latency["p99_ms"] = summary_json(p99);
    latency["mean_ms"] = summary_json(mean);
    Json& merged_case = cases.at(case_index);
    merged_case["task_latency_ms"] = std::move(latency);
    merged_case["runs"] = std::move(runs);
    // Erase-then-append keeps the pooled block in its emitted position
    // (the case object's last key) whether or not shard #1's slice of
    // this case carried one.
    merged_case.erase("task_latency_sketch");
    if (pooled_sketch != nullptr && !pooled_sketch->empty()) {
      merged_case["task_latency_sketch"] = sketch_block_json(*pooled_sketch);
    }

    Json timing_case = Json::object();
    timing_case["label"] = label;
    timing_case["wall_seconds"] = std::move(walls);
    timing_cases.push_back(std::move(timing_case));
  }

  Json timing = Json::object();
  timing["total_wall_seconds"] = total_wall_seconds;
  // The fleet-wide peak is the worst single process: an RSS budget
  // must hold for every shard worker, not their (meaningless) sum.
  double peak_rss_mb = 0.0;
  bool have_rss = false;
  for (const Json& shard : shards) {
    if (const Json* rss = shard.at("timing").find("peak_rss_mb")) {
      peak_rss_mb = std::max(peak_rss_mb, rss->as_double());
      have_rss = true;
    }
  }
  if (have_rss) timing["peak_rss_mb"] = peak_rss_mb;
  timing["cases"] = std::move(timing_cases);
  merged["timing"] = std::move(timing);
  return merged;
}

void artifact_csv(std::ostream& os, const Json& artifact) {
  // Dispatch columns appear only when some run carries tail-cutting
  // metrics, so artifacts from single-target sweeps stay byte-identical
  // to pre-dispatch builds.
  bool dispatch_columns = false;
  for (const Json& item : artifact.at("cases").items()) {
    for (const Json& run : item.at("runs").items()) {
      if (run.find("duplicate_work_fraction") != nullptr) {
        dispatch_columns = true;
        break;
      }
    }
    if (dispatch_columns) break;
  }

  os << "scenario,label,system,seed,p50_ms,p95_ms,p99_ms,mean_ms,tasks_completed,"
        "requests_completed,write_requests,mean_utilization,congestion_signals,"
        "credit_hold_events,tenant_p99_ratio";
  if (dispatch_columns) {
    os << ",duplicate_work_fraction,hedges_issued,hedges_won,hedges_cancelled";
  }
  os << "\n";
  const std::string& scenario = artifact.at("scenario").as_string();
  for (const Json& item : artifact.at("cases").items()) {
    const std::string prefix = csv_field(scenario) + "," +
                               csv_field(item.at("label").as_string()) + "," +
                               item.at("system").as_string();
    for (const Json& run : item.at("runs").items()) {
      const Json* ratio = run.find("tenant_p99_ratio");
      os << prefix << "," << run.at("seed").as_int() << "," << run.at("p50_ms").as_double()
         << "," << run.at("p95_ms").as_double() << "," << run.at("p99_ms").as_double() << ","
         << run.at("mean_ms").as_double() << "," << run.at("tasks_completed").as_int() << ","
         << run.at("requests_completed").as_int() << "," << run.at("write_requests").as_int()
         << "," << run.at("mean_utilization").as_double() << ","
         << run.at("congestion_signals").as_int() << ","
         << run.at("credit_hold_events").as_int() << ","
         << (ratio != nullptr ? ratio->as_double() : 0.0);
      if (dispatch_columns) {
        const Json* dwf = run.find("duplicate_work_fraction");
        const Json* issued = run.find("hedges_issued");
        const Json* won = run.find("hedges_won");
        const Json* cancelled = run.find("hedges_cancelled");
        os << "," << (dwf != nullptr ? dwf->as_double() : 0.0) << ","
           << (issued != nullptr ? issued->as_int() : 0) << ","
           << (won != nullptr ? won->as_int() : 0) << ","
           << (cancelled != nullptr ? cancelled->as_int() : 0);
      }
      os << "\n";
    }
    // The cross-seed aggregate row (seed column = "all").
    const Json& latency = item.at("task_latency_ms");
    os << prefix << ",all," << latency.at("p50_ms").at("mean").as_double() << ","
       << latency.at("p95_ms").at("mean").as_double() << ","
       << latency.at("p99_ms").at("mean").as_double() << ","
       << latency.at("mean_ms").at("mean").as_double() << ",,,,,,,";
    if (dispatch_columns) os << ",,,,";
    os << "\n";
  }
}

}  // namespace brb::stats
