// Streaming summary statistics (Welford's online algorithm).
#pragma once

#include <cstdint>
#include <limits>

namespace brb::stats {

/// Numerically-stable single-pass mean/variance/extrema accumulator.
class Summary {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator (parallel Welford / Chan et al.).
  void merge(const Summary& other) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two samples.
  double variance() const noexcept;
  /// Unbiased sample variance; 0 for fewer than two samples.
  double sample_variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  void reset() noexcept { *this = Summary{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace brb::stats
