// brbsim artifact schema: reading, merging, and the CSV projection.
//
// A brbsim JSON artifact (format 2) is the wire format of the sharded
// sweep subsystem. Top-level keys, in order:
//
//   tool      "brbsim"
//   format    2
//   scenario  registry scenario name
//   shard     "i/N"            (only present in a --shard partial run)
//   config    the flag-resolved base ScenarioConfig
//   seeds     the full planned seed list
//   cases     one entry per ExperimentCase: spec fields, cross-seed
//             task_latency_ms summaries, and per-seed "runs" rows
//             (deterministic fields only)
//   timing    wall-clock seconds, quarantined as the LAST key so
//             artifact diffs and byte-identity checks drop exactly one
//             top-level subtree instead of excluding fields everywhere
//
// `merge_artifacts` reassembles N shard artifacts into the document the
// single-process run would have written: per-seed rows are unioned by
// (case, seed), re-ordered by the planned seed order, and the
// cross-seed summaries re-aggregated from the parsed per-seed
// percentiles. Because doubles serialize with shortest-round-trip
// precision, the merged document is byte-identical to the unsharded
// one for any shard count (timing aside).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "stats/report.hpp"
#include "stats/sketch.hpp"
#include "stats/summary.hpp"

namespace brb::stats {

/// Artifact schema version emitted by this build.
inline constexpr int kArtifactFormat = 2;

/// The {mean, stddev, min, max} block used for every cross-seed
/// statistic in an artifact (shared by the driver and the merger so
/// both serialize aggregates identically).
Json summary_json(const Summary& summary);

/// The "task_latency_sketch" block (`--stats=sketch` runs only):
/// quantiles in milliseconds plus the serialized sketch itself. Shared
/// by the driver and the merger — `merge_artifacts` re-pools the
/// per-seed sketches and re-emits this block, so the merged case-level
/// sketch is byte-identical to the unsharded one. Throws
/// std::logic_error on an empty sketch.
Json sketch_block_json(const QuantileSketch& sketch);

/// Parses one artifact file and validates the envelope (tool, format,
/// scenario/config/seeds/cases present). Throws std::runtime_error
/// with the path on any problem.
Json read_artifact_file(const std::string& path);

/// Merges shard artifacts of one sweep into the single-process
/// document. Validates that every shard describes the same plan
/// (scenario, config, seeds, case specs), that each planned
/// (case, seed) unit was executed exactly once across the shards, and
/// re-aggregates the cross-seed summaries. Throws std::runtime_error
/// on any inconsistency.
Json merge_artifacts(const std::vector<Json>& shards);

/// The CSV projection of an artifact (one row per case x seed plus an
/// aggregate row per case). The driver and `brbsim merge` both emit
/// CSV through this, so sharded and unsharded CSV match byte for byte.
void artifact_csv(std::ostream& os, const Json& artifact);

}  // namespace brb::stats
