#include "policy/replica_selector.hpp"

#include <stdexcept>

namespace brb::policy {

void ReplicaSelector::on_send(store::ServerId, sim::Duration) {}
void ReplicaSelector::on_response(store::ServerId, const store::ServerFeedback&, sim::Duration,
                                  sim::Duration) {}

SignalBackedSelector::SignalBackedSelector(ctrl::SignalTableConfig config,
                                           std::unique_ptr<ctrl::ReplicaPolicy> policy)
    : signals_(config), policy_(std::move(policy)) {
  if (!policy_) throw std::invalid_argument("SignalBackedSelector: null policy");
}

store::ServerId SignalBackedSelector::select(const std::vector<store::ServerId>& replicas,
                                             sim::Duration expected_cost) {
  return policy_->select(signals_, replicas, expected_cost);
}

void SignalBackedSelector::on_send(store::ServerId server, sim::Duration expected_cost) {
  signals_.on_send(server, expected_cost);
}

void SignalBackedSelector::on_response(store::ServerId server,
                                       const store::ServerFeedback& feedback, sim::Duration rtt,
                                       sim::Duration expected_cost) {
  signals_.on_response(server, feedback, rtt, expected_cost);
}

RandomSelector::RandomSelector(util::Rng rng)
    : SignalBackedSelector({}, std::make_unique<ctrl::RandomPolicy>(rng)) {}

RoundRobinSelector::RoundRobinSelector()
    : SignalBackedSelector({}, std::make_unique<ctrl::RoundRobinPolicy>()) {}

LeastOutstandingSelector::LeastOutstandingSelector()
    : SignalBackedSelector({}, std::make_unique<ctrl::LeastOutstandingPolicy>()) {}

TwoChoicesSelector::TwoChoicesSelector(util::Rng rng)
    : SignalBackedSelector({}, std::make_unique<ctrl::TwoChoicesPolicy>(rng)) {}

LeastPendingCostSelector::LeastPendingCostSelector()
    : SignalBackedSelector({}, std::make_unique<ctrl::LeastPendingCostPolicy>()) {}

FirstReplicaSelector::FirstReplicaSelector()
    : SignalBackedSelector({}, std::make_unique<ctrl::FirstReplicaPolicy>()) {}

}  // namespace brb::policy
