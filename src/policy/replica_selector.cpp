#include "policy/replica_selector.hpp"

#include <stdexcept>

namespace brb::policy {

void ReplicaSelector::on_send(store::ServerId, sim::Duration) {}
void ReplicaSelector::on_response(store::ServerId, const store::ServerFeedback&, sim::Duration,
                                  sim::Duration) {}

store::ServerId RandomSelector::select(const std::vector<store::ServerId>& replicas,
                                       sim::Duration) {
  if (replicas.empty()) throw std::invalid_argument("RandomSelector: empty replica set");
  const auto idx = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(replicas.size()) - 1));
  return replicas[idx];
}

store::ServerId RoundRobinSelector::select(const std::vector<store::ServerId>& replicas,
                                           sim::Duration) {
  if (replicas.empty()) throw std::invalid_argument("RoundRobinSelector: empty replica set");
  return replicas[static_cast<std::size_t>(counter_++ % replicas.size())];
}

store::ServerId LeastOutstandingSelector::select(const std::vector<store::ServerId>& replicas,
                                                 sim::Duration) {
  if (replicas.empty()) throw std::invalid_argument("LeastOutstandingSelector: empty replicas");
  // Rotate the scan start so ties do not herd every client onto the
  // lowest server id (a classic cause of load concentration).
  const std::size_t start = static_cast<std::size_t>(rotation_++) % replicas.size();
  store::ServerId best = replicas[start];
  std::uint32_t best_count = outstanding(best);
  for (std::size_t step = 1; step < replicas.size(); ++step) {
    const store::ServerId candidate = replicas[(start + step) % replicas.size()];
    const std::uint32_t count = outstanding(candidate);
    if (count < best_count) {
      best = candidate;
      best_count = count;
    }
  }
  return best;
}

std::uint32_t LeastOutstandingSelector::outstanding(store::ServerId server) const {
  return server < outstanding_.size() ? outstanding_[server] : 0;
}

void LeastOutstandingSelector::on_send(store::ServerId server, sim::Duration) {
  if (server >= outstanding_.size()) outstanding_.resize(server + 1, 0);
  ++outstanding_[server];
}

void LeastOutstandingSelector::on_response(store::ServerId server, const store::ServerFeedback&,
                                           sim::Duration, sim::Duration) {
  if (server < outstanding_.size() && outstanding_[server] > 0) --outstanding_[server];
}

store::ServerId LeastPendingCostSelector::select(const std::vector<store::ServerId>& replicas,
                                                 sim::Duration) {
  if (replicas.empty()) throw std::invalid_argument("LeastPendingCostSelector: empty replicas");
  const std::size_t start = static_cast<std::size_t>(rotation_++) % replicas.size();
  store::ServerId best = replicas[start];
  sim::Duration best_cost = pending_cost(best);
  for (std::size_t step = 1; step < replicas.size(); ++step) {
    const store::ServerId candidate = replicas[(start + step) % replicas.size()];
    const sim::Duration cost = pending_cost(candidate);
    if (cost < best_cost) {
      best = candidate;
      best_cost = cost;
    }
  }
  return best;
}

sim::Duration LeastPendingCostSelector::pending_cost(store::ServerId server) const {
  return sim::Duration::nanos(server < pending_ns_.size() ? pending_ns_[server] : 0);
}

void LeastPendingCostSelector::on_send(store::ServerId server, sim::Duration expected_cost) {
  if (server >= pending_ns_.size()) pending_ns_.resize(server + 1, 0);
  pending_ns_[server] += expected_cost.count_nanos();
}

void LeastPendingCostSelector::on_response(store::ServerId server, const store::ServerFeedback&,
                                           sim::Duration, sim::Duration expected_cost) {
  if (server >= pending_ns_.size()) return;
  pending_ns_[server] -= expected_cost.count_nanos();
  if (pending_ns_[server] < 0) pending_ns_[server] = 0;
}

store::ServerId FirstReplicaSelector::select(const std::vector<store::ServerId>& replicas,
                                             sim::Duration) {
  if (replicas.empty()) throw std::invalid_argument("FirstReplicaSelector: empty replica set");
  return replicas.front();
}

}  // namespace brb::policy
