#include "policy/priority_policy.hpp"

#include <stdexcept>
#include <unordered_map>

namespace brb::policy {

void compute_bottleneck(TaskPlan& plan) {
  std::unordered_map<store::GroupId, std::int64_t> group_cost;
  for (const PlannedRequest& request : plan.requests) {
    group_cost[request.group] += request.expected_cost.count_nanos();
  }
  std::int64_t bottleneck = 0;
  for (const auto& [group, cost] : group_cost) bottleneck = std::max(bottleneck, cost);
  plan.bottleneck_cost = sim::Duration::nanos(bottleneck);
}

void FifoPolicy::assign(TaskPlan& plan) const {
  const auto arrival_ns = static_cast<store::Priority>(plan.arrival.count_nanos());
  for (PlannedRequest& request : plan.requests) request.priority = arrival_ns;
}

void EqualMaxPolicy::assign(TaskPlan& plan) const {
  const auto bottleneck = static_cast<store::Priority>(plan.bottleneck_cost.count_nanos());
  for (PlannedRequest& request : plan.requests) request.priority = bottleneck;
}

void UnifIncrPolicy::assign(TaskPlan& plan) const {
  const std::int64_t bottleneck = plan.bottleneck_cost.count_nanos();
  for (PlannedRequest& request : plan.requests) {
    const std::int64_t slack = bottleneck - request.expected_cost.count_nanos();
    request.priority = static_cast<store::Priority>(slack < 0 ? 0 : slack);
  }
}

void RequestSjfPolicy::assign(TaskPlan& plan) const {
  for (PlannedRequest& request : plan.requests) {
    request.priority = static_cast<store::Priority>(request.expected_cost.count_nanos());
  }
}

void CumSlackPolicy::assign(TaskPlan& plan) const {
  const std::int64_t bottleneck = plan.bottleneck_cost.count_nanos();
  std::unordered_map<store::GroupId, std::int64_t> running;
  for (PlannedRequest& request : plan.requests) {
    std::int64_t& cumulative = running[request.group];
    cumulative += request.expected_cost.count_nanos();
    const std::int64_t slack = bottleneck - cumulative;
    request.priority = static_cast<store::Priority>(slack < 0 ? 0 : slack);
  }
}

std::unique_ptr<PriorityPolicy> make_priority_policy(const std::string& name) {
  if (name == "fifo") return std::make_unique<FifoPolicy>();
  if (name == "equalmax") return std::make_unique<EqualMaxPolicy>();
  if (name == "unifincr") return std::make_unique<UnifIncrPolicy>();
  if (name == "request-sjf") return std::make_unique<RequestSjfPolicy>();
  if (name == "cumslack") return std::make_unique<CumSlackPolicy>();
  throw std::invalid_argument("make_priority_policy: unknown policy: " + name);
}

}  // namespace brb::policy
