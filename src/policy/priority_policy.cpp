#include "policy/priority_policy.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace brb::policy {

namespace {

/// Per-group accumulation without a per-task hash map: pairs are
/// gathered into a thread-local scratch vector, sorted by group, and
/// summed per run. Integer sums make the result order-independent.
std::vector<std::pair<store::GroupId, std::int64_t>>& group_scratch() {
  // brblint:allow(BRB-D02): content-free reuse — cleared before every use, only capacity survives
  thread_local std::vector<std::pair<store::GroupId, std::int64_t>> scratch;
  return scratch;
}

}  // namespace

void collapse_group_costs(std::vector<std::pair<store::GroupId, std::int64_t>>& pairs) {
  // Sorting is only a grouping device here: equal-group entries sum
  // into one exact int64 total whatever their relative order, so the
  // (unstable) algorithm choice cannot change the collapsed output.
  // Typical tasks carry a handful of requests — insertion sort beats
  // introsort's dispatch overhead at that size.
  const auto by_group = [](const auto& a, const auto& b) { return a.first < b.first; };
  if (pairs.size() <= 16) {
    for (std::size_t i = 1; i < pairs.size(); ++i) {
      auto item = pairs[i];
      std::size_t j = i;
      for (; j > 0 && item.first < pairs[j - 1].first; --j) pairs[j] = pairs[j - 1];
      pairs[j] = item;
    }
  } else {
    std::sort(pairs.begin(), pairs.end(), by_group);
  }
  std::size_t out = 0;
  for (std::size_t i = 0; i < pairs.size();) {
    const store::GroupId group = pairs[i].first;
    std::int64_t cost = 0;
    for (; i < pairs.size() && pairs[i].first == group; ++i) cost += pairs[i].second;
    pairs[out++] = {group, cost};
  }
  pairs.resize(out);
}

void compute_bottleneck(TaskPlan& plan) {
  if (plan.requests.size() == 1) {
    plan.bottleneck_cost = plan.requests.front().expected_cost;
    return;
  }
  // Only the max of the per-group sums is needed, and int64 sums are
  // exact in any accumulation order — so skip the sort-and-collapse
  // pass and accumulate into a small linear-scan table (tasks touch
  // few distinct groups).
  auto& scratch = group_scratch();
  scratch.clear();
  for (const PlannedRequest& request : plan.requests) {
    std::int64_t* sum = nullptr;
    for (auto& entry : scratch) {
      if (entry.first == request.group) {
        sum = &entry.second;
        break;
      }
    }
    if (sum == nullptr) {
      scratch.emplace_back(request.group, 0);
      sum = &scratch.back().second;
    }
    *sum += request.expected_cost.count_nanos();
  }
  std::int64_t bottleneck = 0;
  for (const auto& [group, cost] : scratch) bottleneck = std::max(bottleneck, cost);
  plan.bottleneck_cost = sim::Duration::nanos(bottleneck);
}

void FifoPolicy::assign(TaskPlan& plan) const {
  const auto arrival_ns = static_cast<store::Priority>(plan.arrival.count_nanos());
  for (PlannedRequest& request : plan.requests) request.priority = arrival_ns;
}

void EqualMaxPolicy::assign(TaskPlan& plan) const {
  const auto bottleneck = static_cast<store::Priority>(plan.bottleneck_cost.count_nanos());
  for (PlannedRequest& request : plan.requests) request.priority = bottleneck;
}

void UnifIncrPolicy::assign(TaskPlan& plan) const {
  const std::int64_t bottleneck = plan.bottleneck_cost.count_nanos();
  for (PlannedRequest& request : plan.requests) {
    const std::int64_t slack = bottleneck - request.expected_cost.count_nanos();
    request.priority = static_cast<store::Priority>(slack < 0 ? 0 : slack);
  }
}

void RequestSjfPolicy::assign(TaskPlan& plan) const {
  for (PlannedRequest& request : plan.requests) {
    request.priority = static_cast<store::Priority>(request.expected_cost.count_nanos());
  }
}

void CumSlackPolicy::assign(TaskPlan& plan) const {
  const std::int64_t bottleneck = plan.bottleneck_cost.count_nanos();
  // Small linear-scan table: tasks touch few distinct groups, and the
  // running sum must follow request order, so a sort is not an option.
  auto& running = group_scratch();
  running.clear();
  for (PlannedRequest& request : plan.requests) {
    std::int64_t* cumulative = nullptr;
    for (auto& entry : running) {
      if (entry.first == request.group) {
        cumulative = &entry.second;
        break;
      }
    }
    if (cumulative == nullptr) {
      running.emplace_back(request.group, 0);
      cumulative = &running.back().second;
    }
    *cumulative += request.expected_cost.count_nanos();
    const std::int64_t slack = bottleneck - *cumulative;
    request.priority = static_cast<store::Priority>(slack < 0 ? 0 : slack);
  }
}

std::unique_ptr<PriorityPolicy> make_priority_policy(const std::string& name) {
  if (name == "fifo") return std::make_unique<FifoPolicy>();
  if (name == "equalmax") return std::make_unique<EqualMaxPolicy>();
  if (name == "unifincr") return std::make_unique<UnifIncrPolicy>();
  if (name == "request-sjf") return std::make_unique<RequestSjfPolicy>();
  if (name == "cumslack") return std::make_unique<CumSlackPolicy>();
  throw std::invalid_argument("make_priority_policy: unknown policy: " + name);
}

}  // namespace brb::policy
