// Task-aware priority assignment — the core of BRB (paper section 2.1).
//
// Clients subdivide a task into sub-tasks (one per replica group),
// forecast each sub-task's cost, take the costliest as the bottleneck,
// and stamp every request with a priority that servers honor (lower
// value = served earlier):
//
//   EqualMax : priority = bottleneck cost. Tasks with shorter
//              bottlenecks go first (SJF on task makespan).
//   UnifIncr : priority = bottleneck cost - request's own cost (its
//              slack). Requests likely to bottleneck their task have
//              little slack and are served first.
//   Fifo     : priority = task arrival time (task-oblivious control).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "store/types.hpp"

namespace brb::policy {

/// One planned request inside a task, after replica selection. A
/// write stays a single plan entry (its cost lands once in each
/// replica's sub-task serialization); the dispatch step fans it out to
/// every replica of the group with the same priority.
struct PlannedRequest {
  store::KeyId key = 0;
  std::uint32_t size_hint = 0;
  store::GroupId group = 0;
  store::ServerId server = 0;
  bool is_write = false;
  sim::Duration expected_cost = sim::Duration::zero();
  store::Priority priority = 0.0;  // output of the policy
};

/// A task after splitting and cost forecasting.
struct TaskPlan {
  store::TaskId task_id = 0;
  sim::Time arrival;
  std::vector<PlannedRequest> requests;
  /// Cost of the costliest sub-task (max over groups of the summed
  /// expected costs); filled by the planner before assign().
  sim::Duration bottleneck_cost = sim::Duration::zero();
};

/// Computes per-group sub-task costs and the bottleneck for a plan.
/// Sub-task cost = sum of its requests' expected costs (requests for
/// one replica group serialize at the chosen replica).
void compute_bottleneck(TaskPlan& plan);

/// Sorts (group, cost) pairs by group id and collapses equal-group
/// runs into summed costs, in place. Shared by the planner's replica
/// selection and compute_bottleneck so the aggregation cannot drift
/// between the two; integer sums keep the result order-independent.
void collapse_group_costs(std::vector<std::pair<store::GroupId, std::int64_t>>& pairs);

class PriorityPolicy {
 public:
  virtual ~PriorityPolicy() = default;

  /// Stamps request.priority for every request in the plan.
  virtual void assign(TaskPlan& plan) const = 0;

  virtual std::string name() const = 0;
};

/// Task-oblivious: FIFO by task arrival time.
class FifoPolicy final : public PriorityPolicy {
 public:
  void assign(TaskPlan& plan) const override;
  std::string name() const override { return "fifo"; }
};

/// BRB EqualMax (paper 2.1).
class EqualMaxPolicy final : public PriorityPolicy {
 public:
  void assign(TaskPlan& plan) const override;
  std::string name() const override { return "equalmax"; }
};

/// BRB UnifIncr (paper 2.1).
class UnifIncrPolicy final : public PriorityPolicy {
 public:
  void assign(TaskPlan& plan) const override;
  std::string name() const override { return "unifincr"; }
};

/// Per-request SJF (ablation): priority = own expected cost, ignoring
/// task structure. Separates "size-aware" from "task-aware" gains.
class RequestSjfPolicy final : public PriorityPolicy {
 public:
  void assign(TaskPlan& plan) const override;
  std::string name() const override { return "request-sjf"; }
};

/// CumSlack (this reproduction's extension of UnifIncr): requests in
/// one sub-task serialize at their replica, so the slack of request i
/// is really the bottleneck cost minus the *cumulative* cost of its
/// sub-task up to and including i — the last request of the bottleneck
/// sub-task has exactly zero slack, and earlier siblings inherit the
/// serialization they impose on later ones. UnifIncr approximates this
/// with the per-request cost alone (paper 2.1); CumSlack computes it
/// exactly. Requests within a sub-task accumulate in plan order, which
/// is the order the client transmits them.
class CumSlackPolicy final : public PriorityPolicy {
 public:
  void assign(TaskPlan& plan) const override;
  std::string name() const override { return "cumslack"; }
};

std::unique_ptr<PriorityPolicy> make_priority_policy(const std::string& name);

}  // namespace brb::policy
