// Replica selection policies.
//
// Exploiting replication ("intelligent replica selection") is the
// spatial half of BRB's optimization; the paper builds on the authors'
// prior C3 work for this. The selector interface is client-local:
// each client owns one selector instance and feeds it observations
// (sends, responses with piggybacked feedback).
//
// Since the control-plane refactor the actual decision logic lives in
// ctrl/replica_policy.hpp, reading a ctrl::SignalTable that the
// feedback path maintains. The experiment runner wires those pieces
// per client through ctrl::PolicyRuntime (which can rebind policies
// per tenant and mid-run); the concrete classes below bundle one
// private table with one policy behind the historical single-object
// API for tests, examples, and direct library use.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ctrl/replica_policy.hpp"
#include "ctrl/signal_table.hpp"
#include "sim/time.hpp"
#include "store/types.hpp"
#include "util/rng.hpp"

namespace brb::policy {

class ReplicaSelector {
 public:
  virtual ~ReplicaSelector() = default;

  /// Chooses one replica for a request (or sub-task) with the given
  /// forecast cost. `replicas` is never empty.
  virtual store::ServerId select(const std::vector<store::ServerId>& replicas,
                                 sim::Duration expected_cost) = 0;

  /// A request was actually transmitted to `server`.
  virtual void on_send(store::ServerId server, sim::Duration expected_cost);

  /// A response arrived: round-trip latency plus server feedback.
  virtual void on_response(store::ServerId server, const store::ServerFeedback& feedback,
                           sim::Duration rtt, sim::Duration expected_cost);

  virtual std::string name() const = 0;
};

/// Shim base: one private SignalTable fed by the observation hooks,
/// one ctrl policy reading it.
class SignalBackedSelector : public ReplicaSelector {
 public:
  store::ServerId select(const std::vector<store::ServerId>& replicas,
                         sim::Duration expected_cost) override;
  void on_send(store::ServerId server, sim::Duration expected_cost) override;
  void on_response(store::ServerId server, const store::ServerFeedback& feedback,
                   sim::Duration rtt, sim::Duration expected_cost) override;
  std::string name() const override { return policy_->name(); }

  const ctrl::SignalTable& signals() const noexcept { return signals_; }

 protected:
  SignalBackedSelector(ctrl::SignalTableConfig config,
                       std::unique_ptr<ctrl::ReplicaPolicy> policy);

  ctrl::SignalTable signals_;
  std::unique_ptr<ctrl::ReplicaPolicy> policy_;
};

/// Uniform random choice (the memcached-era baseline).
class RandomSelector final : public SignalBackedSelector {
 public:
  explicit RandomSelector(util::Rng rng);
};

/// Cycles deterministically through the replica list.
class RoundRobinSelector final : public SignalBackedSelector {
 public:
  RoundRobinSelector();
};

/// Fewest outstanding requests from this client (classic least-
/// outstanding-requests load balancing).
class LeastOutstandingSelector final : public SignalBackedSelector {
 public:
  LeastOutstandingSelector();

  std::uint32_t outstanding(store::ServerId server) const {
    return signals_.outstanding(server);
  }
};

/// Power of two random choices over outstanding counts.
class TwoChoicesSelector final : public SignalBackedSelector {
 public:
  explicit TwoChoicesSelector(util::Rng rng);

  std::uint32_t outstanding(store::ServerId server) const {
    return signals_.outstanding(server);
  }
};

/// Least forecast work in flight (outstanding expected cost) — BRB's
/// default: cheap, cost-aware, and sub-task friendly.
class LeastPendingCostSelector final : public SignalBackedSelector {
 public:
  LeastPendingCostSelector();

  sim::Duration pending_cost(store::ServerId server) const {
    return signals_.pending_cost(server);
  }
};

/// Always the first replica — used by the ideal model (placement is
/// irrelevant when servers work-pull from the global queue).
class FirstReplicaSelector final : public SignalBackedSelector {
 public:
  FirstReplicaSelector();
};

}  // namespace brb::policy
