// Replica selection policies.
//
// Exploiting replication ("intelligent replica selection") is the
// spatial half of BRB's optimization; the paper builds on the authors'
// prior C3 work for this. The selector interface is client-local:
// each client owns one selector instance and feeds it observations
// (sends, responses with piggybacked feedback).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "store/types.hpp"
#include "util/rng.hpp"

namespace brb::policy {

class ReplicaSelector {
 public:
  virtual ~ReplicaSelector() = default;

  /// Chooses one replica for a request (or sub-task) with the given
  /// forecast cost. `replicas` is never empty.
  virtual store::ServerId select(const std::vector<store::ServerId>& replicas,
                                 sim::Duration expected_cost) = 0;

  /// A request was actually transmitted to `server`.
  virtual void on_send(store::ServerId server, sim::Duration expected_cost);

  /// A response arrived: round-trip latency plus server feedback.
  virtual void on_response(store::ServerId server, const store::ServerFeedback& feedback,
                           sim::Duration rtt, sim::Duration expected_cost);

  virtual std::string name() const = 0;
};

/// Uniform random choice (the memcached-era baseline).
class RandomSelector final : public ReplicaSelector {
 public:
  explicit RandomSelector(util::Rng rng) : rng_(rng) {}

  store::ServerId select(const std::vector<store::ServerId>& replicas,
                         sim::Duration expected_cost) override;
  std::string name() const override { return "random"; }

 private:
  util::Rng rng_;
};

/// Cycles deterministically through the replica list.
class RoundRobinSelector final : public ReplicaSelector {
 public:
  store::ServerId select(const std::vector<store::ServerId>& replicas,
                         sim::Duration expected_cost) override;
  std::string name() const override { return "round-robin"; }

 private:
  std::uint64_t counter_ = 0;
};

/// Fewest outstanding requests from this client (classic least-
/// outstanding-requests load balancing). Ties break on server id.
class LeastOutstandingSelector final : public ReplicaSelector {
 public:
  store::ServerId select(const std::vector<store::ServerId>& replicas,
                         sim::Duration expected_cost) override;
  void on_send(store::ServerId server, sim::Duration expected_cost) override;
  void on_response(store::ServerId server, const store::ServerFeedback& feedback,
                   sim::Duration rtt, sim::Duration expected_cost) override;
  std::string name() const override { return "least-outstanding"; }

  std::uint32_t outstanding(store::ServerId server) const;

 private:
  /// Dense per-server counters indexed by ServerId; grow on first send.
  std::vector<std::uint32_t> outstanding_;
  std::uint64_t rotation_ = 0;
};

/// Least forecast work in flight (outstanding expected cost) — BRB's
/// default: cheap, cost-aware, and sub-task friendly. Ties break on
/// server id.
class LeastPendingCostSelector final : public ReplicaSelector {
 public:
  store::ServerId select(const std::vector<store::ServerId>& replicas,
                         sim::Duration expected_cost) override;
  void on_send(store::ServerId server, sim::Duration expected_cost) override;
  void on_response(store::ServerId server, const store::ServerFeedback& feedback,
                   sim::Duration rtt, sim::Duration expected_cost) override;
  std::string name() const override { return "least-pending-cost"; }

  sim::Duration pending_cost(store::ServerId server) const;

 private:
  /// Dense per-server forecast-work-in-flight, indexed by ServerId.
  std::vector<std::int64_t> pending_ns_;
  std::uint64_t rotation_ = 0;
};

/// Always the first replica — used by the ideal model (placement is
/// irrelevant when servers work-pull from the global queue).
class FirstReplicaSelector final : public ReplicaSelector {
 public:
  store::ServerId select(const std::vector<store::ServerId>& replicas,
                         sim::Duration expected_cost) override;
  std::string name() const override { return "first"; }
};

}  // namespace brb::policy
