#include "policy/c3.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace brb::policy {

ctrl::C3ScoreConfig c3_score_config(const C3Config& config) {
  ctrl::C3ScoreConfig score;
  score.queue_exponent = config.queue_exponent;
  score.num_clients = config.num_clients;
  score.prior_service_time = config.prior_service_time;
  return score;
}

C3Selector::C3Selector(C3Config config)
    : signals_(ctrl::SignalTableConfig{config.ewma_alpha}),
      policy_(c3_score_config(config)) {}

double C3Selector::score(store::ServerId server) const {
  return policy_.score(signals_, server);
}

store::ServerId C3Selector::select(const std::vector<store::ServerId>& replicas,
                                   sim::Duration expected_cost) {
  return policy_.select(signals_, replicas, expected_cost);
}

void C3Selector::on_send(store::ServerId server, sim::Duration expected_cost) {
  signals_.on_send(server, expected_cost);
}

void C3Selector::on_response(store::ServerId server, const store::ServerFeedback& feedback,
                             sim::Duration rtt, sim::Duration expected_cost) {
  signals_.on_response(server, feedback, rtt, expected_cost);
}

std::uint32_t C3Selector::outstanding(store::ServerId server) const {
  return signals_.outstanding(server);
}

CubicRateController::CubicRateController(Config config) : config_(config) {
  if (config_.initial_rate <= 0.0 || config_.max_rate < config_.initial_rate) {
    throw std::invalid_argument("CubicRateController: bad rate bounds");
  }
  if (config_.beta <= 0.0 || config_.beta >= 1.0) {
    throw std::invalid_argument("CubicRateController: beta must be in (0,1)");
  }
  if (config_.scaling <= 0.0) throw std::invalid_argument("CubicRateController: scaling <= 0");
  if (config_.burst < 1.0) throw std::invalid_argument("CubicRateController: burst < 1");
  if (config_.min_rate <= 0.0 || config_.min_rate > config_.initial_rate) {
    throw std::invalid_argument("CubicRateController: bad min_rate");
  }
  if (config_.window <= sim::Duration::zero()) {
    throw std::invalid_argument("CubicRateController: non-positive window");
  }
  if (config_.congestion_tolerance < 1.0) {
    throw std::invalid_argument("CubicRateController: tolerance < 1");
  }
}

CubicRateController::ServerRate& CubicRateController::slot(store::ServerId server,
                                                           sim::Time now) {
  if (server >= rates_.size()) rates_.resize(server + 1);
  ServerRate& s = rates_[server];
  if (!s.initialized) {
    s.rate = config_.initial_rate;
    s.tokens = config_.burst;
    s.last_refill = now;
    s.rate_max = config_.initial_rate;
    s.epoch_start = now;
    s.window_start = now;
    s.initialized = true;
  }
  return s;
}

void CubicRateController::refill(ServerRate& s, sim::Time now) const {
  const double elapsed_sec = (now - s.last_refill).as_seconds();
  if (elapsed_sec > 0) {
    s.tokens = std::min(config_.burst, s.tokens + elapsed_sec * s.rate);
    s.last_refill = now;
  }
}

bool CubicRateController::try_acquire(store::ServerId server, sim::Time now) {
  ServerRate& s = slot(server, now);
  refill(s, now);
  if (s.tokens >= 1.0) {
    s.tokens -= 1.0;
    ++s.sent_in_window;
    return true;
  }
  return false;
}

sim::Time CubicRateController::earliest_send(store::ServerId server, sim::Time now) {
  ServerRate& s = slot(server, now);
  refill(s, now);
  if (s.tokens >= 1.0) return now;
  const double deficit = 1.0 - s.tokens;
  const double wait_sec = deficit / s.rate;
  return now + std::max(sim::Duration::nanos(1), sim::Duration::seconds(wait_sec));
}

void CubicRateController::close_window(ServerRate& s, sim::Time now) {
  const double window_sec = (now - s.window_start).as_seconds();
  const bool enough_data = s.sent_in_window >= config_.min_window_samples && window_sec > 0;
  const bool congested =
      enough_data && static_cast<double>(s.sent_in_window) >
                         config_.congestion_tolerance * static_cast<double>(s.received_in_window);
  if (congested) {
    // Multiplicative decrease; remember the pre-decrease rate (W_max).
    s.rate_max = s.rate;
    s.rate = std::max(config_.min_rate, s.rate * (1.0 - config_.beta));
    s.epoch_start = now;
    ++decreases_;
  } else {
    // Cubic growth: rate(t) = C (t - K)^3 + W_max with
    // K = cbrt(W_max * beta / C), so rate(epoch_start) equals the
    // post-decrease rate and recovery accelerates toward W_max.
    const double t = (now - s.epoch_start).as_seconds();
    const double k = std::cbrt(s.rate_max * config_.beta / config_.scaling);
    const double target = config_.scaling * std::pow(t - k, 3.0) + s.rate_max;
    s.rate = std::clamp(target, config_.min_rate, config_.max_rate);
  }
  s.window_start = now;
  s.sent_in_window = 0;
  s.received_in_window = 0;
}

void CubicRateController::on_response(store::ServerId server, const store::ServerFeedback&,
                                      sim::Time now) {
  ServerRate& s = slot(server, now);
  ++s.received_in_window;
  if (now - s.window_start >= config_.window) close_window(s, now);
}

double CubicRateController::rate_of(store::ServerId server) const {
  if (server >= rates_.size() || !rates_[server].initialized) return config_.initial_rate;
  return rates_[server].rate;
}

}  // namespace brb::policy
