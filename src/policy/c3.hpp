// C3: adaptive replica selection (Suresh et al., NSDI 2015).
//
// The paper's state-of-the-art comparator. Re-implemented from the
// published description (the original is closed source):
//
//  * Replica ranking. Each client maintains, per server s, EWMAs of the
//    measured response time R̄_s, of the server-reported queue length
//    q̄_s, and of the server-reported service rate µ̄_s. The queue-size
//    estimate compensates for concurrency:
//        q̂_s = 1 + os_s * n + q̄_s
//    (os_s = this client's outstanding requests to s, n = number of
//    clients). Replicas are ranked by the cubic scoring function
//        Ψ_s = R̄_s − 1/µ̄_s + (q̂_s)^3 / µ̄_s
//    and the minimum wins. The cubic exponent penalizes long queues
//    super-linearly, avoiding herd behavior.
//
//  * Cubic rate control. Each (client, server) pair has a sending-rate
//    cap adapted like TCP CUBIC: multiplicative decrease when the
//    server's reported queue grows while we are transmitting above the
//    receive rate, cubic recovery toward the previous maximum
//    otherwise. The gate delays (never drops) requests that exceed the
//    current rate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ctrl/replica_policy.hpp"
#include "ctrl/signal_table.hpp"
#include "sim/time.hpp"
#include "store/types.hpp"

namespace brb::policy {

struct C3Config {
  /// Weight of the newest sample in the EWMAs (0..1].
  double ewma_alpha = 0.5;
  /// Exponent b of the queue-size penalty (the paper uses b = 3).
  double queue_exponent = 3.0;
  /// Concurrency compensation: number of clients sharing each server.
  std::uint32_t num_clients = 1;
  /// Initial per-server service-time guess until feedback arrives.
  sim::Duration prior_service_time = sim::Duration::micros(285);
};

/// Translates the historical C3Config into the control plane's split:
/// smoothing parameters belong to the SignalTable, scoring parameters
/// to the policy.
ctrl::C3ScoreConfig c3_score_config(const C3Config& config);

/// Client-local replica ranking (one instance per client): a private
/// SignalTable fed by the observation hooks plus the shared
/// ctrl::C3ScorePolicy ranking over it. The production path wires the
/// same policy through ctrl::PolicyRuntime (as a DispatchPolicy stack);
/// this standalone class keeps the historical single-object API for
/// tests and benches.
class C3Selector final {
 public:
  explicit C3Selector(C3Config config);

  store::ServerId select(const std::vector<store::ServerId>& replicas,
                         sim::Duration expected_cost);
  void on_send(store::ServerId server, sim::Duration expected_cost);
  void on_response(store::ServerId server, const store::ServerFeedback& feedback,
                   sim::Duration rtt, sim::Duration expected_cost);
  std::string name() const { return "c3"; }

  /// The scoring function, exposed for tests.
  double score(store::ServerId server) const;
  std::uint32_t outstanding(store::ServerId server) const;
  const ctrl::SignalTable& signals() const noexcept { return signals_; }

 private:
  ctrl::SignalTable signals_;
  ctrl::C3ScorePolicy policy_;
};

/// CUBIC-style sending-rate controller for one client (all servers).
///
/// Decisions are made per measurement window: if the transmit rate
/// sustainedly exceeds the receive rate (the server is falling behind),
/// the per-server cap decreases multiplicatively; otherwise it grows
/// along the cubic curve toward the pre-decrease maximum and beyond.
class CubicRateController {
 public:
  struct Config {
    /// Initial per-server rate cap, requests/second. 0 means "resolve
    /// to a fair share of server capacity" — the experiment runner
    /// substitutes capacity/num_clients before construction.
    double initial_rate = 0.0;
    /// Multiplicative decrease factor on congestion.
    double beta = 0.2;
    /// Cubic growth coefficient (rate units per second^3).
    double scaling = 250'000.0;
    /// Ceiling on the rate cap.
    double max_rate = 1e7;
    /// Floor on the rate cap (keeps recovery possible).
    double min_rate = 10.0;
    /// Token bucket depth (burst tolerance), in requests.
    double burst = 8.0;
    /// Rate measurement / decision window (C3 uses 20 ms).
    sim::Duration window = sim::Duration::millis(20);
    /// Send rate must exceed receive rate by this factor to count as
    /// congestion. Generous: pipeline fill during bursts makes
    /// send > receive transiently without any server distress.
    double congestion_tolerance = 1.4;
    /// Minimum sends in a window before a congestion verdict.
    std::uint32_t min_window_samples = 8;
  };

  explicit CubicRateController(Config config);

  /// True if a request to `server` may be transmitted at `now`
  /// (consumes a token and counts as a send). Otherwise the caller
  /// should retry at `earliest_send(server, now)`.
  bool try_acquire(store::ServerId server, sim::Time now);

  /// Earliest instant at which a token will be available.
  sim::Time earliest_send(store::ServerId server, sim::Time now);

  /// Feedback hook: closes measurement windows and adapts the rate.
  void on_response(store::ServerId server, const store::ServerFeedback& feedback, sim::Time now);

  double rate_of(store::ServerId server) const;
  std::uint64_t decreases() const noexcept { return decreases_; }

 private:
  struct ServerRate {
    double rate = 0.0;        // current cap, req/s
    double tokens = 0.0;      // token bucket level
    sim::Time last_refill;    // bucket bookkeeping
    double rate_max = 0.0;    // pre-decrease maximum (CUBIC W_max)
    sim::Time epoch_start;    // time of last decrease
    sim::Time window_start;   // current measurement window
    std::uint32_t sent_in_window = 0;
    std::uint32_t received_in_window = 0;
    bool initialized = false;
  };

  ServerRate& slot(store::ServerId server, sim::Time now);
  void refill(ServerRate& s, sim::Time now) const;
  void close_window(ServerRate& s, sim::Time now);

  Config config_;
  /// Dense per-server table indexed by ServerId; entries self-
  /// initialize on first use (`initialized` flag).
  std::vector<ServerRate> rates_;
  std::uint64_t decreases_ = 0;
};

}  // namespace brb::policy
