#include "client/app_client.hpp"

#include <algorithm>
#include <stdexcept>

namespace brb::client {

AppClient::AppClient(sim::Simulator& sim, Config config, const store::Partitioner& partitioner,
                     const server::ServiceTimeModel& cost_model,
                     std::unique_ptr<policy::ReplicaSelector> selector,
                     const policy::PriorityPolicy& priority_policy,
                     std::unique_ptr<DispatchGate> gate, util::Rng rng)
    : Actor(sim),
      config_(config),
      partitioner_(&partitioner),
      cost_model_(&cost_model),
      selector_(std::move(selector)),
      priority_policy_(&priority_policy),
      gate_(std::move(gate)),
      rng_(rng) {
  if (!selector_) throw std::invalid_argument("AppClient: null selector");
  if (!gate_) throw std::invalid_argument("AppClient: null gate");
  if (config_.cost_noise_sigma < 0.0) {
    throw std::invalid_argument("AppClient: negative cost noise sigma");
  }
  // Task ids are global (not per-client dense), so pending tasks stay
  // in a hash map — but sized for short chains from the start.
  pending_tasks_.max_load_factor(0.5f);
  pending_tasks_.reserve(128);
  gate_->set_transmit([this](OutboundRequest& out) { transmit_now(out); });
}

sim::Duration AppClient::forecast_cost(std::uint32_t size_hint) {
  const sim::Duration exact = cost_model_->expected(size_hint);
  if (config_.cost_noise_sigma == 0.0) return exact;
  // Multiplicative log-normal noise with unit mean models imperfect
  // size knowledge (forecast-quality ablation).
  const double sigma = config_.cost_noise_sigma;
  const double factor = rng_.lognormal(-0.5 * sigma * sigma, sigma);
  const auto noisy =
      static_cast<std::int64_t>(static_cast<double>(exact.count_nanos()) * factor);
  return sim::Duration::nanos(std::max<std::int64_t>(1, noisy));
}

void AppClient::submit(workload::TaskSpec task) {
  if (task.requests.empty()) {
    throw std::invalid_argument("AppClient::submit: task with no requests");
  }
  ++stats_.tasks_submitted;
  const store::TaskId task_id = task.id;  // spec is moved out below

  // 1. Plan: forecast costs and group requests by replica group.
  policy::TaskPlan& plan = plan_scratch_;
  plan.task_id = task.id;
  plan.arrival = now();
  plan.bottleneck_cost = sim::Duration::zero();
  plan.requests.clear();
  plan.requests.reserve(task.requests.size());
  for (const workload::RequestSpec& spec : task.requests) {
    policy::PlannedRequest planned;
    planned.key = spec.key;
    planned.size_hint = spec.size_hint;
    planned.is_write = spec.is_write;
    planned.group = partitioner_->group_of(spec.key);
    planned.expected_cost = forecast_cost(spec.size_hint);
    plan.requests.push_back(planned);
  }

  // 2. Replica selection: jointly per sub-task (BRB) or per request.
  // Group aggregation runs over sorted scratch vectors (reused across
  // submits); selectors still observe groups in ascending id order,
  // exactly as the std::map formulation did. Writes have no replica
  // freedom (every replica executes a copy), so a pure-write task
  // skips selection entirely; a mixed task (possible via
  // tasks_override) still selects for every group — its reads use the
  // choice, its writes ignore it.
  const bool all_writes =
      std::all_of(plan.requests.begin(), plan.requests.end(),
                  [](const policy::PlannedRequest& planned) { return planned.is_write; });
  if (all_writes) {
    // Generated write tasks are all-or-nothing per task.
  } else if (config_.select_per_subtask && plan.requests.size() == 1) {
    // Median fan-out is 1-2 requests: skip the aggregation machinery.
    policy::PlannedRequest& planned = plan.requests.front();
    planned.server =
        selector_->select(partitioner_->replicas_of(planned.group), planned.expected_cost);
  } else if (config_.select_per_subtask) {
    group_cost_scratch_.clear();
    for (const policy::PlannedRequest& planned : plan.requests) {
      group_cost_scratch_.emplace_back(planned.group, planned.expected_cost.count_nanos());
    }
    policy::collapse_group_costs(group_cost_scratch_);
    chosen_scratch_.clear();
    for (const auto& [group, cost] : group_cost_scratch_) {
      chosen_scratch_.emplace_back(
          group, selector_->select(partitioner_->replicas_of(group), sim::Duration::nanos(cost)));
    }
    for (policy::PlannedRequest& planned : plan.requests) {
      const auto it = std::lower_bound(
          chosen_scratch_.begin(), chosen_scratch_.end(), planned.group,
          [](const auto& entry, store::GroupId group) { return entry.first < group; });
      planned.server = it->second;
    }
  } else {
    for (policy::PlannedRequest& planned : plan.requests) {
      planned.server =
          selector_->select(partitioner_->replicas_of(planned.group), planned.expected_cost);
    }
  }

  // 3. Bottleneck + priorities (the task-aware step).
  policy::compute_bottleneck(plan);
  priority_policy_->assign(plan);

  // 4. Track the task and dispatch every request through the gate.
  // Writes fan out: one wire copy per replica of the group, all with
  // the planned priority; the task completes when the last replica
  // acknowledges. Each copy spends gate credits against its own
  // server, which is exactly the asymmetric pressure write traffic
  // puts on the credit and congestion paths.
  std::uint32_t wire_requests = 0;
  for (const policy::PlannedRequest& planned : plan.requests) {
    wire_requests += planned.is_write
                         ? static_cast<std::uint32_t>(
                               partitioner_->replicas_of(planned.group).size())
                         : 1;
  }
  PendingTask pending;
  pending.spec = std::move(task);
  pending.remaining = wire_requests;
  pending.started = now();
  pending_tasks_.emplace(task_id, std::move(pending));

  const auto dispatch = [&](const policy::PlannedRequest& planned, store::ServerId server) {
    OutboundRequest out;
    out.server = server;
    out.group = planned.group;
    out.request.request_id =
        (static_cast<std::uint64_t>(config_.id) << 40) | next_request_serial_++;
    out.request.task_id = task_id;
    out.request.key = planned.key;
    out.request.client = config_.id;
    out.request.priority = planned.priority;
    out.request.expected_cost = planned.expected_cost;
    out.request.sent_at = now();  // refined at actual transmit time
    out.request.is_write = planned.is_write;
    out.request.write_size = planned.is_write ? planned.size_hint : 0;
    // The selector sees load at *offer* time so that requests held by a
    // gate (credits exhausted, rate limited) still count against the
    // server they are bound for — otherwise the client keeps piling
    // work onto a throttled replica it believes is idle.
    selector_->on_send(out.server, out.request.expected_cost);
    gate_->offer(std::move(out));
  };
  for (const policy::PlannedRequest& planned : plan.requests) {
    if (planned.is_write) {
      for (const store::ServerId replica : partitioner_->replicas_of(planned.group)) {
        dispatch(planned, replica);
      }
    } else {
      dispatch(planned, planned.server);
    }
  }
}

void AppClient::inflight_grow() {
  std::size_t capacity = inflight_table_.size() * 2;
  for (;;) {
    std::vector<InflightSlot> bigger(capacity);
    bool collision_free = true;
    for (InflightSlot& slot : inflight_table_) {
      if (slot.serial_plus1 == 0) continue;
      InflightSlot& target = bigger[(slot.serial_plus1 - 1) & (capacity - 1)];
      if (target.serial_plus1 != 0) {
        collision_free = false;
        break;
      }
      target = slot;
    }
    if (collision_free) {
      inflight_table_ = std::move(bigger);
      return;
    }
    capacity *= 2;
  }
}

void AppClient::inflight_insert(std::uint64_t serial, const InflightRequest& data) {
  if (inflight_table_.empty()) inflight_table_.resize(64);
  for (;;) {
    InflightSlot& slot = inflight_table_[serial & (inflight_table_.size() - 1)];
    if (slot.serial_plus1 == 0) {
      slot.serial_plus1 = serial + 1;
      slot.data = data;
      ++inflight_count_;
      return;
    }
    // Two live serials collide: the in-flight window outgrew the table.
    inflight_grow();
  }
}

void AppClient::transmit_now(OutboundRequest& out) {
  if (!network_send_) throw std::logic_error("AppClient: network send hook not installed");
  out.request.sent_at = now();
  InflightRequest inflight;
  inflight.task_id = out.request.task_id;
  inflight.server = out.server;
  inflight.sent_at = now();
  inflight.expected_cost = out.request.expected_cost;
  inflight_insert(out.request.request_id & ((std::uint64_t{1} << 40) - 1), inflight);
  ++stats_.requests_sent;
  if (out.request.is_write) ++stats_.writes_sent;
  network_send_(out);
}

void AppClient::on_response(const store::ReadResponse& response) {
  const std::uint64_t serial = response.request_id & ((std::uint64_t{1} << 40) - 1);
  InflightSlot* slot = inflight_table_.empty()
                           ? nullptr
                           : &inflight_table_[serial & (inflight_table_.size() - 1)];
  if (slot == nullptr || slot->serial_plus1 != serial + 1) {
    throw std::logic_error("AppClient::on_response: unknown request id");
  }
  const InflightRequest inflight = slot->data;
  slot->serial_plus1 = 0;
  --inflight_count_;
  ++stats_.responses_received;
  if (response.is_write) ++stats_.writes_acked;

  const sim::Duration rtt = now() - inflight.sent_at;
  selector_->on_response(inflight.server, response.feedback, rtt, inflight.expected_cost);
  gate_->on_response(inflight.server, response.feedback);
  if (hooks_.on_request_complete) hooks_.on_request_complete(rtt);

  const auto task_it = pending_tasks_.find(response.task_id);
  if (task_it == pending_tasks_.end()) {
    throw std::logic_error("AppClient::on_response: response for unknown task");
  }
  PendingTask& task = task_it->second;
  if (task.remaining == 0) throw std::logic_error("AppClient::on_response: task overcomplete");
  if (--task.remaining == 0) {
    ++stats_.tasks_completed;
    const sim::Duration latency = now() - task.started;
    if (hooks_.on_task_complete) hooks_.on_task_complete(task.spec, latency);
    pending_tasks_.erase(task_it);
  }
}

}  // namespace brb::client
