#include "client/app_client.hpp"

#include <algorithm>
#include <stdexcept>

namespace brb::client {

AppClient::AppClient(sim::Simulator& sim, Config config, const store::Partitioner& partitioner,
                     const server::ServiceTimeModel& cost_model,
                     std::unique_ptr<ctrl::DispatchEndpoint> endpoint,
                     const policy::PriorityPolicy& priority_policy,
                     std::unique_ptr<DispatchGate> gate, util::Rng rng)
    : Actor(sim),
      config_(config),
      partitioner_(&partitioner),
      cost_model_(&cost_model),
      endpoint_(std::move(endpoint)),
      priority_policy_(&priority_policy),
      gate_(std::move(gate)),
      rng_(rng) {
  if (!endpoint_) throw std::invalid_argument("AppClient: null dispatch endpoint");
  if (!gate_) throw std::invalid_argument("AppClient: null gate");
  if (config_.cost_noise_sigma < 0.0) {
    throw std::invalid_argument("AppClient: negative cost noise sigma");
  }
  // Task ids are global (not per-client dense), so pending tasks stay
  // in a hash map — but sized for short chains from the start.
  pending_tasks_.max_load_factor(0.5f);
  pending_tasks_.reserve(128);
  gate_->set_transmit([this](OutboundRequest& out) { transmit_now(out); });
  // Noise-free linear cost model: forecasts are a pure function of the
  // size hint, computed inline in forecast_cost (one multiply-add; no
  // per-client state at mega-fleet client counts).
  if (config_.cost_noise_sigma == 0.0) {
    const auto* linear = dynamic_cast<const server::SizeLinearServiceModel*>(cost_model_);
    if (linear != nullptr && linear->noise_sigma() == 0.0) {
      linear_cost_ = linear;
      cost_base_nanos_ = linear->base().count_nanos();
      cost_per_byte_ = linear->per_byte_nanos();
    }
  }
}

sim::Duration AppClient::forecast_cost_slow(std::uint32_t size_hint) {
  const sim::Duration exact = cost_model_->expected(size_hint);
  if (config_.cost_noise_sigma == 0.0) return exact;
  // Multiplicative log-normal noise with unit mean models imperfect
  // size knowledge (forecast-quality ablation).
  const double sigma = config_.cost_noise_sigma;
  const double factor = rng_.lognormal(-0.5 * sigma * sigma, sigma);
  const auto noisy =
      static_cast<std::int64_t>(static_cast<double>(exact.count_nanos()) * factor);
  return sim::Duration::nanos(std::max<std::int64_t>(1, noisy));
}

void AppClient::submit(const workload::TaskView& view) {
  workload::TaskSpec spec;
  if (!spec_pool_.empty()) {
    // Recycle a requests vector from a completed task: assign() reuses
    // its capacity, so the copy out of the block slab is allocation-free.
    spec.requests = std::move(spec_pool_.back());
    spec_pool_.pop_back();
  }
  spec.id = view.id;
  spec.client = view.client;
  spec.tenant = view.tenant;
  spec.arrival = view.arrival;
  spec.requests.assign(view.requests, view.requests + view.fanout);
  submit(std::move(spec));
}

void AppClient::submit(workload::TaskSpec task) {
  if (task.requests.empty()) {
    throw std::invalid_argument("AppClient::submit: task with no requests");
  }
  ++stats_.tasks_submitted;
  const store::TaskId task_id = task.id;  // spec is moved out below

  // 1. Plan: forecast costs and group requests by replica group.
  policy::TaskPlan& plan = plan_scratch_;
  plan.task_id = task.id;
  plan.arrival = now();
  plan.bottleneck_cost = sim::Duration::zero();
  plan.requests.clear();
  plan.requests.reserve(task.requests.size());
  for (const workload::RequestSpec& spec : task.requests) {
    policy::PlannedRequest planned;
    planned.key = spec.key;
    planned.size_hint = spec.size_hint;
    planned.is_write = spec.is_write;
    planned.group = partitioner_->group_of(spec.key);
    planned.expected_cost = forecast_cost(spec.size_hint);
    plan.requests.push_back(planned);
  }

  // 2. Dispatch planning: jointly per sub-task (BRB) or per request.
  // The endpoint returns a full DispatchPlan; `planned.server` carries
  // the primary for the bottleneck/priority step, and the plan itself
  // (parallel scratch) drives multi-copy dispatch in step 4. Group
  // aggregation runs over sorted scratch vectors (reused across
  // submits); policies still observe groups in ascending id order,
  // exactly as the std::map formulation did. Writes have no replica
  // freedom (every replica executes a copy), so a pure-write task
  // skips planning entirely; a mixed task (possible via
  // tasks_override) still plans for every group — its reads use the
  // plan, its writes ignore it.
  const bool all_writes =
      std::all_of(plan.requests.begin(), plan.requests.end(),
                  [](const policy::PlannedRequest& planned) { return planned.is_write; });
  request_plan_scratch_.clear();
  request_plan_scratch_.resize(plan.requests.size());
  if (all_writes) {
    // Generated write tasks are all-or-nothing per task.
  } else if (config_.select_per_subtask && plan.requests.size() == 1) {
    // Median fan-out is 1-2 requests: skip the aggregation machinery.
    policy::PlannedRequest& planned = plan.requests.front();
    const ctrl::DispatchPlan dispatch =
        endpoint_->plan(partitioner_->replicas_of(planned.group), planned.expected_cost);
    planned.server = dispatch.primary();
    request_plan_scratch_.front() = dispatch;
  } else if (config_.select_per_subtask) {
    group_cost_scratch_.clear();
    for (const policy::PlannedRequest& planned : plan.requests) {
      group_cost_scratch_.emplace_back(planned.group, planned.expected_cost.count_nanos());
    }
    policy::collapse_group_costs(group_cost_scratch_);
    chosen_scratch_.clear();
    for (const auto& [group, cost] : group_cost_scratch_) {
      chosen_scratch_.emplace_back(
          group, endpoint_->plan(partitioner_->replicas_of(group), sim::Duration::nanos(cost)));
    }
    for (std::size_t i = 0; i < plan.requests.size(); ++i) {
      policy::PlannedRequest& planned = plan.requests[i];
      const auto it = std::lower_bound(
          chosen_scratch_.begin(), chosen_scratch_.end(), planned.group,
          [](const auto& entry, store::GroupId group) { return entry.first < group; });
      planned.server = it->second.primary();
      request_plan_scratch_[i] = it->second;
    }
  } else {
    for (std::size_t i = 0; i < plan.requests.size(); ++i) {
      policy::PlannedRequest& planned = plan.requests[i];
      const ctrl::DispatchPlan dispatch =
          endpoint_->plan(partitioner_->replicas_of(planned.group), planned.expected_cost);
      planned.server = dispatch.primary();
      request_plan_scratch_[i] = dispatch;
    }
  }

  // 3. Bottleneck + priorities (the task-aware step).
  policy::compute_bottleneck(plan);
  priority_policy_->assign(plan);

  // 4. Track the task and dispatch every request through the gate.
  // Writes fan out: one wire copy per replica of the group, all with
  // the planned priority; the task completes when the last replica
  // acknowledges. Each copy spends gate credits against its own
  // server, which is exactly the asymmetric pressure write traffic
  // puts on the credit and congestion paths. `remaining` counts
  // LOGICAL units: a multi-copy read still contributes one — its
  // duplicate copies complete (or cancel) outside task accounting.
  std::uint32_t wire_requests = 0;
  for (const policy::PlannedRequest& planned : plan.requests) {
    wire_requests += planned.is_write
                         ? static_cast<std::uint32_t>(
                               partitioner_->replicas_of(planned.group).size())
                         : 1;
  }
  PendingTask pending;
  pending.spec = std::move(task);
  pending.remaining = wire_requests;
  pending.started = now();
  pending_tasks_.emplace(task_id, std::move(pending));

  const auto dispatch = [&](const policy::PlannedRequest& planned, store::ServerId server) {
    OutboundRequest out;
    out.server = server;
    out.group = planned.group;
    out.request.request_id =
        (static_cast<std::uint64_t>(config_.id) << 40) | next_request_serial_++;
    out.request.task_id = task_id;
    out.request.key = planned.key;
    out.request.client = config_.id;
    out.request.priority = planned.priority;
    out.request.expected_cost = planned.expected_cost;
    out.request.sent_at = now();  // refined at actual transmit time
    out.request.is_write = planned.is_write;
    out.request.write_size = planned.is_write ? planned.size_hint : 0;
    // The endpoint sees load at *offer* time so that requests held by a
    // gate (credits exhausted, rate limited) still count against the
    // server they are bound for — otherwise the client keeps piling
    // work onto a throttled replica it believes is idle.
    endpoint_->on_send(out.server, out.request.expected_cost);
    gate_->offer(std::move(out));
  };
  for (std::size_t i = 0; i < plan.requests.size(); ++i) {
    const policy::PlannedRequest& planned = plan.requests[i];
    if (planned.is_write) {
      for (const store::ServerId replica : partitioner_->replicas_of(planned.group)) {
        dispatch(planned, replica);
      }
    } else if (request_plan_scratch_[i].mode == ctrl::DispatchMode::kSingle) {
      if (request_plan_scratch_[i].skipped_fresh) ++stats_.hedges_skipped_fresh;
      dispatch(planned, planned.server);
    } else {
      dispatch_plan(planned, request_plan_scratch_[i], task_id);
    }
  }
}

// ---------------------------------------------------------------------------
// Multi-copy logical requests (hedge / tied / kofn executor)

std::uint32_t AppClient::logical_alloc() {
  ++logical_count_;
  if (logical_free_head_ != kNoLogical) {
    const std::uint32_t index = logical_free_head_;
    logical_free_head_ = logicals_[index].next_free;
    return index;
  }
  logicals_.emplace_back();
  return static_cast<std::uint32_t>(logicals_.size() - 1);
}

void AppClient::logical_release(std::uint32_t index) {
  logicals_[index].next_free = logical_free_head_;
  logical_free_head_ = index;
  --logical_count_;
}

void AppClient::maybe_release_logical(std::uint32_t index) {
  LogicalRequest& lr = logicals_[index];
  // An armed hedge deadline keeps the slot live: its closure captures
  // this index, and recycling under it would fire onto a stranger.
  if (!lr.completed || lr.hedge_armed) return;
  for (std::uint8_t c = 0; c < lr.num_targets; ++c) {
    const std::uint8_t state = lr.copy_state[c];
    if (state == kCopyInFlight || state == kTombstone) return;
  }
  logical_release(index);
}

void AppClient::issue_copy(std::uint32_t index, std::uint8_t copy) {
  LogicalRequest& lr = logicals_[index];
  OutboundRequest out;
  out.server = lr.targets[copy];
  out.group = lr.group;
  out.logical = index;
  out.copy = copy;
  out.request = lr.request;
  out.request.request_id =
      (static_cast<std::uint64_t>(config_.id) << 40) | next_request_serial_++;
  out.request.sent_at = now();  // refined at actual transmit time
  lr.copy_serial_plus1[copy] = (out.request.request_id & ((std::uint64_t{1} << 40) - 1)) + 1;
  lr.copy_state[copy] = kCopyInFlight;
  // Offer-time accounting, exactly like single-copy dispatch: a held
  // duplicate still counts against the server it is bound for.
  endpoint_->on_send(out.server, out.request.expected_cost);
  gate_->offer(std::move(out));
}

void AppClient::hedge_fire(std::uint32_t index) {
  LogicalRequest& lr = logicals_[index];
  lr.hedge_armed = false;
  if (lr.completed) {
    // The response's cancel lost the race with this firing (the event
    // was already claimed for delivery): just disarm and release.
    maybe_release_logical(index);
    return;
  }
  ++stats_.hedges_issued;
  ++stats_.duplicates_sent;
  issue_copy(index, 1);
}

void AppClient::dispatch_plan(const policy::PlannedRequest& planned,
                              const ctrl::DispatchPlan& dispatch, store::TaskId task_id) {
  const std::uint32_t index = logical_alloc();
  LogicalRequest& lr = logicals_[index];
  lr.group = planned.group;
  lr.targets = dispatch.targets;
  lr.copy_serial_plus1.fill(0);
  lr.copy_state.fill(kUnissued);
  lr.num_targets = dispatch.num_targets;
  lr.needed = dispatch.needed;
  lr.received = 0;
  lr.mode = dispatch.mode;
  lr.completed = false;
  lr.claimed = false;
  lr.hedge_armed = false;
  // Template for the copies: they differ only in request_id and server.
  lr.request.request_id = 0;
  lr.request.task_id = task_id;
  lr.request.key = planned.key;
  lr.request.client = config_.id;
  lr.request.priority = planned.priority;
  lr.request.expected_cost = planned.expected_cost;
  lr.request.sent_at = now();
  lr.request.is_write = false;
  lr.request.write_size = 0;

  switch (dispatch.mode) {
    case ctrl::DispatchMode::kHedge:
      issue_copy(index, 0);
      lr.hedge_armed = true;
      lr.hedge_event =
          sim().schedule_after(dispatch.hedge_delay, [this, index] { hedge_fire(index); });
      break;
    case ctrl::DispatchMode::kTied:
      issue_copy(index, 0);
      ++stats_.duplicates_sent;
      issue_copy(index, 1);
      break;
    case ctrl::DispatchMode::kKofn:
      for (std::uint8_t c = 0; c < dispatch.num_targets; ++c) issue_copy(index, c);
      stats_.duplicates_sent +=
          static_cast<std::uint64_t>(dispatch.num_targets - dispatch.needed);
      break;
    case ctrl::DispatchMode::kSingle:
      throw std::logic_error("AppClient::dispatch_plan: single-mode plan");
  }
}

bool AppClient::admit_service(const store::ReadRequest& request) {
  const std::uint64_t serial = request.request_id & ((std::uint64_t{1} << 40) - 1);
  if (inflight_table_.empty()) return true;
  InflightSlot& slot = inflight_table_[serial & (inflight_table_.size() - 1)];
  // Unknown serials (another client's request routed here by mistake
  // cannot happen — the wiring keys filters by request.client; writes
  // and single-mode reads) admit unconditionally.
  if (slot.serial_plus1 != serial + 1) return true;
  const std::uint32_t logical_index = slot.data.logical;
  if (logical_index == kNoLogical) return true;
  LogicalRequest& lr = logicals_[logical_index];
  const std::uint8_t copy = slot.data.copy;
  if (lr.copy_state[copy] == kTombstone) {
    // Rejected at dequeue: the loser consumes no core and no
    // service-time draw. Finalize the copy here.
    const store::ServerId server = slot.data.server;
    const sim::Duration expected_cost = slot.data.expected_cost;
    slot.serial_plus1 = 0;
    --inflight_count_;
    endpoint_->on_cancel(server, expected_cost);
    ++stats_.duplicates_cancelled;
    lr.copy_state[copy] = kCopyDone;
    lr.copy_serial_plus1[copy] = 0;
    maybe_release_logical(logical_index);
    return false;
  }
  if (lr.mode == ctrl::DispatchMode::kTied && !lr.claimed) {
    // First copy to reach service claims the logical request; the
    // sibling is tombstoned and will be rejected at its own dequeue
    // (or dropped at the gate if still held).
    lr.claimed = true;
    for (std::uint8_t c = 0; c < lr.num_targets; ++c) {
      if (c != copy && lr.copy_state[c] == kCopyInFlight) lr.copy_state[c] = kTombstone;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// In-flight window table + wire path

void AppClient::inflight_grow() {
  std::size_t capacity = inflight_table_.size() * 2;
  for (;;) {
    std::vector<InflightSlot> bigger(capacity);
    bool collision_free = true;
    for (InflightSlot& slot : inflight_table_) {
      if (slot.serial_plus1 == 0) continue;
      InflightSlot& target = bigger[(slot.serial_plus1 - 1) & (capacity - 1)];
      if (target.serial_plus1 != 0) {
        collision_free = false;
        break;
      }
      target = slot;
    }
    if (collision_free) {
      inflight_table_ = std::move(bigger);
      return;
    }
    capacity *= 2;
  }
}

void AppClient::inflight_insert(std::uint64_t serial, const InflightRequest& data) {
  if (inflight_table_.empty()) inflight_table_.resize(64);
  for (;;) {
    InflightSlot& slot = inflight_table_[serial & (inflight_table_.size() - 1)];
    if (slot.serial_plus1 == 0) {
      slot.serial_plus1 = serial + 1;
      slot.data = data;
      ++inflight_count_;
      return;
    }
    // Two live serials collide: the in-flight window outgrew the table.
    inflight_grow();
  }
}

void AppClient::transmit_now(OutboundRequest& out) {
  if (!network_send_) throw std::logic_error("AppClient: network send hook not installed");
  if (out.logical != kNoLogical && logicals_[out.logical].copy_state[out.copy] == kTombstone) {
    // Cancelled while held at the gate: the copy never reaches the
    // wire. Release its offer-time accounting and finalize.
    LogicalRequest& lr = logicals_[out.logical];
    endpoint_->on_cancel(out.server, out.request.expected_cost);
    ++stats_.duplicates_cancelled;
    lr.copy_state[out.copy] = kCopyDone;
    lr.copy_serial_plus1[out.copy] = 0;
    maybe_release_logical(out.logical);
    return;
  }
  out.request.sent_at = now();
  InflightRequest inflight;
  inflight.task_id = out.request.task_id;
  inflight.server = out.server;
  inflight.sent_at = now();
  inflight.expected_cost = out.request.expected_cost;
  inflight.logical = out.logical;
  inflight.copy = out.copy;
  inflight_insert(out.request.request_id & ((std::uint64_t{1} << 40) - 1), inflight);
  ++stats_.requests_sent;
  if (out.request.is_write) ++stats_.writes_sent;
  network_send_(out);
}

void AppClient::on_response(const store::ReadResponse& response) {
  const std::uint64_t serial = response.request_id & ((std::uint64_t{1} << 40) - 1);
  InflightSlot* slot = inflight_table_.empty()
                           ? nullptr
                           : &inflight_table_[serial & (inflight_table_.size() - 1)];
  if (slot == nullptr || slot->serial_plus1 != serial + 1) {
    throw std::logic_error("AppClient::on_response: unknown request id");
  }
  const InflightRequest inflight = slot->data;
  slot->serial_plus1 = 0;
  --inflight_count_;
  ++stats_.responses_received;
  if (response.is_write) ++stats_.writes_acked;

  const sim::Duration rtt = now() - inflight.sent_at;
  // Real server work produced real feedback — fold it even for
  // absorbed duplicates; only *cancelled* copies skip the EWMA path.
  endpoint_->on_response(inflight.server, response.feedback, rtt, inflight.expected_cost, now());
  gate_->on_response(inflight.server, response.feedback);

  if (inflight.logical != kNoLogical) {
    LogicalRequest& lr = logicals_[inflight.logical];
    lr.copy_state[inflight.copy] = kCopyDone;
    lr.copy_serial_plus1[inflight.copy] = 0;
    if (lr.completed) {
      // Absorbed duplicate: it was already in (or past) service when
      // the logical request completed — the quantified wasted work.
      ++stats_.duplicates_served;
      maybe_release_logical(inflight.logical);
      return;
    }
    ++lr.received;
    if (hooks_.on_request_complete) hooks_.on_request_complete(rtt);
    if (lr.received < lr.needed) return;

    lr.completed = true;
    if (lr.mode == ctrl::DispatchMode::kHedge && inflight.copy != 0) ++stats_.hedges_won;
    if (lr.hedge_armed && sim().cancel(lr.hedge_event)) {
      // O(1) wheel cancel; on failure the already-claimed firing will
      // see `completed`, disarm itself, and release the slot.
      lr.hedge_armed = false;
      ++stats_.hedges_cancelled;
    }
    for (std::uint8_t c = 0; c < lr.num_targets; ++c) {
      if (lr.copy_state[c] == kCopyInFlight) lr.copy_state[c] = kTombstone;
    }
    maybe_release_logical(inflight.logical);
    // Fall through to task accounting: the logical unit completed.
  } else {
    if (hooks_.on_request_complete) hooks_.on_request_complete(rtt);
  }

  const auto task_it = pending_tasks_.find(response.task_id);
  if (task_it == pending_tasks_.end()) {
    throw std::logic_error("AppClient::on_response: response for unknown task");
  }
  PendingTask& task = task_it->second;
  if (task.remaining == 0) throw std::logic_error("AppClient::on_response: task overcomplete");
  if (--task.remaining == 0) {
    ++stats_.tasks_completed;
    const sim::Duration latency = now() - task.started;
    if (hooks_.on_task_complete) hooks_.on_task_complete(task.spec, latency);
    if (spec_pool_.size() < kSpecPoolMax) {
      // Hand the spent requests vector back to the submit(TaskView)
      // slab pool; its capacity is reused by the next task.
      task.spec.requests.clear();
      spec_pool_.push_back(std::move(task.spec.requests));
    }
    pending_tasks_.erase(task_it);
  }
}

}  // namespace brb::client
