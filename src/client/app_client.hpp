// The application server ("client" in the paper's terminology).
//
// Receives end-user tasks, splits them into sub-tasks (one per replica
// group), forecasts request costs from requested value sizes, asks the
// control plane for a dispatch plan per sub-task, assigns BRB
// priorities, and dispatches through the configured gate. Tracks
// in-flight requests and reports task completion (a task completes
// when its last request completes — the property all of BRB exploits).
//
// The client is also the dispatch-plan *executor* (tail-cutting):
//  * hedge — copy 0 goes out immediately; a cancellable engine event
//    armed at the plan's quantile deadline issues the back-up, and the
//    first response cancels the timer (or tombstones the loser).
//  * tied — both copies are enqueued at once; the first copy to reach
//    service *claims* the logical request (server-side admission
//    filter) and the sibling is rejected at its dequeue.
//  * kofn — n copies go out; the k-th response completes the logical
//    request and the stragglers are tombstoned.
// A tombstoned copy is finalized at exactly one of three points: the
// gate drop (never transmitted), the dequeue rejection (admission
// filter), or the absorbed response (it was already in service).
// Either way its SignalTable accounting is released via the
// endpoint's single feedback path, so duplicates never corrupt C3's
// estimates.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "client/dispatch_gate.hpp"
#include "ctrl/dispatch_policy.hpp"
#include "policy/priority_policy.hpp"
#include "server/service_model.hpp"
#include "sim/simulator.hpp"
#include "store/partitioner.hpp"
#include "util/rng.hpp"
#include "workload/task.hpp"

namespace brb::client {

/// Cumulative per-client counters.
struct ClientStats {
  std::uint64_t tasks_submitted = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t responses_received = 0;
  /// Write replica copies sent / acknowledged (subset of the above).
  std::uint64_t writes_sent = 0;
  std::uint64_t writes_acked = 0;
  // --- tail-cutting (dispatch modes other than single) ---
  /// Hedge back-up copies actually issued (deadline fired).
  std::uint64_t hedges_issued = 0;
  /// Logical requests completed by the hedge back-up, not the primary.
  std::uint64_t hedges_won = 0;
  /// Armed hedge deadlines cancelled by a response before firing.
  std::uint64_t hedges_cancelled = 0;
  /// Hedge plans degraded to single because the primary's feedback was
  /// fresher than the configured fresh= age (signal-aware skip).
  std::uint64_t hedges_skipped_fresh = 0;
  /// Duplicate copies offered beyond the needed count (tied siblings,
  /// kofn extras, fired hedge back-ups).
  std::uint64_t duplicates_sent = 0;
  /// Duplicates cancelled before consuming service (gate drop or
  /// dequeue rejection).
  std::uint64_t duplicates_cancelled = 0;
  /// Duplicates that consumed full service after the logical request
  /// had already completed (the wasted work the metric quantifies).
  std::uint64_t duplicates_served = 0;
};

class AppClient : public sim::Actor {
 public:
  struct Config {
    store::ClientId id = 0;
    /// log-normal sigma of multiplicative forecast noise; 0 = exact
    /// size knowledge (the default assumption in the paper).
    double cost_noise_sigma = 0.0;
    /// Select a replica once per sub-task (true, BRB's joint choice)
    /// or independently per request (false, C3-style).
    bool select_per_subtask = true;
  };

  /// Completion hooks, installed by the experiment runner.
  struct Hooks {
    std::function<void(const workload::TaskSpec&, sim::Duration latency)> on_task_complete;
    std::function<void(sim::Duration latency)> on_request_complete;
  };

  AppClient(sim::Simulator& sim, Config config, const store::Partitioner& partitioner,
            const server::ServiceTimeModel& cost_model,
            std::unique_ptr<ctrl::DispatchEndpoint> endpoint,
            const policy::PriorityPolicy& priority_policy, std::unique_ptr<DispatchGate> gate,
            util::Rng rng);

  /// Transport hook: actually puts a request on the wire. Installed by
  /// the cluster wiring.
  using NetworkSendFn = std::function<void(const OutboundRequest&)>;
  void set_network_send(NetworkSendFn fn) { network_send_ = std::move(fn); }
  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  /// Entry point: a task arrives at this application server. By value:
  /// callers that are done with the spec (trace replay, tests) move it
  /// in, and the client moves it again into its pending-task record —
  /// the per-task requests vector is never copied on the hot path.
  void submit(workload::TaskSpec task);

  /// Hot-path entry: a borrowed view into the generator's TaskBlock
  /// slab. The request span is copied into a requests vector recycled
  /// from completed tasks, so steady-state submission allocates
  /// nothing (the spec must own its requests for the lifetime of the
  /// task — completion hooks take `const TaskSpec&`).
  void submit(const workload::TaskView& view);

  /// Delivery of a response from the network.
  void on_response(const store::ReadResponse& response);

  /// Called by the gate when a request is released to the transport:
  /// stamps send time, drops tombstoned duplicates, transmits.
  void transmit_now(OutboundRequest& out);

  /// Server-side admission filter (installed only when some dispatch
  /// mode can issue duplicates): called synchronously at service
  /// start. Returns false to reject a tombstoned copy (it consumes no
  /// core and no service-time draw); a tied request's first copy to
  /// reach service claims the logical request here and tombstones its
  /// sibling.
  bool admit_service(const store::ReadRequest& request);

  const ClientStats& stats() const noexcept { return stats_; }
  const Config& config() const noexcept { return config_; }
  DispatchGate& gate() noexcept { return *gate_; }
  ctrl::DispatchEndpoint& endpoint() noexcept { return *endpoint_; }
  std::uint64_t in_flight() const noexcept { return inflight_count_; }
  /// Logical (multi-copy) requests still live — 0 once drained.
  std::uint64_t logical_in_flight() const noexcept { return logical_count_; }

 private:
  /// Sentinel: this wire request is not part of a multi-copy logical
  /// request (single mode, writes) — the zero-overhead legacy path.
  static constexpr std::uint32_t kNoLogical = OutboundRequest::kNoLogical;

  struct InflightRequest {
    store::TaskId task_id = 0;
    store::ServerId server = 0;
    sim::Time sent_at;
    sim::Duration expected_cost = sim::Duration::zero();
    std::uint32_t logical = kNoLogical;  // index into logicals_
    std::uint8_t copy = 0;               // which plan target this copy is
  };
  struct PendingTask {
    workload::TaskSpec spec;
    std::uint32_t remaining = 0;
    sim::Time started;
  };
  /// One slot of the in-flight window table (serial_plus1 == 0: empty).
  struct InflightSlot {
    std::uint64_t serial_plus1 = 0;
    InflightRequest data;
  };

  /// Per-copy lifecycle of a multi-copy logical request.
  enum CopyState : std::uint8_t {
    kUnissued = 0,   // hedge back-up before the deadline fires
    kCopyInFlight,   // offered (possibly gate-held or being serviced)
    kTombstone,      // cancelled; finalize at gate/dequeue/response
    kCopyDone,       // finalized (responded, dropped, or rejected)
  };

  /// One multi-copy logical request (free-list pooled). `completed`
  /// means the needed responses arrived and the task-level accounting
  /// ran; the slot is recycled once every issued copy is finalized and
  /// no hedge timer can still fire.
  struct LogicalRequest {
    store::ReadRequest request;  // template for issuing further copies
    store::GroupId group = 0;
    std::array<store::ServerId, ctrl::DispatchPlan::kMaxTargets> targets{};
    std::array<std::uint64_t, ctrl::DispatchPlan::kMaxTargets> copy_serial_plus1{};
    std::array<std::uint8_t, ctrl::DispatchPlan::kMaxTargets> copy_state{};
    std::uint8_t num_targets = 0;
    std::uint8_t needed = 1;
    std::uint8_t received = 0;
    ctrl::DispatchMode mode = ctrl::DispatchMode::kSingle;
    bool completed = false;
    bool claimed = false;      // tied: a copy reached service first
    bool hedge_armed = false;  // a cancellable deadline event is live
    sim::EventId hedge_event = 0;
    std::uint32_t next_free = kNoLogical;
  };

  /// Expected-cost forecast with the virtual dispatch peeled off: the
  /// noise-free linear model (the default configuration) collapses to
  /// one multiply-add, computed inline — no per-client state, which
  /// matters at mega-fleet client counts. Identical to
  /// `cost_model_->expected(size_hint)` plus the optional noise draw.
  sim::Duration forecast_cost(std::uint32_t size_hint) {
    if (linear_cost_ != nullptr) {
      return sim::Duration::nanos(
          cost_base_nanos_ +
          static_cast<std::int64_t>(cost_per_byte_ * static_cast<double>(size_hint)));
    }
    return forecast_cost_slow(size_hint);
  }
  sim::Duration forecast_cost_slow(std::uint32_t size_hint);
  void inflight_insert(std::uint64_t serial, const InflightRequest& data);
  /// Doubles the window table until every live serial maps to a
  /// distinct slot again.
  void inflight_grow();

  std::uint32_t logical_alloc();
  void logical_release(std::uint32_t index);
  /// Recycles the slot once completed, all issued copies finalized,
  /// and no armed hedge deadline remains.
  void maybe_release_logical(std::uint32_t index);
  /// Offers copy `copy` of logical request `index` through the gate.
  void issue_copy(std::uint32_t index, std::uint8_t copy);
  /// Hedge deadline fired: issue the back-up unless already complete.
  void hedge_fire(std::uint32_t index);
  /// Dispatches one read according to `plan` (multi-copy modes).
  void dispatch_plan(const policy::PlannedRequest& planned, const ctrl::DispatchPlan& plan,
                     store::TaskId task_id);

  Config config_;
  /// Noise-free linear cost model, resolved once (null otherwise).
  const server::SizeLinearServiceModel* linear_cost_ = nullptr;
  std::int64_t cost_base_nanos_ = 0;
  double cost_per_byte_ = 0.0;
  /// Requests vectors recycled from completed tasks, feeding the
  /// TaskView submit path (bounded; steady state allocates nothing).
  static constexpr std::size_t kSpecPoolMax = 64;
  std::vector<std::vector<workload::RequestSpec>> spec_pool_;
  /// Planning scratch reused across submits — the per-task std::maps
  /// this replaces dominated client-side allocation at paper scale.
  policy::TaskPlan plan_scratch_;
  std::vector<std::pair<store::GroupId, std::int64_t>> group_cost_scratch_;
  std::vector<std::pair<store::GroupId, ctrl::DispatchPlan>> chosen_scratch_;
  /// Per-request plans (parallel to plan_scratch_.requests) for the
  /// multi-copy dispatch step; single-mode plans never touch it.
  std::vector<ctrl::DispatchPlan> request_plan_scratch_;
  const store::Partitioner* partitioner_;
  const server::ServiceTimeModel* cost_model_;
  std::unique_ptr<ctrl::DispatchEndpoint> endpoint_;
  const policy::PriorityPolicy* priority_policy_;
  std::unique_ptr<DispatchGate> gate_;
  util::Rng rng_;
  NetworkSendFn network_send_;
  Hooks hooks_;
  ClientStats stats_;
  /// In-flight request state, keyed by the request's per-client serial
  /// (the low 40 bits of its id — dense and monotonically increasing).
  /// A power-of-two window table indexed by `serial & mask` replaces
  /// the hash map: live serials span a bounded window, so the table
  /// grows to the max in-flight span and then runs collision-free.
  std::vector<InflightSlot> inflight_table_;
  std::uint64_t inflight_count_ = 0;
  /// Multi-copy logical requests, free-list pooled (never shrinks;
  /// bounded by the max simultaneous multi-copy window).
  std::vector<LogicalRequest> logicals_;
  std::uint32_t logical_free_head_ = kNoLogical;
  std::uint64_t logical_count_ = 0;
  /// Lookup-only (find/emplace/erase by task id) — never iterated, so
  /// hash order cannot reach completion order or artifacts.
  std::unordered_map<store::TaskId, PendingTask> pending_tasks_;  // brblint:allow(BRB-D01): lookup-only, never iterated
  std::uint64_t next_request_serial_ = 0;
};

}  // namespace brb::client
