// The application server ("client" in the paper's terminology).
//
// Receives end-user tasks, splits them into sub-tasks (one per replica
// group), forecasts request costs from requested value sizes, selects a
// replica per sub-task, assigns BRB priorities, and dispatches through
// the configured gate. Tracks in-flight requests and reports task
// completion (a task completes when its last request completes — the
// property all of BRB exploits).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "client/dispatch_gate.hpp"
#include "policy/priority_policy.hpp"
#include "policy/replica_selector.hpp"
#include "server/service_model.hpp"
#include "sim/simulator.hpp"
#include "store/partitioner.hpp"
#include "util/rng.hpp"
#include "workload/task.hpp"

namespace brb::client {

/// Cumulative per-client counters.
struct ClientStats {
  std::uint64_t tasks_submitted = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t responses_received = 0;
  /// Write replica copies sent / acknowledged (subset of the above).
  std::uint64_t writes_sent = 0;
  std::uint64_t writes_acked = 0;
};

class AppClient : public sim::Actor {
 public:
  struct Config {
    store::ClientId id = 0;
    /// log-normal sigma of multiplicative forecast noise; 0 = exact
    /// size knowledge (the default assumption in the paper).
    double cost_noise_sigma = 0.0;
    /// Select a replica once per sub-task (true, BRB's joint choice)
    /// or independently per request (false, C3-style).
    bool select_per_subtask = true;
  };

  /// Completion hooks, installed by the experiment runner.
  struct Hooks {
    std::function<void(const workload::TaskSpec&, sim::Duration latency)> on_task_complete;
    std::function<void(sim::Duration latency)> on_request_complete;
  };

  AppClient(sim::Simulator& sim, Config config, const store::Partitioner& partitioner,
            const server::ServiceTimeModel& cost_model,
            std::unique_ptr<policy::ReplicaSelector> selector,
            const policy::PriorityPolicy& priority_policy, std::unique_ptr<DispatchGate> gate,
            util::Rng rng);

  /// Transport hook: actually puts a request on the wire. Installed by
  /// the cluster wiring.
  using NetworkSendFn = std::function<void(const OutboundRequest&)>;
  void set_network_send(NetworkSendFn fn) { network_send_ = std::move(fn); }
  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  /// Entry point: a task arrives at this application server. By value:
  /// callers that are done with the spec (the arrival pump) move it in,
  /// and the client moves it again into its pending-task record — the
  /// per-task requests vector is never copied on the hot path.
  void submit(workload::TaskSpec task);

  /// Delivery of a response from the network.
  void on_response(const store::ReadResponse& response);

  /// Called by the gate when a request is released to the transport:
  /// stamps send time, notifies the selector, transmits.
  void transmit_now(OutboundRequest& out);

  const ClientStats& stats() const noexcept { return stats_; }
  const Config& config() const noexcept { return config_; }
  DispatchGate& gate() noexcept { return *gate_; }
  policy::ReplicaSelector& selector() noexcept { return *selector_; }
  std::uint64_t in_flight() const noexcept { return inflight_count_; }

 private:
  struct InflightRequest {
    store::TaskId task_id = 0;
    store::ServerId server = 0;
    sim::Time sent_at;
    sim::Duration expected_cost = sim::Duration::zero();
  };
  struct PendingTask {
    workload::TaskSpec spec;
    std::uint32_t remaining = 0;
    sim::Time started;
  };
  /// One slot of the in-flight window table (serial_plus1 == 0: empty).
  struct InflightSlot {
    std::uint64_t serial_plus1 = 0;
    InflightRequest data;
  };

  sim::Duration forecast_cost(std::uint32_t size_hint);
  void inflight_insert(std::uint64_t serial, const InflightRequest& data);
  /// Doubles the window table until every live serial maps to a
  /// distinct slot again.
  void inflight_grow();

  Config config_;
  /// Planning scratch reused across submits — the per-task std::maps
  /// this replaces dominated client-side allocation at paper scale.
  policy::TaskPlan plan_scratch_;
  std::vector<std::pair<store::GroupId, std::int64_t>> group_cost_scratch_;
  std::vector<std::pair<store::GroupId, store::ServerId>> chosen_scratch_;
  const store::Partitioner* partitioner_;
  const server::ServiceTimeModel* cost_model_;
  std::unique_ptr<policy::ReplicaSelector> selector_;
  const policy::PriorityPolicy* priority_policy_;
  std::unique_ptr<DispatchGate> gate_;
  util::Rng rng_;
  NetworkSendFn network_send_;
  Hooks hooks_;
  ClientStats stats_;
  /// In-flight request state, keyed by the request's per-client serial
  /// (the low 40 bits of its id — dense and monotonically increasing).
  /// A power-of-two window table indexed by `serial & mask` replaces
  /// the hash map: live serials span a bounded window, so the table
  /// grows to the max in-flight span and then runs collision-free.
  std::vector<InflightSlot> inflight_table_;
  std::uint64_t inflight_count_ = 0;
  /// Lookup-only (find/emplace/erase by task id) — never iterated, so
  /// hash order cannot reach completion order or artifacts.
  std::unordered_map<store::TaskId, PendingTask> pending_tasks_;  // brblint:allow(BRB-D01): lookup-only, never iterated
  std::uint64_t next_request_serial_ = 0;
};

}  // namespace brb::client
