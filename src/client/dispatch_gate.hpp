// Dispatch gates: how planned requests leave the client.
//
// BRB's realizations differ exactly here — direct transmission, C3's
// cubic rate limiting, the credits scheme (core/credits.hpp), or
// submission into the ideal global queue (core/global_queue.hpp). The
// gate receives fully-planned requests (replica chosen, priority
// stamped) and decides *when* to hand them to the transport.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "ctrl/signal_table.hpp"
#include "policy/c3.hpp"
#include "sim/simulator.hpp"
#include "store/types.hpp"

namespace brb::client {

/// A planned request on its way out of the client.
struct OutboundRequest {
  /// `logical` sentinel: not part of a multi-copy logical request.
  static constexpr std::uint32_t kNoLogical = 0xffffffffu;

  store::ReadRequest request;
  store::ServerId server = 0;
  store::GroupId group = 0;
  /// Multi-copy dispatch (hedge/tied/kofn): index of the logical
  /// request this copy belongs to, and which plan target it is. The
  /// client uses them to drop tombstoned copies at transmit time.
  std::uint32_t logical = kNoLogical;
  std::uint8_t copy = 0;
};

class DispatchGate {
 public:
  /// Installed by the client: stamps send-time state and transmits.
  using TransmitFn = std::function<void(OutboundRequest&)>;

  virtual ~DispatchGate() = default;

  void set_transmit(TransmitFn fn) { transmit_ = std::move(fn); }

  /// Accepts a planned request; transmits now or later (never drops).
  virtual void offer(OutboundRequest out) = 0;

  /// Response feedback hook (rate/credit controllers use it).
  virtual void on_response(store::ServerId server, const store::ServerFeedback& feedback) {
    (void)server;
    (void)feedback;
  }

  /// Requests currently held back by the gate.
  virtual std::size_t held() const noexcept { return 0; }

  virtual std::string name() const = 0;

 protected:
  void transmit(OutboundRequest& out) { transmit_(out); }

 private:
  TransmitFn transmit_;
};

/// No gating: transmit immediately.
class DirectGate final : public DispatchGate {
 public:
  void offer(OutboundRequest out) override { transmit(out); }
  std::string name() const override { return "direct"; }
};

/// C3's cubic rate limiter: per-server FIFO hold queues drained by a
/// token bucket whose rate adapts cubically to server feedback.
class RateLimitedGate final : public DispatchGate {
 public:
  RateLimitedGate(sim::Simulator& sim, policy::CubicRateController::Config config);

  void offer(OutboundRequest out) override;
  void on_response(store::ServerId server, const store::ServerFeedback& feedback) override;
  std::size_t held() const noexcept override { return held_; }
  std::string name() const override { return "cubic-rate"; }

  /// Mirrors the per-server rate caps into the client's SignalTable:
  /// seeded with the controller's initial rate for servers
  /// [0, num_servers) immediately, then updated whenever the
  /// controller adapts (control-plane observability; selection
  /// policies may read `rate_cap`).
  void attach_signals(ctrl::SignalTable* signals, std::uint32_t num_servers = 0) {
    signals_ = signals;
    if (signals_ == nullptr) return;
    for (std::uint32_t s = 0; s < num_servers; ++s) {
      signals_->set_rate_cap(s, controller_.rate_of(s));
    }
  }

  const policy::CubicRateController& controller() const noexcept { return controller_; }

 private:
  /// Per-server hold state, indexed densely by ServerId.
  struct PerServer {
    std::deque<OutboundRequest> queue;
    bool drain_scheduled = false;
  };

  PerServer& slot(store::ServerId server);
  void drain(store::ServerId server);
  void schedule_drain(store::ServerId server);

  sim::Simulator* sim_;
  policy::CubicRateController controller_;
  std::vector<PerServer> servers_;
  ctrl::SignalTable* signals_ = nullptr;
  std::size_t held_ = 0;
};

}  // namespace brb::client
