#include "client/dispatch_gate.hpp"

#include <utility>

namespace brb::client {

RateLimitedGate::RateLimitedGate(sim::Simulator& sim,
                                 policy::CubicRateController::Config config)
    : sim_(&sim), controller_(config) {}

void RateLimitedGate::offer(OutboundRequest out) {
  const store::ServerId server = out.server;
  auto& queue = queues_[server];
  if (queue.empty() && controller_.try_acquire(server, sim_->now())) {
    transmit(out);
    return;
  }
  queue.push_back(std::move(out));
  ++held_;
  schedule_drain(server);
}

void RateLimitedGate::schedule_drain(store::ServerId server) {
  auto& scheduled = drain_scheduled_[server];
  if (scheduled) return;
  scheduled = true;
  const sim::Time when = controller_.earliest_send(server, sim_->now());
  sim_->schedule_at(when, [this, server] {
    drain_scheduled_[server] = false;
    drain(server);
  });
}

void RateLimitedGate::drain(store::ServerId server) {
  auto& queue = queues_[server];
  while (!queue.empty() && controller_.try_acquire(server, sim_->now())) {
    OutboundRequest out = std::move(queue.front());
    queue.pop_front();
    --held_;
    transmit(out);
  }
  if (!queue.empty()) schedule_drain(server);
}

void RateLimitedGate::on_response(store::ServerId server, const store::ServerFeedback& feedback) {
  controller_.on_response(server, feedback, sim_->now());
  // A rate increase may allow held requests to go out sooner.
  if (const auto it = queues_.find(server); it != queues_.end() && !it->second.empty()) {
    schedule_drain(server);
  }
}

}  // namespace brb::client
