#include "client/dispatch_gate.hpp"

#include <utility>

namespace brb::client {

RateLimitedGate::RateLimitedGate(sim::Simulator& sim,
                                 policy::CubicRateController::Config config)
    : sim_(&sim), controller_(config) {}

RateLimitedGate::PerServer& RateLimitedGate::slot(store::ServerId server) {
  if (server >= servers_.size()) servers_.resize(server + 1);
  return servers_[server];
}

void RateLimitedGate::offer(OutboundRequest out) {
  const store::ServerId server = out.server;
  PerServer& ps = slot(server);
  if (ps.queue.empty() && controller_.try_acquire(server, sim_->now())) {
    transmit(out);
    return;
  }
  ps.queue.push_back(std::move(out));
  ++held_;
  schedule_drain(server);
}

void RateLimitedGate::schedule_drain(store::ServerId server) {
  PerServer& ps = slot(server);
  if (ps.drain_scheduled) return;
  ps.drain_scheduled = true;
  const sim::Time when = controller_.earliest_send(server, sim_->now());
  sim_->schedule_at(when, [this, server] {
    servers_[server].drain_scheduled = false;
    drain(server);
  });
}

void RateLimitedGate::drain(store::ServerId server) {
  PerServer& ps = servers_[server];
  while (!ps.queue.empty() && controller_.try_acquire(server, sim_->now())) {
    OutboundRequest out = std::move(ps.queue.front());
    ps.queue.pop_front();
    --held_;
    transmit(out);
  }
  if (!ps.queue.empty()) schedule_drain(server);
}

void RateLimitedGate::on_response(store::ServerId server, const store::ServerFeedback& feedback) {
  controller_.on_response(server, feedback, sim_->now());
  if (signals_ != nullptr) signals_->set_rate_cap(server, controller_.rate_of(server));
  // A rate increase may allow held requests to go out sooner.
  if (server < servers_.size() && !servers_[server].queue.empty()) {
    schedule_drain(server);
  }
}

}  // namespace brb::client
