#include "util/logger.hpp"

namespace brb::util {

LogLevel Logger::level_ = LogLevel::kWarn;

namespace {

std::string_view level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

bool Logger::set_level_from_name(std::string_view name) noexcept {
  if (name == "trace") {
    level_ = LogLevel::kTrace;
  } else if (name == "debug") {
    level_ = LogLevel::kDebug;
  } else if (name == "info") {
    level_ = LogLevel::kInfo;
  } else if (name == "warn") {
    level_ = LogLevel::kWarn;
  } else if (name == "error") {
    level_ = LogLevel::kError;
  } else if (name == "off") {
    level_ = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

void Logger::write(LogLevel level, std::string_view component, std::string_view message) {
  if (!enabled(level)) return;
  std::cerr << '[' << level_name(level) << "] [" << component << "] " << message << '\n';
}

}  // namespace brb::util
