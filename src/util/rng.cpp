#include "util/rng.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace brb::util {

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) noexcept {
  SplitMix64 mixer(seed);
  for (auto& word : s_) word = mixer.next();
  // An all-zero state is the one invalid state; SplitMix64 cannot emit
  // four consecutive zeros, but guard anyway for defence in depth.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

void Xoshiro256StarStar::long_jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kLongJump = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t jump : kLongJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      (void)next();
    }
  }
  s_ = acc;
}

Rng Rng::split() noexcept {
  const std::uint64_t child_seed = gen_.next();
  gen_.long_jump();
  return Rng(child_seed);
}

std::int64_t Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("Rng::poisson: mean < 0");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double limit = std::exp(-mean);
    std::int64_t count = -1;
    double product = 1.0;
    do {
      product *= uniform();
      ++count;
    } while (product > limit);
    return count;
  }
  // Normal approximation with continuity correction, clamped at zero;
  // adequate for the large-mean counts used in tests and calibration.
  const double draw = normal(mean, std::sqrt(mean));
  return std::max<std::int64_t>(0, static_cast<std::int64_t>(std::lround(draw)));
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("Rng::weighted_index: no positive weight");
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical slack: land on the last entry
}

ZipfDistribution::ZipfDistribution(double exponent, std::uint64_t num_elements)
    : s_(exponent), n_(num_elements) {
  if (num_elements == 0) {
    throw std::invalid_argument("ZipfDistribution: num_elements == 0");
  }
  if (exponent < 0.0) {
    throw std::invalid_argument("ZipfDistribution: exponent < 0");
  }
  h_x1_ = h(1.5) - 1.0;
  h_n_ = h(static_cast<double>(n_) + 0.5);
  cut_ = 1.0 - h_inv(h(2.5) - std::pow(2.0, -s_));
}

}  // namespace brb::util
