#include "util/rng.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace brb::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) noexcept {
  SplitMix64 mixer(seed);
  for (auto& word : s_) word = mixer.next();
  // An all-zero state is the one invalid state; SplitMix64 cannot emit
  // four consecutive zeros, but guard anyway for defence in depth.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Xoshiro256StarStar::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256StarStar::long_jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kLongJump = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t jump : kLongJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      (void)next();
    }
  }
  s_ = acc;
}

Rng Rng::split() noexcept {
  const std::uint64_t child_seed = gen_.next();
  gen_.long_jump();
  return Rng(child_seed);
}

double Rng::uniform() noexcept {
  // 53 uniform mantissa bits -> double in [0, 1).
  return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  // Width computed in unsigned arithmetic: hi - lo can overflow int64
  // (full-span requests), which is well-defined only for unsigned.
  const std::uint64_t range =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(gen_.next());  // full span
  return lo + static_cast<std::int64_t>(uniform_u64_below(range));
}

std::uint64_t Rng::uniform_u64_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::uniform_u64_below: bound == 0");
  // Classic rejection sampling: discard the partial block at the top of
  // the 64-bit space so every residue is equally likely.
  const std::uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t r = gen_.next();
    if (r >= threshold) return r % bound;
  }
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("Rng::exponential: mean <= 0");
  double u = uniform();
  // uniform() can return exactly 0; log(0) is -inf, so nudge.
  if (u <= 0.0) u = std::numeric_limits<double>::min();
  return -mean * std::log(u);
}

double Rng::normal(double mu, double sigma) {
  double u1 = uniform();
  if (u1 <= 0.0) u1 = std::numeric_limits<double>::min();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return mu + sigma * radius * std::cos(kTwoPi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double shape, double scale) {
  if (shape <= 0.0 || scale <= 0.0) {
    throw std::invalid_argument("Rng::pareto: shape and scale must be > 0");
  }
  double u = uniform();
  if (u <= 0.0) u = std::numeric_limits<double>::min();
  return scale / std::pow(u, 1.0 / shape);
}

double Rng::generalized_pareto(double shape, double scale, double location) {
  if (scale <= 0.0) {
    throw std::invalid_argument("Rng::generalized_pareto: scale must be > 0");
  }
  double u = uniform();
  if (u <= 0.0) u = std::numeric_limits<double>::min();
  if (std::abs(shape) < 1e-12) {
    return location - scale * std::log(u);
  }
  return location + scale * (std::pow(u, -shape) - 1.0) / shape;
}

double Rng::bounded_pareto(double shape, double lo, double hi) {
  if (shape <= 0.0 || lo <= 0.0 || lo >= hi) {
    throw std::invalid_argument("Rng::bounded_pareto: need shape > 0, 0 < lo < hi");
  }
  const double u = uniform();
  const double lo_a = std::pow(lo, shape);
  const double hi_a = std::pow(hi, shape);
  // Inverse CDF of the truncated Pareto.
  return std::pow(-(u * hi_a - u * lo_a - hi_a) / (hi_a * lo_a), -1.0 / shape);
}

std::int64_t Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("Rng::poisson: mean < 0");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double limit = std::exp(-mean);
    std::int64_t count = -1;
    double product = 1.0;
    do {
      product *= uniform();
      ++count;
    } while (product > limit);
    return count;
  }
  // Normal approximation with continuity correction, clamped at zero;
  // adequate for the large-mean counts used in tests and calibration.
  const double draw = normal(mean, std::sqrt(mean));
  return std::max<std::int64_t>(0, static_cast<std::int64_t>(std::lround(draw)));
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("Rng::weighted_index: no positive weight");
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical slack: land on the last entry
}

ZipfDistribution::ZipfDistribution(double exponent, std::uint64_t num_elements)
    : s_(exponent), n_(num_elements) {
  if (num_elements == 0) {
    throw std::invalid_argument("ZipfDistribution: num_elements == 0");
  }
  if (exponent < 0.0) {
    throw std::invalid_argument("ZipfDistribution: exponent < 0");
  }
  h_x1_ = h(1.5) - 1.0;
  h_n_ = h(static_cast<double>(n_) + 0.5);
  cut_ = 1.0 - h_inv(h(2.5) - std::pow(2.0, -s_));
}

double ZipfDistribution::h(double x) const {
  // Integral of x^-s: primitive H(x); special-cased at s == 1 (log).
  if (std::abs(s_ - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfDistribution::h_inv(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

std::uint64_t ZipfDistribution::sample(Rng& rng) const {
  if (n_ == 1) return 1;
  for (;;) {
    const double u = h_n_ + rng.uniform() * (h_x1_ - h_n_);
    const double x = h_inv(u);
    auto k = static_cast<std::uint64_t>(x + 0.5);
    k = std::clamp<std::uint64_t>(k, 1, n_);
    if (static_cast<double>(k) - x <= cut_) return k;
    if (u >= h(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -s_)) {
      return k;
    }
  }
}

}  // namespace brb::util
