// Strong typedef for dense integer identifiers.
//
// The engine indexes everything by small dense integers (clients,
// servers, tenants). Raw integers make those indices interchangeable,
// and a client index silently used as a server index is exactly the
// kind of bug that survives until an artifact diff catches it — or
// doesn't. `StrongId` is a zero-cost wrapper that makes each ID kind a
// distinct type: construction from the raw representation is explicit,
// comparison only works within a kind, and `.value()` is the single,
// greppable way back to the integer (for array indexing).
//
// brblint's BRB-D04 check enforces that API boundaries use these (or
// the dense aliases in store/ids.hpp) instead of raw integers.
#pragma once

#include <compare>

namespace brb::util {

template <class Tag, class Rep>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() noexcept = default;
  constexpr explicit StrongId(Rep value) noexcept : value_(value) {}

  /// The raw representation — the one escape hatch, used at dense
  /// array-indexing sites.
  [[nodiscard]] constexpr Rep value() const noexcept { return value_; }
  constexpr explicit operator Rep() const noexcept { return value_; }

  friend constexpr auto operator<=>(StrongId, StrongId) noexcept = default;

  /// Dense iteration support (for (TenantId t{0}; t < end; ++t)).
  constexpr StrongId& operator++() noexcept {
    ++value_;
    return *this;
  }
  constexpr StrongId operator++(int) noexcept {
    StrongId before = *this;
    ++value_;
    return before;
  }

 private:
  Rep value_{};
};

}  // namespace brb::util
