// Minimal leveled logger.
//
// The simulator is hot-path sensitive: log statements below the active
// level cost one branch. Output goes to stderr so bench tables on stdout
// stay machine-parsable.
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace brb::util {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Process-wide log level. Defaults to kWarn so library consumers are
/// quiet unless they opt in.
class Logger {
 public:
  static LogLevel level() noexcept { return level_; }
  static void set_level(LogLevel level) noexcept { level_ = level; }
  static bool enabled(LogLevel level) noexcept { return level >= level_; }

  /// Parses "trace"/"debug"/"info"/"warn"/"error"/"off"; unknown names
  /// leave the level unchanged and return false.
  static bool set_level_from_name(std::string_view name) noexcept;

  static void write(LogLevel level, std::string_view component, std::string_view message);

 private:
  static LogLevel level_;
};

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::write(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace brb::util

// Streaming log macros; the argument expressions are not evaluated when
// the level is disabled.
#define BRB_LOG(level, component)                        \
  if (!::brb::util::Logger::enabled(level)) {            \
  } else                                                 \
    ::brb::util::detail::LogLine(level, component)

#define BRB_TRACE(component) BRB_LOG(::brb::util::LogLevel::kTrace, component)
#define BRB_DEBUG(component) BRB_LOG(::brb::util::LogLevel::kDebug, component)
#define BRB_INFO(component) BRB_LOG(::brb::util::LogLevel::kInfo, component)
#define BRB_WARN(component) BRB_LOG(::brb::util::LogLevel::kWarn, component)
#define BRB_ERROR(component) BRB_LOG(::brb::util::LogLevel::kError, component)
