// Tiny command-line flag parser for the bench harnesses and examples.
//
// Supports `--name value`, `--name=value`, and boolean `--name`
// (no value). Also reads `BRB_`-prefixed environment variables as
// defaults so `BRB_PAPER=1 ./bench_fig2_latency` works in the
// argument-less `for b in build/bench/*` loop.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace brb::util {

class Flags {
 public:
  /// Parses argv. Throws std::invalid_argument on a malformed flag
  /// (missing value for `--name` followed by another flag is treated as
  /// a boolean `true`).
  Flags(int argc, const char* const* argv);

  /// Builds an empty flag set (environment variables still consulted).
  Flags() = default;

  /// Looks up a flag, falling back to the environment variable
  /// BRB_<NAME> (upper-cased, '-' replaced by '_').
  std::optional<std::string> get(std::string_view name) const;

  std::string get_string(std::string_view name, std::string_view fallback) const;
  std::int64_t get_int(std::string_view name, std::int64_t fallback) const;
  /// Non-negative integer flag (counts, sizes). Throws
  /// std::invalid_argument on a negative value instead of letting a
  /// "--tasks=-1" wrap through an unsigned cast.
  std::uint64_t get_uint(std::string_view name, std::uint64_t fallback) const;
  double get_double(std::string_view name, double fallback) const;
  bool get_bool(std::string_view name, bool fallback) const;

  /// Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const noexcept { return positional_; }

  /// True if the flag was passed explicitly on the command line.
  bool has(std::string_view name) const;

  /// Names of every flag passed explicitly on the command line (sorted;
  /// environment defaults are not included). Lets tools validate
  /// against their recognized-flag list.
  std::vector<std::string> cli_names() const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

/// Damerau-ish edit distance for did-you-mean hints (insert, delete,
/// substitute; no transposition). Exposed for tests.
std::size_t edit_distance(std::string_view a, std::string_view b);

/// The closest candidate within a small edit budget; nullopt when
/// nothing is plausibly a typo of `name`.
std::optional<std::string> closest_name(std::string_view name,
                                        const std::vector<std::string>& candidates);

}  // namespace brb::util
