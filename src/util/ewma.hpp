// Exponentially-weighted moving averages, shared by every smoothing
// site in the tree (C3's response/queue/service estimates in the
// control plane's SignalTable, the backend server's advertised service
// rate, the credits controller's demand matrix).
//
// Before this header each component carried its own copy of the same
// two lines; keeping them here guarantees the update stays the exact
// expression `alpha * sample + (1 - alpha) * previous` everywhere —
// artifact byte-identity across refactors depends on it.
#pragma once

#include <stdexcept>
#include <string>

namespace brb::util {

/// One smoothing step. This exact expression (including evaluation
/// order) is what every pre-dedupe call site computed; do not "simplify"
/// to `previous + alpha * (sample - previous)` — that is a different
/// floating-point result.
inline double ewma_update(double previous, double alpha, double sample) noexcept {
  return alpha * sample + (1.0 - alpha) * previous;
}

inline void validate_ewma_alpha(double alpha, const char* who) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument(std::string(who) + ": ewma alpha must be in (0,1]");
  }
}

/// A scalar EWMA with the two seeding behaviors used in the tree:
///   Ewma(alpha)          — unseeded; the first observation becomes the
///                          value verbatim (C3's estimates).
///   Ewma(alpha, initial) — seeded with a prior; every observation
///                          blends (the server's advertised rate).
/// Flat arrays of smoothed values (the credits demand matrix) use
/// `ewma_update` directly instead of storing an object per cell.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) { validate_ewma_alpha(alpha, "Ewma"); }
  Ewma(double alpha, double initial) : alpha_(alpha), value_(initial), seen_(true) {
    validate_ewma_alpha(alpha, "Ewma");
  }

  void observe(double sample) noexcept {
    value_ = seen_ ? ewma_update(value_, alpha_, sample) : sample;
    seen_ = true;
  }

  double value() const noexcept { return value_; }
  bool seen() const noexcept { return seen_; }
  double alpha() const noexcept { return alpha_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seen_ = false;
};

}  // namespace brb::util
