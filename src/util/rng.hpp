// Deterministic pseudo-random number generation for the BRB simulator.
//
// All stochastic behaviour in the library flows through `Rng`, a
// xoshiro256** generator seeded via SplitMix64. Components derive
// independent sub-streams with `Rng::split()` so that adding a consumer
// never perturbs the draws seen by another (critical for reproducible
// multi-seed experiments).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace brb::util {

/// SplitMix64: fast 64-bit mixer used for seeding and stream derivation.
/// Reference: Steele, Lea, Flood. "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the general-purpose generator recommended by Blackman &
/// Vigna (2018). 256-bit state, period 2^256 - 1, passes BigCrush.
class Xoshiro256StarStar {
 public:
  explicit Xoshiro256StarStar(std::uint64_t seed) noexcept;

  std::uint64_t next() noexcept;

  /// Advances the state by 2^128 steps; used to derive non-overlapping
  /// sub-streams from one seed.
  void long_jump() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// High-level random source with the distribution samplers the simulator
/// and workload generators need. Cheap to copy; each copy continues the
/// same stream, so prefer `split()` to create independent streams.
class Rng {
 public:
  /// Seeds the stream. Identical seeds yield identical draw sequences.
  explicit Rng(std::uint64_t seed) noexcept : gen_(seed) {}

  /// Derives an independent stream: the child is seeded from this
  /// stream's output, then this stream long-jumps so parent and child
  /// never overlap.
  Rng split() noexcept;

  /// Raw 64 uniform bits.
  std::uint64_t next_u64() noexcept { return gen_.next(); }

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform integer in [0, bound). Requires bound > 0. Covers the full
  /// uint64 range, unlike `uniform_int` whose bounds are int64 — use
  /// this for counters that may exceed 2^63 (e.g. reservoir sampling).
  std::uint64_t uniform_u64_below(std::uint64_t bound);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Exponential with the given mean (= 1/rate). Requires mean > 0.
  double exponential(double mean);

  /// Standard normal via Box-Muller (no cached spare: stateless).
  double normal(double mu, double sigma);

  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Classic Pareto (Type I): support [scale, inf), P(X > x) = (scale/x)^shape.
  /// Requires shape > 0, scale > 0.
  double pareto(double shape, double scale);

  /// Generalized Pareto: location + scale * ((1-u)^(-shape) - 1) / shape.
  /// shape == 0 degenerates to the (shifted) exponential. Requires scale > 0.
  double generalized_pareto(double shape, double scale, double location);

  /// Pareto truncated to [lo, hi] by inverse-CDF restriction (not
  /// rejection), so the cost is a single draw. Requires 0 < lo < hi.
  double bounded_pareto(double shape, double lo, double hi);

  /// Poisson-distributed count with the given mean. Knuth's product
  /// method for small means, PTRS-style normal-based rejection cutover
  /// for large means. Requires mean >= 0.
  std::int64_t poisson(double mean);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

 private:
  Xoshiro256StarStar gen_;
};

/// Zipf(s, n) sampler over {1, ..., n} using rejection-inversion
/// (Hoermann & Derflinger 1996), O(1) per draw after O(1) setup, valid
/// for any exponent s >= 0 (s == 0 is the uniform distribution).
class ZipfDistribution {
 public:
  ZipfDistribution(double exponent, std::uint64_t num_elements);

  /// Draws a rank in [1, num_elements].
  std::uint64_t sample(Rng& rng) const;

  double exponent() const noexcept { return s_; }
  std::uint64_t num_elements() const noexcept { return n_; }

 private:
  double h(double x) const;
  double h_inv(double x) const;

  double s_ = 0.0;
  std::uint64_t n_ = 0;
  double h_x1_ = 0.0;
  double h_n_ = 0.0;
  double cut_ = 0.0;
};

}  // namespace brb::util
