// Deterministic pseudo-random number generation for the BRB simulator.
//
// All stochastic behaviour in the library flows through `Rng`, a
// xoshiro256** generator seeded via SplitMix64. Components derive
// independent sub-streams with `Rng::split()` so that adding a consumer
// never perturbs the draws seen by another (critical for reproducible
// multi-seed experiments).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace brb::util {

/// SplitMix64: fast 64-bit mixer used for seeding and stream derivation.
/// Reference: Steele, Lea, Flood. "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the general-purpose generator recommended by Blackman &
/// Vigna (2018). 256-bit state, period 2^256 - 1, passes BigCrush.
class Xoshiro256StarStar {
 public:
  explicit Xoshiro256StarStar(std::uint64_t seed) noexcept;

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Advances the state by 2^128 steps; used to derive non-overlapping
  /// sub-streams from one seed.
  void long_jump() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
};

/// High-level random source with the distribution samplers the simulator
/// and workload generators need. Cheap to copy; each copy continues the
/// same stream, so prefer `split()` to create independent streams.
class Rng {
 public:
  /// Seeds the stream. Identical seeds yield identical draw sequences.
  explicit Rng(std::uint64_t seed) noexcept : gen_(seed) {}

  /// Derives an independent stream: the child is seeded from this
  /// stream's output, then this stream long-jumps so parent and child
  /// never overlap.
  Rng split() noexcept;

  /// Raw 64 uniform bits.
  std::uint64_t next_u64() noexcept { return gen_.next(); }

  // The samplers on the workload hot path (uniform, uniform_int,
  // exponential, bernoulli) are defined inline so batched generation
  // loops compile to straight-line code without a call per draw.

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    // 53 uniform mantissa bits -> double in [0, 1).
    return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    // Width computed in unsigned arithmetic: hi - lo can overflow int64
    // (full-span requests), which is well-defined only for unsigned.
    const std::uint64_t range =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(gen_.next());  // full span
    return lo + static_cast<std::int64_t>(uniform_u64_below(range));
  }

  /// Uniform integer in [0, bound). Requires bound > 0. Covers the full
  /// uint64 range, unlike `uniform_int` whose bounds are int64 — use
  /// this for counters that may exceed 2^63 (e.g. reservoir sampling).
  std::uint64_t uniform_u64_below(std::uint64_t bound) {
    if (bound == 0) throw std::invalid_argument("Rng::uniform_u64_below: bound == 0");
    // Classic rejection sampling: discard the partial block at the top of
    // the 64-bit space so every residue is equally likely.
    const std::uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t r = gen_.next();
      if (r >= threshold) return r % bound;
    }
  }

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Exponential with the given mean (= 1/rate). Requires mean > 0.
  double exponential(double mean) {
    if (mean <= 0.0) throw std::invalid_argument("Rng::exponential: mean <= 0");
    double u = uniform();
    // uniform() can return exactly 0; log(0) is -inf, so nudge.
    if (u <= 0.0) u = std::numeric_limits<double>::min();
    return -mean * std::log(u);
  }

  /// Standard normal via Box-Muller (no cached spare: stateless).
  double normal(double mu, double sigma) {
    double u1 = uniform();
    if (u1 <= 0.0) u1 = std::numeric_limits<double>::min();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    return mu + sigma * radius * std::cos(kTwoPi * u2);
  }

  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Classic Pareto (Type I): support [scale, inf), P(X > x) = (scale/x)^shape.
  /// Requires shape > 0, scale > 0.
  double pareto(double shape, double scale) {
    if (shape <= 0.0 || scale <= 0.0) {
      throw std::invalid_argument("Rng::pareto: shape and scale must be > 0");
    }
    double u = uniform();
    if (u <= 0.0) u = std::numeric_limits<double>::min();
    return scale / std::pow(u, 1.0 / shape);
  }

  /// Generalized Pareto: location + scale * ((1-u)^(-shape) - 1) / shape.
  /// shape == 0 degenerates to the (shifted) exponential. Requires scale > 0.
  double generalized_pareto(double shape, double scale, double location) {
    if (scale <= 0.0) {
      throw std::invalid_argument("Rng::generalized_pareto: scale must be > 0");
    }
    double u = uniform();
    if (u <= 0.0) u = std::numeric_limits<double>::min();
    if (std::abs(shape) < 1e-12) {
      return location - scale * std::log(u);
    }
    return location + scale * (std::pow(u, -shape) - 1.0) / shape;
  }

  /// Pareto truncated to [lo, hi] by inverse-CDF restriction (not
  /// rejection), so the cost is a single draw. Requires 0 < lo < hi.
  double bounded_pareto(double shape, double lo, double hi) {
    if (shape <= 0.0 || lo <= 0.0 || lo >= hi) {
      throw std::invalid_argument("Rng::bounded_pareto: need shape > 0, 0 < lo < hi");
    }
    const double u = uniform();
    const double lo_a = std::pow(lo, shape);
    const double hi_a = std::pow(hi, shape);
    // Inverse CDF of the truncated Pareto.
    return std::pow(-(u * hi_a - u * lo_a - hi_a) / (hi_a * lo_a), -1.0 / shape);
  }

  /// Poisson-distributed count with the given mean. Knuth's product
  /// method for small means, PTRS-style normal-based rejection cutover
  /// for large means. Requires mean >= 0.
  std::int64_t poisson(double mean);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

 private:
  Xoshiro256StarStar gen_;
};

/// Zipf(s, n) sampler over {1, ..., n} using rejection-inversion
/// (Hoermann & Derflinger 1996), O(1) per draw after O(1) setup, valid
/// for any exponent s >= 0 (s == 0 is the uniform distribution).
class ZipfDistribution {
 public:
  ZipfDistribution(double exponent, std::uint64_t num_elements);

  /// Draws a rank in [1, num_elements]. Defined inline: Zipf key draws
  /// dominate workload generation, and the rejection loop usually
  /// accepts on the first candidate.
  std::uint64_t sample(Rng& rng) const {
    if (n_ == 1) return 1;
    for (;;) {
      const double u = h_n_ + rng.uniform() * (h_x1_ - h_n_);
      const double x = h_inv(u);
      auto k = static_cast<std::uint64_t>(x + 0.5);
      k = k < 1 ? 1 : (k > n_ ? n_ : k);
      if (static_cast<double>(k) - x <= cut_) return k;
      if (u >= h(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -s_)) {
        return k;
      }
    }
  }

  double exponent() const noexcept { return s_; }
  std::uint64_t num_elements() const noexcept { return n_; }

 private:
  double h(double x) const {
    // Integral of x^-s: primitive H(x); special-cased at s == 1 (log).
    if (std::abs(s_ - 1.0) < 1e-12) return std::log(x);
    return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
  }
  double h_inv(double x) const {
    if (std::abs(s_ - 1.0) < 1e-12) return std::exp(x);
    return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
  }

  double s_ = 0.0;
  std::uint64_t n_ = 0;
  double h_x1_ = 0.0;
  double h_n_ = 0.0;
  double cut_ = 0.0;
};

}  // namespace brb::util
