#include "util/flags.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace brb::util {

namespace {

std::string env_name_for(std::string_view flag) {
  std::string name = "BRB_";
  for (const char c : flag) {
    name.push_back(c == '-' ? '_' : static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  return name;
}

bool parse_bool(std::string_view text, bool fallback) {
  if (text == "1" || text == "true" || text == "yes" || text == "on") return true;
  if (text == "0" || text == "false" || text == "no" || text == "off") return false;
  return fallback;
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (arg.empty()) continue;  // bare "--" separator
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_.emplace(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
      continue;
    }
    // `--name value` unless the next token is another flag; then boolean.
    if (i + 1 < argc && !std::string_view(argv[i + 1]).starts_with("--")) {
      values_.emplace(std::string(arg), argv[i + 1]);
      ++i;
    } else {
      values_.emplace(std::string(arg), "true");
    }
  }
}

std::optional<std::string> Flags::get(std::string_view name) const {
  if (const auto it = values_.find(name); it != values_.end()) return it->second;
  // BRB_* env vars are explicit run configuration — the same input class as
  // argv, resolved once per lookup — not hidden nondeterminism.
  // brblint:allow(BRB-D02): env fallback is declared run configuration
  if (const char* env = std::getenv(env_name_for(name).c_str()); env != nullptr) {
    return std::string(env);
  }
  return std::nullopt;
}

std::string Flags::get_string(std::string_view name, std::string_view fallback) const {
  if (const auto v = get(name)) return *v;
  return std::string(fallback);
}

std::int64_t Flags::get_int(std::string_view name, std::int64_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + std::string(name) + ": not an integer: " + *v);
  }
}

std::uint64_t Flags::get_uint(std::string_view name, std::uint64_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  std::int64_t parsed = 0;
  try {
    parsed = std::stoll(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + std::string(name) + ": not an integer: " + *v);
  }
  if (parsed < 0) {
    throw std::invalid_argument("flag --" + std::string(name) + ": must be >= 0, got " + *v);
  }
  return static_cast<std::uint64_t>(parsed);
}

double Flags::get_double(std::string_view name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + std::string(name) + ": not a number: " + *v);
  }
}

bool Flags::get_bool(std::string_view name, bool fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return parse_bool(*v, fallback);
}

bool Flags::has(std::string_view name) const { return values_.find(name) != values_.end(); }

std::vector<std::string> Flags::cli_names() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, value] : values_) names.push_back(name);
  return names;
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> curr(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    curr[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitute = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, substitute});
    }
    std::swap(prev, curr);
  }
  return prev[b.size()];
}

std::optional<std::string> closest_name(std::string_view name,
                                        const std::vector<std::string>& candidates) {
  // Budget scales with length so short flags do not match everything.
  const std::size_t budget = name.size() <= 4 ? 1 : name.size() <= 8 ? 2 : 3;
  std::optional<std::string> best;
  std::size_t best_distance = budget + 1;
  for (const std::string& candidate : candidates) {
    const std::size_t distance = edit_distance(name, candidate);
    if (distance < best_distance) {
      best_distance = distance;
      best = candidate;
    }
  }
  return best;
}

}  // namespace brb::util
