// Synthetic task-stream generator (the SoundCloud-trace stand-in).
//
// Generates the keyspace (assigning each key a stable value size from
// the size distribution) and then an open-loop task stream: Poisson (or
// paced) arrivals, fan-out per task, distinct keys per task drawn from
// the popularity distribution, round-robin (or random) assignment of
// tasks to application servers.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"
#include "util/rng.hpp"
#include "workload/arrival.hpp"
#include "workload/fanout_dist.hpp"
#include "workload/key_dist.hpp"
#include "workload/size_dist.hpp"
#include "workload/task.hpp"

namespace brb::workload {

/// Stable per-key value sizes for a generated keyspace. Sizes are drawn
/// once from the size distribution with a dedicated RNG stream, so the
/// same (seed, num_keys, distribution) triple always produces the same
/// dataset — across processes and across the systems under comparison.
class Dataset {
 public:
  Dataset(std::uint64_t num_keys, const SizeDistribution& sizes, util::Rng rng);

  std::uint32_t size_of(store::KeyId key) const;
  std::uint64_t num_keys() const noexcept { return sizes_.size(); }
  double mean_size() const noexcept { return mean_size_; }

 private:
  std::vector<std::uint32_t> sizes_;
  double mean_size_ = 0.0;
};

class TaskGenerator {
 public:
  struct Config {
    std::uint32_t num_clients = 18;
    /// Tasks are assigned to clients round-robin when true, uniformly
    /// at random otherwise.
    bool round_robin_clients = true;
    /// Keys within one task are distinct (a playlist does not fetch
    /// the same track twice).
    bool distinct_keys = true;
  };

  TaskGenerator(Config config, const Dataset& dataset, const KeyDistribution& keys,
                const FanoutDistribution& fanout, std::unique_ptr<ArrivalProcess> arrivals,
                util::Rng rng);

  /// Produces the next task; arrival times are strictly increasing.
  TaskSpec next();

  /// Materializes `count` tasks (for traces and tests).
  std::vector<TaskSpec> generate(std::size_t count);

  std::uint64_t tasks_generated() const noexcept { return next_task_id_; }
  const ArrivalProcess& arrivals() const noexcept { return *arrivals_; }

 private:
  Config config_;
  const Dataset* dataset_;
  const KeyDistribution* keys_;
  const FanoutDistribution* fanout_;
  std::unique_ptr<ArrivalProcess> arrivals_;
  util::Rng rng_;
  sim::Time clock_ = sim::Time::zero();
  std::uint64_t next_task_id_ = 0;
  std::uint32_t next_client_ = 0;
  /// Distinct-key dedup scratch reused across tasks (cleared, never
  /// reallocated — the per-task set was a measurable allocation cost).
  std::unordered_set<store::KeyId> chosen_scratch_;
};

}  // namespace brb::workload
