// Synthetic task-stream generator (the SoundCloud-trace stand-in).
//
// Generates the keyspace (assigning each key a stable value size from
// the size distribution) and then an open-loop task stream: Poisson (or
// paced) arrivals, fan-out per task, distinct keys per task drawn from
// the popularity distribution, round-robin (or random) assignment of
// tasks to application servers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/time.hpp"
#include "util/rng.hpp"
#include "workload/arrival.hpp"
#include "workload/fanout_dist.hpp"
#include "workload/key_dist.hpp"
#include "workload/size_dist.hpp"
#include "workload/task.hpp"

namespace brb::workload {

/// Stable per-key value sizes for a generated keyspace. Sizes are drawn
/// once from the size distribution with a dedicated RNG stream, so the
/// same (seed, num_keys, distribution) triple always produces the same
/// dataset — across processes and across the systems under comparison.
class Dataset {
 public:
  Dataset(std::uint64_t num_keys, const SizeDistribution& sizes, util::Rng rng);

  std::uint32_t size_of(store::KeyId key) const;
  std::uint64_t num_keys() const noexcept { return sizes_.size(); }
  double mean_size() const noexcept { return mean_size_; }

 private:
  std::vector<std::uint32_t> sizes_;
  double mean_size_ = 0.0;
};

/// One tenant's traffic mix in a multi-tenant workload. Tenants split
/// the client fleet into contiguous blocks (proportional to share) and
/// each generated task draws its tenant by share weight, then uses
/// that tenant's distributions. Null distributions fall back to the
/// generator's base workload.
struct TenantMix {
  std::string name;
  /// Relative share of task arrivals (> 0; weights, not normalized).
  double share = 1.0;
  std::unique_ptr<FanoutDistribution> fanout;  // null = base fan-out
  std::unique_ptr<KeyDistribution> keys;       // null = base popularity
  /// Task-level write probability; < 0 inherits the generator's.
  double write_fraction = -1.0;
};

/// Parses a tenant mix spec: tenants separated by ';', each
///   NAME[,share=W][,fanout=SPEC][,keys=SPEC][,write=F]
/// e.g. "fg,share=0.7,fanout=fixed:2;bg,share=0.3,fanout=fixed:32,write=0.2".
/// Throws std::invalid_argument on malformed or duplicate entries.
std::vector<TenantMix> parse_tenant_mixes(const std::string& spec);

/// Partitions `num_clients` clients into contiguous per-tenant blocks
/// proportional to shares: one guaranteed client per tenant, the rest
/// split by largest remainder (deterministic, order-stable). Returns
/// the n+1 block boundaries. Shared by TaskGenerator::set_tenants and
/// the scenario runner's per-tenant policy binding, so the two can
/// never disagree about which client serves which tenant.
std::vector<std::uint32_t> tenant_client_blocks(const std::vector<TenantMix>& tenants,
                                                std::uint32_t num_clients);

class TaskGenerator {
 public:
  struct Config {
    std::uint32_t num_clients = 18;
    /// Tasks are assigned to clients round-robin when true, uniformly
    /// at random otherwise.
    bool round_robin_clients = true;
    /// Keys within one task are distinct (a playlist does not fetch
    /// the same track twice).
    bool distinct_keys = true;
  };

  TaskGenerator(Config config, const Dataset& dataset, const KeyDistribution& keys,
                const FanoutDistribution& fanout, std::unique_ptr<ArrivalProcess> arrivals,
                util::Rng rng);

  /// Enables write traffic: each task is a write task with probability
  /// `fraction`; write sizes are drawn from `sizes` (the new stored
  /// value). Must be called before the first next().
  void set_write_traffic(double fraction, const SizeDistribution* sizes);

  /// Enables multi-tenant generation. Clients are partitioned into
  /// contiguous blocks proportional to tenant shares (each tenant gets
  /// at least one client); tasks draw their tenant by share. Must be
  /// called before the first next().
  void set_tenants(std::vector<TenantMix> tenants);

  /// Produces the next task; arrival times are strictly increasing.
  /// Routed through the same block path as fill_block, so the two are
  /// structurally draw-for-draw identical.
  TaskSpec next();

  /// Appends up to `max_tasks` tasks into `block` (cleared first),
  /// storing all requests in the block's slab. This is the hot path:
  /// one devirtualized, allocation-free pass per block instead of one
  /// virtual dispatch and one heap vector per task. The RNG stream is
  /// consumed in exactly the order of `max_tasks` successive next()
  /// calls (pinned by workload_test).
  void fill_block(TaskBlock& block, std::size_t max_tasks);

  /// Materializes `count` tasks (for traces and tests).
  std::vector<TaskSpec> generate(std::size_t count);

  std::uint64_t tasks_generated() const noexcept { return next_task_id_; }
  const ArrivalProcess& arrivals() const noexcept { return *arrivals_; }
  std::size_t num_tenants() const noexcept { return tenants_.size(); }
  const TenantMix& tenant(std::size_t i) const { return tenants_.at(i); }
  /// Client-id block [begin, end) owned by tenant i.
  std::pair<std::uint32_t, std::uint32_t> tenant_clients(std::size_t i) const;

 private:
  void append_task(TaskBlock& block);
  void append_requests(TaskBlock& block, const KeyDistribution& keys, bool is_write,
                       std::uint32_t fanout);
  sim::Duration draw_gap();
  std::uint32_t draw_fanout(const TenantMix* tenant);

  Config config_;
  const Dataset* dataset_;
  const KeyDistribution* keys_;
  const FanoutDistribution* fanout_;
  std::unique_ptr<ArrivalProcess> arrivals_;
  /// Devirtualized aliases for the hot concrete types, resolved once at
  /// construction (null when the runtime type is something else).
  const PoissonArrivals* poisson_arrivals_ = nullptr;
  const PacedArrivals* paced_arrivals_ = nullptr;
  const FixedFanout* fixed_fanout_ = nullptr;
  const GeometricFanout* geometric_fanout_ = nullptr;
  const LogNormalFanout* lognormal_fanout_ = nullptr;
  util::Rng rng_;
  sim::Time clock_ = sim::Time::zero();
  std::uint64_t next_task_id_ = 0;
  std::uint32_t next_client_ = 0;
  /// Write traffic (0 = read-only, the paper's workload).
  double write_fraction_ = 0.0;
  const SizeDistribution* write_sizes_ = nullptr;
  /// Multi-tenant state (empty = single-tenant).
  std::vector<TenantMix> tenants_;
  std::vector<double> tenant_cdf_;
  std::vector<std::uint32_t> tenant_client_begin_;  // size tenants+1
  std::vector<std::uint32_t> tenant_next_client_;
  /// Distinct-key dedup scratch reused across tasks (cleared, never
  /// reallocated — the per-task set was a measurable allocation cost).
  /// Sorted vector, not a hash set: fanouts are small (tens), binary
  /// search beats hashing at this size, and the artifact path stays
  /// free of unordered containers (brblint BRB-D01).
  std::vector<store::KeyId> chosen_scratch_;
  /// Pre-drawn key batch for the distinct-keys fast path (reused).
  std::vector<store::KeyId> key_batch_;
  /// One-task block backing next(); keeps next() and fill_block on a
  /// single code path.
  TaskBlock scratch_block_;
};

}  // namespace brb::workload
