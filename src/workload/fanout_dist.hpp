// Task fan-out distributions.
//
// The paper's SoundCloud trace has ~500 k tasks with a mean fan-out of
// 8.6 requests per task. The trace itself is proprietary, so we provide
// several fan-out families whose mean is set to 8.6 (see DESIGN.md,
// substitutions): a discretized log-normal (heavy right tail — the
// playlist-like shape the paper motivates), geometric, fixed, and an
// empirical table for replaying measured histograms.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace brb::workload {

class FanoutDistribution {
 public:
  virtual ~FanoutDistribution() = default;

  /// Number of requests in one task; always >= 1.
  virtual std::uint32_t sample(util::Rng& rng) const = 0;

  /// Mean fan-out (analytic or numerically derived at construction).
  virtual double mean() const = 0;

  virtual std::string name() const = 0;
};

/// Every task has exactly `n` requests.
class FixedFanout final : public FanoutDistribution {
 public:
  explicit FixedFanout(std::uint32_t n);

  std::uint32_t sample(util::Rng&) const override { return n_; }
  double mean() const override { return static_cast<double>(n_); }
  std::string name() const override { return "fixed"; }

 private:
  std::uint32_t n_;
};

/// 1 + Geometric: support {1, 2, ...}, mean = 1 + (1-p)/p.
class GeometricFanout final : public FanoutDistribution {
 public:
  /// Constructs with the target mean (>= 1).
  explicit GeometricFanout(double mean);

  std::uint32_t sample(util::Rng& rng) const override;
  double mean() const override { return mean_; }
  std::string name() const override { return "geometric"; }

 private:
  double mean_;
  double p_;  // success probability of the underlying geometric
};

/// Discretized log-normal clamped to [1, cap]: round(exp(N(mu, sigma))).
/// `for_mean` solves for mu so the discretized, clamped mean hits the
/// target (bisection at construction).
class LogNormalFanout final : public FanoutDistribution {
 public:
  LogNormalFanout(double mu, double sigma, std::uint32_t cap);

  /// Factory calibrated so that mean() == target_mean.
  static LogNormalFanout for_mean(double target_mean, double sigma = 0.8,
                                  std::uint32_t cap = 1024);

  std::uint32_t sample(util::Rng& rng) const override;
  double mean() const override { return mean_; }
  std::string name() const override { return "lognormal"; }

  double mu() const noexcept { return mu_; }
  double sigma() const noexcept { return sigma_; }

 private:
  static double discretized_mean(double mu, double sigma, std::uint32_t cap);

  double mu_;
  double sigma_;
  std::uint32_t cap_;
  double mean_;
};

/// Replays an explicit histogram: P(fanout == i+1) = weights[i] / sum.
class EmpiricalFanout final : public FanoutDistribution {
 public:
  explicit EmpiricalFanout(std::vector<double> weights);

  std::uint32_t sample(util::Rng& rng) const override;
  double mean() const override { return mean_; }
  std::string name() const override { return "empirical"; }

 private:
  std::vector<double> cumulative_;
  double mean_;
};

/// Parses "fixed:N", "geometric:MEAN", "lognormal:MEAN[:SIGMA[:CAP]]".
std::unique_ptr<FanoutDistribution> make_fanout_distribution(const std::string& spec);

}  // namespace brb::workload
