// Task fan-out distributions.
//
// The paper's SoundCloud trace has ~500 k tasks with a mean fan-out of
// 8.6 requests per task. The trace itself is proprietary, so we provide
// several fan-out families whose mean is set to 8.6 (see DESIGN.md,
// substitutions): a discretized log-normal (heavy right tail — the
// playlist-like shape the paper motivates), geometric, fixed, and an
// empirical table for replaying measured histograms.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace brb::workload {

class FanoutDistribution {
 public:
  virtual ~FanoutDistribution() = default;

  /// Number of requests in one task; always >= 1.
  virtual std::uint32_t sample(util::Rng& rng) const = 0;

  /// Fills `out[0..n)` with `n` fan-outs, consuming the RNG stream
  /// exactly as `n` successive `sample()` calls would (draw-for-draw
  /// identity). Hot implementations override with a devirtualized loop.
  virtual void sample_batch(util::Rng& rng, std::uint32_t* out, std::size_t n) const {
    for (std::size_t i = 0; i < n; ++i) out[i] = sample(rng);
  }

  /// Mean fan-out (analytic or numerically derived at construction).
  virtual double mean() const = 0;

  virtual std::string name() const = 0;
};

/// Every task has exactly `n` requests.
class FixedFanout final : public FanoutDistribution {
 public:
  explicit FixedFanout(std::uint32_t n);

  std::uint32_t sample(util::Rng&) const override { return n_; }
  void sample_batch(util::Rng&, std::uint32_t* out, std::size_t n) const override {
    std::fill_n(out, n, n_);
  }
  double mean() const override { return static_cast<double>(n_); }
  std::string name() const override { return "fixed"; }

  /// Fixed fan-out value, for devirtualized callers.
  std::uint32_t value() const noexcept { return n_; }

 private:
  std::uint32_t n_;
};

/// 1 + Geometric: support {1, 2, ...}, mean = 1 + (1-p)/p.
class GeometricFanout final : public FanoutDistribution {
 public:
  /// Constructs with the target mean (>= 1).
  explicit GeometricFanout(double mean);

  std::uint32_t sample(util::Rng& rng) const override { return sample_inline(rng); }
  void sample_batch(util::Rng& rng, std::uint32_t* out, std::size_t n) const override {
    for (std::size_t i = 0; i < n; ++i) out[i] = sample_inline(rng);
  }
  double mean() const override { return mean_; }
  std::string name() const override { return "geometric"; }

  /// Non-virtual sampler for devirtualized callers (TaskGenerator).
  std::uint32_t sample_inline(util::Rng& rng) const {
    if (p_ >= 1.0) return 1;
    double u = rng.uniform();
    if (u <= 0.0) u = 1e-300;
    const double g = std::floor(std::log(u) / std::log(1.0 - p_));
    const double value = 1.0 + std::max(0.0, g);
    return value > 4096.0 ? 4096u : static_cast<std::uint32_t>(value);
  }

 private:
  double mean_;
  double p_;  // success probability of the underlying geometric
};

/// Discretized log-normal clamped to [1, cap]: round(exp(N(mu, sigma))).
/// `for_mean` solves for mu so the discretized, clamped mean hits the
/// target (bisection at construction).
class LogNormalFanout final : public FanoutDistribution {
 public:
  LogNormalFanout(double mu, double sigma, std::uint32_t cap);

  /// Factory calibrated so that mean() == target_mean.
  static LogNormalFanout for_mean(double target_mean, double sigma = 0.8,
                                  std::uint32_t cap = 1024);

  std::uint32_t sample(util::Rng& rng) const override { return sample_inline(rng); }
  void sample_batch(util::Rng& rng, std::uint32_t* out, std::size_t n) const override {
    for (std::size_t i = 0; i < n; ++i) out[i] = sample_inline(rng);
  }
  double mean() const override { return mean_; }
  std::string name() const override { return "lognormal"; }

  /// Non-virtual sampler for devirtualized callers (TaskGenerator).
  std::uint32_t sample_inline(util::Rng& rng) const {
    const double v = std::round(rng.lognormal(mu_, sigma_));
    if (v < 1.0) return 1;
    if (v > static_cast<double>(cap_)) return cap_;
    return static_cast<std::uint32_t>(v);
  }

  double mu() const noexcept { return mu_; }
  double sigma() const noexcept { return sigma_; }

 private:
  static double discretized_mean(double mu, double sigma, std::uint32_t cap);

  double mu_;
  double sigma_;
  std::uint32_t cap_;
  double mean_;
};

/// Replays an explicit histogram: P(fanout == i+1) = weights[i] / sum.
class EmpiricalFanout final : public FanoutDistribution {
 public:
  explicit EmpiricalFanout(std::vector<double> weights);

  std::uint32_t sample(util::Rng& rng) const override;
  double mean() const override { return mean_; }
  std::string name() const override { return "empirical"; }

 private:
  std::vector<double> cumulative_;
  double mean_;
};

/// Parses "fixed:N", "geometric:MEAN", "lognormal:MEAN[:SIGMA[:CAP]]".
std::unique_ptr<FanoutDistribution> make_fanout_distribution(const std::string& spec);

}  // namespace brb::workload
