#include "workload/task_gen.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace brb::workload {

Dataset::Dataset(std::uint64_t num_keys, const SizeDistribution& sizes, util::Rng rng) {
  if (num_keys == 0) throw std::invalid_argument("Dataset: num_keys == 0");
  // One batched call draws the whole keyspace; the per-key draw order
  // is identical to the scalar loop it replaced.
  sizes_.resize(num_keys);
  sizes.sample_batch(rng, sizes_.data(), num_keys);
  double acc = 0.0;
  for (const std::uint32_t size : sizes_) acc += size;
  mean_size_ = acc / static_cast<double>(num_keys);
}

std::uint32_t Dataset::size_of(store::KeyId key) const {
  if (key >= sizes_.size()) throw std::out_of_range("Dataset::size_of: key outside keyspace");
  return sizes_[static_cast<std::size_t>(key)];
}

std::vector<TenantMix> parse_tenant_mixes(const std::string& spec) {
  std::vector<TenantMix> tenants;
  std::stringstream tenant_stream(spec);
  for (std::string def; std::getline(tenant_stream, def, ';');) {
    if (def.empty()) continue;
    TenantMix mix;
    std::stringstream field_stream(def);
    bool first = true;
    for (std::string field; std::getline(field_stream, field, ',');) {
      if (field.empty()) continue;
      if (first) {
        if (field.find('=') != std::string::npos) {
          throw std::invalid_argument("parse_tenant_mixes: tenant def must start with a name: '" +
                                      def + "'");
        }
        mix.name = field;
        first = false;
        continue;
      }
      const auto eq = field.find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument("parse_tenant_mixes: expected key=value, got '" + field + "'");
      }
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      // stod failures get field context here; the nested distribution
      // factories already throw self-describing invalid_arguments.
      const auto number = [&] {
        try {
          return std::stod(value);
        } catch (const std::exception&) {
          throw std::invalid_argument("parse_tenant_mixes: bad value in '" + field + "'");
        }
      };
      if (key == "share") {
        mix.share = number();
      } else if (key == "fanout") {
        mix.fanout = make_fanout_distribution(value);
      } else if (key == "keys") {
        mix.keys = make_key_distribution(value);
      } else if (key == "write") {
        mix.write_fraction = number();
      } else {
        throw std::invalid_argument("parse_tenant_mixes: unknown field '" + key + "'");
      }
    }
    if (mix.name.empty()) {
      throw std::invalid_argument("parse_tenant_mixes: tenant with empty name in '" + spec + "'");
    }
    if (mix.share <= 0.0) {
      throw std::invalid_argument("parse_tenant_mixes: tenant '" + mix.name +
                                  "' has non-positive share");
    }
    if (mix.write_fraction > 1.0) {
      throw std::invalid_argument("parse_tenant_mixes: tenant '" + mix.name +
                                  "' write fraction > 1");
    }
    for (const TenantMix& existing : tenants) {
      if (existing.name == mix.name) {
        throw std::invalid_argument("parse_tenant_mixes: duplicate tenant '" + mix.name + "'");
      }
    }
    tenants.push_back(std::move(mix));
  }
  if (tenants.empty()) throw std::invalid_argument("parse_tenant_mixes: no tenants in spec");
  return tenants;
}

TaskGenerator::TaskGenerator(Config config, const Dataset& dataset, const KeyDistribution& keys,
                             const FanoutDistribution& fanout,
                             std::unique_ptr<ArrivalProcess> arrivals, util::Rng rng)
    : config_(config),
      dataset_(&dataset),
      keys_(&keys),
      fanout_(&fanout),
      arrivals_(std::move(arrivals)),
      rng_(rng) {
  if (config_.num_clients == 0) throw std::invalid_argument("TaskGenerator: no clients");
  if (keys_->num_keys() > dataset_->num_keys()) {
    throw std::invalid_argument("TaskGenerator: key distribution exceeds dataset keyspace");
  }
  if (!arrivals_) throw std::invalid_argument("TaskGenerator: null arrival process");
  // Resolve the hot concrete types once so the per-task draws below are
  // direct (often inlined) calls instead of virtual dispatches.
  poisson_arrivals_ = dynamic_cast<const PoissonArrivals*>(arrivals_.get());
  paced_arrivals_ = dynamic_cast<const PacedArrivals*>(arrivals_.get());
  fixed_fanout_ = dynamic_cast<const FixedFanout*>(fanout_);
  geometric_fanout_ = dynamic_cast<const GeometricFanout*>(fanout_);
  lognormal_fanout_ = dynamic_cast<const LogNormalFanout*>(fanout_);
  scratch_block_.clear();
}

void TaskGenerator::set_write_traffic(double fraction, const SizeDistribution* sizes) {
  if (next_task_id_ != 0) {
    throw std::logic_error("TaskGenerator: write traffic must be set before generation");
  }
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("TaskGenerator: write fraction outside [0, 1]");
  }
  if (fraction > 0.0 && sizes == nullptr) {
    throw std::invalid_argument("TaskGenerator: write traffic needs a size distribution");
  }
  write_fraction_ = fraction;
  write_sizes_ = sizes;
}

void TaskGenerator::set_tenants(std::vector<TenantMix> tenants) {
  if (next_task_id_ != 0) {
    throw std::logic_error("TaskGenerator: tenants must be set before generation");
  }
  if (tenants.empty()) throw std::invalid_argument("TaskGenerator: empty tenant list");
  if (config_.num_clients < tenants.size()) {
    throw std::invalid_argument("TaskGenerator: fewer clients than tenants");
  }
  double total_share = 0.0;
  for (const TenantMix& mix : tenants) {
    if (mix.share <= 0.0) throw std::invalid_argument("TaskGenerator: non-positive tenant share");
    if (mix.keys && mix.keys->num_keys() > dataset_->num_keys()) {
      throw std::invalid_argument("TaskGenerator: tenant '" + mix.name +
                                  "' key distribution exceeds dataset keyspace");
    }
    if (mix.write_fraction > 0.0 && write_sizes_ == nullptr) {
      throw std::invalid_argument("TaskGenerator: tenant '" + mix.name +
                                  "' writes need set_write_traffic sizes");
    }
    total_share += mix.share;
  }

  // Arrival shares: cumulative distribution for the per-task draw.
  tenant_cdf_.clear();
  double acc = 0.0;
  for (const TenantMix& mix : tenants) {
    acc += mix.share / total_share;
    tenant_cdf_.push_back(acc);
  }
  tenant_cdf_.back() = 1.0;  // absorb rounding

  tenant_client_begin_ = tenant_client_blocks(tenants, config_.num_clients);
  tenant_next_client_.assign(tenants.size(), 0);
  tenants_ = std::move(tenants);
}

std::vector<std::uint32_t> tenant_client_blocks(const std::vector<TenantMix>& tenants,
                                                std::uint32_t num_clients) {
  if (tenants.empty()) throw std::invalid_argument("tenant_client_blocks: empty tenant list");
  if (num_clients < tenants.size()) {
    throw std::invalid_argument("tenant_client_blocks: fewer clients than tenants");
  }
  double total_share = 0.0;
  for (const TenantMix& mix : tenants) {
    if (mix.share <= 0.0) {
      throw std::invalid_argument("tenant_client_blocks: non-positive tenant share");
    }
    total_share += mix.share;
  }

  // One guaranteed client per tenant, the rest split proportionally by
  // largest remainder (deterministic, order-stable).
  const std::size_t n = tenants.size();
  std::vector<std::uint32_t> counts(n, 1);
  const std::uint32_t spare = num_clients - static_cast<std::uint32_t>(n);
  std::vector<double> fractional(n, 0.0);
  std::uint32_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double ideal = static_cast<double>(spare) * tenants[i].share / total_share;
    const auto whole = static_cast<std::uint32_t>(std::floor(ideal));
    counts[i] += whole;
    assigned += whole;
    fractional[i] = ideal - std::floor(ideal);
  }
  // Hand the leftover slots to the largest fractional parts. Sorting
  // once by (fractional desc, index asc) replaces the old O(n * spare)
  // repeated-argmax rescan and awards slots in the identical order: the
  // argmax used strict '>', so ties also resolved to the lowest index.
  const std::uint32_t left = spare - assigned;
  if (left > 0) {
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return fractional[a] > fractional[b];
    });
    for (std::uint32_t i = 0; i < left; ++i) ++counts[order[i]];
  }

  std::vector<std::uint32_t> begin(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) begin[i + 1] = begin[i] + counts[i];
  return begin;
}

std::pair<std::uint32_t, std::uint32_t> TaskGenerator::tenant_clients(std::size_t i) const {
  if (i >= tenants_.size()) throw std::out_of_range("TaskGenerator::tenant_clients");
  return {tenant_client_begin_[i], tenant_client_begin_[i + 1]};
}

sim::Duration TaskGenerator::draw_gap() {
  if (poisson_arrivals_ != nullptr) return poisson_arrivals_->gap_inline(rng_);
  if (paced_arrivals_ != nullptr) return paced_arrivals_->gap();
  return arrivals_->next_gap(rng_);
}

std::uint32_t TaskGenerator::draw_fanout(const TenantMix* tenant) {
  if (tenant != nullptr && tenant->fanout) return tenant->fanout->sample(rng_);
  if (fixed_fanout_ != nullptr) return fixed_fanout_->value();
  if (geometric_fanout_ != nullptr) return geometric_fanout_->sample_inline(rng_);
  if (lognormal_fanout_ != nullptr) return lognormal_fanout_->sample_inline(rng_);
  return fanout_->sample(rng_);
}

void TaskGenerator::append_requests(TaskBlock& block, const KeyDistribution& keys, bool is_write,
                                    std::uint32_t fanout) {
  std::vector<RequestSpec>& pool = block.pool;
  const auto push_read = [&](store::KeyId key) {
    // A read's size hint is the current stored size (no RNG consumed).
    pool.push_back(RequestSpec{key, dataset_->size_of(key), false});
  };
  const auto push_write = [&](store::KeyId key) {
    // A write's size hint is the size being written (drawn fresh).
    pool.push_back(RequestSpec{key, std::max(1u, write_sizes_->sample(rng_)), true});
  };

  if (!config_.distinct_keys) {
    if (is_write) {
      // Key and size draws interleave per request: keep the scalar order.
      for (std::uint32_t i = 0; i < fanout; ++i) push_write(keys.sample(rng_));
    } else {
      // Reads consume only key draws, all consecutive: one batched call.
      key_batch_.resize(fanout);
      keys.sample_batch(rng_, key_batch_.data(), fanout);
      for (std::uint32_t i = 0; i < fanout; ++i) push_read(key_batch_[i]);
    }
    return;
  }

  // Distinct keys. Sorted-vector membership: insertion keeps the
  // scratch ordered so the dedup check is a binary search. Requests are
  // emitted in sample order; the RNG stream and the generated task are
  // byte-identical to the scalar rejection loop (pinned by
  // workload_test's DistinctKeyStreamIsPinned).
  std::vector<store::KeyId>& chosen = chosen_scratch_;
  chosen.clear();
  chosen.reserve(fanout);
  const auto try_insert = [&chosen](store::KeyId key) {
    const auto it = std::lower_bound(chosen.begin(), chosen.end(), key);
    if (it != chosen.end() && *it == key) return false;
    chosen.insert(it, key);
    return true;
  };
  // The popularity distribution may not reach every key (scrambled
  // Zipf can collide), so bound the rejection loop and fill any
  // remainder by deterministic scan — only reachable in tests with
  // tiny keyspaces.
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = 64ULL * fanout + 256;
  if (!is_write && fanout > 0) {
    // The rejection loop below consumes one key draw per iteration and
    // needs `fanout` acceptances, so its first `fanout` draws are
    // always consumed — pre-draw exactly those in one batched call.
    key_batch_.resize(fanout);
    keys.sample_batch(rng_, key_batch_.data(), fanout);
    for (std::uint32_t i = 0; i < fanout; ++i, ++attempts) {
      const store::KeyId key = key_batch_[i];
      if (try_insert(key)) push_read(key);
    }
  }
  while (chosen.size() < fanout && attempts++ < max_attempts) {
    const store::KeyId key = keys.sample(rng_);
    if (try_insert(key)) {
      if (is_write) {
        push_write(key);
      } else {
        push_read(key);
      }
    }
  }
  for (store::KeyId key = 0; chosen.size() < fanout && key < keys.num_keys(); ++key) {
    if (try_insert(key)) {
      if (is_write) {
        push_write(key);
      } else {
        push_read(key);
      }
    }
  }
}

void TaskGenerator::append_task(TaskBlock& block) {
  clock_ += draw_gap();
  block.arrivals.push_back(clock_);
  block.ids.push_back(next_task_id_++);

  store::TenantId tenant{};
  store::ClientId client = 0;
  if (!tenants_.empty()) {
    const double u = rng_.uniform();
    std::size_t t = 0;
    while (t + 1 < tenant_cdf_.size() && u > tenant_cdf_[t]) ++t;
    tenant = store::TenantId{static_cast<std::uint32_t>(t)};
    const std::uint32_t begin = tenant_client_begin_[t];
    const std::uint32_t width = tenant_client_begin_[t + 1] - begin;
    if (config_.round_robin_clients) {
      client = begin + tenant_next_client_[t];
      tenant_next_client_[t] = (tenant_next_client_[t] + 1) % width;
    } else {
      client = begin + static_cast<store::ClientId>(
                           rng_.uniform_int(0, static_cast<std::int64_t>(width) - 1));
    }
  } else if (config_.round_robin_clients) {
    client = next_client_;
    next_client_ = (next_client_ + 1) % config_.num_clients;
  } else {
    client = static_cast<store::ClientId>(
        rng_.uniform_int(0, static_cast<std::int64_t>(config_.num_clients) - 1));
  }
  block.tenants.push_back(tenant);
  block.clients.push_back(client);

  const TenantMix* mix = tenants_.empty() ? nullptr : &tenants_[tenant.value()];

  // Task-level write decision: write tasks fan every request out to
  // all replicas, so mixing kinds within a task would blur the
  // asymmetry this knob exists to study. No RNG is consumed in the
  // read-only default, keeping legacy streams bit-identical.
  double write_fraction = write_fraction_;
  if (mix != nullptr && mix->write_fraction >= 0.0) write_fraction = mix->write_fraction;
  const bool is_write = write_fraction > 0.0 && rng_.uniform() < write_fraction;

  const KeyDistribution& keys = (mix != nullptr && mix->keys) ? *mix->keys : *keys_;

  std::uint32_t fanout = draw_fanout(mix);
  // A task cannot request more distinct keys than the keyspace holds.
  if (config_.distinct_keys && fanout > keys.num_keys()) {
    fanout = static_cast<std::uint32_t>(keys.num_keys());
  }
  append_requests(block, keys, is_write, fanout);
  block.req_begin.push_back(static_cast<std::uint32_t>(block.pool.size()));
}

void TaskGenerator::fill_block(TaskBlock& block, std::size_t max_tasks) {
  block.clear();
  for (std::size_t i = 0; i < max_tasks; ++i) append_task(block);
}

TaskSpec TaskGenerator::next() {
  scratch_block_.clear();
  append_task(scratch_block_);
  return scratch_block_.view(0).to_spec();
}

std::vector<TaskSpec> TaskGenerator::generate(std::size_t count) {
  std::vector<TaskSpec> tasks;
  tasks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) tasks.push_back(next());
  return tasks;
}

}  // namespace brb::workload
