#include "workload/task_gen.hpp"

#include <stdexcept>
#include <unordered_set>

namespace brb::workload {

Dataset::Dataset(std::uint64_t num_keys, const SizeDistribution& sizes, util::Rng rng) {
  if (num_keys == 0) throw std::invalid_argument("Dataset: num_keys == 0");
  sizes_.reserve(num_keys);
  double acc = 0.0;
  for (std::uint64_t k = 0; k < num_keys; ++k) {
    const std::uint32_t size = sizes.sample(rng);
    sizes_.push_back(size);
    acc += size;
  }
  mean_size_ = acc / static_cast<double>(num_keys);
}

std::uint32_t Dataset::size_of(store::KeyId key) const {
  if (key >= sizes_.size()) throw std::out_of_range("Dataset::size_of: key outside keyspace");
  return sizes_[static_cast<std::size_t>(key)];
}

TaskGenerator::TaskGenerator(Config config, const Dataset& dataset, const KeyDistribution& keys,
                             const FanoutDistribution& fanout,
                             std::unique_ptr<ArrivalProcess> arrivals, util::Rng rng)
    : config_(config),
      dataset_(&dataset),
      keys_(&keys),
      fanout_(&fanout),
      arrivals_(std::move(arrivals)),
      rng_(rng) {
  if (config_.num_clients == 0) throw std::invalid_argument("TaskGenerator: no clients");
  if (keys_->num_keys() > dataset_->num_keys()) {
    throw std::invalid_argument("TaskGenerator: key distribution exceeds dataset keyspace");
  }
  if (!arrivals_) throw std::invalid_argument("TaskGenerator: null arrival process");
}

TaskSpec TaskGenerator::next() {
  clock_ += arrivals_->next_gap(rng_);
  TaskSpec task;
  task.id = next_task_id_++;
  task.arrival = clock_;
  if (config_.round_robin_clients) {
    task.client = next_client_;
    next_client_ = (next_client_ + 1) % config_.num_clients;
  } else {
    task.client = static_cast<store::ClientId>(
        rng_.uniform_int(0, static_cast<std::int64_t>(config_.num_clients) - 1));
  }

  std::uint32_t fanout = fanout_->sample(rng_);
  // A task cannot request more distinct keys than the keyspace holds.
  if (config_.distinct_keys && fanout > keys_->num_keys()) {
    fanout = static_cast<std::uint32_t>(keys_->num_keys());
  }
  task.requests.reserve(fanout);
  if (config_.distinct_keys) {
    std::unordered_set<store::KeyId>& chosen = chosen_scratch_;
    chosen.clear();
    chosen.reserve(fanout * 2);
    // The popularity distribution may not reach every key (scrambled
    // Zipf can collide), so bound the rejection loop and fill any
    // remainder by deterministic scan — only reachable in tests with
    // tiny keyspaces.
    std::uint64_t attempts = 0;
    const std::uint64_t max_attempts = 64ULL * fanout + 256;
    while (chosen.size() < fanout && attempts++ < max_attempts) {
      const store::KeyId key = keys_->sample(rng_);
      if (chosen.insert(key).second) {
        task.requests.push_back(RequestSpec{key, dataset_->size_of(key)});
      }
    }
    for (store::KeyId key = 0; chosen.size() < fanout && key < keys_->num_keys(); ++key) {
      if (chosen.insert(key).second) {
        task.requests.push_back(RequestSpec{key, dataset_->size_of(key)});
      }
    }
  } else {
    for (std::uint32_t i = 0; i < fanout; ++i) {
      const store::KeyId key = keys_->sample(rng_);
      task.requests.push_back(RequestSpec{key, dataset_->size_of(key)});
    }
  }
  return task;
}

std::vector<TaskSpec> TaskGenerator::generate(std::size_t count) {
  std::vector<TaskSpec> tasks;
  tasks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) tasks.push_back(next());
  return tasks;
}

}  // namespace brb::workload
