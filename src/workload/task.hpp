// Task and request specifications produced by workload generators.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "store/types.hpp"

namespace brb::workload {

/// One key access within a task. `size_hint` is the stored value size,
/// which the client uses to forecast service cost (the paper's clients
/// forecast "based on the size of the value they are requesting").
/// Writes replace the stored value: `size_hint` then holds the size
/// being written, and the client fans the write out to every replica.
struct RequestSpec {
  store::KeyId key = 0;
  std::uint32_t size_hint = 0;
  bool is_write = false;
};

/// One end-user task: a batch of logically-related reads (or, for
/// write tasks, replicated writes) that is complete only when every
/// request completes.
struct TaskSpec {
  store::TaskId id = 0;
  /// Which application server (client) receives the task.
  store::ClientId client = 0;
  /// Tenant the issuing client belongs to (0 in single-tenant runs).
  store::TenantId tenant{};
  sim::Time arrival;
  std::vector<RequestSpec> requests;

  std::uint32_t fanout() const noexcept {
    return static_cast<std::uint32_t>(requests.size());
  }
  bool is_write_task() const noexcept {
    return !requests.empty() && requests.front().is_write;
  }
};

}  // namespace brb::workload
