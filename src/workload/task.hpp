// Task and request specifications produced by workload generators.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "store/types.hpp"

namespace brb::workload {

/// One key access within a task. `size_hint` is the stored value size,
/// which the client uses to forecast service cost (the paper's clients
/// forecast "based on the size of the value they are requesting").
/// Writes replace the stored value: `size_hint` then holds the size
/// being written, and the client fans the write out to every replica.
struct RequestSpec {
  store::KeyId key = 0;
  std::uint32_t size_hint = 0;
  bool is_write = false;
};

/// One end-user task: a batch of logically-related reads (or, for
/// write tasks, replicated writes) that is complete only when every
/// request completes.
struct TaskSpec {
  store::TaskId id = 0;
  /// Which application server (client) receives the task.
  store::ClientId client = 0;
  /// Tenant the issuing client belongs to (0 in single-tenant runs).
  store::TenantId tenant{};
  sim::Time arrival;
  std::vector<RequestSpec> requests;

  std::uint32_t fanout() const noexcept {
    return static_cast<std::uint32_t>(requests.size());
  }
  bool is_write_task() const noexcept {
    return !requests.empty() && requests.front().is_write;
  }
};

/// Borrowed, non-owning view of one task inside a TaskBlock. The
/// request span points into the block's slab, so a view is valid only
/// until the owning block is cleared or refilled.
struct TaskView {
  store::TaskId id = 0;
  store::ClientId client = 0;
  store::TenantId tenant{};
  sim::Time arrival;
  const RequestSpec* requests = nullptr;
  std::uint32_t fanout = 0;

  bool is_write_task() const noexcept { return fanout > 0 && requests[0].is_write; }

  /// Deep copy into an owning TaskSpec (trace materialization, tests).
  TaskSpec to_spec() const {
    TaskSpec spec;
    spec.id = id;
    spec.client = client;
    spec.tenant = tenant;
    spec.arrival = arrival;
    spec.requests.assign(requests, requests + fanout);
    return spec;
  }
};

/// Structure-of-arrays block of generated tasks. Every request of every
/// task lives in one flat `pool` slab; `req_begin` holds the n+1 prefix
/// offsets delimiting each task's span. All vectors keep their capacity
/// across `clear()`, so steady-state refills allocate nothing.
struct TaskBlock {
  std::vector<store::TaskId> ids;
  std::vector<store::ClientId> clients;
  std::vector<store::TenantId> tenants;
  std::vector<sim::Time> arrivals;
  std::vector<std::uint32_t> req_begin;  // size() + 1 entries once non-empty
  std::vector<RequestSpec> pool;         // slab shared by all tasks in the block

  std::size_t size() const noexcept { return ids.size(); }
  bool empty() const noexcept { return ids.empty(); }

  void clear() {
    ids.clear();
    clients.clear();
    tenants.clear();
    arrivals.clear();
    req_begin.clear();
    req_begin.push_back(0);
    pool.clear();
  }

  TaskView view(std::size_t i) const {
    TaskView v;
    v.id = ids[i];
    v.client = clients[i];
    v.tenant = tenants[i];
    v.arrival = arrivals[i];
    v.requests = pool.data() + req_begin[i];
    v.fanout = req_begin[i + 1] - req_begin[i];
    return v;
  }
};

}  // namespace brb::workload
