// Task arrival processes.
//
// The paper uses open-loop Poisson task arrivals with the mean rate set
// to a fraction of system capacity. Deterministic (paced) arrivals are
// provided for tests and calibration, and `ModulatedArrivals` layers a
// time-varying (diurnal) rate envelope over Poisson for workloads whose
// offered load breathes over the day.
#pragma once

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace brb::workload {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Gap until the next arrival (strictly positive).
  virtual sim::Duration next_gap(util::Rng& rng) = 0;

  /// Fills `out[0..n)` with `n` successive gaps, consuming the RNG
  /// stream exactly as `n` `next_gap()` calls would (draw-for-draw
  /// identity). Stateless hot processes override with a devirtualized
  /// loop; the default scalar loop is always correct (and the only
  /// legal path for stateful processes such as ModulatedArrivals).
  virtual void next_gap_batch(util::Rng& rng, sim::Duration* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = next_gap(rng);
  }

  /// Mean arrival rate in tasks/second.
  virtual double rate_per_sec() const noexcept = 0;

  virtual std::string name() const = 0;
};

/// Poisson process: exponential inter-arrival gaps.
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate_per_sec);

  sim::Duration next_gap(util::Rng& rng) override { return gap_inline(rng); }
  void next_gap_batch(util::Rng& rng, sim::Duration* out, std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) out[i] = gap_inline(rng);
  }
  double rate_per_sec() const noexcept override { return rate_; }
  std::string name() const override { return "poisson"; }

  /// Non-virtual sampler for devirtualized callers (TaskGenerator).
  sim::Duration gap_inline(util::Rng& rng) const {
    const double gap_seconds = rng.exponential(1.0 / rate_);
    // Never zero: preserves strict event ordering between arrivals.
    return std::max(sim::Duration::nanos(1), sim::Duration::seconds(gap_seconds));
  }

 private:
  double rate_;
};

/// Fixed-gap arrivals at the given rate.
class PacedArrivals final : public ArrivalProcess {
 public:
  explicit PacedArrivals(double rate_per_sec);

  sim::Duration next_gap(util::Rng&) override { return gap_; }
  void next_gap_batch(util::Rng&, sim::Duration* out, std::size_t n) override {
    std::fill_n(out, n, gap_);
  }
  double rate_per_sec() const noexcept override { return rate_; }
  std::string name() const override { return "paced"; }

  /// Fixed gap, for devirtualized callers.
  sim::Duration gap() const noexcept { return gap_; }

 private:
  double rate_;
  sim::Duration gap_;
};

/// Non-homogeneous Poisson: the base rate scaled by a periodic
/// envelope m(t) with unit time-average, so the mean rate over any
/// whole number of periods equals `rate_per_sec` exactly. Sampled by
/// thinning (candidates at the envelope's peak rate, accepted with
/// probability m(t)/peak), which keeps gaps strictly positive and
/// exact for any envelope shape.
class ModulatedArrivals final : public ArrivalProcess {
 public:
  /// Periodic rate multiplier, normalized to unit mean at construction.
  struct Envelope {
    enum class Kind { kSinusoid, kSteps };
    Kind kind = Kind::kSinusoid;
    /// kSinusoid: m(t) = 1 + amplitude * sin(2*pi*t/period); the
    /// amplitude must lie in [0, 1) so the rate never reaches zero.
    double amplitude = 0.0;
    /// kSteps: piecewise-constant multipliers, each held for
    /// period/steps.size(); all strictly positive, unit mean.
    std::vector<double> steps;
    double period_s = 0.0;

    /// Multiplier at absolute time t (seconds).
    double at(double t_s) const noexcept;
    /// Maximum multiplier over the period (the thinning majorant).
    double peak() const noexcept;

    /// "diurnal:LOW:HIGH:PERIOD_S": a sinusoid swinging between LOW and
    /// HIGH times the trough-to-crest midpoint, renormalized to unit
    /// mean (amplitude = (HIGH-LOW)/(HIGH+LOW)). 0 < LOW <= HIGH.
    static Envelope diurnal(double low, double high, double period_s);
    /// "steps:M1,M2,...:PERIOD_S": multipliers renormalized to unit mean.
    static Envelope piecewise(std::vector<double> multipliers, double period_s);
  };

  ModulatedArrivals(double mean_rate_per_sec, Envelope envelope);

  sim::Duration next_gap(util::Rng& rng) override;
  double rate_per_sec() const noexcept override { return rate_; }
  std::string name() const override { return "modulated"; }
  const Envelope& envelope() const noexcept { return envelope_; }

 private:
  double rate_;
  Envelope envelope_;
  double peak_ = 1.0;  // envelope peak, cached off the sampling path
  /// Internal arrival clock (seconds); next_gap is called once per
  /// arrival in sequence, so the process tracks absolute time itself.
  double clock_s_ = 0.0;
};

/// Builds an arrival process from a spec string:
///   "poisson" | "paced" | "diurnal:LOW:HIGH:PERIOD_S" |
///   "steps:M1,M2,...:PERIOD_S"
/// An empty spec means "poisson". Throws std::invalid_argument.
std::unique_ptr<ArrivalProcess> make_arrival_process(const std::string& spec,
                                                     double rate_per_sec);

}  // namespace brb::workload
