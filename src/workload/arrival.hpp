// Task arrival processes.
//
// The paper uses open-loop Poisson task arrivals with the mean rate set
// to a fraction of system capacity. Deterministic (paced) arrivals are
// provided for tests and calibration.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace brb::workload {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Gap until the next arrival (strictly positive).
  virtual sim::Duration next_gap(util::Rng& rng) = 0;

  /// Mean arrival rate in tasks/second.
  virtual double rate_per_sec() const noexcept = 0;

  virtual std::string name() const = 0;
};

/// Poisson process: exponential inter-arrival gaps.
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate_per_sec);

  sim::Duration next_gap(util::Rng& rng) override;
  double rate_per_sec() const noexcept override { return rate_; }
  std::string name() const override { return "poisson"; }

 private:
  double rate_;
};

/// Fixed-gap arrivals at the given rate.
class PacedArrivals final : public ArrivalProcess {
 public:
  explicit PacedArrivals(double rate_per_sec);

  sim::Duration next_gap(util::Rng&) override { return gap_; }
  double rate_per_sec() const noexcept override { return rate_; }
  std::string name() const override { return "paced"; }

 private:
  double rate_;
  sim::Duration gap_;
};

}  // namespace brb::workload
