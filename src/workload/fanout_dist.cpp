#include "workload/fanout_dist.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace brb::workload {

FixedFanout::FixedFanout(std::uint32_t n) : n_(n) {
  if (n_ == 0) throw std::invalid_argument("FixedFanout: n == 0");
}

GeometricFanout::GeometricFanout(double mean) : mean_(mean) {
  if (mean_ < 1.0) throw std::invalid_argument("GeometricFanout: mean < 1");
  // X = 1 + G where G ~ Geometric(p) counts failures before success:
  // E[X] = 1 + (1-p)/p  =>  p = 1 / mean.
  p_ = 1.0 / mean_;
}

LogNormalFanout::LogNormalFanout(double mu, double sigma, std::uint32_t cap)
    : mu_(mu), sigma_(sigma), cap_(cap) {
  if (sigma_ <= 0.0) throw std::invalid_argument("LogNormalFanout: sigma <= 0");
  if (cap_ == 0) throw std::invalid_argument("LogNormalFanout: cap == 0");
  mean_ = discretized_mean(mu_, sigma_, cap_);
}

double LogNormalFanout::discretized_mean(double mu, double sigma, std::uint32_t cap) {
  // E[round/clamp(exp(N))] by quadrature over the standard normal.
  constexpr int kPanels = 1 << 14;
  double acc = 0.0;
  double weight = 0.0;
  for (int i = 0; i < kPanels; ++i) {
    // Gauss-like midpoint rule over z in [-8, 8].
    const double z = -8.0 + 16.0 * (static_cast<double>(i) + 0.5) / kPanels;
    const double w = std::exp(-0.5 * z * z);
    double v = std::round(std::exp(mu + sigma * z));
    v = std::clamp(v, 1.0, static_cast<double>(cap));
    acc += w * v;
    weight += w;
  }
  return acc / weight;
}

LogNormalFanout LogNormalFanout::for_mean(double target_mean, double sigma, std::uint32_t cap) {
  if (target_mean < 1.0) throw std::invalid_argument("LogNormalFanout: target mean < 1");
  // Bisection on mu; the discretized mean is monotone in mu.
  double lo = -5.0;
  double hi = 15.0;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (discretized_mean(mid, sigma, cap) < target_mean) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return LogNormalFanout(0.5 * (lo + hi), sigma, cap);
}

EmpiricalFanout::EmpiricalFanout(std::vector<double> weights) {
  if (weights.empty()) throw std::invalid_argument("EmpiricalFanout: empty weights");
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("EmpiricalFanout: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("EmpiricalFanout: zero total weight");
  cumulative_.reserve(weights.size());
  double acc = 0.0;
  double mean_acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i] / total;
    cumulative_.push_back(acc);
    mean_acc += static_cast<double>(i + 1) * weights[i] / total;
  }
  cumulative_.back() = 1.0;  // absorb rounding
  mean_ = mean_acc;
}

std::uint32_t EmpiricalFanout::sample(util::Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::uint32_t>(std::distance(cumulative_.begin(), it)) + 1;
}

std::unique_ptr<FanoutDistribution> make_fanout_distribution(const std::string& spec) {
  std::vector<std::string> parts;
  std::stringstream ss(spec);
  for (std::string item; std::getline(ss, item, ':');) parts.push_back(item);
  if (parts.empty()) throw std::invalid_argument("make_fanout_distribution: empty spec");
  const auto arg = [&](std::size_t i, double fallback) {
    return parts.size() > i ? std::stod(parts[i]) : fallback;
  };
  const std::string& kind = parts[0];
  if (kind == "fixed") {
    return std::make_unique<FixedFanout>(static_cast<std::uint32_t>(arg(1, 8)));
  }
  if (kind == "geometric") {
    return std::make_unique<GeometricFanout>(arg(1, 8.6));
  }
  if (kind == "lognormal") {
    return std::make_unique<LogNormalFanout>(LogNormalFanout::for_mean(
        arg(1, 8.6), arg(2, 0.8), static_cast<std::uint32_t>(arg(3, 1024))));
  }
  throw std::invalid_argument("make_fanout_distribution: unknown kind: " + kind);
}

}  // namespace brb::workload
