#include "workload/capacity.hpp"

namespace brb::workload {

CapacityPlanner::CapacityPlanner(ClusterSpec spec) : spec_(spec) {
  if (spec_.num_servers == 0 || spec_.cores_per_server == 0) {
    throw std::invalid_argument("CapacityPlanner: empty cluster");
  }
  if (spec_.service_rate_per_core <= 0.0) {
    throw std::invalid_argument("CapacityPlanner: non-positive service rate");
  }
}

double CapacityPlanner::system_capacity_rps() const noexcept {
  return static_cast<double>(spec_.num_servers) * static_cast<double>(spec_.cores_per_server) *
         spec_.service_rate_per_core;
}

double CapacityPlanner::request_rate_for_utilization(double utilization) const {
  if (utilization < 0.0) throw std::invalid_argument("CapacityPlanner: negative utilization");
  return utilization * system_capacity_rps();
}

double CapacityPlanner::task_rate_for_utilization(double utilization, double mean_fanout) const {
  if (mean_fanout <= 0.0) throw std::invalid_argument("CapacityPlanner: mean fan-out <= 0");
  return request_rate_for_utilization(utilization) / mean_fanout;
}

double CapacityPlanner::utilization_for_task_rate(double task_rate, double mean_fanout) const {
  if (task_rate < 0.0 || mean_fanout <= 0.0) {
    throw std::invalid_argument("CapacityPlanner: bad task rate or fan-out");
  }
  return task_rate * mean_fanout / system_capacity_rps();
}

}  // namespace brb::workload
