#include "workload/capacity.hpp"

#include <sstream>

namespace brb::workload {

namespace {

void validate_classes(const std::vector<ServerClass>& classes) {
  if (classes.empty()) return;
  for (const ServerClass& c : classes) {
    if (c.count == 0) throw std::invalid_argument("ClusterSpec: class with zero servers");
    if (c.cores == 0) throw std::invalid_argument("ClusterSpec: class with zero cores");
    if (c.rate_per_core <= 0.0) {
      throw std::invalid_argument("ClusterSpec: class with non-positive service rate");
    }
  }
}

ServerClass parse_class(const std::string& part) {
  // COUNTxCORESxRATE, e.g. "6x4x3500".
  std::vector<std::string> fields;
  std::stringstream ss(part);
  for (std::string field; std::getline(ss, field, 'x');) fields.push_back(field);
  if (fields.size() != 3) {
    throw std::invalid_argument("ClusterSpec: expected COUNTxCORESxRATE, got '" + part + "'");
  }
  ServerClass c;
  try {
    c.count = static_cast<std::uint32_t>(std::stoul(fields[0]));
    c.cores = static_cast<std::uint32_t>(std::stoul(fields[1]));
    c.rate_per_core = std::stod(fields[2]);
  } catch (const std::exception&) {
    throw std::invalid_argument("ClusterSpec: non-numeric field in '" + part + "'");
  }
  return c;
}

}  // namespace

const ServerClass& ClusterSpec::class_of(store::ServerId server) const {
  for (const ServerClass& c : classes) {
    if (server < c.count) return c;
    server -= c.count;
  }
  throw std::out_of_range("ClusterSpec: server outside fleet");
}

std::uint32_t ClusterSpec::cores_of(store::ServerId server) const {
  if (classes.empty()) return cores_per_server;
  return class_of(server).cores;
}

double ClusterSpec::rate_of(store::ServerId server) const {
  if (classes.empty()) return service_rate_per_core;
  return class_of(server).rate_per_core;
}

double ClusterSpec::capacity_of(store::ServerId server) const {
  if (classes.empty()) {
    return static_cast<double>(cores_per_server) * service_rate_per_core;
  }
  const ServerClass& c = class_of(server);
  return static_cast<double>(c.cores) * c.rate_per_core;
}

std::uint64_t ClusterSpec::total_cores() const noexcept {
  if (classes.empty()) {
    return static_cast<std::uint64_t>(num_servers) * cores_per_server;
  }
  std::uint64_t total = 0;
  for (const ServerClass& c : classes) {
    total += static_cast<std::uint64_t>(c.count) * c.cores;
  }
  return total;
}

ClusterSpec ClusterSpec::parse(const std::string& spec) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("ClusterSpec: expected 'hetero:...' or 'uniform:...', got '" +
                                spec + "'");
  }
  const std::string kind = spec.substr(0, colon);
  const std::string body = spec.substr(colon + 1);
  ClusterSpec out;
  if (kind == "uniform") {
    const ServerClass c = parse_class(body);
    validate_classes({c});
    out.num_servers = c.count;
    out.cores_per_server = c.cores;
    out.service_rate_per_core = c.rate_per_core;
    return out;
  }
  if (kind != "hetero") {
    throw std::invalid_argument("ClusterSpec: unknown profile kind '" + kind + "'");
  }
  std::stringstream ss(body);
  for (std::string part; std::getline(ss, part, ',');) {
    if (part.empty()) continue;
    out.classes.push_back(parse_class(part));
  }
  validate_classes(out.classes);
  if (out.classes.empty()) throw std::invalid_argument("ClusterSpec: empty hetero profile");
  std::uint64_t total = 0;
  for (const ServerClass& c : out.classes) total += c.count;
  out.num_servers = static_cast<std::uint32_t>(total);
  // Keep the scalar fields describing the first class so code that
  // only reads them sees something sane; all sized arithmetic goes
  // through the per-server accessors.
  out.cores_per_server = out.classes.front().cores;
  out.service_rate_per_core = out.classes.front().rate_per_core;
  return out;
}

std::string ClusterSpec::describe() const {
  std::ostringstream os;
  if (classes.empty()) {
    os << num_servers << "x" << cores_per_server << "x" << service_rate_per_core;
    return os.str();
  }
  os << "hetero:";
  for (std::size_t i = 0; i < classes.size(); ++i) {
    if (i != 0) os << ",";
    os << classes[i].count << "x" << classes[i].cores << "x" << classes[i].rate_per_core;
  }
  return os.str();
}

CapacityPlanner::CapacityPlanner(ClusterSpec spec) : spec_(std::move(spec)) {
  validate_classes(spec_.classes);
  if (spec_.num_servers == 0 || spec_.total_cores() == 0) {
    throw std::invalid_argument("CapacityPlanner: empty cluster");
  }
  if (spec_.classes.empty() && spec_.service_rate_per_core <= 0.0) {
    throw std::invalid_argument("CapacityPlanner: non-positive service rate");
  }
  if (spec_.heterogeneous()) {
    std::uint64_t total = 0;
    double capacity = 0.0;
    for (const ServerClass& c : spec_.classes) {
      total += c.count;
      capacity += static_cast<double>(c.count) * static_cast<double>(c.cores) * c.rate_per_core;
    }
    if (total != spec_.num_servers) {
      throw std::invalid_argument("CapacityPlanner: num_servers disagrees with class counts");
    }
    capacity_rps_ = capacity;
  } else {
    // The pre-hetero single-expression product, kept verbatim so
    // homogeneous runs stay bit-identical.
    capacity_rps_ = static_cast<double>(spec_.num_servers) *
                    static_cast<double>(spec_.cores_per_server) * spec_.service_rate_per_core;
  }
}

double CapacityPlanner::system_capacity_rps() const noexcept { return capacity_rps_; }

double CapacityPlanner::request_rate_for_utilization(double utilization) const {
  if (utilization < 0.0) throw std::invalid_argument("CapacityPlanner: negative utilization");
  return utilization * system_capacity_rps();
}

double CapacityPlanner::task_rate_for_utilization(double utilization, double mean_fanout) const {
  if (mean_fanout <= 0.0) throw std::invalid_argument("CapacityPlanner: mean fan-out <= 0");
  return request_rate_for_utilization(utilization) / mean_fanout;
}

double CapacityPlanner::utilization_for_task_rate(double task_rate, double mean_fanout) const {
  if (task_rate < 0.0 || mean_fanout <= 0.0) {
    throw std::invalid_argument("CapacityPlanner: bad task rate or fan-out");
  }
  return task_rate * mean_fanout / system_capacity_rps();
}

}  // namespace brb::workload
