// Trace file I/O.
//
// Serializes generated task streams so experiments can replay the exact
// same workload across systems, processes, and (if exported) external
// tools. Format: one task per line,
//   task_id,client,arrival_ns,key:size;key:size;...
// with a single header line "#brb-trace-v1".
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/task.hpp"

namespace brb::workload {

class TraceWriter {
 public:
  static void write(std::ostream& os, const std::vector<TaskSpec>& tasks);
  static void write_file(const std::string& path, const std::vector<TaskSpec>& tasks);
};

class TraceReader {
 public:
  /// Parses a trace; throws std::runtime_error on malformed input.
  static std::vector<TaskSpec> read(std::istream& is);
  static std::vector<TaskSpec> read_file(const std::string& path);
};

}  // namespace brb::workload
