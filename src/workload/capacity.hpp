// Capacity planning: translate a target utilization into arrival rates.
//
// The paper pins the offered load at 70% of system capacity where
// capacity = servers x cores x per-core service rate. This helper keeps
// that arithmetic in one audited place instead of scattered constants.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace brb::workload {

struct ClusterSpec {
  std::uint32_t num_servers = 9;
  std::uint32_t cores_per_server = 4;
  /// Average per-core service rate in requests/second.
  double service_rate_per_core = 3500.0;
};

class CapacityPlanner {
 public:
  explicit CapacityPlanner(ClusterSpec spec);

  /// Aggregate request service capacity, requests/second.
  double system_capacity_rps() const noexcept;

  /// Request arrival rate achieving `utilization` in [0, 1).
  double request_rate_for_utilization(double utilization) const;

  /// Task arrival rate achieving `utilization` given the mean fan-out.
  double task_rate_for_utilization(double utilization, double mean_fanout) const;

  /// Utilization produced by a given task rate and mean fan-out.
  double utilization_for_task_rate(double task_rate, double mean_fanout) const;

  const ClusterSpec& spec() const noexcept { return spec_; }

 private:
  ClusterSpec spec_;
};

}  // namespace brb::workload
