// Capacity planning: translate a target utilization into arrival rates.
//
// The paper pins the offered load at 70% of system capacity where
// capacity = servers x cores x per-core service rate. This helper keeps
// that arithmetic in one audited place instead of scattered constants.
//
// Clusters may be heterogeneous: a profile string like
// "hetero:6x4x3500,3x8x7000" declares classes of COUNTxCORESxRATE
// servers (here 6 four-core servers at 3500 req/s/core followed by 3
// eight-core servers at 7000). Server ids are assigned class by class
// in declaration order. An empty class list means the homogeneous
// cluster described by the three scalar fields.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "store/ids.hpp"

namespace brb::workload {

/// One homogeneous slice of a heterogeneous fleet.
struct ServerClass {
  std::uint32_t count = 0;
  std::uint32_t cores = 0;
  /// Average per-core service rate in requests/second.
  double rate_per_core = 0.0;
};

struct ClusterSpec {
  std::uint32_t num_servers = 9;
  std::uint32_t cores_per_server = 4;
  /// Average per-core service rate in requests/second.
  double service_rate_per_core = 3500.0;
  /// Non-empty = heterogeneous fleet; num_servers is then the class
  /// counts' sum and the scalar fields above are ignored.
  std::vector<ServerClass> classes;

  bool heterogeneous() const noexcept { return !classes.empty(); }

  /// Per-server shape. Homogeneous clusters answer from the scalar
  /// fields (bit-identical to the pre-hetero arithmetic).
  std::uint32_t cores_of(store::ServerId server) const;
  double rate_of(store::ServerId server) const;
  /// cores_of * rate_of, requests/second.
  double capacity_of(store::ServerId server) const;
  std::uint64_t total_cores() const noexcept;

  /// Parses "hetero:COUNTxCORESxRATE[,...]" or the homogeneous
  /// shorthand "uniform:SERVERSxCORESxRATE". Throws invalid_argument.
  static ClusterSpec parse(const std::string& spec);

  /// Canonical profile string for artifacts ("9x4x3500" or
  /// "hetero:6x4x3500,3x8x7000").
  std::string describe() const;

 private:
  /// The class a heterogeneous server id falls in (classes assign ids
  /// in declaration order). Throws out_of_range past the fleet.
  const ServerClass& class_of(store::ServerId server) const;
};

class CapacityPlanner {
 public:
  explicit CapacityPlanner(ClusterSpec spec);

  /// Aggregate request service capacity, requests/second. Sum of
  /// per-server capacities for heterogeneous fleets.
  double system_capacity_rps() const noexcept;

  /// Request arrival rate achieving `utilization` in [0, 1).
  double request_rate_for_utilization(double utilization) const;

  /// Task arrival rate achieving `utilization` given the mean fan-out.
  double task_rate_for_utilization(double utilization, double mean_fanout) const;

  /// Utilization produced by a given task rate and mean fan-out.
  double utilization_for_task_rate(double task_rate, double mean_fanout) const;

  const ClusterSpec& spec() const noexcept { return spec_; }

 private:
  ClusterSpec spec_;
  double capacity_rps_ = 0.0;  // computed once at construction
};

}  // namespace brb::workload
