// Key-popularity distributions over a fixed keyspace.
//
// The paper highlights "skewed workload patterns"; we model popularity
// with a Zipf law over the keyspace (uniform available as a control).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "store/types.hpp"
#include "util/rng.hpp"

namespace brb::workload {

class KeyDistribution {
 public:
  virtual ~KeyDistribution() = default;

  /// Draws a key in [0, num_keys).
  virtual store::KeyId sample(util::Rng& rng) const = 0;

  virtual std::uint64_t num_keys() const noexcept = 0;
  virtual std::string name() const = 0;
};

class UniformKeys final : public KeyDistribution {
 public:
  explicit UniformKeys(std::uint64_t num_keys);

  store::KeyId sample(util::Rng& rng) const override;
  std::uint64_t num_keys() const noexcept override { return n_; }
  std::string name() const override { return "uniform"; }

 private:
  std::uint64_t n_;
};

/// Zipf-popular keys. Rank r (1 = hottest) maps to key
/// scramble(r) so that hot keys scatter across partitions instead of
/// clustering in one group (scrambled-Zipfian, as in YCSB).
class ZipfKeys final : public KeyDistribution {
 public:
  ZipfKeys(std::uint64_t num_keys, double exponent);

  store::KeyId sample(util::Rng& rng) const override;
  std::uint64_t num_keys() const noexcept override { return n_; }
  std::string name() const override { return "zipf"; }
  double exponent() const noexcept { return zipf_.exponent(); }

 private:
  std::uint64_t n_;
  util::ZipfDistribution zipf_;
};

/// Parses "uniform:N" / "zipf:N:EXPONENT".
std::unique_ptr<KeyDistribution> make_key_distribution(const std::string& spec);

}  // namespace brb::workload
