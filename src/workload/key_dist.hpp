// Key-popularity distributions over a fixed keyspace.
//
// The paper highlights "skewed workload patterns"; we model popularity
// with a Zipf law over the keyspace (uniform available as a control).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "store/partitioner.hpp"
#include "store/types.hpp"
#include "util/rng.hpp"

namespace brb::workload {

class KeyDistribution {
 public:
  virtual ~KeyDistribution() = default;

  /// Draws a key in [0, num_keys).
  virtual store::KeyId sample(util::Rng& rng) const = 0;

  /// Fills `out[0..n)` with `n` keys, consuming the RNG stream exactly
  /// as `n` successive `sample()` calls would (draw-for-draw identity —
  /// pinned by workload_test). Hot implementations override this with a
  /// devirtualized inner loop; the default is the scalar loop.
  virtual void sample_batch(util::Rng& rng, store::KeyId* out, std::size_t n) const {
    for (std::size_t i = 0; i < n; ++i) out[i] = sample(rng);
  }

  virtual std::uint64_t num_keys() const noexcept = 0;
  virtual std::string name() const = 0;
};

class UniformKeys final : public KeyDistribution {
 public:
  explicit UniformKeys(std::uint64_t num_keys);

  store::KeyId sample(util::Rng& rng) const override { return sample_inline(rng); }
  void sample_batch(util::Rng& rng, store::KeyId* out, std::size_t n) const override {
    for (std::size_t i = 0; i < n; ++i) out[i] = sample_inline(rng);
  }
  std::uint64_t num_keys() const noexcept override { return n_; }
  std::string name() const override { return "uniform"; }

  /// Non-virtual sampler for devirtualized callers (TaskGenerator).
  store::KeyId sample_inline(util::Rng& rng) const {
    return static_cast<store::KeyId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_) - 1));
  }

 private:
  std::uint64_t n_;
};

/// Zipf-popular keys. Rank r (1 = hottest) maps to key
/// scramble(r) so that hot keys scatter across partitions instead of
/// clustering in one group (scrambled-Zipfian, as in YCSB).
class ZipfKeys final : public KeyDistribution {
 public:
  ZipfKeys(std::uint64_t num_keys, double exponent);

  store::KeyId sample(util::Rng& rng) const override { return sample_inline(rng); }
  void sample_batch(util::Rng& rng, store::KeyId* out, std::size_t n) const override {
    for (std::size_t i = 0; i < n; ++i) out[i] = sample_inline(rng);
  }
  std::uint64_t num_keys() const noexcept override { return n_; }
  std::string name() const override { return "zipf"; }
  double exponent() const noexcept { return zipf_.exponent(); }

  /// Non-virtual sampler for devirtualized callers (TaskGenerator).
  store::KeyId sample_inline(util::Rng& rng) const {
    const std::uint64_t rank = zipf_.sample(rng);  // 1-based
    // Scramble so popularity is uncorrelated with partition placement.
    return store::hash_key(rank - 1) % n_;
  }

 private:
  std::uint64_t n_;
  util::ZipfDistribution zipf_;
};

/// Parses "uniform:N" / "zipf:N:EXPONENT".
std::unique_ptr<KeyDistribution> make_key_distribution(const std::string& spec);

}  // namespace brb::workload
