// Value-size distributions.
//
// The paper generates request value sizes "using a Pareto distribution
// based on a study conducted on Facebook's Memcached deployment"
// (Atikoglu et al., SIGMETRICS 2012). We implement the generalized
// Pareto fit that study reports for the ETC pool, plus alternatives
// used in tests and ablations.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace brb::workload {

/// Samples value sizes in bytes. Implementations are deterministic
/// functions of the provided RNG stream.
class SizeDistribution {
 public:
  virtual ~SizeDistribution() = default;

  /// One value size in bytes; always in [1, max_size()].
  virtual std::uint32_t sample(util::Rng& rng) const = 0;

  /// Fills `out[0..n)` with `n` sizes, consuming the RNG stream exactly
  /// as `n` successive `sample()` calls would (draw-for-draw identity).
  /// Hot implementations override with a devirtualized loop; Dataset
  /// construction uses this to draw the whole keyspace in one call.
  virtual void sample_batch(util::Rng& rng, std::uint32_t* out, std::size_t n) const {
    for (std::size_t i = 0; i < n; ++i) out[i] = sample(rng);
  }

  /// Analytic (or high-accuracy numeric) mean of the truncated
  /// distribution, used for service-rate calibration.
  virtual double mean() const = 0;

  virtual std::uint32_t max_size() const noexcept = 0;
  virtual std::string name() const = 0;
};

/// Generalized Pareto (location mu, scale sigma, shape k), truncated to
/// [1, cap]. Defaults are the Atikoglu et al. ETC value-size fit
/// (mu 0, sigma 214.476, k 0.348238); cap defaults to memcached's 1 MiB
/// object limit.
class GeneralizedParetoSizeDist final : public SizeDistribution {
 public:
  GeneralizedParetoSizeDist(double location = 0.0, double scale = 214.476,
                            double shape = 0.348238, std::uint32_t cap = 1u << 20);

  std::uint32_t sample(util::Rng& rng) const override { return sample_inline(rng); }
  void sample_batch(util::Rng& rng, std::uint32_t* out, std::size_t n) const override {
    for (std::size_t i = 0; i < n; ++i) out[i] = sample_inline(rng);
  }
  double mean() const override;
  std::uint32_t max_size() const noexcept override { return cap_; }
  std::string name() const override { return "gpareto"; }

  /// Non-virtual sampler for devirtualized callers (Dataset, writes).
  std::uint32_t sample_inline(util::Rng& rng) const {
    const double v = rng.generalized_pareto(shape_, scale_, location_);
    if (v < 1.0) return 1;
    if (v > static_cast<double>(cap_)) return cap_;
    return static_cast<std::uint32_t>(v);
  }

  double location() const noexcept { return location_; }
  double scale() const noexcept { return scale_; }
  double shape() const noexcept { return shape_; }

 private:
  double location_;
  double scale_;
  double shape_;
  std::uint32_t cap_;
  double mean_;  // numerically integrated once at construction
};

/// Every value the same size — calibration and unit tests.
class FixedSizeDist final : public SizeDistribution {
 public:
  explicit FixedSizeDist(std::uint32_t size);

  std::uint32_t sample(util::Rng&) const override { return size_; }
  void sample_batch(util::Rng&, std::uint32_t* out, std::size_t n) const override {
    std::fill_n(out, n, size_);
  }
  double mean() const override { return static_cast<double>(size_); }
  std::uint32_t max_size() const noexcept override { return size_; }
  std::string name() const override { return "fixed"; }

 private:
  std::uint32_t size_;
};

/// Bounded classic Pareto on [lo, hi].
class BoundedParetoSizeDist final : public SizeDistribution {
 public:
  BoundedParetoSizeDist(double shape, std::uint32_t lo, std::uint32_t hi);

  std::uint32_t sample(util::Rng& rng) const override;
  double mean() const override;
  std::uint32_t max_size() const noexcept override { return hi_; }
  std::string name() const override { return "bpareto"; }

 private:
  double shape_;
  std::uint32_t lo_;
  std::uint32_t hi_;
};

/// Log-normal sizes truncated to [1, cap].
class LogNormalSizeDist final : public SizeDistribution {
 public:
  LogNormalSizeDist(double mu, double sigma, std::uint32_t cap);

  std::uint32_t sample(util::Rng& rng) const override;
  double mean() const override;
  std::uint32_t max_size() const noexcept override { return cap_; }
  std::string name() const override { return "lognormal"; }

 private:
  double mu_;
  double sigma_;
  std::uint32_t cap_;
  double mean_;
};

/// Builds a size distribution by name ("gpareto", "fixed:N",
/// "bpareto:shape:lo:hi", "lognormal:mu:sigma:cap") for CLI harnesses.
std::unique_ptr<SizeDistribution> make_size_distribution(const std::string& spec);

}  // namespace brb::workload
