#include "workload/trace.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace brb::workload {

namespace {
constexpr const char* kHeader = "#brb-trace-v1";
}

void TraceWriter::write(std::ostream& os, const std::vector<TaskSpec>& tasks) {
  os << kHeader << '\n';
  for (const TaskSpec& task : tasks) {
    os << task.id << ',' << task.client << ',' << task.arrival.count_nanos() << ',';
    for (std::size_t i = 0; i < task.requests.size(); ++i) {
      if (i > 0) os << ';';
      os << task.requests[i].key << ':' << task.requests[i].size_hint;
    }
    os << '\n';
  }
}

void TraceWriter::write_file(const std::string& path, const std::vector<TaskSpec>& tasks) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("TraceWriter: cannot open " + path);
  write(out, tasks);
  if (!out) throw std::runtime_error("TraceWriter: write failed for " + path);
}

std::vector<TaskSpec> TraceReader::read(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    throw std::runtime_error("TraceReader: missing trace header");
  }
  std::vector<TaskSpec> tasks;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line.front() == '#') continue;
    std::stringstream ss(line);
    std::string field;
    TaskSpec task;
    try {
      if (!std::getline(ss, field, ',')) throw std::runtime_error("missing task id");
      task.id = std::stoull(field);
      if (!std::getline(ss, field, ',')) throw std::runtime_error("missing client");
      task.client = static_cast<store::ClientId>(std::stoul(field));
      if (!std::getline(ss, field, ',')) throw std::runtime_error("missing arrival");
      task.arrival = sim::Time::nanos(std::stoll(field));
      if (!std::getline(ss, field)) throw std::runtime_error("missing requests");
      std::stringstream reqs(field);
      std::string req;
      while (std::getline(reqs, req, ';')) {
        const auto colon = req.find(':');
        if (colon == std::string::npos) throw std::runtime_error("malformed request " + req);
        RequestSpec spec;
        spec.key = std::stoull(req.substr(0, colon));
        spec.size_hint = static_cast<std::uint32_t>(std::stoul(req.substr(colon + 1)));
        task.requests.push_back(spec);
      }
      if (task.requests.empty()) throw std::runtime_error("task with no requests");
    } catch (const std::exception& e) {
      throw std::runtime_error("TraceReader: line " + std::to_string(line_no) + ": " + e.what());
    }
    tasks.push_back(std::move(task));
  }
  return tasks;
}

std::vector<TaskSpec> TraceReader::read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("TraceReader: cannot open " + path);
  return read(in);
}

}  // namespace brb::workload
