#include "workload/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace brb::workload {

PoissonArrivals::PoissonArrivals(double rate_per_sec) : rate_(rate_per_sec) {
  if (rate_ <= 0.0) throw std::invalid_argument("PoissonArrivals: rate <= 0");
}

PacedArrivals::PacedArrivals(double rate_per_sec) : rate_(rate_per_sec) {
  if (rate_ <= 0.0) throw std::invalid_argument("PacedArrivals: rate <= 0");
  gap_ = std::max(sim::Duration::nanos(1), sim::Duration::seconds(1.0 / rate_));
}

double ModulatedArrivals::Envelope::at(double t_s) const noexcept {
  const double phase = t_s / period_s - std::floor(t_s / period_s);
  if (kind == Kind::kSinusoid) {
    return 1.0 + amplitude * std::sin(2.0 * 3.14159265358979323846 * phase);
  }
  const auto index = static_cast<std::size_t>(phase * static_cast<double>(steps.size()));
  return steps[std::min(index, steps.size() - 1)];
}

double ModulatedArrivals::Envelope::peak() const noexcept {
  if (kind == Kind::kSinusoid) return 1.0 + amplitude;
  return *std::max_element(steps.begin(), steps.end());
}

ModulatedArrivals::Envelope ModulatedArrivals::Envelope::diurnal(double low, double high,
                                                                double period_s) {
  if (low <= 0.0 || high < low) {
    throw std::invalid_argument("ModulatedArrivals: need 0 < LOW <= HIGH");
  }
  if (period_s <= 0.0) throw std::invalid_argument("ModulatedArrivals: period <= 0");
  Envelope e;
  e.kind = Kind::kSinusoid;
  // Renormalizing LOW..HIGH to unit mean gives relative amplitude
  // (HIGH-LOW)/(HIGH+LOW), always < 1 so the rate stays positive.
  e.amplitude = (high - low) / (high + low);
  e.period_s = period_s;
  return e;
}

ModulatedArrivals::Envelope ModulatedArrivals::Envelope::piecewise(
    std::vector<double> multipliers, double period_s) {
  if (multipliers.empty()) throw std::invalid_argument("ModulatedArrivals: no steps");
  if (period_s <= 0.0) throw std::invalid_argument("ModulatedArrivals: period <= 0");
  double total = 0.0;
  for (const double m : multipliers) {
    if (m <= 0.0) throw std::invalid_argument("ModulatedArrivals: non-positive step");
    total += m;
  }
  const double mean = total / static_cast<double>(multipliers.size());
  for (double& m : multipliers) m /= mean;
  Envelope e;
  e.kind = Kind::kSteps;
  e.steps = std::move(multipliers);
  e.period_s = period_s;
  return e;
}

ModulatedArrivals::ModulatedArrivals(double mean_rate_per_sec, Envelope envelope)
    : rate_(mean_rate_per_sec), envelope_(std::move(envelope)) {
  if (rate_ <= 0.0) throw std::invalid_argument("ModulatedArrivals: rate <= 0");
  if (envelope_.period_s <= 0.0) throw std::invalid_argument("ModulatedArrivals: period <= 0");
  if (envelope_.kind == Envelope::Kind::kSinusoid &&
      (envelope_.amplitude < 0.0 || envelope_.amplitude >= 1.0)) {
    throw std::invalid_argument("ModulatedArrivals: amplitude outside [0, 1)");
  }
  peak_ = envelope_.peak();
}

sim::Duration ModulatedArrivals::next_gap(util::Rng& rng) {
  // Thinning: candidates from a homogeneous Poisson at the peak rate,
  // each accepted with probability m(t)/peak. Acceptance probability
  // is bounded below by the envelope's trough, so this terminates.
  const double peak_rate = rate_ * peak_;
  const double start_s = clock_s_;
  for (;;) {
    clock_s_ += std::max(1e-9, rng.exponential(1.0 / peak_rate));
    if (rng.uniform() * peak_ <= envelope_.at(clock_s_)) {
      const double gap_s = clock_s_ - start_s;
      return std::max(sim::Duration::nanos(1), sim::Duration::seconds(gap_s));
    }
  }
}

std::unique_ptr<ArrivalProcess> make_arrival_process(const std::string& spec,
                                                     double rate_per_sec) {
  if (spec.empty() || spec == "poisson") {
    return std::make_unique<PoissonArrivals>(rate_per_sec);
  }
  if (spec == "paced") return std::make_unique<PacedArrivals>(rate_per_sec);

  std::vector<std::string> parts;
  std::stringstream ss(spec);
  for (std::string part; std::getline(ss, part, ':');) parts.push_back(part);
  const auto number = [&](std::size_t i) {
    try {
      return std::stod(parts.at(i));
    } catch (const std::exception&) {
      throw std::invalid_argument("make_arrival_process: bad field in '" + spec + "'");
    }
  };
  if (parts[0] == "diurnal") {
    if (parts.size() != 4) {
      throw std::invalid_argument("make_arrival_process: expected diurnal:LOW:HIGH:PERIOD_S");
    }
    return std::make_unique<ModulatedArrivals>(
        rate_per_sec, ModulatedArrivals::Envelope::diurnal(number(1), number(2), number(3)));
  }
  if (parts[0] == "steps") {
    if (parts.size() != 3) {
      throw std::invalid_argument("make_arrival_process: expected steps:M1,M2,...:PERIOD_S");
    }
    std::vector<double> multipliers;
    std::stringstream ms(parts[1]);
    for (std::string m; std::getline(ms, m, ',');) {
      if (m.empty()) continue;
      try {
        multipliers.push_back(std::stod(m));
      } catch (const std::exception&) {
        throw std::invalid_argument("make_arrival_process: bad step '" + m + "'");
      }
    }
    return std::make_unique<ModulatedArrivals>(
        rate_per_sec,
        ModulatedArrivals::Envelope::piecewise(std::move(multipliers), number(2)));
  }
  throw std::invalid_argument("make_arrival_process: unknown arrival spec '" + spec + "'");
}

}  // namespace brb::workload
