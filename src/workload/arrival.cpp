#include "workload/arrival.hpp"

#include <algorithm>

namespace brb::workload {

PoissonArrivals::PoissonArrivals(double rate_per_sec) : rate_(rate_per_sec) {
  if (rate_ <= 0.0) throw std::invalid_argument("PoissonArrivals: rate <= 0");
}

sim::Duration PoissonArrivals::next_gap(util::Rng& rng) {
  const double gap_seconds = rng.exponential(1.0 / rate_);
  // Never zero: preserves strict event ordering between arrivals.
  return std::max(sim::Duration::nanos(1), sim::Duration::seconds(gap_seconds));
}

PacedArrivals::PacedArrivals(double rate_per_sec) : rate_(rate_per_sec) {
  if (rate_ <= 0.0) throw std::invalid_argument("PacedArrivals: rate <= 0");
  gap_ = std::max(sim::Duration::nanos(1), sim::Duration::seconds(1.0 / rate_));
}

}  // namespace brb::workload
