#include "workload/key_dist.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

#include "store/partitioner.hpp"

namespace brb::workload {

UniformKeys::UniformKeys(std::uint64_t num_keys) : n_(num_keys) {
  if (n_ == 0) throw std::invalid_argument("UniformKeys: num_keys == 0");
}

ZipfKeys::ZipfKeys(std::uint64_t num_keys, double exponent)
    : n_(num_keys), zipf_(exponent, num_keys) {
  if (n_ == 0) throw std::invalid_argument("ZipfKeys: num_keys == 0");
}

std::unique_ptr<KeyDistribution> make_key_distribution(const std::string& spec) {
  std::vector<std::string> parts;
  std::stringstream ss(spec);
  for (std::string item; std::getline(ss, item, ':');) parts.push_back(item);
  if (parts.empty()) throw std::invalid_argument("make_key_distribution: empty spec");
  const auto arg = [&](std::size_t i, double fallback) {
    return parts.size() > i ? std::stod(parts[i]) : fallback;
  };
  if (parts[0] == "uniform") {
    return std::make_unique<UniformKeys>(static_cast<std::uint64_t>(arg(1, 100'000)));
  }
  if (parts[0] == "zipf") {
    return std::make_unique<ZipfKeys>(static_cast<std::uint64_t>(arg(1, 100'000)),
                                      arg(2, 0.9));
  }
  throw std::invalid_argument("make_key_distribution: unknown kind: " + parts[0]);
}

}  // namespace brb::workload
