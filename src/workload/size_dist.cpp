#include "workload/size_dist.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

namespace brb::workload {

namespace {

std::uint32_t clamp_size(double v, std::uint32_t cap) {
  if (v < 1.0) return 1;
  if (v > static_cast<double>(cap)) return cap;
  return static_cast<std::uint32_t>(v);
}

/// Mean of min(max(X,1),cap) estimated by quadrature over the quantile
/// function: E[g(X)] = integral_0^1 g(Q(u)) du. 64k panels of midpoint
/// rule keep the error far below a byte for these smooth quantiles.
template <typename QuantileFn>
double truncated_mean(QuantileFn q, std::uint32_t cap) {
  constexpr int kPanels = 1 << 16;
  double acc = 0.0;
  for (int i = 0; i < kPanels; ++i) {
    const double u = (static_cast<double>(i) + 0.5) / kPanels;
    acc += static_cast<double>(clamp_size(q(u), cap));
  }
  return acc / kPanels;
}

}  // namespace

GeneralizedParetoSizeDist::GeneralizedParetoSizeDist(double location, double scale, double shape,
                                                     std::uint32_t cap)
    : location_(location), scale_(scale), shape_(shape), cap_(cap) {
  if (scale_ <= 0.0) throw std::invalid_argument("GeneralizedParetoSizeDist: scale <= 0");
  if (cap_ < 1) throw std::invalid_argument("GeneralizedParetoSizeDist: cap < 1");
  const auto quantile = [this](double u) {
    // Inverse CDF with survival s = 1-u.
    const double s = 1.0 - u;
    if (std::abs(shape_) < 1e-12) return location_ - scale_ * std::log(s);
    return location_ + scale_ * (std::pow(s, -shape_) - 1.0) / shape_;
  };
  mean_ = truncated_mean(quantile, cap_);
}

double GeneralizedParetoSizeDist::mean() const { return mean_; }

FixedSizeDist::FixedSizeDist(std::uint32_t size) : size_(size) {
  if (size_ == 0) throw std::invalid_argument("FixedSizeDist: size == 0");
}

BoundedParetoSizeDist::BoundedParetoSizeDist(double shape, std::uint32_t lo, std::uint32_t hi)
    : shape_(shape), lo_(lo), hi_(hi) {
  if (shape_ <= 0.0) throw std::invalid_argument("BoundedParetoSizeDist: shape <= 0");
  if (lo_ == 0 || lo_ >= hi_) throw std::invalid_argument("BoundedParetoSizeDist: need 0 < lo < hi");
}

std::uint32_t BoundedParetoSizeDist::sample(util::Rng& rng) const {
  return clamp_size(rng.bounded_pareto(shape_, lo_, hi_), hi_);
}

double BoundedParetoSizeDist::mean() const {
  const double a = shape_;
  const double l = lo_;
  const double h = hi_;
  if (std::abs(a - 1.0) < 1e-12) {
    return (l * h) / (h - l) * std::log(h / l);
  }
  const double la = std::pow(l, a);
  const double ha = std::pow(h, a);
  // Standard truncated-Pareto mean.
  return la / (1.0 - la / ha) * (a / (a - 1.0)) *
         (1.0 / std::pow(l, a - 1.0) - 1.0 / std::pow(h, a - 1.0));
}

LogNormalSizeDist::LogNormalSizeDist(double mu, double sigma, std::uint32_t cap)
    : mu_(mu), sigma_(sigma), cap_(cap) {
  if (sigma_ <= 0.0) throw std::invalid_argument("LogNormalSizeDist: sigma <= 0");
  if (cap_ < 1) throw std::invalid_argument("LogNormalSizeDist: cap < 1");
  // Quantile via inverse error function is overkill; estimate the
  // truncated mean by large-sample quadrature over the normal quantile
  // approximated with the Acklam rational fit embedded below.
  const auto normal_quantile = [](double u) {
    // Peter Acklam's inverse-normal approximation (relative error < 1.2e-9).
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    constexpr double p_low = 0.02425;
    double q, r;
    if (u < p_low) {
      q = std::sqrt(-2 * std::log(u));
      return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
             ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    }
    if (u <= 1 - p_low) {
      q = u - 0.5;
      r = q * q;
      return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
             (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
    }
    q = std::sqrt(-2 * std::log(1 - u));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  };
  const auto quantile = [&](double u) { return std::exp(mu_ + sigma_ * normal_quantile(u)); };
  mean_ = truncated_mean(quantile, cap_);
}

std::uint32_t LogNormalSizeDist::sample(util::Rng& rng) const {
  return clamp_size(rng.lognormal(mu_, sigma_), cap_);
}

double LogNormalSizeDist::mean() const { return mean_; }

std::unique_ptr<SizeDistribution> make_size_distribution(const std::string& spec) {
  std::vector<std::string> parts;
  std::stringstream ss(spec);
  for (std::string item; std::getline(ss, item, ':');) parts.push_back(item);
  if (parts.empty()) throw std::invalid_argument("make_size_distribution: empty spec");
  const std::string& kind = parts[0];
  const auto arg = [&](std::size_t i, double fallback) {
    return parts.size() > i ? std::stod(parts[i]) : fallback;
  };
  if (kind == "gpareto") {
    return std::make_unique<GeneralizedParetoSizeDist>(arg(1, 0.0), arg(2, 214.476),
                                                       arg(3, 0.348238),
                                                       static_cast<std::uint32_t>(arg(4, 1 << 20)));
  }
  if (kind == "fixed") {
    return std::make_unique<FixedSizeDist>(static_cast<std::uint32_t>(arg(1, 1024)));
  }
  if (kind == "bpareto") {
    return std::make_unique<BoundedParetoSizeDist>(arg(1, 1.2),
                                                   static_cast<std::uint32_t>(arg(2, 64)),
                                                   static_cast<std::uint32_t>(arg(3, 1 << 20)));
  }
  if (kind == "lognormal") {
    return std::make_unique<LogNormalSizeDist>(arg(1, 5.0), arg(2, 1.0),
                                               static_cast<std::uint32_t>(arg(3, 1 << 20)));
  }
  throw std::invalid_argument("make_size_distribution: unknown kind: " + kind);
}

}  // namespace brb::workload
