// Strong simulated-time types.
//
// All simulator timestamps are integer nanoseconds. Strong types keep
// times and durations from mixing with raw integers (a frequent source
// of unit bugs in simulators), while constexpr arithmetic keeps them
// zero-cost.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace brb::sim {

/// A span of simulated time. Signed so that differences are expressible;
/// negative durations are legal values but most consumers reject them.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration nanos(std::int64_t v) noexcept { return Duration(v); }
  static constexpr Duration micros(double v) noexcept {
    return Duration(static_cast<std::int64_t>(v * 1e3));
  }
  static constexpr Duration millis(double v) noexcept {
    return Duration(static_cast<std::int64_t>(v * 1e6));
  }
  static constexpr Duration seconds(double v) noexcept {
    return Duration(static_cast<std::int64_t>(v * 1e9));
  }
  static constexpr Duration zero() noexcept { return Duration(0); }
  static constexpr Duration max() noexcept {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t count_nanos() const noexcept { return ns_; }
  constexpr double as_micros() const noexcept { return static_cast<double>(ns_) / 1e3; }
  constexpr double as_millis() const noexcept { return static_cast<double>(ns_) / 1e6; }
  constexpr double as_seconds() const noexcept { return static_cast<double>(ns_) / 1e9; }

  constexpr bool is_negative() const noexcept { return ns_ < 0; }

  constexpr Duration operator+(Duration other) const noexcept { return Duration(ns_ + other.ns_); }
  constexpr Duration operator-(Duration other) const noexcept { return Duration(ns_ - other.ns_); }
  constexpr Duration operator-() const noexcept { return Duration(-ns_); }
  constexpr Duration operator*(double k) const noexcept {
    return Duration(static_cast<std::int64_t>(static_cast<double>(ns_) * k));
  }
  constexpr Duration operator/(double k) const noexcept {
    return Duration(static_cast<std::int64_t>(static_cast<double>(ns_) / k));
  }
  constexpr double operator/(Duration other) const noexcept {
    return static_cast<double>(ns_) / static_cast<double>(other.ns_);
  }
  constexpr Duration& operator+=(Duration other) noexcept {
    ns_ += other.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration other) noexcept {
    ns_ -= other.ns_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const noexcept = default;

 private:
  explicit constexpr Duration(std::int64_t ns) noexcept : ns_(ns) {}
  std::int64_t ns_ = 0;
};

constexpr Duration operator*(double k, Duration d) noexcept { return d * k; }

/// An absolute point on the simulated clock (nanoseconds since t=0).
class Time {
 public:
  constexpr Time() = default;

  static constexpr Time zero() noexcept { return Time(0); }
  static constexpr Time nanos(std::int64_t v) noexcept { return Time(v); }
  static constexpr Time micros(double v) noexcept {
    return Time(static_cast<std::int64_t>(v * 1e3));
  }
  static constexpr Time millis(double v) noexcept {
    return Time(static_cast<std::int64_t>(v * 1e6));
  }
  static constexpr Time seconds(double v) noexcept {
    return Time(static_cast<std::int64_t>(v * 1e9));
  }
  static constexpr Time max() noexcept { return Time(std::numeric_limits<std::int64_t>::max()); }

  constexpr std::int64_t count_nanos() const noexcept { return ns_; }
  constexpr double as_micros() const noexcept { return static_cast<double>(ns_) / 1e3; }
  constexpr double as_millis() const noexcept { return static_cast<double>(ns_) / 1e6; }
  constexpr double as_seconds() const noexcept { return static_cast<double>(ns_) / 1e9; }

  constexpr Time operator+(Duration d) const noexcept { return Time(ns_ + d.count_nanos()); }
  constexpr Time operator-(Duration d) const noexcept { return Time(ns_ - d.count_nanos()); }
  constexpr Duration operator-(Time other) const noexcept {
    return Duration::nanos(ns_ - other.ns_);
  }
  constexpr Time& operator+=(Duration d) noexcept {
    ns_ += d.count_nanos();
    return *this;
  }

  constexpr auto operator<=>(const Time&) const noexcept = default;

 private:
  explicit constexpr Time(std::int64_t ns) noexcept : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// Human-readable rendering, e.g. "1.500ms" / "42.000us"; for logs only.
std::string to_string(Duration d);
std::string to_string(Time t);

namespace literals {

constexpr Duration operator""_ns(unsigned long long v) {
  return Duration::nanos(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_us(unsigned long long v) {
  return Duration::micros(static_cast<double>(v));
}
constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::millis(static_cast<double>(v));
}
constexpr Duration operator""_s(unsigned long long v) {
  return Duration::seconds(static_cast<double>(v));
}

}  // namespace literals

}  // namespace brb::sim
