// Small-buffer-optimized, non-allocating callback for the event loop.
//
// Every scheduled event used to heap-allocate a `std::function` —
// paper-scale runs spend millions of events, so the closure allocation
// dominated the hot path. `SmallFn` stores captures up to
// `kInlineCapacity` bytes inline (sized for the closures the simulator
// actually schedules: network deliveries, service completions, the
// arrival pump). Larger captures fall back to fixed-size blocks drawn
// from a per-thread freelist pool, so steady-state scheduling performs
// no heap allocation once the pool is warm; only captures beyond
// `kPooledBlockSize` hit the global allocator.
//
// Per-thread pooling keeps the multi-seed runner (`run_seeds`, one
// simulation per thread) lock-free and bit-deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace brb::sim {

/// Allocation counters for the pooled fallback path, exposed so tests
/// can pin the no-steady-state-allocation property. Thread-local: each
/// simulation thread owns an independent pool.
struct SmallFnPoolStats {
  std::uint64_t pooled_constructs = 0;  // callbacks that needed a block
  std::uint64_t pool_hits = 0;          // blocks reused from the freelist
  std::uint64_t pool_misses = 0;        // blocks newly heap-allocated
  std::uint64_t oversize_constructs = 0;  // captures beyond the block size
};

class SmallFn {
 public:
  /// Inline capture capacity. Covers the largest hot-path closure
  /// (server completion: a by-value `QueuedRead` + durations ≈ 80 B).
  static constexpr std::size_t kInlineCapacity = 96;
  /// Pooled-block payload size for the fallback path.
  static constexpr std::size_t kPooledBlockSize = 256;

  SmallFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& fn) {  // NOLINT(google-explicit-constructor): callable sink
    emplace(std::forward<F>(fn));
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() { invoke_(*this); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  /// True when the capture lives in the inline buffer (test hook).
  bool is_inline() const noexcept {
    return invoke_ != nullptr && storage_kind_ == Storage::kInline;
  }

  /// True when the capture moves/destroys without a manager call —
  /// trivially-copyable inline captures, the event loop's hot closures
  /// (test hook).
  bool is_trivial() const noexcept { return invoke_ != nullptr && manage_ == nullptr; }

  void reset() noexcept {
    if (manage_ != nullptr) manage_(Op::kDestroy, *this, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  /// Replaces the target, constructing it in place — lets owners of a
  /// stable SmallFn (event-queue slots) skip the extra move a
  /// pass-by-value SmallFn parameter would cost.
  template <typename F>
  void assign(F&& fn) {
    reset();
    if constexpr (std::is_same_v<std::decay_t<F>, SmallFn>) {
      move_from(fn);
    } else {
      emplace(std::forward<F>(fn));
    }
  }

  /// This thread's pool counters (test hook).
  static const SmallFnPoolStats& pool_stats() noexcept { return pool().stats; }

  /// Releases every cached block on this thread (test hook; the pool
  /// otherwise holds blocks until thread exit).
  static void trim_pool() noexcept { pool().trim(); }

 private:
  enum class Op : std::uint8_t { kDestroy, kMove };
  enum class Storage : std::uint8_t { kInline, kPooled, kHeap };

  /// Per-thread freelist of fixed-size fallback blocks.
  struct Pool {
    std::vector<void*> free_blocks;
    SmallFnPoolStats stats;

    void* acquire() {
      ++stats.pooled_constructs;
      if (!free_blocks.empty()) {
        ++stats.pool_hits;
        void* block = free_blocks.back();
        free_blocks.pop_back();
        return block;
      }
      ++stats.pool_misses;
      return ::operator new(kPooledBlockSize, std::align_val_t{alignof(std::max_align_t)});
    }

    void release(void* block) noexcept { free_blocks.push_back(block); }

    void trim() noexcept {
      for (void* block : free_blocks) {
        ::operator delete(block, std::align_val_t{alignof(std::max_align_t)});
      }
      free_blocks.clear();
    }

    ~Pool() { trim(); }
  };

  static Pool& pool() noexcept {
    // brblint:allow(BRB-D02): allocation cache only — every node is fully constructed before any read
    thread_local Pool instance;
    return instance;
  }

  template <typename F>
  void emplace(F&& fn) {
    using Fn = std::decay_t<F>;
    void* where = nullptr;
    if constexpr (sizeof(Fn) <= kInlineCapacity && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>) {
      // Trivial inline fast path: no manager function at all. Moves
      // byte-copy the buffer and destruction is a no-op, which keeps
      // the event queue's claim/release cycle free of indirect calls —
      // the simulator's hot closures (deliveries, completions) capture
      // only ids, times, and raw pointers, so they all land here.
      storage_kind_ = Storage::kInline;
      ::new (static_cast<void*>(inline_)) Fn(std::forward<F>(fn));
      invoke_ = [](SmallFn& self) { (*static_cast<Fn*>(self.target()))(); };
      manage_ = nullptr;
      return;
    } else if constexpr (sizeof(Fn) <= kInlineCapacity &&
                         alignof(Fn) <= alignof(std::max_align_t)) {
      storage_kind_ = Storage::kInline;
      where = inline_;
    } else if constexpr (sizeof(Fn) <= kPooledBlockSize &&
                         alignof(Fn) <= alignof(std::max_align_t)) {
      storage_kind_ = Storage::kPooled;
      heap_ = pool().acquire();
      where = heap_;
    } else {
      storage_kind_ = Storage::kHeap;
      ++pool().stats.oversize_constructs;
      heap_ = ::operator new(sizeof(Fn), std::align_val_t{alignof(Fn)});
      where = heap_;
    }
    ::new (where) Fn(std::forward<F>(fn));
    invoke_ = [](SmallFn& self) { (*static_cast<Fn*>(self.target()))(); };
    manage_ = [](Op op, SmallFn& self, SmallFn* to) {
      Fn* fn_ptr = static_cast<Fn*>(self.target());
      switch (op) {
        case Op::kMove:
          // Out-of-line storage transfers by pointer; inline storage
          // move-constructs into the destination buffer.
          to->storage_kind_ = self.storage_kind_;
          if (self.storage_kind_ == Storage::kInline) {
            ::new (static_cast<void*>(to->inline_)) Fn(std::move(*fn_ptr));
            fn_ptr->~Fn();
          } else {
            to->heap_ = self.heap_;
          }
          return;
        case Op::kDestroy:
          fn_ptr->~Fn();
          if (self.storage_kind_ == Storage::kPooled) {
            pool().release(self.heap_);
          } else if (self.storage_kind_ == Storage::kHeap) {
            ::operator delete(self.heap_, std::align_val_t{alignof(Fn)});
          }
          return;
      }
    };
  }

  void* target() noexcept { return storage_kind_ == Storage::kInline ? inline_ : heap_; }

  void move_from(SmallFn& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (other.manage_ != nullptr) {
      other.manage_(Op::kMove, other, this);
    } else if (other.invoke_ != nullptr) {
      // Trivial inline capture: a fixed-size byte copy beats a managed
      // member-wise move (straight-line, no indirect call). Copying the
      // full buffer over-reads past sizeof(Fn) but never past the
      // union, and the source needs no teardown.
      storage_kind_ = Storage::kInline;
      __builtin_memcpy(inline_, other.inline_, kInlineCapacity);
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  using InvokeFn = void (*)(SmallFn&);
  using ManageFn = void (*)(Op, SmallFn&, SmallFn*);

  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
  Storage storage_kind_ = Storage::kInline;
  union {
    alignas(std::max_align_t) unsigned char inline_[kInlineCapacity];
    void* heap_;
  };
};

}  // namespace brb::sim
