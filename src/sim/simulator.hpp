// The discrete-event simulation core.
//
// A `Simulator` owns the virtual clock and the pending-event set.
// Components schedule closures at absolute or relative times; `run()`
// drains events in (time, scheduling-order) sequence. Delivery is
// batched: every event at the earliest pending timestamp is drained
// from the queue in one `pop_batch()` call and dispatched from a
// scratch vector, so the queue is not re-touched per event — the
// common burst shapes (a wave of network deliveries at the same
// instant, a fan-out of feedback ticks) pay the tier bookkeeping once.
// Batch members dispatch in strictly increasing scheduling-sequence
// order (debug-asserted), which keeps batched replay bit-identical to
// the one-pop-per-event engine. The engine is single-threaded by
// design — determinism is a feature of the evaluation methodology (the
// paper repeats runs over seeds, which requires bit-stable replay per
// seed).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace brb::sim {

/// Thrown when a component schedules an event before the current
/// simulated instant.
class ScheduleInPastError : public std::logic_error {
 public:
  explicit ScheduleInPastError(Time now, Time requested)
      : std::logic_error("event scheduled in the past: now=" + to_string(now) +
                         " requested=" + to_string(requested)) {}
};

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated instant.
  Time now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now, else throws). Any
  /// callable; constructed in place in the event queue.
  template <typename F>
  EventId schedule_at(Time t, F&& fn) {
    if (t < now_) throw ScheduleInPastError(now_, t);
    return queue_.push(t, std::forward<F>(fn));
  }

  /// Schedules `fn` after a non-negative delay.
  template <typename F>
  EventId schedule_after(Duration delay, F&& fn) {
    if (delay.is_negative()) throw ScheduleInPastError(now_, now_ + delay);
    return queue_.push(now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event; returns false if it already ran or was
  /// already cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the event set drains or `stop()` is called.
  /// Returns the number of events executed by this call.
  std::uint64_t run();

  /// Runs events with time <= `until`; afterwards now() == max(now, until)
  /// unless stopped early. Returns events executed by this call.
  std::uint64_t run_until(Time until);

  /// Executes exactly one event if one is pending. Returns true if an
  /// event ran.
  bool step();

  /// Makes run()/run_until() return after the current event finishes.
  void stop() noexcept { stopped_ = true; }

  bool has_pending() const noexcept { return !queue_.empty(); }
  std::size_t pending_events() const noexcept { return queue_.size(); }

  /// Total events executed over the simulator's lifetime.
  std::uint64_t events_processed() const noexcept { return processed_; }

 private:
  /// By reference: the popped entry's callback is invoked in place
  /// rather than moved a second time.
  void advance_and_execute(EventQueue::Entry& entry);

  /// Pops and dispatches one same-timestamp batch. Returns false when
  /// the queue is empty; on stop() mid-batch, unexecuted events are
  /// restored to the queue with their original time/sequence/id.
  bool run_batch(std::uint64_t& executed);

  EventQueue queue_;
  std::vector<EventQueue::Ready> batch_;  // scratch, reused across batches
  Time now_ = Time::zero();
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

/// Convenience base for simulation components that hold a simulator
/// reference. Non-owning: the simulator must outlive its actors.
class Actor {
 public:
  explicit Actor(Simulator& sim) noexcept : sim_(&sim) {}
  virtual ~Actor() = default;

 protected:
  Simulator& sim() const noexcept { return *sim_; }
  Time now() const noexcept { return sim_->now(); }

 private:
  Simulator* sim_;
};

}  // namespace brb::sim
