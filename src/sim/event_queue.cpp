#include "sim/event_queue.hpp"

#include <utility>

namespace brb::sim {

EventId EventQueue::push(Time when, Callback fn) {
  const EventId id = next_id_++;
  heap_.push_back(Node{when, next_seq_++, id, std::move(fn)});
  sift_up(heap_.size() - 1);
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Only mark ids that are actually still in the heap: scan is avoided
  // by trusting the tombstone set; double-cancel and cancel-after-run
  // are detected by the insert result and the pop-side erase.
  for (const Node& node : heap_) {
    if (node.id == id) {
      const bool inserted = cancelled_.insert(id).second;
      if (inserted) --live_;
      return inserted;
    }
  }
  return false;
}

std::optional<Time> EventQueue::peek_time() {
  skim();
  if (heap_.empty()) return std::nullopt;
  return heap_.front().when;
}

std::optional<EventQueue::Entry> EventQueue::pop() {
  skim();
  if (heap_.empty()) return std::nullopt;
  Entry out{heap_.front().when, heap_.front().id, std::move(heap_.front().fn)};
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  --live_;
  return out;
}

void EventQueue::clear() {
  heap_.clear();
  cancelled_.clear();
  live_ = 0;
}

void EventQueue::skim() {
  while (!heap_.empty() && cancelled_.count(heap_.front().id) > 0) {
    cancelled_.erase(heap_.front().id);
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t left = 2 * i + 1;
    const std::size_t right = 2 * i + 2;
    if (left < n && later(heap_[smallest], heap_[left])) smallest = left;
    if (right < n && later(heap_[smallest], heap_[right])) smallest = right;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace brb::sim
