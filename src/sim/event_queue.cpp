#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace brb::sim {

// Slot generations: even = free, odd = occupied. acquire/release each
// bump the counter, so any id captured before a release fails the
// generation check afterwards — stale cancels are always rejected.

void EventQueue::release_slot(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.fn.reset();
  ++s.generation;  // odd -> even: free
  free_slots_.push_back(slot);
}

bool EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffff'ffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if ((generation & 1u) == 0 || slot >= slots_.size()) return false;
  if (slots_[slot].generation != generation) return false;
  remove_at(slots_[slot].heap_pos);
  release_slot(slot);
  return true;
}

std::optional<Time> EventQueue::peek_time() const {
  if (heap_.empty()) return std::nullopt;
  return heap_.front().when;
}

std::optional<EventQueue::Entry> EventQueue::pop() {
  if (heap_.empty()) return std::nullopt;
  const HeapItem top = heap_.front();
  Slot& s = slots_[top.slot];
  Entry out{top.when, make_id(top.slot, s.generation), std::move(s.fn)};
  release_slot(top.slot);
  remove_at(0);
  return out;
}

void EventQueue::clear() {
  for (const HeapItem& item : heap_) release_slot(item.slot);
  heap_.clear();
}

void EventQueue::remove_at(std::size_t pos) {
  const std::size_t last = heap_.size() - 1;
  if (pos != last) {
    place(pos, heap_[last]);
    heap_.pop_back();
    // The displaced item may violate the heap property in either
    // direction relative to its new neighbourhood.
    sift_up(pos);
    sift_down(pos);
  } else {
    heap_.pop_back();
  }
}

void EventQueue::place(std::size_t pos, HeapItem item) noexcept {
  heap_[pos] = item;
  slots_[item.slot].heap_pos = static_cast<std::uint32_t>(pos);
}

// 4-ary hole-based sifts: the displaced item is held aside while
// children / parents shift into the hole, halving the writes of
// swap-based sifts; the wider fan-out halves tree depth and keeps each
// sibling scan inside one or two cache lines of 24-byte items. Pop
// order is layout-independent ((when, seq) is a total order), so the
// arity is purely a performance choice.

void EventQueue::sift_up(std::size_t i) {
  const HeapItem item = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!later(heap_[parent], item)) break;
    place(i, heap_[parent]);
    i = parent;
  }
  place(i, item);
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapItem item = heap_[i];
  for (;;) {
    const std::size_t first_child = kArity * i + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + kArity, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (later(heap_[best], heap_[c])) best = c;
    }
    if (!later(item, heap_[best])) break;
    place(i, heap_[best]);
    i = best;
  }
  place(i, item);
}

}  // namespace brb::sim
