#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <utility>

namespace brb::sim {

// Slot generations: even = free, odd = occupied. acquire/release each
// bump the counter, so any id captured before a release fails the
// generation check afterwards — stale cancels are always rejected.
//
// Wheel invariants (checked by event_queue_wheel_test's differential
// fuzz against a pure-heap reference):
//   W1  every wheel-resident event has tick(when) >= cursor_tick_;
//       past pushes and beyond-horizon pushes route to the heap tier.
//   W2  a level-l bucket only holds events whose tick falls inside
//       that bucket's current rotation window; the bucket is cascaded
//       (l > 0) or drained (l == 0) before the cursor passes it.
//   W3  the ready run always belongs to the bucket at cursor_tick_;
//       pushes landing on that exact tick while the run is live are
//       merge-inserted so slot-internal order stays exact.

namespace {
constexpr std::uint32_t kSlotMask = EventQueue::kSlotsPerLevel - 1;
constexpr int kWordsPerLevel = EventQueue::kSlotsPerLevel / 64;
}  // namespace

namespace {
constexpr std::int64_t kNoHint = std::numeric_limits<std::int64_t>::max();
}  // namespace

EventQueue::EventQueue() {
  head_.fill(kNil);
  tail_.fill(kNil);
  bitmap_.fill(0);
  level_hint_.fill(kNoHint);
}

std::uint32_t EventQueue::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(slots_.size());
  slots_.emplace_back();
  return slot;
}

void EventQueue::release_slot(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.fn.reset();
  ++s.generation;  // odd -> even: free
  s.tier = Tier::kLoose;
  free_slots_.push_back(slot);
}

void EventQueue::place(std::uint32_t slot) {
  Slot& s = slots_[slot];
  const std::int64_t tick = tick_of(s.when);
  if (tick == cursor_tick_ && ready_pos_ < ready_.size()) {
    // The bucket at the cursor is already drained; late arrivals for
    // the same granule merge into the sorted run (W3).
    ready_insert(slot);
    return;
  }
  const std::int64_t delta = tick - cursor_tick_;
  if (delta < 0 || delta >= kWheelSpanTicks) {
    heap_link(slot);
    return;
  }
  wheel_link(slot, tick);
}

void EventQueue::wheel_link(std::uint32_t slot, std::int64_t tick) {
  Slot& s = slots_[slot];
  const std::int64_t delta = tick - cursor_tick_;
  int level = 0;
  while (delta >= (std::int64_t{1} << (kLevelBits * (level + 1)))) ++level;
  const auto bucket = static_cast<std::uint16_t>((tick >> (kLevelBits * level)) & kSlotMask);
  const std::size_t idx = static_cast<std::size_t>(level) * kSlotsPerLevel + bucket;
  s.prev = tail_[idx];
  s.next = kNil;
  if (tail_[idx] == kNil) {
    head_[idx] = slot;
  } else {
    slots_[tail_[idx]].next = slot;
  }
  tail_[idx] = slot;
  bitmap_[static_cast<std::size_t>(level) * kWordsPerLevel + (bucket >> 6)] |=
      std::uint64_t{1} << (bucket & 63);
  const std::int64_t start =
      (tick >> (kLevelBits * level)) << (kLevelBits * level);
  if (start < level_hint_[level]) level_hint_[level] = start;
  s.tier = Tier::kWheel;
  s.level = static_cast<std::uint8_t>(level);
  s.bucket = bucket;
  ++wheel_count_;
}

void EventQueue::wheel_unlink(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  const std::size_t idx = static_cast<std::size_t>(s.level) * kSlotsPerLevel + s.bucket;
  if (s.prev == kNil) {
    head_[idx] = s.next;
  } else {
    slots_[s.prev].next = s.next;
  }
  if (s.next == kNil) {
    tail_[idx] = s.prev;
  } else {
    slots_[s.next].prev = s.prev;
  }
  if (head_[idx] == kNil) {
    bitmap_[static_cast<std::size_t>(s.level) * kWordsPerLevel + (s.bucket >> 6)] &=
        ~(std::uint64_t{1} << (s.bucket & 63));
  }
  --wheel_count_;
}

void EventQueue::ready_insert(std::uint32_t slot) {
  Slot& s = slots_[slot];
  const Ready r{s.when, s.seq, slot, s.generation};
  const auto begin = ready_.begin() + static_cast<std::ptrdiff_t>(ready_pos_);
  const auto pos = std::upper_bound(begin, ready_.end(), r, [](const Ready& a, const Ready& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  });
  ready_.insert(pos, r);
  s.tier = Tier::kReady;
}

int EventQueue::next_occupied(int level, std::uint32_t from, bool inclusive) const noexcept {
  // Circular find-first-set over the level's bitmap words, starting at
  // bit `from`. Returns the circular distance in buckets, or -1.
  const std::uint64_t* bm = &bitmap_[static_cast<std::size_t>(level) * kWordsPerLevel];
  if (!inclusive) from = (from + 1) & kSlotMask;
  const std::uint32_t word = from >> 6;
  const std::uint32_t bit = from & 63;
  int dist = 0;
  std::uint64_t m = bm[word] >> bit;
  if (m != 0) return std::countr_zero(m);
  dist = static_cast<int>(64 - bit);
  for (int k = 1; k < kWordsPerLevel; ++k) {
    m = bm[(word + k) & (kWordsPerLevel - 1)];
    if (m != 0) return dist + std::countr_zero(m);
    dist += 64;
  }
  // Full circle: the low bits of the starting word, before `from`.
  m = bit != 0 ? (bm[word] & ((std::uint64_t{1} << bit) - 1)) : 0;
  if (m != 0) return dist + std::countr_zero(m);
  return -1;
}

void EventQueue::drain_bucket(std::int64_t tick) {
  cursor_tick_ = tick;
  const auto bucket = static_cast<std::uint16_t>(tick & kSlotMask);
  const std::size_t idx = bucket;  // level 0
  std::uint32_t slot = head_[idx];
  head_[idx] = kNil;
  tail_[idx] = kNil;
  bitmap_[bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
  while (slot != kNil) {
    Slot& s = slots_[slot];
    const std::uint32_t next = s.next;
    --wheel_count_;
    ready_insert(slot);
    slot = next;
  }
}

void EventQueue::cascade_bucket(int level, std::uint16_t bucket) {
  const std::size_t idx = static_cast<std::size_t>(level) * kSlotsPerLevel + bucket;
  std::uint32_t slot = head_[idx];
  head_[idx] = kNil;
  tail_[idx] = kNil;
  bitmap_[static_cast<std::size_t>(level) * kWordsPerLevel + (bucket >> 6)] &=
      ~(std::uint64_t{1} << (bucket & 63));
  while (slot != kNil) {
    Slot& s = slots_[slot];
    const std::uint32_t next = s.next;
    --wheel_count_;
    // Relink below: delta is now < this level's bucket width (W2), so
    // the event lands at a strictly lower level (or the cursor tick's
    // own level-0 bucket).
    wheel_link(slot, tick_of(s.when));
    slot = next;
  }
}

void EventQueue::skip_dead_ready() {
  while (ready_pos_ < ready_.size()) {
    const Ready& r = ready_[ready_pos_];
    if (slots_[r.slot].generation == r.generation) break;
    ++ready_pos_;  // cancelled while in the run; slot already released
  }
}

void EventQueue::ensure_ready() {
  skip_dead_ready();
  while (ready_pos_ >= ready_.size() && wheel_count_ > 0) {
    ready_.clear();
    ready_pos_ = 0;
    // Advance the cursor to the earliest wheel content: pick the
    // minimum of the next occupied level-0 bucket (inclusive of the
    // cursor's own bucket) and the start of the next occupied bucket
    // at every higher level; equal ticks cascade the highest level
    // first so its contents can join the lower buckets before those
    // are processed.
    std::int64_t best_tick = kNoHint;
    int best_level = 0;
    if (level_hint_[0] != kNoHint) {
      const std::uint32_t i0 = static_cast<std::uint32_t>(cursor_tick_) & kSlotMask;
      const int d0 = next_occupied(0, i0, /*inclusive=*/true);
      if (d0 >= 0) {
        best_tick = cursor_tick_ + d0;
        level_hint_[0] = best_tick;
      } else {
        level_hint_[0] = kNoHint;
      }
    }
    for (int level = 1; level < kLevels; ++level) {
      // The hint is a lower bound on this level's earliest bucket
      // start; when it cannot beat (or tie) the best candidate, the
      // level's bitmap scan is skipped entirely. Ties must scan: the
      // tie-break below needs the true start to cascade the higher
      // level first.
      if (level_hint_[level] > best_tick) continue;
      const int shift = kLevelBits * level;
      const std::int64_t cb = cursor_tick_ >> shift;
      const std::uint32_t il = static_cast<std::uint32_t>(cb) & kSlotMask;
      // When the cursor sits exactly on this level's bucket boundary
      // (e.g. just advanced there by a higher-level cascade), the
      // bucket at the cursor's own index can hold current-rotation
      // events and must be scanned inclusively; a next-rotation event
      // cannot be in it (a push at an aligned cursor with delta >=
      // 2^(bits*(l+1)) always lands one level up), so distance 0 is
      // unambiguous. Off the boundary, the own index can only hold
      // next-rotation events, so the scan starts one past it.
      const bool aligned = (cursor_tick_ & ((std::int64_t{1} << shift) - 1)) == 0;
      const int dl = next_occupied(level, il, /*inclusive=*/aligned);
      if (dl < 0) {
        level_hint_[level] = kNoHint;
        continue;
      }
      const std::int64_t bucket_num = cb + (aligned ? dl : 1 + dl);
      const std::int64_t start_tick = bucket_num << shift;
      level_hint_[level] = start_tick;
      if (start_tick < best_tick || (start_tick == best_tick && level > best_level)) {
        best_tick = start_tick;
        best_level = level;
      }
    }
    assert(best_tick != kNoHint && "wheel_count_ > 0 but no occupied bucket");
    if (best_level == 0) {
      drain_bucket(best_tick);
    } else {
      cursor_tick_ = best_tick;
      cascade_bucket(best_level,
                     static_cast<std::uint16_t>((best_tick >> (kLevelBits * best_level)) &
                                                kSlotMask));
    }
    skip_dead_ready();
  }
  if (ready_pos_ >= ready_.size()) {
    ready_.clear();
    ready_pos_ = 0;
  }
}

bool EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffff'ffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if ((generation & 1u) == 0 || slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.generation != generation) return false;
  switch (s.tier) {
    case Tier::kWheel:
      wheel_unlink(slot);
      break;
    case Tier::kHeap:
      heap_remove_at(s.heap_pos);
      break;
    case Tier::kReady:
    case Tier::kLoose:
      // The ready-run entry (or the caller's popped batch entry) goes
      // stale via the generation bump and is skipped lazily.
      break;
  }
  if (s.tier != Tier::kLoose) --live_;
  release_slot(slot);
  return true;
}

std::optional<Time> EventQueue::peek_time() {
  ensure_ready();
  const bool have_ready = ready_pos_ < ready_.size();
  if (!have_ready && heap_.empty()) return std::nullopt;
  if (!have_ready) return heap_.front().when;
  const Time tr = ready_[ready_pos_].when;
  if (heap_.empty()) return tr;
  return std::min(tr, heap_.front().when);
}

std::optional<EventQueue::Entry> EventQueue::pop() {
  ensure_ready();
  const bool have_ready = ready_pos_ < ready_.size();
  const bool have_heap = !heap_.empty();
  if (!have_ready && !have_heap) return std::nullopt;
  bool from_ready = have_ready;
  if (have_ready && have_heap) {
    const Ready& r = ready_[ready_pos_];
    const HeapItem& h = heap_.front();
    from_ready = h.when != r.when ? r.when < h.when : r.seq < h.seq;
  }
  std::uint32_t slot;
  Time when;
  if (from_ready) {
    slot = ready_[ready_pos_].slot;
    when = ready_[ready_pos_].when;
    ++ready_pos_;
  } else {
    slot = heap_.front().slot;
    when = heap_.front().when;
    heap_remove_at(0);
  }
  Slot& s = slots_[slot];
  Entry out{when, make_id(slot, s.generation), std::move(s.fn)};
  release_slot(slot);
  --live_;
  return out;
}

bool EventQueue::pop_batch(std::vector<Ready>& out) {
  ensure_ready();
  const bool have_ready = ready_pos_ < ready_.size();
  const bool have_heap = !heap_.empty();
  if (!have_ready && !have_heap) return false;
  Time t = have_ready ? ready_[ready_pos_].when : heap_.front().when;
  if (have_ready && have_heap && heap_.front().when < t) t = heap_.front().when;
  // Merge both tiers' run of events at exactly t, by seq. Each tier
  // yields its t-run in seq order already (the ready run is sorted;
  // the heap pops (when, seq) ascending).
  for (;;) {
    skip_dead_ready();  // cancelled entries can sit behind live ones
    const bool r_ok = ready_pos_ < ready_.size() && ready_[ready_pos_].when == t;
    const bool h_ok = !heap_.empty() && heap_.front().when == t;
    if (!r_ok && !h_ok) break;
    bool take_ready = r_ok;
    if (r_ok && h_ok) take_ready = ready_[ready_pos_].seq < heap_.front().seq;
    if (take_ready) {
      const Ready r = ready_[ready_pos_];
      ++ready_pos_;
      slots_[r.slot].tier = Tier::kLoose;
      out.push_back(r);
    } else {
      const HeapItem h = heap_.front();
      heap_remove_at(0);
      Slot& s = slots_[h.slot];
      s.tier = Tier::kLoose;
      out.push_back(Ready{h.when, h.seq, h.slot, s.generation});
    }
    --live_;
  }
  return true;
}

bool EventQueue::claim(const Ready& ev, Callback& fn) {
  Slot& s = slots_[ev.slot];
  if (s.generation != ev.generation) return false;  // cancelled mid-batch
  fn = std::move(s.fn);
  release_slot(ev.slot);
  return true;
}

void EventQueue::restore(const Ready& ev) {
  Slot& s = slots_[ev.slot];
  if (s.generation != ev.generation) return;  // cancelled mid-batch
  assert(s.tier == Tier::kLoose);
  place(ev.slot);
  ++live_;
}

void EventQueue::clear() {
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    if ((slots_[slot].generation & 1u) != 0 && slots_[slot].tier != Tier::kLoose) {
      release_slot(slot);
    }
  }
  head_.fill(kNil);
  tail_.fill(kNil);
  bitmap_.fill(0);
  level_hint_.fill(kNoHint);
  wheel_count_ = 0;
  ready_.clear();
  ready_pos_ = 0;
  heap_.clear();
  live_ = 0;
}

// --- heap tier -------------------------------------------------------------

void EventQueue::heap_link(std::uint32_t slot) {
  Slot& s = slots_[slot];
  heap_.push_back(HeapItem{s.when, s.seq, slot});
  s.tier = Tier::kHeap;
  s.heap_pos = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
}

void EventQueue::heap_remove_at(std::size_t pos) {
  const std::size_t last = heap_.size() - 1;
  if (pos != last) {
    heap_place(pos, heap_[last]);
    heap_.pop_back();
    // The displaced item may violate the heap property in either
    // direction relative to its new neighbourhood.
    sift_up(pos);
    sift_down(pos);
  } else {
    heap_.pop_back();
  }
}

void EventQueue::heap_place(std::size_t pos, HeapItem item) noexcept {
  heap_[pos] = item;
  slots_[item.slot].heap_pos = static_cast<std::uint32_t>(pos);
}

// 4-ary hole-based sifts: the displaced item is held aside while
// children / parents shift into the hole, halving the writes of
// swap-based sifts; the wider fan-out halves tree depth and keeps each
// sibling scan inside one or two cache lines of 24-byte items. Pop
// order is layout-independent ((when, seq) is a total order), so the
// arity is purely a performance choice.

void EventQueue::sift_up(std::size_t i) {
  const HeapItem item = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!later(heap_[parent], item)) break;
    heap_place(i, heap_[parent]);
    i = parent;
  }
  heap_place(i, item);
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapItem item = heap_[i];
  for (;;) {
    const std::size_t first_child = kArity * i + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + kArity, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (later(heap_[best], heap_[c])) best = c;
    }
    if (!later(item, heap_[best])) break;
    heap_place(i, heap_[best]);
    i = best;
  }
  heap_place(i, item);
}

}  // namespace brb::sim
