#include "sim/simulator.hpp"

#include <utility>

namespace brb::sim {

EventId Simulator::schedule_at(Time t, Callback fn) {
  if (t < now_) throw ScheduleInPastError(now_, t);
  return queue_.push(t, std::move(fn));
}

EventId Simulator::schedule_after(Duration delay, Callback fn) {
  if (delay.is_negative()) throw ScheduleInPastError(now_, now_ + delay);
  return queue_.push(now_ + delay, std::move(fn));
}

std::uint64_t Simulator::run() {
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!stopped_) {
    auto entry = queue_.pop();
    if (!entry) break;
    advance_and_execute(std::move(*entry));
    ++executed;
  }
  return executed;
}

std::uint64_t Simulator::run_until(Time until) {
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!stopped_) {
    const auto next = queue_.peek_time();
    if (!next || *next > until) break;
    auto entry = queue_.pop();
    advance_and_execute(std::move(*entry));
    ++executed;
  }
  if (!stopped_ && until > now_) now_ = until;
  return executed;
}

bool Simulator::step() {
  auto entry = queue_.pop();
  if (!entry) return false;
  advance_and_execute(std::move(*entry));
  return true;
}

void Simulator::advance_and_execute(EventQueue::Entry entry) {
  now_ = entry.when;
  ++processed_;
  entry.fn();
}

}  // namespace brb::sim
