#include "sim/simulator.hpp"

#include <utility>

namespace brb::sim {

std::uint64_t Simulator::run() {
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!stopped_) {
    auto entry = queue_.pop();
    if (!entry) break;
    advance_and_execute(*entry);
    ++executed;
  }
  return executed;
}

std::uint64_t Simulator::run_until(Time until) {
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!stopped_) {
    const auto next = queue_.peek_time();
    if (!next || *next > until) break;
    auto entry = queue_.pop();
    advance_and_execute(*entry);
    ++executed;
  }
  if (!stopped_ && until > now_) now_ = until;
  return executed;
}

bool Simulator::step() {
  auto entry = queue_.pop();
  if (!entry) return false;
  advance_and_execute(*entry);
  return true;
}

void Simulator::advance_and_execute(EventQueue::Entry& entry) {
  now_ = entry.when;
  ++processed_;
  entry.fn();
}

}  // namespace brb::sim
