#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace brb::sim {

std::uint64_t Simulator::run() {
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!stopped_ && run_batch(executed)) {
  }
  return executed;
}

std::uint64_t Simulator::run_until(Time until) {
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!stopped_) {
    const auto next = queue_.peek_time();
    if (!next || *next > until) break;
    run_batch(executed);
  }
  if (!stopped_ && until > now_) now_ = until;
  return executed;
}

bool Simulator::run_batch(std::uint64_t& executed) {
  batch_.clear();
  if (!queue_.pop_batch(batch_)) return false;
  now_ = batch_.front().when;
#ifndef NDEBUG
  // Batched delivery must not reorder same-timestamp events: the queue
  // hands them over in strictly increasing scheduling sequence, the
  // order the one-pop-per-event engine would have produced.
  for (std::size_t i = 1; i < batch_.size(); ++i) {
    assert(batch_[i - 1].seq < batch_[i].seq &&
           "same-timestamp batch out of seq order");
  }
#endif
  Callback fn;
  for (std::size_t i = 0; i < batch_.size(); ++i) {
    if (stopped_) {
      // stop() mid-batch: the rest of the batch goes back untouched —
      // original time, sequence, and EventId all stay valid, exactly
      // as if those events had never been popped.
      for (std::size_t j = i; j < batch_.size(); ++j) queue_.restore(batch_[j]);
      return true;
    }
    if (!queue_.claim(batch_[i], fn)) continue;  // cancelled mid-batch
    ++processed_;
    ++executed;
    fn();
    fn.reset();  // drop captures before the next event runs
  }
  return true;
}

bool Simulator::step() {
  auto entry = queue_.pop();
  if (!entry) return false;
  advance_and_execute(*entry);
  return true;
}

void Simulator::advance_and_execute(EventQueue::Entry& entry) {
  now_ = entry.when;
  ++processed_;
  entry.fn();
}

}  // namespace brb::sim
