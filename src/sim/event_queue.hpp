// Pending-event set for the discrete-event simulator.
//
// A binary min-heap ordered by (time, sequence number) so that events
// scheduled for the same instant run in scheduling order — this
// stability is what makes whole simulations bit-reproducible across
// runs and platforms.
//
// The heap itself stores only 24-byte POD items; callbacks live in a
// stable slot table (`SmallFn`, allocation-free for hot-path capture
// sizes) so sift operations never move a closure. Each slot remembers
// its heap position, giving true O(log n) cancellation: the node is
// unlinked immediately instead of tombstoned and scanned for.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace brb::sim {

/// Identifies a scheduled event for cancellation. Encodes a slot index
/// plus a per-slot generation, so ids are never observably reused: a
/// stale id (event already executed or cancelled) fails generation
/// validation. 0 is never a valid id.
using EventId = std::uint64_t;

class EventQueue {
 public:
  using Callback = SmallFn;

  struct Entry {
    Time when;
    EventId id = 0;
    Callback fn;
  };

  EventQueue() = default;

  /// Adds an event; returns its id. O(log n), allocation-free once the
  /// slot table has grown to the steady-state pending count. Accepts
  /// any callable and constructs the callback directly in its slot
  /// (no intermediate SmallFn move on the hot path).
  template <typename F>
  EventId push(Time when, F&& fn) {
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.fn.assign(std::forward<F>(fn));
    ++s.generation;  // even -> odd: occupied
    const EventId id = make_id(slot, s.generation);
    heap_.push_back(HeapItem{when, next_seq_++, slot});
    s.heap_pos = static_cast<std::uint32_t>(heap_.size() - 1);
    sift_up(heap_.size() - 1);
    return id;
  }

  /// Cancels a pending event. Returns false if the id is unknown,
  /// already executed, or already cancelled. O(log n): the slot's heap
  /// position is known, so the node is removed by a single swap + sift.
  bool cancel(EventId id);

  /// Time of the earliest live event, if any.
  std::optional<Time> peek_time() const;

  /// Removes and returns the earliest live event; empty when drained.
  std::optional<Entry> pop();

  /// Number of live events.
  std::size_t size() const noexcept { return heap_.size(); }
  bool empty() const noexcept { return heap_.empty(); }

  /// Drops every pending event.
  void clear();

 private:
  /// What the heap actually orders: trivially-copyable, so sifts are
  /// cheap word moves plus one slot position update.
  struct HeapItem {
    Time when;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
  };

  /// Stable home of a pending event's callback.
  struct Slot {
    Callback fn;
    std::uint32_t generation = 0;  // odd while occupied (see acquire)
    std::uint32_t heap_pos = 0;
  };

  /// Heap branching factor: shallower than binary, siblings share
  /// cache lines.
  static constexpr std::size_t kArity = 4;

  static bool later(const HeapItem& a, const HeapItem& b) noexcept {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  static constexpr EventId make_id(std::uint32_t slot, std::uint32_t generation) noexcept {
    return (static_cast<EventId>(generation) << 32) | slot;
  }

  void release_slot(std::uint32_t slot) noexcept;
  /// Removes the heap item at `pos` (swap with back, then restore the
  /// heap property in whichever direction the swapped item violates).
  void remove_at(std::size_t pos);
  void place(std::size_t pos, HeapItem item) noexcept;
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<HeapItem> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace brb::sim
