// Pending-event set for the discrete-event simulator: a two-tier
// scheduler behind one `EventQueue` API.
//
// Tier 1 — hierarchical timing wheel. The dominant scheduling pattern
// at paper scale is schedule-at-small-delta (network deliveries,
// service completions, credit/feedback ticks), which a hierarchical
// timing wheel serves with O(1) push and O(1) amortized pop: four
// power-of-two-spaced levels of 256 slots each, a 4.096 us granule at
// level 0, per-slot intrusive doubly-linked lists threaded through the
// slot table by index (no pointers, no per-node allocation), bitmap
// occupancy words for find-next-slot, and lazy cascade — an event is
// only relinked to a lower level when the cursor reaches its bucket.
//
// Tier 2 — the 4-ary generation-validated indirect heap retained from
// the dense-ID refactor. It takes everything the wheel cannot: events
// beyond the wheel horizon (~4.8 h), events scheduled before the wheel
// cursor (legal for the standalone queue; the simulator never does
// this), and is the natural home for far-deadline watchdogs. Both
// tiers share the slot table, the sequence counter, and the EventId
// generation discipline, so cancellation stays O(1) in the wheel and
// O(log n) in the heap with ids never observably reused.
//
// Ordering. Pops interleave both tiers in exact (time, sequence)
// order — the stability that makes whole simulations bit-reproducible.
// A wheel slot can hold several distinct timestamps (the granule is
// coarser than 1 ns), so a slot is drained into a small sorted "ready
// run" which is then merge-popped against the heap top; same-timestamp
// events come out in scheduling order by construction.
//
// Batched delivery. `pop_batch()` removes *every* event at the
// earliest pending timestamp in one call (the simulator dispatches the
// batch without re-touching the queue per event); `claim()` /
// `restore()` let the caller execute the batch while cancellation —
// and a mid-batch stop() — keep exact old-engine semantics: an
// unexecuted event goes back with its original time, sequence number,
// and EventId still valid.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace brb::sim {

/// Identifies a scheduled event for cancellation. Encodes a slot index
/// plus a per-slot generation, so ids are never observably reused: a
/// stale id (event already executed or cancelled) fails generation
/// validation. 0 is never a valid id.
using EventId = std::uint64_t;

class EventQueue {
 public:
  using Callback = SmallFn;

  struct Entry {
    Time when;
    EventId id = 0;
    Callback fn;
  };

  /// One event of a popped batch. The callback stays in the queue's
  /// slot table until `claim()`ed, so the event's id remains valid (and
  /// cancellable) while earlier batch members execute.
  struct Ready {
    Time when;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    std::uint32_t generation = 0;
  };

  EventQueue();

  /// Adds an event; returns its id. O(1) for deltas within the wheel
  /// horizon, O(log n) for far/past events (heap tier); allocation-free
  /// once the slot table has grown to the steady-state pending count.
  /// Accepts any callable and constructs the callback directly in its
  /// slot (no intermediate SmallFn move on the hot path).
  template <typename F>
  EventId push(Time when, F&& fn) {
    const std::uint32_t slot = acquire_slot();
    Slot& s = slots_[slot];
    s.fn.assign(std::forward<F>(fn));
    ++s.generation;  // even -> odd: occupied
    s.when = when;
    s.seq = next_seq_++;
    const EventId id = make_id(slot, s.generation);
    place(slot);
    ++live_;
    return id;
  }

  /// Cancels a pending event. Returns false if the id is unknown,
  /// already executed, or already cancelled. O(1) for wheel-resident
  /// events (intrusive-list unlink), O(log n) for heap-tier events.
  bool cancel(EventId id);

  /// Time of the earliest live event, if any. May lazily cascade wheel
  /// levels (amortized O(1); never changes observable order).
  std::optional<Time> peek_time();

  /// Removes and returns the earliest live event; empty when drained.
  std::optional<Entry> pop();

  /// Removes every event at the earliest pending timestamp, appending
  /// them to `out` in scheduling (seq) order. Returns false when the
  /// queue is empty. The callbacks remain claimable afterwards.
  bool pop_batch(std::vector<Ready>& out);

  /// Moves a popped batch event's callback into `fn` and releases the
  /// slot (the id becomes stale). Returns false — and leaves `fn`
  /// untouched — if the event was cancelled after pop_batch().
  bool claim(const Ready& ev, Callback& fn);

  /// Puts an unexecuted batch event back into the queue with its
  /// original time and sequence number; its EventId stays valid. Used
  /// when stop() interrupts a half-dispatched batch.
  void restore(const Ready& ev);

  /// Number of live events (batch events not yet claimed count as live).
  std::size_t size() const noexcept { return live_; }
  bool empty() const noexcept { return live_ == 0; }

  /// Drops every pending event.
  void clear();

  /// Events currently resident in the wheel tier (observability/tests).
  std::size_t wheel_resident() const noexcept { return wheel_count_; }
  /// Events currently resident in the heap tier (observability/tests).
  std::size_t heap_resident() const noexcept { return heap_.size(); }

  // --- wheel geometry (exposed for tests and the micro-bench) ---
  /// log2 of the level-0 slot width in nanoseconds (4.096 us).
  static constexpr int kGranularityBits = 12;
  /// log2 of the slots per level.
  static constexpr int kLevelBits = 8;
  static constexpr std::uint32_t kSlotsPerLevel = 1u << kLevelBits;
  static constexpr int kLevels = 4;
  /// Ticks covered by the whole wheel (beyond this: heap tier).
  static constexpr std::int64_t kWheelSpanTicks = std::int64_t{1} << (kLevelBits * kLevels);

 private:
  /// Where a pending event currently lives.
  enum class Tier : std::uint8_t {
    kWheel,  // linked into a wheel slot list
    kHeap,   // indexed by heap_pos in heap_
    kReady,  // in the sorted ready run (current wheel bucket, drained)
    kLoose,  // handed out by pop_batch, awaiting claim/restore
  };

  static constexpr std::uint32_t kNil = 0xffff'ffffu;

  /// Stable home of a pending event: callback, ordering key, and the
  /// per-tier location needed for O(1)/O(log n) cancellation.
  struct Slot {
    Callback fn;
    Time when;
    std::uint64_t seq = 0;
    std::uint32_t generation = 0;  // odd while occupied
    Tier tier = Tier::kLoose;
    std::uint8_t level = 0;       // wheel tier: level index
    std::uint16_t bucket = 0;     // wheel tier: slot within level
    std::uint32_t prev = kNil;    // wheel tier: intrusive list links
    std::uint32_t next = kNil;
    std::uint32_t heap_pos = 0;   // heap tier
  };

  /// What the heap actually orders: trivially-copyable, so sifts are
  /// cheap word moves plus one slot position update.
  struct HeapItem {
    Time when;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
  };

  /// Heap branching factor: shallower than binary, siblings share
  /// cache lines.
  static constexpr std::size_t kArity = 4;

  static bool later(const HeapItem& a, const HeapItem& b) noexcept {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  static constexpr EventId make_id(std::uint32_t slot, std::uint32_t generation) noexcept {
    return (static_cast<EventId>(generation) << 32) | slot;
  }

  static constexpr std::int64_t tick_of(Time t) noexcept {
    // Arithmetic shift: negative times (legal for the standalone queue)
    // round toward -inf, which only matters for the past-goes-to-heap
    // routing decision.
    return t.count_nanos() >> kGranularityBits;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) noexcept;

  /// Routes an occupied slot into the right tier based on its time
  /// relative to the wheel cursor.
  void place(std::uint32_t slot);
  void wheel_link(std::uint32_t slot, std::int64_t tick);
  void wheel_unlink(std::uint32_t slot) noexcept;
  void ready_insert(std::uint32_t slot);

  /// Ensures the ready run holds the earliest wheel bucket's events
  /// (sorted); advances the cursor and cascades lazily as needed.
  void ensure_ready();
  /// Drops dead (cancelled) entries from the front of the ready run.
  void skip_dead_ready();
  /// Drains the level-0 bucket at `tick` into the ready run.
  void drain_bucket(std::int64_t tick);
  /// Relinks every event of a level>0 bucket into lower levels.
  void cascade_bucket(int level, std::uint16_t bucket);

  /// Circular distance (in buckets) from `from` to the next occupied
  /// bucket of `level`, searching `from` itself first when `inclusive`.
  /// Returns -1 when the level is empty.
  int next_occupied(int level, std::uint32_t from, bool inclusive) const noexcept;

  // Heap tier (unchanged from the dense-ID refactor).
  void heap_link(std::uint32_t slot);
  void heap_remove_at(std::size_t pos);
  void heap_place(std::size_t pos, HeapItem item) noexcept;
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;

  // Wheel tier.
  std::array<std::uint32_t, kLevels * kSlotsPerLevel> head_;
  std::array<std::uint32_t, kLevels * kSlotsPerLevel> tail_;
  std::array<std::uint64_t, kLevels*(kSlotsPerLevel / 64)> bitmap_;
  std::int64_t cursor_tick_ = 0;
  std::size_t wheel_count_ = 0;
  /// Per-level lower bound on the earliest occupied bucket's start
  /// tick (INT64_MAX when no bound). Links tighten it; removals may
  /// leave it stale-low, which only costs one extra bitmap scan the
  /// next time the level looks like the minimum — it is never
  /// stale-high, so no candidate can be missed.
  std::array<std::int64_t, kLevels> level_hint_;

  // Ready run: the drained current bucket, sorted by (when, seq).
  // `ready_pos_` avoids erase-from-front churn.
  std::vector<Ready> ready_;
  std::size_t ready_pos_ = 0;

  // Heap tier.
  std::vector<HeapItem> heap_;
};

}  // namespace brb::sim
