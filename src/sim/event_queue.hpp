// Pending-event set for the discrete-event simulator.
//
// A binary min-heap ordered by (time, sequence number) so that events
// scheduled for the same instant run in scheduling order — this
// stability is what makes whole simulations bit-reproducible across
// runs and platforms. Cancellation is lazy (tombstones), keeping both
// schedule and pop O(log n).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace brb::sim {

/// Identifies a scheduled event for cancellation. Ids are never reused
/// within one queue.
using EventId = std::uint64_t;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  struct Entry {
    Time when;
    EventId id = 0;
    Callback fn;
  };

  EventQueue() = default;

  /// Adds an event; returns its id. O(log n).
  EventId push(Time when, Callback fn);

  /// Cancels a pending event. Returns false if the id is unknown,
  /// already executed, or already cancelled. Costs a linear scan of the
  /// pending set (cancellation is rare in this codebase — watchdogs and
  /// tests); the tombstone is reclaimed when the entry reaches the top.
  bool cancel(EventId id);

  /// Time of the earliest live event, if any.
  std::optional<Time> peek_time();

  /// Removes and returns the earliest live event; empty when drained.
  std::optional<Entry> pop();

  /// Number of live (non-cancelled) events.
  std::size_t size() const noexcept { return live_; }
  bool empty() const noexcept { return live_ == 0; }

  /// Drops every pending event.
  void clear();

 private:
  struct Node {
    Time when;
    std::uint64_t seq = 0;
    EventId id = 0;
    Callback fn;
  };

  static bool later(const Node& a, const Node& b) noexcept {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Pops tombstoned nodes off the top until a live node (or empty).
  void skim();

  std::vector<Node> heap_;
  std::unordered_set<EventId> cancelled_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
};

}  // namespace brb::sim
