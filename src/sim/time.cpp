#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace brb::sim {

namespace {

std::string format_ns(std::int64_t ns) {
  char buffer[64];
  const double abs_ns = std::abs(static_cast<double>(ns));
  if (abs_ns >= 1e9) {
    std::snprintf(buffer, sizeof(buffer), "%.3fs", static_cast<double>(ns) / 1e9);
  } else if (abs_ns >= 1e6) {
    std::snprintf(buffer, sizeof(buffer), "%.3fms", static_cast<double>(ns) / 1e6);
  } else if (abs_ns >= 1e3) {
    std::snprintf(buffer, sizeof(buffer), "%.3fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%lldns", static_cast<long long>(ns));
  }
  return buffer;
}

}  // namespace

std::string to_string(Duration d) { return format_ns(d.count_nanos()); }
std::string to_string(Time t) { return format_ns(t.count_nanos()); }

}  // namespace brb::sim
