// Service-time models.
//
// The paper's servers run "at an average service rate of 3500
// requests/s" per core, with per-request work driven by the requested
// value's size. `SizeLinearServiceModel` captures that: a fixed
// per-request overhead plus a size-proportional term, calibrated so the
// *mean* service time over a given size distribution equals the target
// rate. An exponential model is provided for analytic validation
// against M/M/c queueing formulas.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace brb::server {

class ServiceTimeModel {
 public:
  virtual ~ServiceTimeModel() = default;

  /// Sampled service duration for a value of `size` bytes (> 0).
  virtual sim::Duration sample(std::uint32_t size, util::Rng& rng) const = 0;

  /// Expected service duration for a value of `size` bytes. This is the
  /// client-side forecast (the paper's clients predict cost from the
  /// requested value size).
  virtual sim::Duration expected(std::uint32_t size) const = 0;

  virtual std::string name() const = 0;
};

/// t(size) = base + size * per_byte, optionally scaled by log-normal
/// noise with unit mean (sigma = 0 gives a deterministic model).
class SizeLinearServiceModel final : public ServiceTimeModel {
 public:
  SizeLinearServiceModel(sim::Duration base, double per_byte_nanos, double noise_sigma = 0.0);

  /// Calibrates per_byte so that E[t] = 1/target_rate given the mean
  /// value size: per_byte = (1/rate - base) / mean_size.
  static SizeLinearServiceModel calibrate(double target_rate_per_sec, double mean_size_bytes,
                                          sim::Duration base = sim::Duration::micros(50),
                                          double noise_sigma = 0.0);

  sim::Duration sample(std::uint32_t size, util::Rng& rng) const override {
    const sim::Duration mean = expected(size);
    if (noise_sigma_ == 0.0) return mean;
    const double factor = rng.lognormal(noise_mu_, noise_sigma_);
    const auto nanos = static_cast<std::int64_t>(static_cast<double>(mean.count_nanos()) * factor);
    return sim::Duration::nanos(nanos > 0 ? nanos : 1);
  }
  sim::Duration expected(std::uint32_t size) const override {
    return base_ + sim::Duration::nanos(
                       static_cast<std::int64_t>(per_byte_nanos_ * static_cast<double>(size)));
  }
  std::string name() const override { return "size-linear"; }

  sim::Duration base() const noexcept { return base_; }
  double per_byte_nanos() const noexcept { return per_byte_nanos_; }
  double noise_sigma() const noexcept { return noise_sigma_; }

 private:
  sim::Duration base_;
  double per_byte_nanos_;
  double noise_sigma_;
  double noise_mu_;  // -sigma^2/2 so the noise factor has mean exactly 1
};

/// Exponentially distributed service time with a size-independent mean;
/// turns each server core into an M/M/1-style station for validation.
class ExponentialServiceModel final : public ServiceTimeModel {
 public:
  explicit ExponentialServiceModel(sim::Duration mean);

  sim::Duration sample(std::uint32_t size, util::Rng& rng) const override;
  sim::Duration expected(std::uint32_t size) const override;
  std::string name() const override { return "exponential"; }

 private:
  sim::Duration mean_;
};

/// Deterministic size-independent service time (M/D/c validation).
class DeterministicServiceModel final : public ServiceTimeModel {
 public:
  explicit DeterministicServiceModel(sim::Duration value);

  sim::Duration sample(std::uint32_t, util::Rng&) const override { return value_; }
  sim::Duration expected(std::uint32_t) const override { return value_; }
  std::string name() const override { return "deterministic"; }

 private:
  sim::Duration value_;
};

}  // namespace brb::server
