#include "server/queue_discipline.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace brb::server {

void FifoDiscipline::push(QueuedRead read) { queue_.push_back(std::move(read)); }

std::optional<QueuedRead> FifoDiscipline::pop() {
  if (queue_.empty()) return std::nullopt;
  QueuedRead out = std::move(queue_.front());
  queue_.pop_front();
  return out;
}

std::optional<QueueHead> FifoDiscipline::peek() const {
  if (queue_.empty()) return std::nullopt;
  return QueueHead{0.0, queue_.front().submit_seq};
}

void PriorityDiscipline::push(QueuedRead read) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(read);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(read));
  }
  heap_.push_back(HeapItem{slots_[slot].request.priority, next_seq_++, slot});
  sift_up(heap_.size() - 1);
}

std::optional<QueueHead> PriorityDiscipline::peek() const {
  if (heap_.empty()) return std::nullopt;
  return QueueHead{heap_.front().priority, slots_[heap_.front().slot].submit_seq};
}

std::optional<QueuedRead> PriorityDiscipline::pop() {
  if (heap_.empty()) return std::nullopt;
  const std::uint32_t slot = heap_.front().slot;
  QueuedRead out = std::move(slots_[slot]);
  free_slots_.push_back(slot);
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return out;
}

void PriorityDiscipline::sift_up(std::size_t i) {
  const HeapItem item = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!later(heap_[parent], item)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = item;
}

void PriorityDiscipline::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapItem item = heap_[i];
  for (;;) {
    const std::size_t first_child = kArity * i + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + kArity, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (later(heap_[best], heap_[c])) best = c;
    }
    if (!later(item, heap_[best])) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = item;
}

void SjfDiscipline::push(QueuedRead read) {
  // Reuse the priority heap keyed on the expected per-request cost.
  read.request.priority =
      static_cast<store::Priority>(read.request.expected_cost.count_nanos());
  inner_.push(std::move(read));
}

std::optional<QueuedRead> SjfDiscipline::pop() { return inner_.pop(); }

std::unique_ptr<QueueDiscipline> make_discipline(const std::string& name) {
  if (name == "fifo") return std::make_unique<FifoDiscipline>();
  if (name == "priority") return std::make_unique<PriorityDiscipline>();
  if (name == "sjf") return std::make_unique<SjfDiscipline>();
  throw std::invalid_argument("make_discipline: unknown discipline: " + name);
}

}  // namespace brb::server
