#include "server/queue_discipline.hpp"

#include <stdexcept>
#include <utility>

namespace brb::server {

void FifoDiscipline::push(QueuedRead read) { queue_.push_back(std::move(read)); }

std::optional<QueuedRead> FifoDiscipline::pop() {
  if (queue_.empty()) return std::nullopt;
  QueuedRead out = std::move(queue_.front());
  queue_.pop_front();
  return out;
}

std::optional<QueueHead> FifoDiscipline::peek() const {
  if (queue_.empty()) return std::nullopt;
  return QueueHead{0.0, queue_.front().submit_seq};
}

void PriorityDiscipline::push(QueuedRead read) {
  heap_.push_back(Node{read.request.priority, next_seq_++, std::move(read)});
  sift_up(heap_.size() - 1);
}

std::optional<QueueHead> PriorityDiscipline::peek() const {
  if (heap_.empty()) return std::nullopt;
  return QueueHead{heap_.front().priority, heap_.front().read.submit_seq};
}

std::optional<QueuedRead> PriorityDiscipline::pop() {
  if (heap_.empty()) return std::nullopt;
  QueuedRead out = std::move(heap_.front().read);
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return out;
}

void PriorityDiscipline::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void PriorityDiscipline::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t left = 2 * i + 1;
    const std::size_t right = 2 * i + 2;
    if (left < n && later(heap_[smallest], heap_[left])) smallest = left;
    if (right < n && later(heap_[smallest], heap_[right])) smallest = right;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

void SjfDiscipline::push(QueuedRead read) {
  // Reuse the priority heap keyed on the expected per-request cost.
  read.request.priority =
      static_cast<store::Priority>(read.request.expected_cost.count_nanos());
  inner_.push(std::move(read));
}

std::optional<QueuedRead> SjfDiscipline::pop() { return inner_.pop(); }

std::unique_ptr<QueueDiscipline> make_discipline(const std::string& name) {
  if (name == "fifo") return std::make_unique<FifoDiscipline>();
  if (name == "priority") return std::make_unique<PriorityDiscipline>();
  if (name == "sjf") return std::make_unique<SjfDiscipline>();
  throw std::invalid_argument("make_discipline: unknown discipline: " + name);
}

}  // namespace brb::server
