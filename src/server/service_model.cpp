#include "server/service_model.hpp"

#include <cmath>
#include <stdexcept>

namespace brb::server {

SizeLinearServiceModel::SizeLinearServiceModel(sim::Duration base, double per_byte_nanos,
                                               double noise_sigma)
    : base_(base),
      per_byte_nanos_(per_byte_nanos),
      noise_sigma_(noise_sigma),
      noise_mu_(-0.5 * noise_sigma * noise_sigma) {
  if (base_.is_negative()) throw std::invalid_argument("SizeLinearServiceModel: negative base");
  if (per_byte_nanos_ < 0.0) {
    throw std::invalid_argument("SizeLinearServiceModel: negative per-byte cost");
  }
  if (noise_sigma_ < 0.0) throw std::invalid_argument("SizeLinearServiceModel: negative sigma");
  if (base_.count_nanos() == 0 && per_byte_nanos_ == 0.0) {
    throw std::invalid_argument("SizeLinearServiceModel: zero service time");
  }
}

SizeLinearServiceModel SizeLinearServiceModel::calibrate(double target_rate_per_sec,
                                                         double mean_size_bytes,
                                                         sim::Duration base, double noise_sigma) {
  if (target_rate_per_sec <= 0.0) {
    throw std::invalid_argument("SizeLinearServiceModel::calibrate: rate <= 0");
  }
  if (mean_size_bytes <= 0.0) {
    throw std::invalid_argument("SizeLinearServiceModel::calibrate: mean size <= 0");
  }
  const double target_mean_ns = 1e9 / target_rate_per_sec;
  const double size_budget_ns = target_mean_ns - static_cast<double>(base.count_nanos());
  if (size_budget_ns <= 0.0) {
    throw std::invalid_argument(
        "SizeLinearServiceModel::calibrate: base overhead exceeds the mean service budget");
  }
  return SizeLinearServiceModel(base, size_budget_ns / mean_size_bytes, noise_sigma);
}

ExponentialServiceModel::ExponentialServiceModel(sim::Duration mean) : mean_(mean) {
  if (mean_ <= sim::Duration::zero()) {
    throw std::invalid_argument("ExponentialServiceModel: mean must be positive");
  }
}

sim::Duration ExponentialServiceModel::sample(std::uint32_t, util::Rng& rng) const {
  const double ns = rng.exponential(static_cast<double>(mean_.count_nanos()));
  return sim::Duration::nanos(ns < 1.0 ? 1 : static_cast<std::int64_t>(ns));
}

sim::Duration ExponentialServiceModel::expected(std::uint32_t) const { return mean_; }

DeterministicServiceModel::DeterministicServiceModel(sim::Duration value) : value_(value) {
  if (value_ <= sim::Duration::zero()) {
    throw std::invalid_argument("DeterministicServiceModel: value must be positive");
  }
}

}  // namespace brb::server
