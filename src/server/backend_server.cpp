#include "server/backend_server.hpp"

#include <stdexcept>
#include <utility>

#include "util/ewma.hpp"
#include "util/logger.hpp"

namespace brb::server {

PrivateQueueSource::PrivateQueueSource(std::unique_ptr<QueueDiscipline> discipline)
    : discipline_(std::move(discipline)) {
  if (!discipline_) throw std::invalid_argument("PrivateQueueSource: null discipline");
}

void PrivateQueueSource::enqueue(QueuedRead read) { discipline_->push(std::move(read)); }

std::optional<QueuedRead> PrivateQueueSource::next_for(store::ServerId) {
  return discipline_->pop();
}

BackendServer::BackendServer(sim::Simulator& sim, Config config,
                             const ServiceTimeModel& service_model, util::Rng rng)
    : Actor(sim), config_(config), service_model_(&service_model), rng_(rng) {
  if (config_.cores == 0) throw std::invalid_argument("BackendServer: zero cores");
  if (config_.rate_ewma_alpha <= 0.0 || config_.rate_ewma_alpha > 1.0) {
    throw std::invalid_argument("BackendServer: rate_ewma_alpha must be in (0,1]");
  }
  // Neutral prior: rate implied by the expected service time of an
  // average-sized (1-byte baseline) request. Refined on first completion.
  const double expected_ns = static_cast<double>(service_model_->expected(1).count_nanos());
  ewma_rate_ = expected_ns > 0 ? 1e9 / expected_ns * config_.cores : 1.0;
  // Resolve the concrete model type once; a noise-free linear model is
  // a pure function of size, so every start_service draw collapses to
  // one inline multiply-add (no model math, no RNG).
  linear_model_ = dynamic_cast<const SizeLinearServiceModel*>(service_model_);
  if (linear_model_ != nullptr && linear_model_->noise_sigma() == 0.0) {
    linear_deterministic_ = linear_model_;
    linear_base_nanos_ = linear_model_->base().count_nanos();
    linear_per_byte_ = linear_model_->per_byte_nanos();
  }
}

PrivateQueueSource& BackendServer::use_private_queue(
    std::unique_ptr<QueueDiscipline> discipline) {
  // Plain FIFO (the dominant baseline configuration) is served from a
  // flat ring buffer instead of the virtual discipline round-trip; the
  // discipline object stays installed only as the mode marker.
  fifo_ring_ = discipline->name() == "fifo";
  owned_source_ = std::make_unique<PrivateQueueSource>(std::move(discipline));
  private_source_ = owned_source_.get();
  source_ = owned_source_.get();
  private_queue_len_ = 0;
  ring_head_ = 0;
  ring_tail_ = 0;
  if (fifo_ring_ && ring_.empty()) {
    ring_.resize(64);
    ring_mask_ = ring_.size() - 1;
  }
  return *owned_source_;
}

void BackendServer::ring_grow() {
  // Double the power-of-two capacity, unrolling the occupied window to
  // the front of the new buffer in FIFO order.
  std::vector<QueuedRead> bigger(ring_.size() * 2);
  const std::uint64_t count = ring_tail_ - ring_head_;
  for (std::uint64_t i = 0; i < count; ++i) {
    bigger[static_cast<std::size_t>(i)] =
        std::move(ring_[static_cast<std::size_t>(ring_head_ + i) & ring_mask_]);
  }
  ring_ = std::move(bigger);
  ring_mask_ = ring_.size() - 1;
  ring_head_ = 0;
  ring_tail_ = count;
}

void BackendServer::receive(const store::ReadRequest& request) {
  if (private_source_ == nullptr) {
    throw std::logic_error("BackendServer::receive: no private queue (model mode pulls instead)");
  }
  if (busy_cores_ < config_.cores && private_queue_len_ == 0) {
    // Idle core, empty queue: the enqueue/pop round-trip through the
    // discipline is an identity — serve directly.
    start_service(QueuedRead{request, now()});
    return;
  }
  if (fifo_ring_) {
    ring_push(QueuedRead{request, now()});
  } else {
    private_source_->enqueue(QueuedRead{request, now()});
  }
  ++private_queue_len_;
  stats_.max_queue_seen = std::max<std::uint64_t>(stats_.max_queue_seen, private_queue_len_);
  pump();
  check_watch();
}

void BackendServer::pump() {
  if (source_ == nullptr) throw std::logic_error("BackendServer::pump: no work source");
  bool pulled = false;
  if (fifo_ring_) {
    // Ring fast path: straight-line pop, no optional, no virtual call.
    while (busy_cores_ < config_.cores && !ring_empty()) {
      pulled = true;
      --private_queue_len_;
      start_service(ring_pop());
    }
  } else if (private_source_ != nullptr) {
    // Devirtualized fast path for the private-queue configuration.
    while (busy_cores_ < config_.cores) {
      auto read = private_source_->next_for(config_.id);
      if (!read) break;
      pulled = true;
      --private_queue_len_;
      start_service(std::move(*read));
    }
  } else {
    while (busy_cores_ < config_.cores) {
      auto read = source_->next_for(config_.id);
      if (!read) break;
      pulled = true;
      start_service(std::move(*read));
    }
  }
  if (pulled) check_watch();
}

void BackendServer::start_service(QueuedRead read) {
  if (service_filter_ && !service_filter_(read.request)) {
    // Rejected at dequeue (a cancelled duplicate): consumes no core
    // and no service-time draw; the caller's pump loop simply pulls
    // the next item, and the receive fast path falls through idle.
    return;
  }
  ++busy_cores_;
  // Actual work is driven by the replica's stored value size; absent
  // keys (possible in unit tests) serve as 1-byte values. Writes do
  // work proportional to the payload being installed instead.
  const std::uint32_t size = read.request.is_write
                                 ? std::max(1u, read.request.write_size)
                                 : storage_.size_of(read.request.key).value_or(1);
  const sim::Duration service_time = draw_service_time(size);
  const sim::Time done_at = now() + service_time;
  const std::uint32_t write_size_plus1 =
      read.request.is_write ? std::max(1u, read.request.write_size) + 1 : 0;
  sim().schedule_at(done_at, [this, request_id = read.request.request_id,
                              task_id = read.request.task_id, key = read.request.key,
                              client = read.request.client, service_time, write_size_plus1] {
    complete(request_id, task_id, key, client, service_time, write_size_plus1);
  });
}

void BackendServer::complete(store::RequestId request_id, store::TaskId task_id,
                             store::KeyId key, store::ClientId client,
                             sim::Duration service_time, std::uint32_t write_size_plus1) {
  --busy_cores_;
  ++stats_.served;
  stats_.busy_time += service_time;

  // EWMA of the whole-server completion rate implied by this service
  // time (cores working in parallel).
  const double rate_sample =
      1e9 / static_cast<double>(service_time.count_nanos()) * config_.cores;
  ewma_rate_ = util::ewma_update(ewma_rate_, config_.rate_ewma_alpha, rate_sample);

  store::ReadResponse response;
  response.request_id = request_id;
  response.task_id = task_id;
  response.key = key;
  response.client = client;
  response.server = config_.id;
  if (write_size_plus1 != 0) {
    // The replica resizes its stored value at completion and sends a
    // bare acknowledgement (no payload travels back).
    storage_.put_meta(key, write_size_plus1 - 1);
    response.is_write = true;
    response.value_size = 0;
  } else {
    // Looked up at completion time (not captured at service start) so a
    // write landing mid-service is reflected, as before the refactor;
    // the dense size table makes the second lookup an O(1) array read.
    response.value_size = storage_.size_of(key).value_or(1);
  }
  response.feedback.queue_length = queue_length();
  response.feedback.service_rate = ewma_rate_;
  response.feedback.service_time = service_time;
  if (on_response_) on_response_(response);

  pump();
}

}  // namespace brb::server
