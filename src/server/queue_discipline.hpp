// Server-side queue disciplines.
//
// The task-oblivious baseline serves FIFO; BRB servers serve by the
// client-assigned priority (lower value first, FIFO within equal
// priorities — the stable tie-break keeps runs deterministic).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "store/types.hpp"

namespace brb::server {

/// A read waiting for a core. `submit_seq` is a global submission
/// counter stamped by multi-queue schedulers (the ideal model) to give
/// deterministic FIFO tie-breaking across queues; private per-server
/// queues may leave it zero.
struct QueuedRead {
  store::ReadRequest request;
  sim::Time enqueued_at;
  std::uint64_t submit_seq = 0;
};

/// What the next pop() would return, for cross-queue comparison.
struct QueueHead {
  store::Priority priority = 0.0;
  std::uint64_t submit_seq = 0;
};

class QueueDiscipline {
 public:
  virtual ~QueueDiscipline() = default;

  virtual void push(QueuedRead read) = 0;
  virtual std::optional<QueuedRead> pop() = 0;
  /// Key of the element pop() would return; nullopt when empty. FIFO
  /// disciplines report priority 0 so cross-queue comparison reduces to
  /// submission order.
  virtual std::optional<QueueHead> peek() const = 0;
  virtual std::size_t size() const noexcept = 0;
  bool empty() const noexcept { return size() == 0; }
  virtual std::string name() const = 0;
};

/// First-in first-out.
class FifoDiscipline final : public QueueDiscipline {
 public:
  void push(QueuedRead read) override;
  std::optional<QueuedRead> pop() override;
  std::optional<QueueHead> peek() const override;
  std::size_t size() const noexcept override { return queue_.size(); }
  std::string name() const override { return "fifo"; }

 private:
  std::deque<QueuedRead> queue_;
};

/// Minimum priority value first; FIFO among equals.
///
/// Same layout trick as the event queue: the heap orders 24-byte POD
/// keys while the 88-byte `QueuedRead` payloads sit still in a slot
/// table, so sifts never move a request. (priority, seq) is a total
/// order, making pop order independent of heap arity/layout.
class PriorityDiscipline final : public QueueDiscipline {
 public:
  void push(QueuedRead read) override;
  std::optional<QueuedRead> pop() override;
  std::optional<QueueHead> peek() const override;
  std::size_t size() const noexcept override { return heap_.size(); }
  std::string name() const override { return "priority"; }

 private:
  static constexpr std::size_t kArity = 4;

  struct HeapItem {
    store::Priority priority;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static bool later(const HeapItem& a, const HeapItem& b) noexcept {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.seq > b.seq;
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<HeapItem> heap_;
  std::vector<QueuedRead> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
};

/// Shortest-job-first on the client's expected cost; FIFO among equals.
/// Used by the per-request SJF ablation (task-oblivious but size-aware).
class SjfDiscipline final : public QueueDiscipline {
 public:
  void push(QueuedRead read) override;
  std::optional<QueuedRead> pop() override;
  std::optional<QueueHead> peek() const override { return inner_.peek(); }
  std::size_t size() const noexcept override { return inner_.size(); }
  std::string name() const override { return "sjf"; }

 private:
  PriorityDiscipline inner_;
};

std::unique_ptr<QueueDiscipline> make_discipline(const std::string& name);

}  // namespace brb::server
