// The backend storage server.
//
// Each server owns `cores` independent service units that drain a work
// source. In the normal (decentralized) configuration the work source
// is the server's private queue discipline; in the paper's ideal
// "model" configuration all servers share the global priority queue and
// work-pull from it (see core/global_queue.hpp).
//
// Every response piggybacks load feedback (queue length and an EWMA of
// the observed service rate) — the signal C3 consumes; BRB is free to
// ignore or use it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "server/queue_discipline.hpp"
#include "server/service_model.hpp"
#include "sim/simulator.hpp"
#include "store/storage_engine.hpp"
#include "store/types.hpp"
#include "util/rng.hpp"

namespace brb::server {

/// Where an idle core looks for its next request. Implementations:
/// `PrivateQueueSource` below and `core::GlobalQueueModel`.
class WorkSource {
 public:
  virtual ~WorkSource() = default;

  /// Next request this server may serve, if any.
  virtual std::optional<QueuedRead> next_for(store::ServerId server) = 0;

  /// Requests currently waiting that this server could serve.
  virtual std::size_t backlog(store::ServerId server) const = 0;
};

/// The standard per-server queue.
class PrivateQueueSource final : public WorkSource {
 public:
  explicit PrivateQueueSource(std::unique_ptr<QueueDiscipline> discipline);

  void enqueue(QueuedRead read);
  std::optional<QueuedRead> next_for(store::ServerId) override;
  std::size_t backlog(store::ServerId) const override { return discipline_->size(); }
  const QueueDiscipline& discipline() const noexcept { return *discipline_; }

 private:
  std::unique_ptr<QueueDiscipline> discipline_;
};

/// Cumulative per-server counters for reports and tests.
struct ServerStats {
  std::uint64_t served = 0;
  sim::Duration busy_time = sim::Duration::zero();
  std::uint64_t max_queue_seen = 0;
};

class BackendServer : public sim::Actor {
 public:
  struct Config {
    store::ServerId id = 0;
    std::uint32_t cores = 4;
    /// EWMA smoothing for the advertised service rate (0..1; weight of
    /// the newest sample).
    double rate_ewma_alpha = 0.2;
  };

  /// `on_response` is invoked at service completion; the cluster wiring
  /// routes it through the network back to the issuing client.
  using ResponseHandler = std::function<void(const store::ReadResponse&)>;

  BackendServer(sim::Simulator& sim, Config config, const ServiceTimeModel& service_model,
                util::Rng rng);

  /// Attaches this server to its work source. For the private-queue
  /// configuration pass the PrivateQueueSource; for the ideal model
  /// pass the shared global queue. Must be called before traffic.
  void set_work_source(WorkSource& source) { source_ = &source; }
  void set_response_handler(ResponseHandler handler) { on_response_ = std::move(handler); }

  /// Incremental backlog watch: `fn(over)` fires when the private
  /// queue's length crosses `threshold` in either direction, letting
  /// observers like the credits congestion monitor track congestion
  /// state in O(1) instead of polling every server. The callback cost
  /// is paid only at crossings; steady state is a cached compare.
  using QueueWatchFn = std::function<void(bool over)>;
  void set_queue_watch(std::uint32_t threshold, QueueWatchFn fn) {
    watch_threshold_ = threshold;
    queue_watch_ = std::move(fn);
    watch_over_ = false;
    check_watch();
  }

  /// Service-admission filter (tail-cutting executor): called
  /// synchronously at every service start; returning false rejects the
  /// request — it consumes no core and no service-time draw, and no
  /// response is ever produced (the issuing client already finalized
  /// it). Installed by the scenario wiring only when some dispatch
  /// mode can issue duplicates, so single-mode runs pay nothing.
  using ServiceFilterFn = std::function<bool(const store::ReadRequest&)>;
  void set_service_filter(ServiceFilterFn fn) { service_filter_ = std::move(fn); }

  /// Local storage replica (populated by the cluster loader).
  store::StorageEngine& storage() noexcept { return storage_; }
  const store::StorageEngine& storage() const noexcept { return storage_; }

  /// Delivery of a read request from the network (private-queue mode).
  void receive(const store::ReadRequest& request);

  /// Makes idle cores pull work; called by the work source when new
  /// work arrives that this server could serve.
  void pump();

  std::uint32_t idle_cores() const noexcept { return config_.cores - busy_cores_; }
  std::uint32_t busy_cores() const noexcept { return busy_cores_; }

  /// Queue length advertised in feedback (waiting requests only).
  /// O(1): private-queue mode serves a cached counter (no virtual
  /// dispatch on the service hot path).
  std::uint32_t queue_length() const {
    if (private_source_ != nullptr) return private_queue_len_;
    return source_ == nullptr ? 0 : static_cast<std::uint32_t>(source_->backlog(config_.id));
  }

  /// Advertised service rate (requests/s, whole server). Before any
  /// completion this is cores / expected(mean) — a neutral prior.
  double advertised_service_rate() const noexcept { return ewma_rate_; }

  const ServerStats& stats() const noexcept { return stats_; }
  const Config& config() const noexcept { return config_; }

 private:
  void start_service(QueuedRead read);
  /// Service-time draw with the virtual dispatch peeled off: a direct
  /// call for SizeLinearServiceModel; when it is noise-free the draw
  /// collapses to one inline multiply-add (no model math, no RNG, no
  /// per-server state — which matters at mega-fleet server counts).
  /// Falls back to the virtual sample() for other models.
  /// Draw-for-draw identical to `service_model_->sample(size, rng_)`.
  sim::Duration draw_service_time(std::uint32_t size) {
    if (linear_deterministic_ != nullptr) {
      return sim::Duration::nanos(
          linear_base_nanos_ +
          static_cast<std::int64_t>(linear_per_byte_ * static_cast<double>(size)));
    }
    if (linear_model_ != nullptr) return linear_model_->sample(size, rng_);
    return service_model_->sample(size, rng_);
  }
  /// FIFO ring helpers (active iff the private discipline is "fifo").
  void ring_push(QueuedRead&& read) {
    if (ring_tail_ - ring_head_ == ring_.size()) ring_grow();
    ring_[static_cast<std::size_t>(ring_tail_++) & ring_mask_] = std::move(read);
  }
  QueuedRead ring_pop() {
    return std::move(ring_[static_cast<std::size_t>(ring_head_++) & ring_mask_]);
  }
  bool ring_empty() const noexcept { return ring_head_ == ring_tail_; }
  void ring_grow();
  /// Completion takes only the response-relevant request fields — the
  /// scheduled closure stays small enough for the event queue's inline
  /// callback storage instead of copying the whole QueuedRead.
  /// `write_size_plus1` is 0 for reads; size+1 for writes (the replica
  /// installs the new size and acknowledges).
  void complete(store::RequestId request_id, store::TaskId task_id, store::KeyId key,
                store::ClientId client, sim::Duration service_time,
                std::uint32_t write_size_plus1);
  void check_watch() {
    if (!queue_watch_) return;
    const bool over = queue_length() > watch_threshold_;
    if (over != watch_over_) {
      watch_over_ = over;
      queue_watch_(over);
    }
  }

  Config config_;
  const ServiceTimeModel* service_model_;
  /// Devirtualized alias (null unless the model is SizeLinearServiceModel).
  const SizeLinearServiceModel* linear_model_ = nullptr;
  /// Set iff `linear_model_` is noise-free: service times are then a
  /// pure function of size, served from the memo table with no RNG.
  const SizeLinearServiceModel* linear_deterministic_ = nullptr;
  std::int64_t linear_base_nanos_ = 0;
  double linear_per_byte_ = 0.0;
  util::Rng rng_;
  WorkSource* source_ = nullptr;
  PrivateQueueSource* private_source_ = nullptr;  // set iff source is private
  /// Fixed-capacity (growable, power-of-two) FIFO ring bypassing the
  /// virtual QueueDiscipline push/pop when the private discipline is
  /// plain FIFO. Pop order matches FifoDiscipline's deque exactly.
  bool fifo_ring_ = false;
  std::vector<QueuedRead> ring_;
  std::size_t ring_mask_ = 0;
  std::uint64_t ring_head_ = 0;  // pop side
  std::uint64_t ring_tail_ = 0;  // push side
  ResponseHandler on_response_;
  ServiceFilterFn service_filter_;
  QueueWatchFn queue_watch_;
  std::uint32_t watch_threshold_ = 0;
  bool watch_over_ = false;
  std::uint32_t private_queue_len_ = 0;
  store::StorageEngine storage_;
  std::uint32_t busy_cores_ = 0;
  double ewma_rate_ = 0.0;
  ServerStats stats_;

  friend class PrivateQueueBinding;

 public:
  /// Convenience: installs a private queue with the given discipline
  /// and returns it (owned by the server).
  PrivateQueueSource& use_private_queue(std::unique_ptr<QueueDiscipline> discipline);

 private:
  std::unique_ptr<PrivateQueueSource> owned_source_;
};

}  // namespace brb::server
