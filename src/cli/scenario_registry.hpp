// Named experiment scenarios for the unified `brbsim` driver.
//
// A scenario expands one flag-configured base `ScenarioConfig` into the
// concrete (label, config) cases it studies — one per (system, swept
// value) pair. The registry replaces the copy-pasted bench mains: every
// sweep the bench/ harnesses hard-code is reachable as
// `brbsim --scenario=<name>` with every config field overridable.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "util/flags.hpp"

namespace brb::cli {

/// One runnable experiment: a human/machine label plus the full config.
struct ExperimentCase {
  std::string label;
  core::ScenarioConfig config;
};

struct ScenarioSpec {
  std::string name;
  std::string summary;  // one line, shown by `brbsim --list`
  /// Expands into cases. `base` already carries every command-line
  /// override; expansion varies only the dimension under study.
  std::function<std::vector<ExperimentCase>(const core::ScenarioConfig& base,
                                            const util::Flags& flags)>
      expand;
};

/// All built-in scenarios, in presentation order.
const std::vector<ScenarioSpec>& scenario_registry();

/// Returns nullptr when `name` is not registered.
const ScenarioSpec* find_scenario(const std::string& name);

/// Parses `--systems=a,b,c` into kinds; `fallback` when absent.
/// Throws std::invalid_argument on an unknown system name.
std::vector<core::SystemKind> systems_from_flags(const util::Flags& flags,
                                                 std::vector<core::SystemKind> fallback);

/// Parses a comma-separated list flag of doubles; `fallback` when absent.
std::vector<double> doubles_from_flag(const util::Flags& flags, std::string_view name,
                                      std::vector<double> fallback);

}  // namespace brb::cli
