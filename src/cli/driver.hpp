// The `brbsim` unified experiment driver, layered as plan / execute /
// merge.
//
// One binary replaces the copy-pasted bench mains: pick a scenario from
// the registry, override any `ScenarioConfig` field with a flag, run
// every (case, seed) unit across worker threads — or only one shard of
// them across worker *processes / machines* — and get an aligned
// console table plus machine-readable JSON / CSV artifacts that merge
// byte-identically.
//
//   brbsim --scenario=paper --seeds=3 --json=out.json
//   brbsim --scenario=load-sweep --loads=0.6,0.8 --tasks=30000 --csv=sweep.csv
//   brbsim --scenario=paper --plan                      # list the unit grid
//   brbsim --scenario=paper --shard=2/3 --json=s2.json  # one machine's slice
//   brbsim --scenario=paper --spawn=3 --json=out.json   # 3 worker processes
//   brbsim merge out.json s1.json s2.json s3.json       # reassemble shards
//   brbsim --record-trace=trace.csv --tasks=20000
//   brbsim --scenario=trace-replay --trace=trace.csv
//   brbsim --list
#pragma once

#include <functional>
#include <iosfwd>
#include <vector>

#include "cli/scenario_registry.hpp"
#include "cli/sweep_plan.hpp"
#include "core/scenario.hpp"
#include "stats/report.hpp"
#include "util/flags.hpp"

namespace brb::cli {

/// One executed case with its cross-seed aggregate (over the seeds
/// this process actually ran — a shard may cover only a subset, or
/// none, of a case's seeds).
struct CaseResult {
  ExperimentCase spec;
  core::AggregateResult aggregate;
};

/// Rejects command-line flags the driver does not recognize, with a
/// did-you-mean hint for near-misses. Throws std::invalid_argument.
void validate_flags(const util::Flags& flags);

/// Builds the driver's base config: paper defaults, then every
/// `--flag` override (see `print_usage` for the full list).
core::ScenarioConfig config_from_flags(const util::Flags& flags);

/// Seed list: `--seed-list=1,5,9` wins, else 1..`--seeds`.
std::vector<std::uint64_t> seeds_from_flags(const util::Flags& flags,
                                            std::uint64_t default_count);

/// Generates the base config's workload and writes it as a trace file.
void record_trace(const core::ScenarioConfig& base, const std::string& path);

/// Layer 2 (execute): runs the plan's units owned by `shard`, one
/// `run_seeds` call per case over that case's owned seeds (cases with
/// no owned seeds yield an empty aggregate). `progress`, if set, is
/// called after each case with the number of runs executed for it.
std::vector<CaseResult> execute_shard(
    const SweepPlan& plan, const ShardSpec& shard, core::RunSeedsOptions options,
    const std::function<void(const ExperimentCase&, std::size_t runs)>& progress = {});

/// The JSON artifact (stats/artifact.hpp format 2) for one executed
/// shard; pass `shard` = nullptr for an unsharded run. Wall-clock time
/// lands in the trailing "timing" object, everything else is
/// deterministic.
stats::Json report_json(const std::string& scenario, const core::ScenarioConfig& base,
                        const std::vector<std::uint64_t>& seeds,
                        const std::vector<CaseResult>& results,
                        const ShardSpec* shard = nullptr);

/// Console summary table of an artifact document (cases with at least
/// one executed run).
void print_case_table(std::ostream& os, const stats::Json& artifact);

/// The paper's Figure 2 headline claims (Claim A/B), computed from an
/// artifact of the "paper" scenario. Prints a note and returns false
/// when the needed cases are missing.
bool print_paper_claims(std::ostream& os, const stats::Json& artifact);

void print_usage(std::ostream& os);

/// Full driver entry point (what tools/brbsim_main.cpp calls).
/// `brbsim merge OUT IN...` is handled here too.
/// Returns a process exit code; never throws.
int run_brbsim(int argc, const char* const* argv);

}  // namespace brb::cli
