// The `brbsim` unified experiment driver.
//
// One binary replaces the copy-pasted bench mains: pick a scenario from
// the registry, override any `ScenarioConfig` field with a flag, run
// every case across seeds (in parallel by default), and get an aligned
// console table plus machine-readable JSON / CSV artifacts.
//
//   brbsim --scenario=paper --seeds=3 --json=out.json
//   brbsim --scenario=load-sweep --loads=0.6,0.8 --tasks=30000 --csv=sweep.csv
//   brbsim --record-trace=trace.csv --tasks=20000
//   brbsim --scenario=trace-replay --trace=trace.csv
//   brbsim --list
#pragma once

#include <iosfwd>
#include <vector>

#include "cli/scenario_registry.hpp"
#include "core/scenario.hpp"
#include "stats/report.hpp"
#include "util/flags.hpp"

namespace brb::cli {

/// One executed case with its cross-seed aggregate.
struct CaseResult {
  ExperimentCase spec;
  core::AggregateResult aggregate;
};

/// Rejects command-line flags the driver does not recognize, with a
/// did-you-mean hint for near-misses. Throws std::invalid_argument.
void validate_flags(const util::Flags& flags);

/// Builds the driver's base config: paper defaults, then every
/// `--flag` override (see `print_usage` for the full list).
core::ScenarioConfig config_from_flags(const util::Flags& flags);

/// Seed list: `--seed-list=1,5,9` wins, else 1..`--seeds`.
std::vector<std::uint64_t> seeds_from_flags(const util::Flags& flags,
                                            std::uint64_t default_count);

/// Generates the base config's workload and writes it as a trace file.
void record_trace(const core::ScenarioConfig& base, const std::string& path);

/// The JSON artifact for one finished driver invocation.
stats::Json report_json(const std::string& scenario, const core::ScenarioConfig& base,
                        const std::vector<std::uint64_t>& seeds,
                        const std::vector<CaseResult>& results);

/// Per-run CSV (one row per case x seed, plus one aggregate row).
void report_csv(std::ostream& os, const std::string& scenario,
                const std::vector<CaseResult>& results);

void print_usage(std::ostream& os);

/// Full driver entry point (what tools/brbsim_main.cpp calls).
/// Returns a process exit code; never throws.
int run_brbsim(int argc, const char* const* argv);

}  // namespace brb::cli
