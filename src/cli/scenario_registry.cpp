#include "cli/scenario_registry.hpp"

#include <sstream>
#include <stdexcept>

namespace brb::cli {

namespace {

using core::ScenarioConfig;
using core::SystemKind;

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> parts;
  std::stringstream ss(s);
  std::string part;
  while (std::getline(ss, part, ',')) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

std::vector<ExperimentCase> per_system(const ScenarioConfig& base,
                                       const std::vector<SystemKind>& systems) {
  std::vector<ExperimentCase> cases;
  cases.reserve(systems.size());
  for (const SystemKind kind : systems) {
    ScenarioConfig config = base;
    config.system = kind;
    cases.push_back({to_string(kind), std::move(config)});
  }
  return cases;
}

/// Figure 2's five systems: C3 against the BRB matrix.
const std::vector<SystemKind> kPaperSystems = {
    SystemKind::kC3,
    SystemKind::kEqualMaxCredits,
    SystemKind::kEqualMaxModel,
    SystemKind::kUnifIncrCredits,
    SystemKind::kUnifIncrModel,
};

/// Every SystemKind, baselines through ablations (bench_abl_policy_matrix).
const std::vector<SystemKind> kMatrixSystems = {
    SystemKind::kRandomFifo,       SystemKind::kFifoDirect,      SystemKind::kRequestSjfDirect,
    SystemKind::kC3,               SystemKind::kEqualMaxDirect,  SystemKind::kUnifIncrDirect,
    SystemKind::kEqualMaxCredits,  SystemKind::kUnifIncrCredits, SystemKind::kCumSlackCredits,
    SystemKind::kFifoModel,        SystemKind::kEqualMaxModel,   SystemKind::kUnifIncrModel,
    SystemKind::kCumSlackModel,
};

std::vector<ExperimentCase> expand_paper(const ScenarioConfig& base, const util::Flags& flags) {
  return per_system(base, systems_from_flags(flags, kPaperSystems));
}

std::vector<ExperimentCase> expand_policy_matrix(const ScenarioConfig& base,
                                                 const util::Flags& flags) {
  return per_system(base, systems_from_flags(flags, kMatrixSystems));
}

std::vector<ExperimentCase> expand_load_sweep(const ScenarioConfig& base,
                                              const util::Flags& flags) {
  const std::vector<double> loads =
      doubles_from_flag(flags, "loads", {0.50, 0.60, 0.70, 0.80, 0.90});
  const auto systems = systems_from_flags(
      flags, {SystemKind::kC3, SystemKind::kEqualMaxCredits, SystemKind::kEqualMaxModel});
  std::vector<ExperimentCase> cases;
  for (const double util : loads) {
    for (const SystemKind kind : systems) {
      ScenarioConfig config = base;
      config.system = kind;
      config.utilization = util;
      std::ostringstream label;
      label << to_string(kind) << "@util=" << util;
      cases.push_back({label.str(), std::move(config)});
    }
  }
  return cases;
}

std::vector<ExperimentCase> expand_fanout_sweep(const ScenarioConfig& base,
                                                const util::Flags& flags) {
  // The bench_abl_fanout_sweep ladder: degenerate fan-out 1 up to the
  // skewed log-normal the paper's workload uses.
  std::vector<std::string> specs = {
      "fixed:1",  "fixed:4", "geometric:8.6", "lognormal:8.6:1.0:512", "lognormal:8.6:2.0:512",
      "fixed:32",
  };
  if (const auto custom = flags.get("fanouts")) specs = split_csv(*custom);
  const auto systems =
      systems_from_flags(flags, {SystemKind::kC3, SystemKind::kEqualMaxCredits});
  std::vector<ExperimentCase> cases;
  for (const std::string& spec : specs) {
    for (const SystemKind kind : systems) {
      ScenarioConfig config = base;
      config.system = kind;
      config.fanout_spec = spec;
      cases.push_back({to_string(kind) + "@fanout=" + spec, std::move(config)});
    }
  }
  return cases;
}

std::vector<ExperimentCase> expand_large_cluster(const ScenarioConfig& base,
                                                 const util::Flags& flags) {
  // Scale sweep target: two orders of magnitude past the paper's 9x18
  // cluster. The dense-ID engine keeps per-(client,server) state flat,
  // so this runs as a routine CI case rather than a hash-map stress
  // test. Explicit --servers / --clients / --tasks flags still win.
  ScenarioConfig config = base;
  if (!flags.has("servers")) config.cluster.num_servers = 100;
  if (!flags.has("clients")) config.num_clients = 1000;
  if (!flags.has("tasks")) config.num_tasks = 100'000;
  return per_system(config, systems_from_flags(flags, {SystemKind::kEqualMaxCredits,
                                                       SystemKind::kC3}));
}

std::vector<ExperimentCase> expand_trace_replay(const ScenarioConfig& base,
                                                const util::Flags& flags) {
  if (base.trace_path.empty()) {
    throw std::invalid_argument(
        "scenario trace-replay needs --trace=PATH (record one with "
        "brbsim --record-trace=PATH or example_trace_replay)");
  }
  return per_system(base,
                    systems_from_flags(flags, {SystemKind::kC3, SystemKind::kEqualMaxCredits}));
}

}  // namespace

const std::vector<ScenarioSpec>& scenario_registry() {
  static const std::vector<ScenarioSpec> registry = {
      {"paper", "Figure 2: the five-system comparison at paper defaults", expand_paper},
      {"load-sweep", "utilization sweep (--loads=0.5,...) over C3 / credits / model",
       expand_load_sweep},
      {"fanout-sweep", "fan-out distribution sweep (--fanouts=spec,...)", expand_fanout_sweep},
      {"policy-matrix", "all 13 systems: baselines, BRB, ablations", expand_policy_matrix},
      {"large-cluster", "100 servers x 1000 clients scale case (credits + C3)",
       expand_large_cluster},
      {"trace-replay", "replay a recorded trace (--trace=PATH) across systems",
       expand_trace_replay},
  };
  return registry;
}

const ScenarioSpec* find_scenario(const std::string& name) {
  for (const ScenarioSpec& spec : scenario_registry()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::vector<SystemKind> systems_from_flags(const util::Flags& flags,
                                           std::vector<SystemKind> fallback) {
  const auto value = flags.get("systems");
  if (!value) return fallback;
  std::vector<SystemKind> systems;
  for (const std::string& name : split_csv(*value)) {
    systems.push_back(core::system_kind_from_name(name));
  }
  if (systems.empty()) throw std::invalid_argument("--systems: empty list");
  return systems;
}

std::vector<double> doubles_from_flag(const util::Flags& flags, std::string_view name,
                                      std::vector<double> fallback) {
  const auto value = flags.get(name);
  if (!value) return fallback;
  std::vector<double> out;
  for (const std::string& part : split_csv(*value)) {
    try {
      out.push_back(std::stod(part));
    } catch (const std::exception&) {
      throw std::invalid_argument(std::string("--") + std::string(name) +
                                  ": not a number: " + part);
    }
  }
  if (out.empty()) throw std::invalid_argument(std::string("--") + std::string(name) +
                                               ": empty list");
  return out;
}

}  // namespace brb::cli
