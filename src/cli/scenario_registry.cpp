#include "cli/scenario_registry.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "ctrl/dispatch_policy.hpp"
#include "ctrl/policy_runtime.hpp"
#include "ctrl/replica_policy.hpp"

namespace brb::cli {

namespace {

using core::ScenarioConfig;
using core::SystemKind;

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> parts;
  std::stringstream ss(s);
  std::string part;
  while (std::getline(ss, part, ',')) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

std::vector<ExperimentCase> per_system(const ScenarioConfig& base,
                                       const std::vector<SystemKind>& systems) {
  std::vector<ExperimentCase> cases;
  cases.reserve(systems.size());
  for (const SystemKind kind : systems) {
    ScenarioConfig config = base;
    config.system = kind;
    cases.push_back({to_string(kind), std::move(config)});
  }
  return cases;
}

/// Figure 2's five systems: C3 against the BRB matrix.
const std::vector<SystemKind> kPaperSystems = {
    SystemKind::kC3,
    SystemKind::kEqualMaxCredits,
    SystemKind::kEqualMaxModel,
    SystemKind::kUnifIncrCredits,
    SystemKind::kUnifIncrModel,
};

/// Every SystemKind, baselines through ablations (bench_abl_policy_matrix).
const std::vector<SystemKind> kMatrixSystems = {
    SystemKind::kRandomFifo,       SystemKind::kFifoDirect,      SystemKind::kRequestSjfDirect,
    SystemKind::kC3,               SystemKind::kEqualMaxDirect,  SystemKind::kUnifIncrDirect,
    SystemKind::kEqualMaxCredits,  SystemKind::kUnifIncrCredits, SystemKind::kCumSlackCredits,
    SystemKind::kFifoModel,        SystemKind::kEqualMaxModel,   SystemKind::kUnifIncrModel,
    SystemKind::kCumSlackModel,
};

std::vector<ExperimentCase> expand_paper(const ScenarioConfig& base, const util::Flags& flags) {
  return per_system(base, systems_from_flags(flags, kPaperSystems));
}

std::vector<ExperimentCase> expand_policy_matrix(const ScenarioConfig& base,
                                                 const util::Flags& flags) {
  std::vector<ExperimentCase> cases = per_system(base, systems_from_flags(flags, kMatrixSystems));
  // Selector ablation on the direct BRB system: how much of the tail is
  // replica-selection quality? Skipped when --systems narrows the
  // matrix to an explicit set.
  if (!flags.has("systems")) {
    for (const char* selector : {"c3", "least-pending-cost", "least-outstanding", "random"}) {
      ScenarioConfig config = base;
      config.system = SystemKind::kEqualMaxDirect;
      config.selector_override = selector;
      cases.push_back({std::string("equalmax-direct/") + selector, std::move(config)});
    }
  }
  return cases;
}

std::vector<ExperimentCase> expand_load_sweep(const ScenarioConfig& base,
                                              const util::Flags& flags) {
  const std::vector<double> loads =
      doubles_from_flag(flags, "loads", {0.50, 0.60, 0.70, 0.80, 0.90});
  const auto systems = systems_from_flags(
      flags, {SystemKind::kC3, SystemKind::kEqualMaxCredits, SystemKind::kEqualMaxModel});
  std::vector<ExperimentCase> cases;
  for (const double util : loads) {
    for (const SystemKind kind : systems) {
      ScenarioConfig config = base;
      config.system = kind;
      config.utilization = util;
      std::ostringstream label;
      label << to_string(kind) << "@util=" << util;
      cases.push_back({label.str(), std::move(config)});
    }
  }
  return cases;
}

std::vector<ExperimentCase> expand_fanout_sweep(const ScenarioConfig& base,
                                                const util::Flags& flags) {
  // The bench_abl_fanout_sweep ladder: degenerate fan-out 1 up to the
  // skewed log-normal the paper's workload uses.
  std::vector<std::string> specs = {
      "fixed:1",  "fixed:4", "geometric:8.6", "lognormal:8.6:1.0:512", "lognormal:8.6:2.0:512",
      "fixed:32",
  };
  if (const auto custom = flags.get("fanouts")) specs = split_csv(*custom);
  const auto systems =
      systems_from_flags(flags, {SystemKind::kC3, SystemKind::kEqualMaxCredits});
  std::vector<ExperimentCase> cases;
  for (const std::string& spec : specs) {
    for (const SystemKind kind : systems) {
      ScenarioConfig config = base;
      config.system = kind;
      config.fanout_spec = spec;
      cases.push_back({to_string(kind) + "@fanout=" + spec, std::move(config)});
    }
  }
  return cases;
}

std::vector<ExperimentCase> expand_large_cluster(const ScenarioConfig& base,
                                                 const util::Flags& flags) {
  // Scale sweep target: two orders of magnitude past the paper's 9x18
  // cluster. The dense-ID engine keeps per-(client,server) state flat,
  // so this runs as a routine CI case rather than a hash-map stress
  // test. Explicit --servers / --cluster / --clients / --tasks flags
  // still win (a --cluster profile fixes the whole fleet shape, so it
  // must not be partially overwritten here).
  ScenarioConfig config = base;
  if (!flags.has("servers") && !flags.has("cluster")) config.cluster.num_servers = 100;
  if (!flags.has("clients")) config.num_clients = 1000;
  if (!flags.has("tasks")) config.num_tasks = 100'000;
  return per_system(config, systems_from_flags(flags, {SystemKind::kEqualMaxCredits,
                                                       SystemKind::kC3}));
}

std::vector<ExperimentCase> expand_mega_fleet(const ScenarioConfig& base,
                                              const util::Flags& flags) {
  // Million-client scale case: 10k servers x 1M clients — three orders
  // of magnitude past the paper's fleet on the client axis. The pair
  // cross-product (1e10) is far past the sparse auto threshold, so the
  // control plane runs the windowed per-client store plus sparse
  // credits bookkeeping, and stats default to mergeable sketches so
  // per-seed artifacts stay O(sketch). Two selection policies on the
  // fixed FIFO/direct substrate probe the sparse SignalTable under
  // load; the credits case drives the sparse demand/grant path end to
  // end. Runs as a nightly job under wall/RSS budgets
  // (check_claims.py --scale-sanity), sharded over the plan layer.
  if (!base.policy_spec.empty() || !base.selector_override.empty()) {
    throw std::invalid_argument(
        "scenario mega-fleet fixes the replica policy per case; --policy/--selector conflict");
  }
  ScenarioConfig config = base;
  if (!flags.has("servers") && !flags.has("cluster")) config.cluster.num_servers = 10'000;
  if (!flags.has("clients")) config.num_clients = 1'000'000;
  if (!flags.has("tasks")) config.num_tasks = 1'000'000;
  if (config.stats_spec.empty()) config.stats_spec = "sketch";
  std::vector<ExperimentCase> cases;
  for (const char* policy : {"two-choices", "c3-noderate"}) {
    ScenarioConfig c = config;
    c.system = SystemKind::kFifoDirect;
    c.policy_spec = policy;
    cases.push_back({policy, std::move(c)});
  }
  ScenarioConfig credits = config;
  credits.system = SystemKind::kEqualMaxCredits;
  cases.push_back({"equalmax-credits", std::move(credits)});
  return cases;
}

std::vector<ExperimentCase> expand_trace_replay(const ScenarioConfig& base,
                                                const util::Flags& flags) {
  if (base.trace_path.empty()) {
    throw std::invalid_argument(
        "scenario trace-replay needs --trace=PATH (record one with "
        "brbsim --record-trace=PATH or example_trace_replay)");
  }
  return per_system(base,
                    systems_from_flags(flags, {SystemKind::kC3, SystemKind::kEqualMaxCredits}));
}

// --------------------------------------------------------------------------
// Scenario-diversity suite: the workload realism the paper's fixed setup
// leaves out (heterogeneous fleets, diurnal load, writes, tenancy, skew).

std::vector<ExperimentCase> expand_hetero_servers(const ScenarioConfig& base,
                                                  const util::Flags& flags) {
  // Mixed fleet at the paper's 9-server count: six small 4-core boxes
  // plus three big 8-core boxes at twice the per-core rate. Capacity
  // planning spreads the same 70% utilization over the mixed fleet.
  ScenarioConfig config = base;
  if (!flags.has("cluster")) {
    // The scalar fleet flags would be silently discarded by the
    // profile below — reject them the same way --cluster itself does.
    if (flags.has("servers") || flags.has("cores") || flags.has("rate")) {
      throw std::invalid_argument(
          "scenario hetero-servers fixes the fleet via its --cluster profile; "
          "--servers/--cores/--rate conflict (pass --cluster=... to change the mix)");
    }
    config.cluster = workload::ClusterSpec::parse("hetero:6x4x3500,3x8x7000");
  }
  return per_system(config,
                    systems_from_flags(flags, {SystemKind::kC3, SystemKind::kEqualMaxCredits,
                                               SystemKind::kEqualMaxModel}));
}

std::vector<ExperimentCase> expand_diurnal(const ScenarioConfig& base,
                                           const util::Flags& flags) {
  // Sinusoidal rate envelope swinging 0.5x..1.5x around the mean with
  // a 1 s period — short enough that even small CI runs cover several
  // peaks and troughs.
  ScenarioConfig config = base;
  if (!flags.has("arrivals")) config.arrival_spec = "diurnal:0.5:1.5:1";
  return per_system(config,
                    systems_from_flags(flags, {SystemKind::kC3, SystemKind::kEqualMaxCredits,
                                               SystemKind::kEqualMaxModel}));
}

std::vector<ExperimentCase> expand_write_heavy(const ScenarioConfig& base,
                                               const util::Flags& flags) {
  const std::vector<double> fractions = doubles_from_flag(flags, "writes", {0.05, 0.20});
  const auto systems =
      systems_from_flags(flags, {SystemKind::kC3, SystemKind::kEqualMaxCredits});
  std::vector<ExperimentCase> cases;
  for (const double fraction : fractions) {
    for (const SystemKind kind : systems) {
      ScenarioConfig config = base;
      config.system = kind;
      config.write_fraction = fraction;
      std::ostringstream label;
      label << to_string(kind) << "@writes=" << fraction;
      cases.push_back({label.str(), std::move(config)});
    }
  }
  return cases;
}

std::vector<ExperimentCase> expand_multi_tenant(const ScenarioConfig& base,
                                                const util::Flags& flags) {
  // Two-tenant default: a latency-sensitive foreground mixing with a
  // heavy batch tenant that also writes. Fairness (per-tenant p99
  // spread) is the scenario's headline metric.
  ScenarioConfig config = base;
  if (!flags.has("tenants")) {
    config.tenant_spec =
        "interactive,share=0.7,fanout=lognormal:2.5:1.0:64;"
        "batch,share=0.3,fanout=lognormal:24:1.5:512,write=0.1";
  }
  return per_system(config,
                    systems_from_flags(flags, {SystemKind::kC3, SystemKind::kEqualMaxCredits}));
}

std::vector<ExperimentCase> expand_replication_skew(const ScenarioConfig& base,
                                                    const util::Flags& flags) {
  // Reuses the key-distribution layer to skew load across replica
  // groups: Zipf exponent 0 (uniform control) up past 1, at a reduced
  // replication factor so hot groups have little selection freedom.
  const std::vector<double> skews = doubles_from_flag(flags, "skews", {0.0, 0.9, 1.2});
  const auto systems =
      systems_from_flags(flags, {SystemKind::kC3, SystemKind::kEqualMaxCredits});
  std::vector<ExperimentCase> cases;
  for (const double skew : skews) {
    for (const SystemKind kind : systems) {
      ScenarioConfig config = base;
      config.system = kind;
      if (!flags.has("replication")) config.replication = 2;
      if (!flags.has("keys")) {
        std::ostringstream spec;
        if (skew == 0.0) {
          spec << "uniform:100000";
        } else {
          spec << "zipf:100000:" << skew;
        }
        config.key_spec = spec.str();
      }
      std::ostringstream label;
      label << to_string(kind) << "@skew=" << skew;
      cases.push_back({label.str(), std::move(config)});
    }
  }
  return cases;
}

// --------------------------------------------------------------------------
// Control-plane scenarios: the policy runtime's bake-off and mid-run
// switching cases.

std::vector<ExperimentCase> expand_policy_shootout(const ScenarioConfig& base,
                                                   const util::Flags& flags) {
  // Selection-policy bake-off: every baseline runs on one fixed,
  // task-oblivious substrate (FIFO server queues, direct dispatch,
  // per-request selection) so replica selection is the only varying
  // mechanism. The full C3 system (ranking + cubic rate gate) rides
  // along as the literature reference.
  // The per-case policy IS the swept dimension, so a base-level
  // binding would be silently discarded — reject it like the other
  // fixed-dimension scenarios reject their conflicting flags.
  if (!base.policy_spec.empty() || !base.selector_override.empty()) {
    throw std::invalid_argument(
        "scenario policy-shootout fixes the replica policy per case; --policy/--selector "
        "conflict (use --policies=a,b,c to change the case list)");
  }
  std::vector<std::string> names = {"random",      "round-robin",        "least-outstanding",
                                    "two-choices", "least-pending-cost", "c3-noderate"};
  if (const auto custom = flags.get("policies")) names = split_csv(*custom);
  if (names.empty()) throw std::invalid_argument("--policies: empty list");
  std::vector<ExperimentCase> cases;
  for (const std::string& name : names) {
    ScenarioConfig config = base;
    config.system = SystemKind::kFifoDirect;
    config.policy_spec = ctrl::canonical_policy_name(name);
    cases.push_back({config.policy_spec, std::move(config)});
  }
  if (!flags.has("policies")) {
    ScenarioConfig config = base;
    config.system = SystemKind::kC3;
    cases.push_back({"c3", std::move(config)});
  }
  return cases;
}

std::vector<ExperimentCase> expand_policy_switch(const ScenarioConfig& base,
                                                 const util::Flags& flags) {
  // Mid-run switching on the shootout substrate: one switched run
  // bracketed by its static endpoints. The default epoch (1s) sits
  // inside the default workload's span; --policy-switch=... studies
  // other schedules.
  (void)flags;
  if (!base.policy_spec.empty() || !base.selector_override.empty()) {
    throw std::invalid_argument(
        "scenario policy-switch fixes the replica-policy bindings per case; "
        "--policy/--selector conflict (the schedule comes from --policy-switch)");
  }
  const std::string schedule = base.policy_switch_spec.empty() ? "t0:random,1s:c3-noderate"
                                                               : base.policy_switch_spec;
  // Endpoint resolution mirrors the runtime exactly: t0 entries fold
  // into the initial binding (on top of the kFifoDirect profile
  // default), positive epochs apply in time order, later entries win.
  // Tenant-qualified entries rebind only a slice of the fleet, so no
  // single static endpoint exists for them.
  std::vector<ctrl::PolicySwitch> epochs = ctrl::parse_policy_switch_spec(schedule);
  if (epochs.empty()) throw std::invalid_argument("policy-switch: empty schedule");
  for (const ctrl::PolicySwitch& epoch : epochs) {
    if (!epoch.tenant.empty()) {
      throw std::invalid_argument(
          "scenario policy-switch compares fleet-wide static endpoints; tenant-qualified "
          "schedule entries have no single endpoint (run the schedule on --scenario=" +
          std::string("multi-tenant instead)"));
    }
  }
  std::stable_sort(epochs.begin(), epochs.end(),
                   [](const ctrl::PolicySwitch& a, const ctrl::PolicySwitch& b) {
                     return a.at < b.at;
                   });
  // Each switch kind folds independently: a mode epoch leaves the
  // policy endpoint alone and vice versa, exactly as in the runtime.
  std::string start_policy = "least-outstanding";  // kFifoDirect profile default
  std::string end_policy;
  ctrl::DispatchModeConfig start_mode;  // single
  ctrl::DispatchModeConfig end_mode;
  bool end_mode_seen = false;
  for (const ctrl::PolicySwitch& epoch : epochs) {
    if (epoch.at == sim::Time::zero()) {
      if (epoch.kind == ctrl::PolicySwitch::Kind::kPolicy) {
        start_policy = epoch.policy;
      } else {
        start_mode = epoch.mode;
      }
    } else {
      if (epoch.kind == ctrl::PolicySwitch::Kind::kPolicy) {
        end_policy = epoch.policy;
      } else {
        end_mode = epoch.mode;
        end_mode_seen = true;
      }
    }
  }
  if (end_policy.empty()) end_policy = start_policy;
  if (!end_mode_seen) end_mode = start_mode;

  std::vector<ExperimentCase> cases;
  const auto add_static = [&](const std::string& policy,
                              const ctrl::DispatchModeConfig& mode) {
    std::string label = "static/" + policy;
    if (!mode.is_single()) label += "+" + mode.canonical();
    for (const ExperimentCase& existing : cases) {
      if (existing.label == label) return;  // endpoints may coincide
    }
    ScenarioConfig config = base;
    config.system = SystemKind::kFifoDirect;
    config.policy_spec = policy;
    config.dispatch_spec = mode.is_single() ? "" : mode.canonical();
    config.policy_switch_spec.clear();
    cases.push_back({std::move(label), std::move(config)});
  };
  add_static(start_policy, start_mode);
  add_static(end_policy, end_mode);

  ScenarioConfig switched = base;
  switched.system = SystemKind::kFifoDirect;
  switched.policy_switch_spec = schedule;
  cases.push_back({"switch/" + schedule, std::move(switched)});
  return cases;
}

std::vector<ExperimentCase> expand_hedging_shootout(const ScenarioConfig& base,
                                                    const util::Flags& flags) {
  // Tail-cutting bake-off: the dispatch mode is the only varying
  // mechanism — fixed FIFO/direct substrate, fixed replica policy
  // (c3-noderate, the strongest single-target picker), on the
  // large-fleet shape (100 servers x 1000 clients) where per-server
  // feedback is sparse enough that single-target selection has real
  // tails to cut. (On the paper's 9-server fleet fresh signals keep
  // queues balanced and duplicates are pure load amplification — the
  // informative regime for hedging is scale.) Two arrival envelopes:
  // steady load and the diurnal sinusoid. `single` rides along as the
  // duplicate-free reference for --hedge-sanity.
  if (!base.dispatch_spec.empty()) {
    throw std::invalid_argument(
        "scenario hedging-shootout fixes the dispatch mode per case; --dispatch conflicts "
        "(use --dispatches=single,hedge:q98,... to change the case list)");
  }
  if (!base.policy_spec.empty() || !base.selector_override.empty()) {
    throw std::invalid_argument(
        "scenario hedging-shootout fixes the replica policy (c3-noderate) so the dispatch "
        "mode is the only varying mechanism; --policy/--selector conflict");
  }
  std::vector<std::string> modes = {"single", "hedge:q98", "tied", "kofn:2"};
  if (const auto custom = flags.get("dispatches")) modes = split_csv(*custom);
  if (modes.empty()) throw std::invalid_argument("--dispatches: empty list");

  struct Workload {
    std::string label;
    std::string arrival_spec;
  };
  const std::vector<Workload> workloads = {
      {"steady", ""},
      {"diurnal", "diurnal:0.5:1.5:1"},
  };

  std::vector<ExperimentCase> cases;
  for (const Workload& workload : workloads) {
    for (const std::string& mode_spec : modes) {
      // Parse for validation + canonical labels ("hedge" -> "hedge:q95").
      const ctrl::DispatchModeConfig mode = ctrl::parse_dispatch_mode(mode_spec);
      ScenarioConfig config = base;
      config.system = SystemKind::kFifoDirect;
      config.policy_spec = "c3-noderate";
      config.dispatch_spec = mode.is_single() ? "" : mode.canonical();
      if (!flags.has("servers") && !flags.has("cluster")) config.cluster.num_servers = 100;
      if (!flags.has("clients")) config.num_clients = 1000;
      if (config.arrival_spec.empty()) config.arrival_spec = workload.arrival_spec;
      cases.push_back({workload.label + "/" + mode.canonical(), std::move(config)});
    }
  }
  return cases;
}

// --------------------------------------------------------------------------
// Ablation sweeps ported off the bespoke bench mains (bench/ dedup).

std::vector<ExperimentCase> expand_credits_interval(const ScenarioConfig& base,
                                                    const util::Flags& flags) {
  // Control-loop cadence sweep, with the no-control-loop ideal model
  // as the reference case.
  const std::vector<double> intervals_ms =
      doubles_from_flag(flags, "intervals-ms", {100, 250, 500, 1000, 2000, 4000});
  std::vector<ExperimentCase> cases;
  ScenarioConfig model = base;
  model.system = SystemKind::kEqualMaxModel;
  cases.push_back({"equalmax-model", std::move(model)});
  for (const double interval : intervals_ms) {
    ScenarioConfig config = base;
    config.system = SystemKind::kEqualMaxCredits;
    config.credits.adapt_interval = sim::Duration::millis(interval);
    config.credits.measure_interval = sim::Duration::millis(std::min(100.0, interval / 2.0));
    std::ostringstream label;
    label << "equalmax-credits@adapt-ms=" << interval;
    cases.push_back({label.str(), std::move(config)});
  }
  return cases;
}

std::vector<ExperimentCase> expand_forecast_noise(const ScenarioConfig& base,
                                                  const util::Flags& flags) {
  // Forecast-quality sweep, with the forecast-independent FIFO
  // baseline as the reference case.
  const std::vector<double> sigmas =
      doubles_from_flag(flags, "noise-sigmas", {0.0, 0.25, 0.5, 1.0, 2.0});
  std::vector<ExperimentCase> cases;
  ScenarioConfig fifo = base;
  fifo.system = SystemKind::kFifoDirect;
  cases.push_back({"fifo-direct", std::move(fifo)});
  for (const double sigma : sigmas) {
    ScenarioConfig config = base;
    config.system = SystemKind::kEqualMaxCredits;
    config.cost_noise_sigma = sigma;
    std::ostringstream label;
    label << "equalmax-credits@noise=" << sigma;
    cases.push_back({label.str(), std::move(config)});
  }
  return cases;
}

std::vector<ExperimentCase> expand_replication_sweep(const ScenarioConfig& base,
                                                     const util::Flags& flags) {
  const std::vector<double> factors =
      doubles_from_flag(flags, "replications", {1, 2, 3, 5, 9});
  const auto systems = systems_from_flags(
      flags, {SystemKind::kC3, SystemKind::kEqualMaxCredits, SystemKind::kEqualMaxModel});
  std::vector<ExperimentCase> cases;
  for (const double factor : factors) {
    if (factor < 1.0) throw std::invalid_argument("--replications: factor < 1");
    if (factor != std::floor(factor)) {
      throw std::invalid_argument("--replications: not an integer: " + std::to_string(factor));
    }
    for (const SystemKind kind : systems) {
      ScenarioConfig config = base;
      config.system = kind;
      config.replication = static_cast<std::uint32_t>(factor);
      std::ostringstream label;
      label << to_string(kind) << "@R=" << static_cast<std::uint32_t>(factor);
      cases.push_back({label.str(), std::move(config)});
    }
  }
  return cases;
}

}  // namespace

const std::vector<ScenarioSpec>& scenario_registry() {
  static const std::vector<ScenarioSpec> registry = {
      {"paper", "Figure 2: the five-system comparison at paper defaults", expand_paper},
      {"load-sweep", "utilization sweep (--loads=0.5,...) over C3 / credits / model",
       expand_load_sweep},
      {"fanout-sweep", "fan-out distribution sweep (--fanouts=spec,...)", expand_fanout_sweep},
      {"policy-matrix", "all 13 systems: baselines, BRB, ablations", expand_policy_matrix},
      {"policy-shootout",
       "replica-policy bake-off on a fixed FIFO/direct substrate + full C3 (--policies=...)",
       expand_policy_shootout},
      {"policy-switch", "mid-run policy switching vs its static endpoints (--policy-switch=...)",
       expand_policy_switch},
      {"hedging-shootout",
       "tail-cutting bake-off: single vs hedge/tied/kofn on the large fleet, "
       "steady + diurnal arrivals (--dispatches=...)",
       expand_hedging_shootout},
      {"large-cluster", "100 servers x 1000 clients scale case (credits + C3)",
       expand_large_cluster},
      {"mega-fleet",
       "10k servers x 1M clients: sparse control plane + sketch stats (nightly scale case)",
       expand_mega_fleet},
      {"trace-replay", "replay a recorded trace (--trace=PATH) across systems",
       expand_trace_replay},
      {"hetero-servers", "mixed fleet (6x4-core + 3x8-core at 2x rate) via --cluster",
       expand_hetero_servers},
      {"diurnal", "sinusoidal 0.5x..1.5x arrival envelope (--arrivals=...)", expand_diurnal},
      {"write-heavy", "task-level write mix; writes fan out to all replicas (--writes=...)",
       expand_write_heavy},
      {"multi-tenant", "interactive + batch tenant mix, per-tenant p99 fairness (--tenants=...)",
       expand_multi_tenant},
      {"replication-skew", "key-popularity skew over R=2 placement (--skews=...)",
       expand_replication_skew},
      {"credits-interval", "credits adaptation-cadence sweep vs the ideal model "
       "(--intervals-ms=...)",
       expand_credits_interval},
      {"forecast-noise", "cost-forecast noise sweep vs task-oblivious FIFO (--noise-sigmas=...)",
       expand_forecast_noise},
      {"replication-sweep", "replication-factor sweep across C3/credits/model "
       "(--replications=...)",
       expand_replication_sweep},
  };
  return registry;
}

const ScenarioSpec* find_scenario(const std::string& name) {
  for (const ScenarioSpec& spec : scenario_registry()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::vector<SystemKind> systems_from_flags(const util::Flags& flags,
                                           std::vector<SystemKind> fallback) {
  const auto value = flags.get("systems");
  if (!value) return fallback;
  std::vector<SystemKind> systems;
  for (const std::string& name : split_csv(*value)) {
    systems.push_back(core::system_kind_from_name(name));
  }
  if (systems.empty()) throw std::invalid_argument("--systems: empty list");
  return systems;
}

std::vector<double> doubles_from_flag(const util::Flags& flags, std::string_view name,
                                      std::vector<double> fallback) {
  const auto value = flags.get(name);
  if (!value) return fallback;
  std::vector<double> out;
  for (const std::string& part : split_csv(*value)) {
    try {
      out.push_back(std::stod(part));
    } catch (const std::exception&) {
      throw std::invalid_argument(std::string("--") + std::string(name) +
                                  ": not a number: " + part);
    }
  }
  if (out.empty()) throw std::invalid_argument(std::string("--") + std::string(name) +
                                               ": empty list");
  return out;
}

}  // namespace brb::cli
