// The deterministic experiment plan behind `brbsim` — layer 1 of the
// plan / execute / merge split.
//
// A `SweepPlan` enumerates every (case, seed) unit of one scenario
// expansion up front, with a stable 64-bit hash per unit. Sharding
// partitions the *hash space* into N contiguous ranges (multiply-shift:
// unit u belongs to shard `hash(u) * N >> 64`), so:
//
//   - the partition is deterministic and machine-independent — every
//     worker derives its slice from the same flags, no coordinator;
//   - shard loads are balanced in expectation whatever the case/seed
//     grid shape, because the hash mixes both dimensions;
//   - the N-way partition is exact: each unit lands in exactly one
//     shard for every N.
//
// `brbsim --plan` prints the table, `--shard=i/N` executes one slice,
// and `brbsim merge` reassembles the artifacts (stats/artifact.hpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "cli/scenario_registry.hpp"
#include "core/scenario.hpp"
#include "stats/report.hpp"
#include "util/flags.hpp"

namespace brb::cli {

/// One executable unit of a sweep: a single (case, seed) simulation.
struct SweepUnit {
  std::uint32_t case_index = 0;
  std::uint64_t seed = 0;
  /// Stable partition key: FNV-1a over (scenario, case index, label,
  /// seed). Identical across runs, shard counts, and machines.
  std::uint64_t hash = 0;
  /// Human-readable stable id, "<case_index>:<label>#s<seed>".
  std::string id;
};

/// A 1-based "--shard=i/N" selector over the unit hash space.
struct ShardSpec {
  std::uint32_t index = 1;
  std::uint32_t count = 1;

  /// Parses "i/N" with 1 <= i <= N. Throws std::invalid_argument.
  static ShardSpec parse(const std::string& text);

  bool is_full() const noexcept { return count == 1; }
  /// True when `hash` falls in this shard's contiguous range.
  bool contains(std::uint64_t hash) const noexcept { return bucket_of(hash, count) == index - 1; }
  /// Which of `count` shards owns `hash` (0-based).
  static std::uint32_t bucket_of(std::uint64_t hash, std::uint32_t count) noexcept;

  std::string describe() const;  // "i/N"
};

/// The full deterministic plan of one driver invocation: the expanded
/// cases, the seed list, and the flat unit grid (case-major).
struct SweepPlan {
  std::string scenario;
  core::ScenarioConfig base;
  std::vector<ExperimentCase> cases;
  std::vector<std::uint64_t> seeds;
  std::vector<SweepUnit> units;

  /// The units this shard owns, in plan order.
  std::vector<const SweepUnit*> shard_units(const ShardSpec& shard) const;
};

/// Stable unit hash (exposed for tests).
std::uint64_t sweep_unit_hash(const std::string& scenario, std::uint32_t case_index,
                              const std::string& label, std::uint64_t seed);

/// Expands `scenario_name` from the registry against the flag-resolved
/// base config and enumerates every unit. Throws std::invalid_argument
/// on an unknown scenario; an empty expansion yields an empty plan.
SweepPlan build_sweep_plan(const std::string& scenario_name, const core::ScenarioConfig& base,
                           const std::vector<std::uint64_t>& seeds, const util::Flags& flags);

/// `--plan`: one line per unit. With `shard_count` > 1 a shard column
/// is added; `selected` (if set) marks that shard's units with '*'.
void print_plan(std::ostream& os, const SweepPlan& plan, std::uint32_t shard_count,
                std::optional<std::uint32_t> selected_index);

/// Machine-readable plan listing (`--plan --json=PATH`).
stats::Json plan_json(const SweepPlan& plan, std::uint32_t shard_count);

}  // namespace brb::cli
