#include "cli/driver.hpp"

#include <algorithm>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "stats/table.hpp"
#include "workload/arrival.hpp"
#include "workload/capacity.hpp"
#include "workload/fanout_dist.hpp"
#include "workload/key_dist.hpp"
#include "workload/size_dist.hpp"
#include "workload/task_gen.hpp"
#include "workload/trace.hpp"

namespace brb::cli {

namespace {

using core::AggregateResult;
using core::RunResult;
using core::ScenarioConfig;

sim::Duration micros_flag(const util::Flags& flags, std::string_view name,
                          sim::Duration fallback) {
  return sim::Duration::micros(flags.get_double(name, fallback.as_micros()));
}

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  return os;
}

/// Every flag the driver or any registered scenario reads. Unknown
/// `--flags` used to be silently ignored (a typo'd `--task=...` ran
/// the full default workload); now they fail fast with a hint.
const std::vector<std::string>& known_flags() {
  static const std::vector<std::string> flags = {
      // run control
      "help", "list", "scenario", "paper", "seeds", "seed-list", "serial", "threads", "quiet",
      "json", "csv", "record-trace",
      // cluster / workload
      "servers", "cores", "rate", "cluster", "replication", "clients", "tasks", "utilization",
      "trace", "fanout", "sizes", "keys", "paced", "arrivals", "write-fraction", "tenants",
      // timing / measurement
      "net-latency-us", "net-jitter-us", "service-base-us", "service-noise", "cost-noise",
      "warmup", "keep-raw",
      // system under test
      "system", "seed", "selector", "systems",
      // scenario expanders
      "loads", "fanouts", "writes", "skews", "replications", "intervals-ms", "noise-sigmas",
      // credits controller
      "credits-adapt-s", "credits-measure-ms", "credits-monitor-ms", "credits-congestion-factor",
      "credits-backoff", "credits-recovery", "credits-min-capacity", "credits-ewma",
      "credits-min-share", "credits-carryover",
      // C3 comparator
      "c3-ewma", "c3-exponent", "rate-initial", "rate-beta", "rate-scaling", "rate-burst",
      "rate-window-ms",
  };
  return flags;
}

}  // namespace

void validate_flags(const util::Flags& flags) {
  const std::vector<std::string>& known = known_flags();
  for (const std::string& name : flags.cli_names()) {
    if (std::find(known.begin(), known.end(), name) != known.end()) continue;
    std::string message = "unknown flag --" + name;
    if (const auto suggestion = util::closest_name(name, known)) {
      message += " (did you mean --" + *suggestion + "?)";
    }
    message += "; see brbsim --help";
    throw std::invalid_argument(message);
  }
}

ScenarioConfig config_from_flags(const util::Flags& flags) {
  ScenarioConfig config;  // paper defaults
  const bool paper = flags.get_bool("paper", false);

  // --- cluster ---
  if (const auto cluster = flags.get("cluster")) {
    if (flags.has("servers") || flags.has("cores") || flags.has("rate")) {
      throw std::invalid_argument(
          "--cluster conflicts with --servers/--cores/--rate; the profile fixes all three");
    }
    config.cluster = workload::ClusterSpec::parse(*cluster);
  } else {
    config.cluster.num_servers =
        static_cast<std::uint32_t>(flags.get_uint("servers", config.cluster.num_servers));
    config.cluster.cores_per_server =
        static_cast<std::uint32_t>(flags.get_uint("cores", config.cluster.cores_per_server));
    config.cluster.service_rate_per_core =
        flags.get_double("rate", config.cluster.service_rate_per_core);
  }
  config.replication = static_cast<std::uint32_t>(flags.get_uint("replication", config.replication));
  config.num_clients = static_cast<std::uint32_t>(flags.get_uint("clients", config.num_clients));

  // --- workload ---
  config.num_tasks = flags.get_uint("tasks", paper ? 500'000 : 60'000);
  config.utilization = flags.get_double("utilization", config.utilization);
  config.trace_path = flags.get_string("trace", config.trace_path);
  config.fanout_spec = flags.get_string("fanout", config.fanout_spec);
  config.size_spec = flags.get_string("sizes", config.size_spec);
  config.key_spec = flags.get_string("keys", config.key_spec);
  config.paced_arrivals = flags.get_bool("paced", config.paced_arrivals);
  config.arrival_spec = flags.get_string("arrivals", config.arrival_spec);
  config.write_fraction = flags.get_double("write-fraction", config.write_fraction);
  config.tenant_spec = flags.get_string("tenants", config.tenant_spec);
  if (config.paced_arrivals && !config.arrival_spec.empty()) {
    throw std::invalid_argument("--paced conflicts with --arrivals; pick one arrival shape");
  }
  if (!config.trace_path.empty()) {
    // Replay fixes arrival times, request mix and issuing clients.
    if (!config.arrival_spec.empty()) {
      throw std::invalid_argument("--trace conflicts with --arrivals (times come from the trace)");
    }
    if (config.write_fraction > 0.0) {
      throw std::invalid_argument("--trace conflicts with --write-fraction (traces are read-only)");
    }
    if (!config.tenant_spec.empty()) {
      throw std::invalid_argument("--trace conflicts with --tenants (traces are single-tenant)");
    }
  }

  // --- timing ---
  config.net_latency = micros_flag(flags, "net-latency-us", config.net_latency);
  config.net_jitter = micros_flag(flags, "net-jitter-us", config.net_jitter);
  config.service_base = micros_flag(flags, "service-base-us", config.service_base);
  config.service_noise_sigma = flags.get_double("service-noise", config.service_noise_sigma);
  config.cost_noise_sigma = flags.get_double("cost-noise", config.cost_noise_sigma);

  // --- measurement ---
  config.warmup_fraction = flags.get_double("warmup", config.warmup_fraction);
  config.keep_raw_latencies = flags.get_bool("keep-raw", config.keep_raw_latencies);

  // --- system under test ---
  config.system = core::system_kind_from_name(
      flags.get_string("system", to_string(config.system)));
  config.seed = flags.get_uint("seed", config.seed);
  config.selector_override = flags.get_string("selector", config.selector_override);

  // --- credits controller ---
  config.credits.adapt_interval = sim::Duration::seconds(
      flags.get_double("credits-adapt-s", config.credits.adapt_interval.as_seconds()));
  config.credits.measure_interval = sim::Duration::millis(flags.get_double(
      "credits-measure-ms", config.credits.measure_interval.as_millis()));
  config.credits.monitor_interval = sim::Duration::millis(flags.get_double(
      "credits-monitor-ms", config.credits.monitor_interval.as_millis()));
  config.credits.congestion_queue_factor =
      flags.get_double("credits-congestion-factor", config.credits.congestion_queue_factor);
  config.credits.congestion_backoff =
      flags.get_double("credits-backoff", config.credits.congestion_backoff);
  config.credits.recovery_step =
      flags.get_double("credits-recovery", config.credits.recovery_step);
  config.credits.min_capacity_factor =
      flags.get_double("credits-min-capacity", config.credits.min_capacity_factor);
  config.credits.demand_ewma_alpha =
      flags.get_double("credits-ewma", config.credits.demand_ewma_alpha);
  config.credits.min_share_fraction =
      flags.get_double("credits-min-share", config.credits.min_share_fraction);
  config.credits.carryover_cap_factor =
      flags.get_double("credits-carryover", config.credits.carryover_cap_factor);

  // --- C3 comparator ---
  config.c3.ewma_alpha = flags.get_double("c3-ewma", config.c3.ewma_alpha);
  config.c3.queue_exponent = flags.get_double("c3-exponent", config.c3.queue_exponent);
  config.rate.initial_rate = flags.get_double("rate-initial", config.rate.initial_rate);
  config.rate.beta = flags.get_double("rate-beta", config.rate.beta);
  config.rate.scaling = flags.get_double("rate-scaling", config.rate.scaling);
  config.rate.burst = flags.get_double("rate-burst", config.rate.burst);
  config.rate.window =
      sim::Duration::millis(flags.get_double("rate-window-ms", config.rate.window.as_millis()));

  return config;
}

std::vector<std::uint64_t> seeds_from_flags(const util::Flags& flags,
                                            std::uint64_t default_count) {
  if (const auto list = flags.get("seed-list")) {
    std::vector<std::uint64_t> seeds;
    std::stringstream ss(*list);
    std::string part;
    while (std::getline(ss, part, ',')) {
      if (part.empty()) continue;
      try {
        // stoull silently wraps negatives, so reject the sign up front.
        if (part[0] == '-') throw std::invalid_argument("negative");
        seeds.push_back(std::stoull(part));
      } catch (const std::exception&) {
        throw std::invalid_argument("--seed-list: not a seed: " + part);
      }
    }
    if (seeds.empty()) throw std::invalid_argument("--seed-list: empty list");
    return seeds;
  }
  const std::uint64_t count = flags.get_uint("seeds", default_count);
  if (count == 0) throw std::invalid_argument("--seeds: must be >= 1");
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < count; ++s) seeds.push_back(s + 1);
  return seeds;
}

void record_trace(const ScenarioConfig& base, const std::string& path) {
  // The v1 trace format carries arrival/fan-out/size only, so write
  // and tenant structure cannot round-trip through a recording.
  if (base.write_fraction > 0.0 || !base.tenant_spec.empty()) {
    throw std::invalid_argument(
        "--record-trace conflicts with --write-fraction/--tenants (traces are read-only, "
        "single-tenant)");
  }
  util::Rng rng(base.seed);
  const auto sizes = workload::make_size_distribution(base.size_spec);
  const auto keys = workload::make_key_distribution(base.key_spec);
  const auto fanout = workload::make_fanout_distribution(base.fanout_spec);
  workload::Dataset dataset(keys->num_keys(), *sizes, rng.split());
  workload::TaskGenerator::Config gen_config;
  gen_config.num_clients = base.num_clients;
  const workload::CapacityPlanner planner(base.cluster);
  const double task_rate = planner.task_rate_for_utilization(base.utilization, fanout->mean());
  std::unique_ptr<workload::ArrivalProcess> arrivals;
  if (!base.arrival_spec.empty()) {
    // Arrival times are baked into the trace, so a diurnal recording
    // replays with its envelope intact.
    arrivals = workload::make_arrival_process(base.arrival_spec, task_rate);
  } else if (base.paced_arrivals) {
    arrivals = std::make_unique<workload::PacedArrivals>(task_rate);
  } else {
    arrivals = std::make_unique<workload::PoissonArrivals>(task_rate);
  }
  workload::TaskGenerator generator(gen_config, dataset, *keys, *fanout, std::move(arrivals),
                                    rng.split());
  const auto tasks = generator.generate(base.num_tasks);
  workload::TraceWriter::write_file(path, tasks);
}

namespace {

stats::Json config_json(const ScenarioConfig& config) {
  stats::Json j = stats::Json::object();
  j["servers"] = config.cluster.num_servers;
  j["cores_per_server"] = config.cluster.cores_per_server;
  j["service_rate_per_core"] = config.cluster.service_rate_per_core;
  j["cluster"] = config.cluster.describe();
  j["replication"] = config.replication;
  j["clients"] = config.num_clients;
  j["tasks"] = config.num_tasks;
  j["utilization"] = config.utilization;
  j["trace"] = config.trace_path;
  j["fanout"] = config.fanout_spec;
  j["sizes"] = config.size_spec;
  j["keys"] = config.key_spec;
  j["paced_arrivals"] = config.paced_arrivals;
  j["arrivals"] = config.arrival_spec;
  j["write_fraction"] = config.write_fraction;
  j["tenants"] = config.tenant_spec;
  j["net_latency_us"] = config.net_latency.as_micros();
  j["net_jitter_us"] = config.net_jitter.as_micros();
  j["service_base_us"] = config.service_base.as_micros();
  j["service_noise_sigma"] = config.service_noise_sigma;
  j["cost_noise_sigma"] = config.cost_noise_sigma;
  j["warmup_fraction"] = config.warmup_fraction;
  j["selector_override"] = config.selector_override;
  return j;
}

stats::Json summary_json(const stats::Summary& s) {
  stats::Json j = stats::Json::object();
  j["mean"] = s.mean();
  j["stddev"] = s.stddev();
  j["min"] = s.min();
  j["max"] = s.max();
  return j;
}

stats::Json run_json(const RunResult& run) {
  const core::LatencySummary latency = core::summarize_tasks(run);
  stats::Json j = stats::Json::object();
  j["seed"] = run.seed;
  j["p50_ms"] = latency.p50_ms;
  j["p95_ms"] = latency.p95_ms;
  j["p99_ms"] = latency.p99_ms;
  j["mean_ms"] = latency.mean_ms;
  j["tasks_completed"] = run.tasks_completed;
  j["tasks_measured"] = run.tasks_measured;
  j["requests_completed"] = run.requests_completed;
  j["write_requests"] = run.write_requests_acked;
  if (!run.tenants.empty()) {
    stats::Json tenants = stats::Json::array();
    for (const core::TenantResult& tenant : run.tenants) {
      stats::Json t = stats::Json::object();
      t["name"] = tenant.name;
      t["tasks_completed"] = tenant.tasks_completed;
      t["tasks_measured"] = tenant.tasks_measured;
      if (tenant.tasks_measured > 0) {
        t["p50_ms"] = tenant.task_latency.percentile(50).as_millis();
        t["p95_ms"] = tenant.task_latency.percentile(95).as_millis();
        t["p99_ms"] = tenant.task_latency.percentile(99).as_millis();
        t["mean_ms"] = tenant.task_latency.mean().as_millis();
      }
      tenants.push_back(std::move(t));
    }
    j["tenants"] = std::move(tenants);
    j["tenant_p99_ratio"] = run.tenant_p99_ratio;
  }
  j["mean_utilization"] = run.mean_utilization;
  j["network_messages"] = run.network_messages;
  j["network_bytes"] = run.network_bytes;
  j["congestion_signals"] = run.congestion_signals;
  j["controller_adaptations"] = run.controller_adaptations;
  j["credit_hold_events"] = run.credit_hold_events;
  j["credit_hold_time_s"] = run.credit_hold_time.as_seconds();
  j["gate_held_requests"] = run.gate_held_requests;
  j["sim_seconds"] = run.sim_duration.as_seconds();
  j["events_processed"] = run.events_processed;
  j["wall_seconds"] = run.wall_seconds;
  return j;
}

}  // namespace

stats::Json report_json(const std::string& scenario, const ScenarioConfig& base,
                        const std::vector<std::uint64_t>& seeds,
                        const std::vector<CaseResult>& results) {
  stats::Json root = stats::Json::object();
  root["tool"] = "brbsim";
  root["scenario"] = scenario;
  root["config"] = config_json(base);
  stats::Json seed_array = stats::Json::array();
  for (const std::uint64_t s : seeds) seed_array.push_back(s);
  root["seeds"] = std::move(seed_array);

  stats::Json cases = stats::Json::array();
  for (const CaseResult& result : results) {
    stats::Json c = stats::Json::object();
    c["label"] = result.spec.label;
    c["system"] = to_string(result.spec.config.system);
    c["utilization"] = result.spec.config.utilization;
    c["fanout"] = result.spec.config.fanout_spec;
    // Per-case copies of every dimension a scenario expander may sweep,
    // so each case stays self-describing even when it diverges from
    // the base config block above.
    c["tasks"] = result.spec.config.num_tasks;
    c["cluster"] = result.spec.config.cluster.describe();
    c["keys"] = result.spec.config.key_spec;
    c["replication"] = result.spec.config.replication;
    c["arrivals"] = result.spec.config.arrival_spec;
    c["write_fraction"] = result.spec.config.write_fraction;
    c["tenants"] = result.spec.config.tenant_spec;
    stats::Json latency = stats::Json::object();
    latency["p50_ms"] = summary_json(result.aggregate.p50_ms);
    latency["p95_ms"] = summary_json(result.aggregate.p95_ms);
    latency["p99_ms"] = summary_json(result.aggregate.p99_ms);
    latency["mean_ms"] = summary_json(result.aggregate.mean_ms);
    c["task_latency_ms"] = std::move(latency);
    stats::Json runs = stats::Json::array();
    for (const RunResult& run : result.aggregate.runs) runs.push_back(run_json(run));
    c["runs"] = std::move(runs);
    cases.push_back(std::move(c));
  }
  root["cases"] = std::move(cases);
  return root;
}

void report_csv(std::ostream& os, const std::string& scenario,
                const std::vector<CaseResult>& results) {
  os << "scenario,label,system,seed,p50_ms,p95_ms,p99_ms,mean_ms,tasks_completed,"
        "requests_completed,write_requests,mean_utilization,congestion_signals,"
        "credit_hold_events,tenant_p99_ratio,wall_seconds\n";
  for (const CaseResult& result : results) {
    const std::string prefix = stats::csv_field(scenario) + "," +
                               stats::csv_field(result.spec.label) + "," +
                               to_string(result.spec.config.system);
    for (const RunResult& run : result.aggregate.runs) {
      const core::LatencySummary latency = core::summarize_tasks(run);
      os << prefix << "," << run.seed << "," << latency.p50_ms << "," << latency.p95_ms << ","
         << latency.p99_ms << "," << latency.mean_ms << "," << run.tasks_completed << ","
         << run.requests_completed << "," << run.write_requests_acked << ","
         << run.mean_utilization << "," << run.congestion_signals << ","
         << run.credit_hold_events << "," << run.tenant_p99_ratio << "," << run.wall_seconds
         << "\n";
    }
    // The cross-seed aggregate row (seed column = "all").
    const AggregateResult& agg = result.aggregate;
    os << prefix << ",all," << agg.p50_ms.mean() << "," << agg.p95_ms.mean() << ","
       << agg.p99_ms.mean() << "," << agg.mean_ms.mean() << ",,,,,,,,\n";
  }
}

void print_usage(std::ostream& os) {
  os << "brbsim — unified BRB experiment driver\n\n"
        "usage: brbsim [--scenario=NAME] [overrides...] [--json=PATH] [--csv=PATH]\n"
        "       brbsim --record-trace=PATH [workload overrides...]\n"
        "       brbsim --list\n\n"
        "scenarios:\n";
  for (const ScenarioSpec& spec : scenario_registry()) {
    os << "  " << spec.name << std::string(spec.name.size() < 14 ? 14 - spec.name.size() : 1, ' ')
       << spec.summary << "\n";
  }
  os << "\nrun control:\n"
        "  --seeds=N             run seeds 1..N (default 3; 6 with --paper)\n"
        "  --seed-list=1,5,9     explicit seed list (wins over --seeds)\n"
        "  --serial              disable the per-seed worker threads\n"
        "  --threads=N           cap seed workers (0 = one per seed); results are\n"
        "                        identical for any N (wall_seconds aside)\n"
        "  --paper               full paper scale (500k tasks, 6 seeds)\n"
        "  --json=PATH  --csv=PATH  machine-readable artifacts\n"
        "  --quiet               suppress the console table\n"
        "\ncluster / workload overrides (paper defaults otherwise):\n"
        "  --servers --cores --rate --replication --clients --tasks\n"
        "  --cluster=hetero:6x4x3500,3x8x7000 (heterogeneous fleet profile)\n"
        "  --utilization --fanout=SPEC --sizes=SPEC --keys=SPEC --paced\n"
        "  --arrivals=diurnal:LOW:HIGH:PERIOD_S | steps:M1,M2,..:PERIOD_S\n"
        "  --write-fraction=F (task-level writes; fan out to all replicas)\n"
        "  --tenants=\"NAME[,share=W][,fanout=SPEC][,keys=SPEC][,write=F];...\"\n"
        "  --trace=PATH (trace-replay input)\n"
        "\ntiming / measurement:\n"
        "  --net-latency-us --net-jitter-us --service-base-us\n"
        "  --service-noise --cost-noise --warmup --keep-raw\n"
        "\npolicy knobs:\n"
        "  --system --selector --systems=a,b,c (scenario system set)\n"
        "  --loads=0.5,0.7 (load-sweep)  --fanouts=spec,... (fanout-sweep)\n"
        "  --writes=0.05,0.2 (write-heavy)  --skews=0,0.9,1.2 (replication-skew)\n"
        "  --replications=1,2,3 (replication-sweep)\n"
        "  --intervals-ms=100,1000 (credits-interval)  --noise-sigmas=0,0.5 (forecast-noise)\n"
        "  --credits-{adapt-s,measure-ms,monitor-ms,congestion-factor,backoff,\n"
        "             recovery,min-capacity,ewma,min-share,carryover}\n"
        "  --c3-{ewma,exponent}  --rate-{initial,beta,scaling,burst,window-ms}\n"
        "\nEvery flag also reads a BRB_<NAME> environment default\n"
        "(e.g. BRB_PAPER=1, BRB_TASKS=10000).\n";
}

int run_brbsim(int argc, const char* const* argv) {
  try {
    const util::Flags flags(argc, argv);
    validate_flags(flags);
    if (flags.get_bool("help", false)) {
      print_usage(std::cout);
      return 0;
    }
    if (flags.get_bool("list", false)) {
      for (const ScenarioSpec& spec : scenario_registry()) {
        std::cout << spec.name << "\t" << spec.summary << "\n";
      }
      return 0;
    }

    const ScenarioConfig base = config_from_flags(flags);

    if (const auto trace_out = flags.get("record-trace")) {
      record_trace(base, *trace_out);
      std::cout << "recorded " << base.num_tasks << " tasks to " << *trace_out << "\n";
      return 0;
    }

    const std::string scenario_name = flags.get_string("scenario", "paper");
    const ScenarioSpec* scenario = find_scenario(scenario_name);
    if (scenario == nullptr) {
      std::cerr << "brbsim: unknown scenario '" << scenario_name
                << "' (see brbsim --list)\n";
      return 2;
    }

    const bool paper = flags.get_bool("paper", false);
    const std::vector<std::uint64_t> seeds = seeds_from_flags(flags, paper ? 6 : 3);
    const bool serial = flags.get_bool("serial", false);
    if (serial && flags.has("threads")) {
      throw std::invalid_argument("--serial and --threads conflict; use --threads=1");
    }
    // Worker-thread cap: 0 = one thread per seed. Any value produces
    // identical artifacts (seeds are independent simulations). An
    // explicit --serial always wins — including over a BRB_THREADS
    // environment default.
    core::RunSeedsOptions run_options;
    run_options.max_threads = serial ? 1 : flags.get_uint("threads", 0);
    const bool quiet = flags.get_bool("quiet", false);

    const std::vector<ExperimentCase> cases = scenario->expand(base, flags);
    if (cases.empty()) {
      std::cerr << "brbsim: scenario '" << scenario_name << "' expanded to no cases\n";
      return 2;
    }

    if (!quiet) {
      std::cout << "# brbsim scenario=" << scenario_name << ": " << cases.size() << " cases x "
                << seeds.size() << " seeds, " << base.num_tasks << " tasks each\n";
    }

    std::vector<CaseResult> results;
    results.reserve(cases.size());
    for (const ExperimentCase& experiment : cases) {
      AggregateResult aggregate = core::run_seeds(experiment.config, seeds, run_options);
      if (!quiet) std::cerr << "[brbsim] finished " << experiment.label << "\n";
      results.push_back({experiment, std::move(aggregate)});
    }

    if (!quiet) {
      stats::Table table({"case", "p50 ms", "p95 ms", "p99 ms", "mean ms", "sd(p99)"});
      for (const CaseResult& result : results) {
        const AggregateResult& agg = result.aggregate;
        table.add_row({result.spec.label, stats::fmt_double(agg.p50_ms.mean(), 3),
                       stats::fmt_double(agg.p95_ms.mean(), 3),
                       stats::fmt_double(agg.p99_ms.mean(), 3),
                       stats::fmt_double(agg.mean_ms.mean(), 3),
                       stats::fmt_double(agg.p99_ms.stddev(), 3)});
      }
      table.print(std::cout);
    }

    if (const auto json_path = flags.get("json")) {
      auto os = open_or_throw(*json_path);
      report_json(scenario_name, base, seeds, results).dump(os);
      os << "\n";
      if (!quiet) std::cout << "wrote " << *json_path << "\n";
    }
    if (const auto csv_path = flags.get("csv")) {
      auto os = open_or_throw(*csv_path);
      report_csv(os, scenario_name, results);
      if (!quiet) std::cout << "wrote " << *csv_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "brbsim: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace brb::cli
