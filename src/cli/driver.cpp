#include "cli/driver.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#ifdef __unix__
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "ctrl/dispatch_policy.hpp"
#include "ctrl/replica_policy.hpp"
#include "stats/artifact.hpp"
#include "stats/table.hpp"
#include "workload/arrival.hpp"
#include "workload/capacity.hpp"
#include "workload/fanout_dist.hpp"
#include "workload/key_dist.hpp"
#include "workload/size_dist.hpp"
#include "workload/task_gen.hpp"
#include "workload/trace.hpp"

namespace brb::cli {

namespace {

using core::AggregateResult;
using core::RunResult;
using core::ScenarioConfig;

sim::Duration micros_flag(const util::Flags& flags, std::string_view name,
                          sim::Duration fallback) {
  return sim::Duration::micros(flags.get_double(name, fallback.as_micros()));
}

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  return os;
}

void write_artifact(const std::string& path, const stats::Json& doc) {
  auto os = open_or_throw(path);
  doc.dump(os);
  os << "\n";
  if (!os) throw std::runtime_error("write failed: " + path);
}

/// Every flag the driver or any registered scenario reads. Unknown
/// `--flags` used to be silently ignored (a typo'd `--task=...` ran
/// the full default workload); now they fail fast with a hint.
const std::vector<std::string>& known_flags() {
  static const std::vector<std::string> flags = {
      // run control
      "help", "list", "list-scenarios", "scenario", "paper", "seeds", "seed-list", "serial",
      "threads", "quiet", "json", "csv", "record-trace",
      // sharded sweeps (plan / execute / merge)
      "plan", "shard", "spawn",
      // cluster / workload
      "servers", "cores", "rate", "cluster", "replication", "clients", "tasks", "utilization",
      "trace", "fanout", "sizes", "keys", "paced", "arrivals", "write-fraction", "tenants",
      // timing / measurement
      "net-latency-us", "net-jitter-us", "service-base-us", "service-noise", "cost-noise",
      "warmup", "keep-raw",
      // system under test / control plane
      "system", "seed", "selector", "systems", "policy", "policy-switch", "admission",
      "dispatch", "signal-store", "stats",
      // scenario expanders
      "loads", "fanouts", "writes", "skews", "replications", "intervals-ms", "noise-sigmas",
      "policies", "dispatches",
      // credits controller
      "credits-adapt-s", "credits-measure-ms", "credits-monitor-ms", "credits-congestion-factor",
      "credits-backoff", "credits-recovery", "credits-min-capacity", "credits-ewma",
      "credits-min-share", "credits-carryover",
      // C3 comparator
      "c3-ewma", "c3-exponent", "rate-initial", "rate-beta", "rate-scaling", "rate-burst",
      "rate-window-ms",
  };
  return flags;
}

}  // namespace

void validate_flags(const util::Flags& flags) {
  const std::vector<std::string>& known = known_flags();
  for (const std::string& name : flags.cli_names()) {
    if (std::find(known.begin(), known.end(), name) != known.end()) continue;
    std::string message = "unknown flag --" + name;
    if (const auto suggestion = util::closest_name(name, known)) {
      message += " (did you mean --" + *suggestion + "?)";
    }
    message += "; see brbsim --help";
    throw std::invalid_argument(message);
  }
}

ScenarioConfig config_from_flags(const util::Flags& flags) {
  ScenarioConfig config;  // paper defaults
  const bool paper = flags.get_bool("paper", false);

  // --- cluster ---
  if (const auto cluster = flags.get("cluster")) {
    if (flags.has("servers") || flags.has("cores") || flags.has("rate")) {
      throw std::invalid_argument(
          "--cluster conflicts with --servers/--cores/--rate; the profile fixes all three");
    }
    config.cluster = workload::ClusterSpec::parse(*cluster);
  } else {
    config.cluster.num_servers =
        static_cast<std::uint32_t>(flags.get_uint("servers", config.cluster.num_servers));
    config.cluster.cores_per_server =
        static_cast<std::uint32_t>(flags.get_uint("cores", config.cluster.cores_per_server));
    config.cluster.service_rate_per_core =
        flags.get_double("rate", config.cluster.service_rate_per_core);
  }
  config.replication = static_cast<std::uint32_t>(flags.get_uint("replication", config.replication));
  config.num_clients = static_cast<std::uint32_t>(flags.get_uint("clients", config.num_clients));

  // --- workload ---
  config.num_tasks = flags.get_uint("tasks", paper ? 500'000 : 60'000);
  config.utilization = flags.get_double("utilization", config.utilization);
  config.trace_path = flags.get_string("trace", config.trace_path);
  config.fanout_spec = flags.get_string("fanout", config.fanout_spec);
  config.size_spec = flags.get_string("sizes", config.size_spec);
  config.key_spec = flags.get_string("keys", config.key_spec);
  config.paced_arrivals = flags.get_bool("paced", config.paced_arrivals);
  config.arrival_spec = flags.get_string("arrivals", config.arrival_spec);
  config.write_fraction = flags.get_double("write-fraction", config.write_fraction);
  config.tenant_spec = flags.get_string("tenants", config.tenant_spec);
  if (config.paced_arrivals && !config.arrival_spec.empty()) {
    throw std::invalid_argument("--paced conflicts with --arrivals; pick one arrival shape");
  }
  if (!config.trace_path.empty()) {
    // Replay fixes arrival times, request mix and issuing clients.
    if (!config.arrival_spec.empty()) {
      throw std::invalid_argument("--trace conflicts with --arrivals (times come from the trace)");
    }
    if (config.write_fraction > 0.0) {
      throw std::invalid_argument("--trace conflicts with --write-fraction (traces are read-only)");
    }
    if (!config.tenant_spec.empty()) {
      throw std::invalid_argument("--trace conflicts with --tenants (traces are single-tenant)");
    }
  }

  // --- timing ---
  config.net_latency = micros_flag(flags, "net-latency-us", config.net_latency);
  config.net_jitter = micros_flag(flags, "net-jitter-us", config.net_jitter);
  config.service_base = micros_flag(flags, "service-base-us", config.service_base);
  config.service_noise_sigma = flags.get_double("service-noise", config.service_noise_sigma);
  config.cost_noise_sigma = flags.get_double("cost-noise", config.cost_noise_sigma);

  // --- measurement ---
  config.warmup_fraction = flags.get_double("warmup", config.warmup_fraction);
  config.keep_raw_latencies = flags.get_bool("keep-raw", config.keep_raw_latencies);

  // --- system under test ---
  config.system = core::system_kind_from_name(
      flags.get_string("system", to_string(config.system)));
  config.seed = flags.get_uint("seed", config.seed);
  config.selector_override = flags.get_string("selector", config.selector_override);

  // --- control plane ---
  config.policy_spec = flags.get_string("policy", config.policy_spec);
  config.policy_switch_spec = flags.get_string("policy-switch", config.policy_switch_spec);
  config.dispatch_spec = flags.get_string("dispatch", config.dispatch_spec);
  config.admission_override = flags.get_string("admission", config.admission_override);
  config.signal_store = flags.get_string("signal-store", config.signal_store);
  config.stats_spec = flags.get_string("stats", config.stats_spec);
  if (!config.selector_override.empty() && !config.policy_spec.empty()) {
    throw std::invalid_argument(
        "--selector and --policy conflict (--policy is the superset: use --policy=NAME)");
  }

  // --- credits controller ---
  config.credits.adapt_interval = sim::Duration::seconds(
      flags.get_double("credits-adapt-s", config.credits.adapt_interval.as_seconds()));
  config.credits.measure_interval = sim::Duration::millis(flags.get_double(
      "credits-measure-ms", config.credits.measure_interval.as_millis()));
  config.credits.monitor_interval = sim::Duration::millis(flags.get_double(
      "credits-monitor-ms", config.credits.monitor_interval.as_millis()));
  config.credits.congestion_queue_factor =
      flags.get_double("credits-congestion-factor", config.credits.congestion_queue_factor);
  config.credits.congestion_backoff =
      flags.get_double("credits-backoff", config.credits.congestion_backoff);
  config.credits.recovery_step =
      flags.get_double("credits-recovery", config.credits.recovery_step);
  config.credits.min_capacity_factor =
      flags.get_double("credits-min-capacity", config.credits.min_capacity_factor);
  config.credits.demand_ewma_alpha =
      flags.get_double("credits-ewma", config.credits.demand_ewma_alpha);
  config.credits.min_share_fraction =
      flags.get_double("credits-min-share", config.credits.min_share_fraction);
  config.credits.carryover_cap_factor =
      flags.get_double("credits-carryover", config.credits.carryover_cap_factor);

  // --- C3 comparator ---
  config.c3.ewma_alpha = flags.get_double("c3-ewma", config.c3.ewma_alpha);
  config.c3.queue_exponent = flags.get_double("c3-exponent", config.c3.queue_exponent);
  config.rate.initial_rate = flags.get_double("rate-initial", config.rate.initial_rate);
  config.rate.beta = flags.get_double("rate-beta", config.rate.beta);
  config.rate.scaling = flags.get_double("rate-scaling", config.rate.scaling);
  config.rate.burst = flags.get_double("rate-burst", config.rate.burst);
  config.rate.window =
      sim::Duration::millis(flags.get_double("rate-window-ms", config.rate.window.as_millis()));

  return config;
}

std::vector<std::uint64_t> seeds_from_flags(const util::Flags& flags,
                                            std::uint64_t default_count) {
  if (const auto list = flags.get("seed-list")) {
    std::vector<std::uint64_t> seeds;
    std::stringstream ss(*list);
    std::string part;
    while (std::getline(ss, part, ',')) {
      if (part.empty()) continue;
      try {
        // stoull silently wraps negatives, so reject the sign up front.
        if (part[0] == '-') throw std::invalid_argument("negative");
        seeds.push_back(std::stoull(part));
      } catch (const std::exception&) {
        throw std::invalid_argument("--seed-list: not a seed: " + part);
      }
    }
    if (seeds.empty()) throw std::invalid_argument("--seed-list: empty list");
    // A repeated seed is the same simulation twice: pointless in an
    // aggregate and ambiguous for the sharded (case, seed) unit grid.
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      for (std::size_t j = i + 1; j < seeds.size(); ++j) {
        if (seeds[i] == seeds[j]) {
          throw std::invalid_argument("--seed-list: duplicate seed " +
                                      std::to_string(seeds[i]));
        }
      }
    }
    return seeds;
  }
  const std::uint64_t count = flags.get_uint("seeds", default_count);
  if (count == 0) throw std::invalid_argument("--seeds: must be >= 1");
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < count; ++s) seeds.push_back(s + 1);
  return seeds;
}

void record_trace(const ScenarioConfig& base, const std::string& path) {
  // The v1 trace format carries arrival/fan-out/size only, so write
  // and tenant structure cannot round-trip through a recording.
  if (base.write_fraction > 0.0 || !base.tenant_spec.empty()) {
    throw std::invalid_argument(
        "--record-trace conflicts with --write-fraction/--tenants (traces are read-only, "
        "single-tenant)");
  }
  util::Rng rng(base.seed);
  const auto sizes = workload::make_size_distribution(base.size_spec);
  const auto keys = workload::make_key_distribution(base.key_spec);
  const auto fanout = workload::make_fanout_distribution(base.fanout_spec);
  workload::Dataset dataset(keys->num_keys(), *sizes, rng.split());
  workload::TaskGenerator::Config gen_config;
  gen_config.num_clients = base.num_clients;
  const workload::CapacityPlanner planner(base.cluster);
  const double task_rate = planner.task_rate_for_utilization(base.utilization, fanout->mean());
  std::unique_ptr<workload::ArrivalProcess> arrivals;
  if (!base.arrival_spec.empty()) {
    // Arrival times are baked into the trace, so a diurnal recording
    // replays with its envelope intact.
    arrivals = workload::make_arrival_process(base.arrival_spec, task_rate);
  } else if (base.paced_arrivals) {
    arrivals = std::make_unique<workload::PacedArrivals>(task_rate);
  } else {
    arrivals = std::make_unique<workload::PoissonArrivals>(task_rate);
  }
  workload::TaskGenerator generator(gen_config, dataset, *keys, *fanout, std::move(arrivals),
                                    rng.split());
  const auto tasks = generator.generate(base.num_tasks);
  workload::TraceWriter::write_file(path, tasks);
}

std::vector<CaseResult> execute_shard(
    const SweepPlan& plan, const ShardSpec& shard, core::RunSeedsOptions options,
    const std::function<void(const ExperimentCase&, std::size_t runs)>& progress) {
  // Group this shard's units back into per-case seed lists (plan order
  // on both axes), so the thread-pool `run_seeds` path is unchanged.
  std::vector<std::vector<std::uint64_t>> seeds_by_case(plan.cases.size());
  for (const SweepUnit* unit : plan.shard_units(shard)) {
    seeds_by_case[unit->case_index].push_back(unit->seed);
  }
  std::vector<CaseResult> results;
  results.reserve(plan.cases.size());
  for (std::size_t i = 0; i < plan.cases.size(); ++i) {
    const ExperimentCase& experiment = plan.cases[i];
    AggregateResult aggregate =
        seeds_by_case[i].empty()
            ? core::aggregate_runs(experiment.config.system, {})
            : core::run_seeds(experiment.config, seeds_by_case[i], options);
    if (progress) progress(experiment, seeds_by_case[i].size());
    results.push_back({experiment, std::move(aggregate)});
  }
  return results;
}

namespace {

stats::Json config_json(const ScenarioConfig& config) {
  stats::Json j = stats::Json::object();
  j["servers"] = config.cluster.num_servers;
  j["cores_per_server"] = config.cluster.cores_per_server;
  j["service_rate_per_core"] = config.cluster.service_rate_per_core;
  j["cluster"] = config.cluster.describe();
  j["replication"] = config.replication;
  j["clients"] = config.num_clients;
  j["tasks"] = config.num_tasks;
  j["utilization"] = config.utilization;
  j["trace"] = config.trace_path;
  j["fanout"] = config.fanout_spec;
  j["sizes"] = config.size_spec;
  j["keys"] = config.key_spec;
  j["paced_arrivals"] = config.paced_arrivals;
  j["arrivals"] = config.arrival_spec;
  j["write_fraction"] = config.write_fraction;
  j["tenants"] = config.tenant_spec;
  j["net_latency_us"] = config.net_latency.as_micros();
  j["net_jitter_us"] = config.net_jitter.as_micros();
  j["service_base_us"] = config.service_base.as_micros();
  j["service_noise_sigma"] = config.service_noise_sigma;
  j["cost_noise_sigma"] = config.cost_noise_sigma;
  j["warmup_fraction"] = config.warmup_fraction;
  j["selector_override"] = config.selector_override;
  // Control-plane bindings appear only when set: legacy artifacts stay
  // byte-identical to their pre-control-plane form.
  if (!config.policy_spec.empty()) j["policy"] = config.policy_spec;
  if (!config.policy_switch_spec.empty()) j["policy_switch"] = config.policy_switch_spec;
  if (!config.dispatch_spec.empty()) j["dispatch"] = config.dispatch_spec;
  if (!config.admission_override.empty()) j["admission"] = config.admission_override;
  if (!config.signal_store.empty()) j["signal_store"] = config.signal_store;
  if (!config.stats_spec.empty()) j["stats"] = config.stats_spec;
  return j;
}

/// One per-seed row. Deterministic fields only: wall-clock time lives
/// in the artifact's trailing "timing" object, so rows (and the whole
/// document above "timing") are byte-identical across thread counts,
/// shard counts, and machines.
stats::Json run_json(const RunResult& run) {
  const core::LatencySummary latency = core::summarize_tasks(run);
  stats::Json j = stats::Json::object();
  j["seed"] = run.seed;
  j["p50_ms"] = latency.p50_ms;
  j["p95_ms"] = latency.p95_ms;
  j["p99_ms"] = latency.p99_ms;
  j["mean_ms"] = latency.mean_ms;
  j["tasks_completed"] = run.tasks_completed;
  j["tasks_measured"] = run.tasks_measured;
  j["requests_completed"] = run.requests_completed;
  j["write_requests"] = run.write_requests_acked;
  if (!run.tenants.empty()) {
    stats::Json tenants = stats::Json::array();
    for (const core::TenantResult& tenant : run.tenants) {
      stats::Json t = stats::Json::object();
      t["name"] = tenant.name;
      t["tasks_completed"] = tenant.tasks_completed;
      t["tasks_measured"] = tenant.tasks_measured;
      if (tenant.tasks_measured > 0) {
        t["p50_ms"] = tenant.task_latency.percentile(50).as_millis();
        t["p95_ms"] = tenant.task_latency.percentile(95).as_millis();
        t["p99_ms"] = tenant.task_latency.percentile(99).as_millis();
        t["mean_ms"] = tenant.task_latency.mean().as_millis();
      }
      tenants.push_back(std::move(t));
    }
    j["tenants"] = std::move(tenants);
    j["tenant_p99_ratio"] = run.tenant_p99_ratio;
  }
  j["mean_utilization"] = run.mean_utilization;
  j["network_messages"] = run.network_messages;
  j["network_bytes"] = run.network_bytes;
  j["congestion_signals"] = run.congestion_signals;
  j["controller_adaptations"] = run.controller_adaptations;
  // Mid-run policy switching only (absent = static binding), so
  // legacy rows keep their exact key set.
  if (run.policy_switches > 0) j["policy_switches"] = run.policy_switches;
  // Tail-cutting executor metrics: present only when the dispatch
  // plumbing was in play, so legacy rows keep their exact key set.
  if (run.dispatch_metrics) {
    j["duplicate_work_fraction"] = run.duplicate_work_fraction;
    j["hedges_issued"] = run.hedges_issued;
    j["hedges_won"] = run.hedges_won;
    j["hedges_cancelled"] = run.hedges_cancelled;
    // Only fresh=-configured hedging can skip, so legacy dispatch rows
    // (no fresh= spec, counter always zero) keep their exact key set.
    if (run.hedges_skipped_fresh > 0) j["hedges_skipped_fresh"] = run.hedges_skipped_fresh;
    j["duplicates_sent"] = run.duplicates_sent;
    j["duplicates_cancelled"] = run.duplicates_cancelled;
    j["duplicates_served"] = run.duplicates_served;
  }
  j["credit_hold_events"] = run.credit_hold_events;
  j["credit_hold_time_s"] = run.credit_hold_time.as_seconds();
  j["gate_held_requests"] = run.gate_held_requests;
  j["sim_seconds"] = run.sim_duration.as_seconds();
  j["events_processed"] = run.events_processed;
  // Sparse-store telemetry: present only on --signal-store=sparse runs,
  // so dense rows keep their exact key set.
  if (run.sparse_signal_store) {
    j["sparse_signal_store"] = true;
    j["signal_entries_live"] = run.signal_entries_live;
    j["signal_evictions"] = run.signal_evictions;
  }
  // Mergeable quantile sketch (--stats=sketch only): the O(sketch)
  // artifact replacement for raw samples. `brbsim merge` re-pools
  // these per-seed sketches exactly.
  if (const stats::QuantileSketch* sketch = run.task_latency.sketch();
      sketch != nullptr && !sketch->empty()) {
    j["task_latency_sketch"] = stats::sketch_block_json(*sketch);
  }
  return j;
}

}  // namespace

stats::Json report_json(const std::string& scenario, const ScenarioConfig& base,
                        const std::vector<std::uint64_t>& seeds,
                        const std::vector<CaseResult>& results, const ShardSpec* shard) {
  stats::Json root = stats::Json::object();
  root["tool"] = "brbsim";
  root["format"] = stats::kArtifactFormat;
  root["scenario"] = scenario;
  if (shard != nullptr) root["shard"] = shard->describe();
  root["config"] = config_json(base);
  stats::Json seed_array = stats::Json::array();
  for (const std::uint64_t s : seeds) seed_array.push_back(s);
  root["seeds"] = std::move(seed_array);

  double total_wall_seconds = 0.0;
  stats::Json timing_cases = stats::Json::array();
  stats::Json cases = stats::Json::array();
  for (const CaseResult& result : results) {
    stats::Json c = stats::Json::object();
    c["label"] = result.spec.label;
    c["system"] = to_string(result.spec.config.system);
    c["utilization"] = result.spec.config.utilization;
    c["fanout"] = result.spec.config.fanout_spec;
    // Per-case copies of every dimension a scenario expander may sweep,
    // so each case stays self-describing even when it diverges from
    // the base config block above.
    c["tasks"] = result.spec.config.num_tasks;
    c["cluster"] = result.spec.config.cluster.describe();
    c["keys"] = result.spec.config.key_spec;
    c["replication"] = result.spec.config.replication;
    c["arrivals"] = result.spec.config.arrival_spec;
    c["write_fraction"] = result.spec.config.write_fraction;
    c["tenants"] = result.spec.config.tenant_spec;
    // Control-plane dimensions (policy-shootout / policy-switch sweep
    // them per case); conditional so legacy cases keep their key set.
    if (!result.spec.config.policy_spec.empty()) {
      c["policy"] = result.spec.config.policy_spec;
    }
    if (!result.spec.config.policy_switch_spec.empty()) {
      c["policy_switch"] = result.spec.config.policy_switch_spec;
    }
    if (!result.spec.config.dispatch_spec.empty()) {
      c["dispatch"] = result.spec.config.dispatch_spec;
    }
    if (!result.spec.config.admission_override.empty()) {
      c["admission"] = result.spec.config.admission_override;
    }
    if (!result.spec.config.signal_store.empty()) {
      c["signal_store"] = result.spec.config.signal_store;
    }
    if (!result.spec.config.stats_spec.empty()) {
      c["stats"] = result.spec.config.stats_spec;
    }
    stats::Json latency = stats::Json::object();
    latency["p50_ms"] = stats::summary_json(result.aggregate.p50_ms);
    latency["p95_ms"] = stats::summary_json(result.aggregate.p95_ms);
    latency["p99_ms"] = stats::summary_json(result.aggregate.p99_ms);
    latency["mean_ms"] = stats::summary_json(result.aggregate.mean_ms);
    c["task_latency_ms"] = std::move(latency);
    stats::Json runs = stats::Json::array();
    stats::Json walls = stats::Json::array();
    for (const RunResult& run : result.aggregate.runs) {
      runs.push_back(run_json(run));
      walls.push_back(run.wall_seconds);
      total_wall_seconds += run.wall_seconds;
    }
    c["runs"] = std::move(runs);
    // Case-level pooled sketch (--stats=sketch only), merged across
    // seeds. Emitted after "runs" so `brbsim merge` — which rebuilds
    // this block from the per-seed sketches — lands it in the same
    // position whether or not shard #1 executed any seed of the case.
    std::unique_ptr<stats::QuantileSketch> pooled_sketch;
    for (const RunResult& run : result.aggregate.runs) {
      const stats::QuantileSketch* sketch = run.task_latency.sketch();
      if (sketch == nullptr || sketch->empty()) continue;
      if (pooled_sketch == nullptr) {
        pooled_sketch = std::make_unique<stats::QuantileSketch>(*sketch);
      } else {
        pooled_sketch->merge(*sketch);
      }
    }
    if (pooled_sketch != nullptr) {
      c["task_latency_sketch"] = stats::sketch_block_json(*pooled_sketch);
    }
    cases.push_back(std::move(c));
    stats::Json timing_case = stats::Json::object();
    timing_case["label"] = result.spec.label;
    timing_case["wall_seconds"] = std::move(walls);
    timing_cases.push_back(std::move(timing_case));
  }
  root["cases"] = std::move(cases);

  // Wall-clock time is the one legitimately nondeterministic
  // measurement; it is quarantined as the LAST top-level key so
  // artifact diffs and shard-merge identity checks drop exactly one
  // subtree instead of excluding fields all over the document.
  stats::Json timing = stats::Json::object();
  timing["total_wall_seconds"] = total_wall_seconds;
#ifdef __unix__
  // Peak RSS of this process (the shard worker, under --spawn): the
  // number the mega-fleet nightly budget gates. Like wall time it is
  // machine-dependent, hence quarantined here in the timing subtree.
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    timing["peak_rss_mb"] = static_cast<double>(usage.ru_maxrss) / 1024.0;
  }
#endif
  timing["cases"] = std::move(timing_cases);
  root["timing"] = std::move(timing);
  return root;
}

void print_case_table(std::ostream& os, const stats::Json& artifact) {
  stats::Table table({"case", "p50 ms", "p95 ms", "p99 ms", "mean ms", "sd(p99)"});
  for (const stats::Json& item : artifact.at("cases").items()) {
    if (item.at("runs").size() == 0) continue;  // not executed by this shard
    const stats::Json& latency = item.at("task_latency_ms");
    table.add_row({item.at("label").as_string(),
                   stats::fmt_double(latency.at("p50_ms").at("mean").as_double(), 3),
                   stats::fmt_double(latency.at("p95_ms").at("mean").as_double(), 3),
                   stats::fmt_double(latency.at("p99_ms").at("mean").as_double(), 3),
                   stats::fmt_double(latency.at("mean_ms").at("mean").as_double(), 3),
                   stats::fmt_double(latency.at("p99_ms").at("stddev").as_double(), 3)});
  }
  table.print(os);
}

bool print_paper_claims(std::ostream& os, const stats::Json& artifact) {
  const auto percentiles = [&](const char* label) -> const stats::Json* {
    for (const stats::Json& item : artifact.at("cases").items()) {
      if (item.at("label").as_string() == label && item.at("runs").size() > 0) {
        return &item.at("task_latency_ms");
      }
    }
    return nullptr;
  };
  const stats::Json* c3 = percentiles("c3");
  const stats::Json* em_credits = percentiles("equalmax-credits");
  const stats::Json* em_model = percentiles("equalmax-model");
  const stats::Json* ui_credits = percentiles("unifincr-credits");
  const stats::Json* ui_model = percentiles("unifincr-model");
  if (!c3 || !em_credits || !em_model || !ui_credits || !ui_model) {
    os << "note: paper claims need the c3 / equalmax-{credits,model} / "
          "unifincr-{credits,model} cases\n";
    return false;
  }
  const auto mean = [](const stats::Json& latency, const char* key) {
    return latency.at(key).at("mean").as_double();
  };

  const double gap_em = mean(*em_credits, "p99_ms") / mean(*em_model, "p99_ms") - 1.0;
  const double gap_ui = mean(*ui_credits, "p99_ms") / mean(*ui_model, "p99_ms") - 1.0;
  os << "\nClaim A (paper: credits within 38% of model at p99)\n";
  os << "  EqualMax: credits/model p99 gap = " << stats::fmt_double(gap_em * 100, 1) << "%\n";
  os << "  UnifIncr: credits/model p99 gap = " << stats::fmt_double(gap_ui * 100, 1) << "%\n";

  os << "\nClaim B (paper: BRB vs C3 up to 3x at median/p95, up to 2x at p99)\n";
  const auto speedup = [&](const stats::Json& brb_latency, const char* name) {
    os << "  C3 / " << name << ":  median "
       << stats::fmt_ratio(mean(*c3, "p50_ms") / mean(brb_latency, "p50_ms")) << "  p95 "
       << stats::fmt_ratio(mean(*c3, "p95_ms") / mean(brb_latency, "p95_ms")) << "  p99 "
       << stats::fmt_ratio(mean(*c3, "p99_ms") / mean(brb_latency, "p99_ms")) << "\n";
  };
  speedup(*em_credits, "EqualMax-Credits");
  speedup(*ui_credits, "UnifIncr-Credits");
  speedup(*em_model, "EqualMax-Model  ");
  speedup(*ui_model, "UnifIncr-Model  ");
  return true;
}

/// Registry entries sorted by name (the registry itself keeps
/// expansion-group order; every user-facing listing sorts).
std::vector<const ScenarioSpec*> sorted_scenarios() {
  std::vector<const ScenarioSpec*> specs;
  for (const ScenarioSpec& spec : scenario_registry()) specs.push_back(&spec);
  std::sort(specs.begin(), specs.end(),
            [](const ScenarioSpec* a, const ScenarioSpec* b) { return a->name < b->name; });
  return specs;
}

void print_scenario_list(std::ostream& os) {
  std::size_t width = 0;
  for (const ScenarioSpec* spec : sorted_scenarios()) {
    width = std::max(width, spec->name.size());
  }
  for (const ScenarioSpec* spec : sorted_scenarios()) {
    os << "  " << spec->name << std::string(width - spec->name.size() + 2, ' ')
       << spec->summary << "\n";
  }
}

void print_usage(std::ostream& os) {
  os << "brbsim — unified BRB experiment driver\n\n"
        "usage: brbsim [--scenario=NAME] [overrides...] [--json=PATH] [--csv=PATH]\n"
        "       brbsim --scenario=NAME --plan [--shard=i/N | --spawn=K]\n"
        "       brbsim --scenario=NAME --shard=i/N --json=shard_i.json\n"
        "       brbsim --scenario=NAME --spawn=K --json=PATH\n"
        "       brbsim merge OUT.json SHARD.json... [--csv=PATH]\n"
        "       brbsim --record-trace=PATH [workload overrides...]\n"
        "       brbsim --list-scenarios\n\n"
        "scenarios:\n";
  print_scenario_list(os);
  os << "\nrun control:\n"
        "  --seeds=N             run seeds 1..N (default 3; 6 with --paper)\n"
        "  --seed-list=1,5,9     explicit seed list (wins over --seeds)\n"
        "  --serial              disable the per-seed worker threads\n"
        "  --threads=N           cap seed workers (0 = one per seed); results are\n"
        "                        identical for any N (timing aside)\n"
        "  --paper               full paper scale (500k tasks, 6 seeds)\n"
        "  --json=PATH  --csv=PATH  machine-readable artifacts\n"
        "  --quiet               suppress the console table\n"
        "\nsharded sweeps (plan / execute / merge):\n"
        "  --plan                list every (case, seed) unit and exit\n"
        "  --shard=i/N           run only shard i of N (deterministic hash partition);\n"
        "                        merge the N artifacts with `brbsim merge`\n"
        "  --spawn=K             fork K worker processes over the plan and merge\n"
        "                        their artifacts in-process (single machine)\n"
        "  brbsim merge OUT IN...  reassemble shard artifacts; the merged JSON/CSV\n"
        "                        is byte-identical to an unsharded run (timing aside)\n"
        "\ncluster / workload overrides (paper defaults otherwise):\n"
        "  --servers --cores --rate --replication --clients --tasks\n"
        "  --cluster=hetero:6x4x3500,3x8x7000 (heterogeneous fleet profile)\n"
        "  --utilization --fanout=SPEC --sizes=SPEC --keys=SPEC --paced\n"
        "  --arrivals=diurnal:LOW:HIGH:PERIOD_S | steps:M1,M2,..:PERIOD_S\n"
        "  --write-fraction=F (task-level writes; fan out to all replicas)\n"
        "  --tenants=\"NAME[,share=W][,fanout=SPEC][,keys=SPEC][,write=F];...\"\n"
        "  --trace=PATH (trace-replay input)\n"
        "\ntiming / measurement:\n"
        "  --net-latency-us --net-jitter-us --service-base-us\n"
        "  --service-noise --cost-noise --warmup --keep-raw\n"
        "\ncontrol plane (replica + admission policies):\n"
        "  --policy=NAME                 bind one replica policy for every tenant\n"
        "  --policy=tenantA:c3,tenantB:lor   per-tenant bindings (later entries win)\n"
        "  --policy-switch=t0:random,30s:c3  epoch-scheduled mid-run switching\n"
        "                                (times: t0 | <n>s | <n>ms | <n>us;\n"
        "                                per-tenant epochs via 30s:tenantA:c3;\n"
        "                                payloads may be dispatch modes: 30s:hedge:q95)\n"
        "  --dispatch=MODE               dispatch plan mode for every tenant\n"
        "  --dispatch=tenantA:tied,tenantB:kofn:2  per-tenant dispatch modes\n"
        "  --admission=direct|cubic-rate|credits   override the admission policy\n"
        "  --selector=NAME               legacy alias for --policy=NAME\n"
        "  --signal-store=auto|dense|sparse[:CAP]  control-plane state layout\n"
        "                                (auto = sparse once clients x servers\n"
        "                                exceeds 2^24 pairs; sparse switches the\n"
        "                                signal table AND credits bookkeeping to\n"
        "                                windowed per-client state, CAP live\n"
        "                                servers per client, default 128)\n"
        "  --stats=exact|sketch          sketch adds mergeable DDSketch quantile\n"
        "                                sketches to artifacts (1% relative error;\n"
        "                                merge stays byte-identical for any shard\n"
        "                                count)\n"
        "  replica policies:\n";
  const auto policy_title = [](const ctrl::ReplicaPolicyInfo& info) {
    std::string title = info.name;
    for (const std::string& alias : info.aliases) title += " | " + alias;
    return title;
  };
  std::size_t policy_width = 0;
  for (const ctrl::ReplicaPolicyInfo& info : ctrl::replica_policy_catalog()) {
    policy_width = std::max(policy_width, policy_title(info).size());
  }
  for (const ctrl::ReplicaPolicyInfo& info : ctrl::replica_policy_catalog()) {
    const std::string title = policy_title(info);
    os << "    " << title << std::string(policy_width - title.size() + 2, ' ') << info.summary
       << "\n";
  }
  os << "  dispatch modes:\n";
  std::size_t mode_width = 0;
  for (const ctrl::DispatchModeInfo& info : ctrl::dispatch_mode_catalog()) {
    mode_width = std::max(mode_width, info.grammar.size());
  }
  for (const ctrl::DispatchModeInfo& info : ctrl::dispatch_mode_catalog()) {
    os << "    " << info.grammar << std::string(mode_width - info.grammar.size() + 2, ' ')
       << info.summary << "\n";
  }
  os << "\npolicy knobs:\n"
        "  --system --systems=a,b,c (scenario system set)\n"
        "  --loads=0.5,0.7 (load-sweep)  --fanouts=spec,... (fanout-sweep)\n"
        "  --writes=0.05,0.2 (write-heavy)  --skews=0,0.9,1.2 (replication-skew)\n"
        "  --replications=1,2,3 (replication-sweep)\n"
        "  --intervals-ms=100,1000 (credits-interval)  --noise-sigmas=0,0.5 (forecast-noise)\n"
        "  --policies=random,c3-noderate (policy-shootout case list)\n"
        "  --dispatches=single,hedge:q98,tied,kofn:2 (hedging-shootout mode list)\n"
        "  --credits-{adapt-s,measure-ms,monitor-ms,congestion-factor,backoff,\n"
        "             recovery,min-capacity,ewma,min-share,carryover}\n"
        "  --c3-{ewma,exponent}  --rate-{initial,beta,scaling,burst,window-ms}\n"
        "\nEvery flag also reads a BRB_<NAME> environment default\n"
        "(e.g. BRB_PAPER=1, BRB_TASKS=10000).\n";
}

namespace {

/// Emits the finished artifact: console table, JSON, CSV. Shared by
/// the in-process, sharded, and spawn-merge paths so all three produce
/// the same bytes for the same document.
void emit_outputs(const stats::Json& doc, const util::Flags& flags, bool quiet) {
  if (!quiet) print_case_table(std::cout, doc);
  if (const auto json_path = flags.get("json")) {
    write_artifact(*json_path, doc);
    if (!quiet) std::cout << "wrote " << *json_path << "\n";
  }
  if (const auto csv_path = flags.get("csv")) {
    auto os = open_or_throw(*csv_path);
    stats::artifact_csv(os, doc);
    if (!quiet) std::cout << "wrote " << *csv_path << "\n";
  }
}

/// `brbsim merge OUT.json SHARD.json...` — layer 3.
int run_merge(const util::Flags& flags) {
  for (const std::string& name : flags.cli_names()) {
    if (name != "csv" && name != "quiet") {
      throw std::invalid_argument("brbsim merge accepts only --csv/--quiet, not --" + name);
    }
  }
  const std::vector<std::string>& args = flags.positional();
  if (args.size() < 3) {
    std::cerr << "usage: brbsim merge OUT.json SHARD.json... [--csv=PATH] [--quiet]\n";
    return 2;
  }
  const std::string& out_path = args[1];
  std::vector<stats::Json> shards;
  shards.reserve(args.size() - 2);
  for (std::size_t i = 2; i < args.size(); ++i) {
    shards.push_back(stats::read_artifact_file(args[i]));
  }
  const stats::Json merged = stats::merge_artifacts(shards);
  const bool quiet = flags.get_bool("quiet", false);
  if (!quiet) {
    std::size_t units = 0;
    for (const stats::Json& item : merged.at("cases").items()) units += item.at("runs").size();
    std::cout << "# brbsim merge: " << shards.size() << " shards, " << units << " units -> "
              << out_path << "\n";
    print_case_table(std::cout, merged);
  }
  write_artifact(out_path, merged);
  if (const auto csv_path = flags.get("csv")) {
    auto os = open_or_throw(*csv_path);
    stats::artifact_csv(os, merged);
    if (!quiet) std::cout << "wrote " << *csv_path << "\n";
  }
  return 0;
}

/// `--spawn=K`: fork K shard workers over the plan, collect their
/// artifacts, and merge in-process. The cross-machine equivalent is
/// running `--shard=i/N` on each machine and `brbsim merge` once.
int run_spawn(const SweepPlan& plan, std::uint32_t spawn_count, core::RunSeedsOptions options,
              const util::Flags& flags, bool quiet) {
#ifndef __unix__
  (void)plan;
  (void)spawn_count;
  (void)options;
  (void)flags;
  (void)quiet;
  throw std::runtime_error("--spawn needs a POSIX host; use --shard=i/N plus brbsim merge");
#else
  const std::string stem = flags.get_string("json", "brbsim-" + plan.scenario + ".json");
  const auto shard_path = [&](std::uint32_t index) {
    return stem + ".shard" + std::to_string(index) + "of" + std::to_string(spawn_count);
  };
  std::vector<pid_t> workers;
  workers.reserve(spawn_count);
  for (std::uint32_t index = 1; index <= spawn_count; ++index) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::cerr << "brbsim: fork failed for shard " << index << "/" << spawn_count << "\n";
      for (const pid_t child : workers) waitpid(child, nullptr, 0);
      return 1;
    }
    if (pid == 0) {
      // Worker: execute one shard, write its artifact, and exit
      // without running parent-owned static destructors.
      int code = 0;
      try {
        ShardSpec shard;
        shard.index = index;
        shard.count = spawn_count;
        const std::vector<CaseResult> results = execute_shard(plan, shard, options);
        write_artifact(shard_path(index),
                       report_json(plan.scenario, plan.base, plan.seeds, results, &shard));
      } catch (const std::exception& e) {
        std::cerr << "brbsim[shard " << index << "/" << spawn_count << "]: " << e.what() << "\n";
        code = 1;
      }
      std::_Exit(code);
    }
    workers.push_back(pid);
  }

  bool failed = false;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    int status = 0;
    if (waitpid(workers[i], &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      std::cerr << "brbsim: shard worker " << (i + 1) << "/" << spawn_count << " failed\n";
      failed = true;
    }
  }
  if (failed) return 1;  // shard artifacts are left behind for inspection

  std::vector<stats::Json> shards;
  shards.reserve(spawn_count);
  for (std::uint32_t index = 1; index <= spawn_count; ++index) {
    shards.push_back(stats::read_artifact_file(shard_path(index)));
  }
  const stats::Json merged = stats::merge_artifacts(shards);
  for (std::uint32_t index = 1; index <= spawn_count; ++index) {
    std::remove(shard_path(index).c_str());
  }
  emit_outputs(merged, flags, quiet);
  return 0;
#endif
}

}  // namespace

int run_brbsim(int argc, const char* const* argv) {
  try {
    const util::Flags flags(argc, argv);
    if (!flags.positional().empty() && flags.positional().front() == "merge") {
      return run_merge(flags);
    }
    if (!flags.positional().empty()) {
      // Fail fast like unknown flags do: a typo'd `brbsim mergee ...`
      // must not silently run the full default sweep instead.
      throw std::invalid_argument("unexpected argument '" + flags.positional().front() +
                                  "' (the only subcommand is `brbsim merge OUT IN...`)");
    }
    validate_flags(flags);
    if (flags.get_bool("help", false)) {
      print_usage(std::cout);
      return 0;
    }
    if (flags.get_bool("list", false) || flags.get_bool("list-scenarios", false)) {
      print_scenario_list(std::cout);
      return 0;
    }

    const ScenarioConfig base = config_from_flags(flags);

    if (const auto trace_out = flags.get("record-trace")) {
      record_trace(base, *trace_out);
      std::cout << "recorded " << base.num_tasks << " tasks to " << *trace_out << "\n";
      return 0;
    }

    const std::string scenario_name = flags.get_string("scenario", "paper");
    if (find_scenario(scenario_name) == nullptr) {
      // Same did-you-mean treatment unknown flags get: a typo'd
      // scenario name should point at the nearest real one.
      std::vector<std::string> names;
      for (const ScenarioSpec& spec : scenario_registry()) names.push_back(spec.name);
      std::cerr << "brbsim: unknown scenario '" << scenario_name << "'";
      if (const auto suggestion = util::closest_name(scenario_name, names)) {
        std::cerr << " (did you mean '" << *suggestion << "'?)";
      }
      std::cerr << "; see brbsim --list-scenarios\n";
      return 2;
    }

    const bool paper = flags.get_bool("paper", false);
    const std::vector<std::uint64_t> seeds = seeds_from_flags(flags, paper ? 6 : 3);
    const bool serial = flags.get_bool("serial", false);
    if (serial && flags.has("threads")) {
      throw std::invalid_argument("--serial and --threads conflict; use --threads=1");
    }
    // Worker-thread cap: 0 = one thread per seed. Any value produces
    // identical artifacts (seeds are independent simulations). An
    // explicit --serial always wins — including over a BRB_THREADS
    // environment default.
    core::RunSeedsOptions run_options;
    run_options.max_threads = serial ? 1 : flags.get_uint("threads", 0);
    const bool quiet = flags.get_bool("quiet", false);

    // --- layer 1: plan ---
    const SweepPlan plan = build_sweep_plan(scenario_name, base, seeds, flags);
    if (plan.cases.empty()) {
      std::cerr << "brbsim: scenario '" << scenario_name << "' expanded to no cases\n";
      return 2;
    }

    std::optional<ShardSpec> shard;
    if (const auto spec = flags.get("shard")) shard = ShardSpec::parse(*spec);
    // get() (not has()) so the BRB_SPAWN environment default works
    // like every other flag's.
    const bool spawn_requested = flags.get("spawn").has_value();
    const std::uint64_t spawn = spawn_requested ? flags.get_uint("spawn", 0) : 0;
    if (spawn_requested) {
      if (shard) throw std::invalid_argument("--spawn and --shard conflict; pick one");
      if (spawn == 0 || spawn > 4096) {
        throw std::invalid_argument("--spawn: need 1 <= K <= 4096");
      }
    }

    if (flags.get_bool("plan", false)) {
      const auto shard_count =
          shard ? shard->count : static_cast<std::uint32_t>(spawn > 1 ? spawn : 1);
      if (const auto json_path = flags.get("json")) {
        write_artifact(*json_path, plan_json(plan, shard_count));
        if (!quiet) std::cout << "wrote " << *json_path << "\n";
      }
      print_plan(std::cout, plan, shard_count,
                 shard ? std::optional<std::uint32_t>(shard->index) : std::nullopt);
      return 0;
    }

    if (spawn_requested) {
      if (!quiet) {
        std::cout << "# brbsim scenario=" << scenario_name << ": " << plan.cases.size()
                  << " cases x " << seeds.size() << " seeds, " << base.num_tasks
                  << " tasks each, " << spawn << " worker processes\n";
      }
      return run_spawn(plan, static_cast<std::uint32_t>(spawn), run_options, flags, quiet);
    }

    // --- layer 2: execute (this process's shard; 1/1 = everything) ---
    const ShardSpec effective = shard.value_or(ShardSpec{});
    if (!quiet) {
      std::cout << "# brbsim scenario=" << scenario_name << ": " << plan.cases.size()
                << " cases x " << seeds.size() << " seeds, " << base.num_tasks
                << " tasks each";
      if (shard) {
        std::cout << ", shard " << shard->describe() << " (" << plan.shard_units(*shard).size()
                  << " of " << plan.units.size() << " units)";
      }
      std::cout << "\n";
    }
    const auto progress = [&](const ExperimentCase& experiment, std::size_t runs) {
      if (!quiet && runs > 0) std::cerr << "[brbsim] finished " << experiment.label << "\n";
    };
    const std::vector<CaseResult> results =
        execute_shard(plan, effective, run_options, progress);

    const stats::Json doc = report_json(scenario_name, base, seeds, results,
                                        shard ? &effective : nullptr);
    emit_outputs(doc, flags, quiet);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "brbsim: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace brb::cli
