#include "cli/sweep_plan.hpp"

#include <ostream>
#include <stdexcept>

#include "stats/table.hpp"

namespace brb::cli {

namespace {

std::uint64_t parse_shard_part(const std::string& text, const std::string& part) {
  try {
    if (part.empty() || part[0] == '-') throw std::invalid_argument("negative");
    std::size_t consumed = 0;
    const std::uint64_t value = std::stoull(part, &consumed);
    if (consumed != part.size()) throw std::invalid_argument("trailing characters");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("--shard: expected i/N with integers, got '" + text + "'");
  }
}

}  // namespace

ShardSpec ShardSpec::parse(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) {
    throw std::invalid_argument("--shard: expected i/N (e.g. --shard=2/3), got '" + text + "'");
  }
  const std::uint64_t index = parse_shard_part(text, text.substr(0, slash));
  const std::uint64_t count = parse_shard_part(text, text.substr(slash + 1));
  if (count == 0 || index == 0 || index > count) {
    throw std::invalid_argument("--shard: need 1 <= i <= N, got '" + text + "'");
  }
  if (count > 1'000'000) {
    throw std::invalid_argument("--shard: implausible shard count in '" + text + "'");
  }
  ShardSpec spec;
  spec.index = static_cast<std::uint32_t>(index);
  spec.count = static_cast<std::uint32_t>(count);
  return spec;
}

std::uint32_t ShardSpec::bucket_of(std::uint64_t hash, std::uint32_t count) noexcept {
  // Multiply-shift range partition: maps the hash space onto [0, count)
  // in contiguous ranges of equal width (Lemire's fast alternative to
  // modulo, which here doubles as the "contiguous-by-hash" property).
  return static_cast<std::uint32_t>(
      (static_cast<unsigned __int128>(hash) * count) >> 64);
}

std::string ShardSpec::describe() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

std::uint64_t sweep_unit_hash(const std::string& scenario, std::uint32_t case_index,
                              const std::string& label, std::uint64_t seed) {
  // FNV-1a 64 over the unit identity, with '\0' separators so
  // ("ab", "c") never collides with ("a", "bc").
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix_byte = [&h](unsigned char byte) {
    h ^= byte;
    h *= 1099511628211ULL;
  };
  const auto mix_string = [&](const std::string& s) {
    for (const char c : s) mix_byte(static_cast<unsigned char>(c));
    mix_byte(0);
  };
  const auto mix_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<unsigned char>(v >> (8 * i)));
  };
  mix_string(scenario);
  mix_u64(case_index);
  mix_string(label);
  mix_u64(seed);
  return h;
}

std::vector<const SweepUnit*> SweepPlan::shard_units(const ShardSpec& shard) const {
  std::vector<const SweepUnit*> owned;
  owned.reserve(units.size() / (shard.count > 0 ? shard.count : 1) + 1);
  for (const SweepUnit& unit : units) {
    if (shard.contains(unit.hash)) owned.push_back(&unit);
  }
  return owned;
}

SweepPlan build_sweep_plan(const std::string& scenario_name, const core::ScenarioConfig& base,
                           const std::vector<std::uint64_t>& seeds, const util::Flags& flags) {
  const ScenarioSpec* scenario = find_scenario(scenario_name);
  if (scenario == nullptr) {
    throw std::invalid_argument("unknown scenario '" + scenario_name +
                                "' (see brbsim --list)");
  }
  SweepPlan plan;
  plan.scenario = scenario_name;
  plan.base = base;
  plan.cases = scenario->expand(base, flags);
  plan.seeds = seeds;
  plan.units.reserve(plan.cases.size() * seeds.size());
  for (std::uint32_t case_index = 0; case_index < plan.cases.size(); ++case_index) {
    const std::string& label = plan.cases[case_index].label;
    for (const std::uint64_t seed : seeds) {
      SweepUnit unit;
      unit.case_index = case_index;
      unit.seed = seed;
      unit.hash = sweep_unit_hash(scenario_name, case_index, label, seed);
      unit.id = std::to_string(case_index) + ":" + label + "#s" + std::to_string(seed);
      plan.units.push_back(std::move(unit));
    }
  }
  return plan;
}

void print_plan(std::ostream& os, const SweepPlan& plan, std::uint32_t shard_count,
                std::optional<std::uint32_t> selected_index) {
  os << "# plan scenario=" << plan.scenario << ": " << plan.cases.size() << " cases x "
     << plan.seeds.size() << " seeds = " << plan.units.size() << " units";
  if (shard_count > 1) os << ", " << shard_count << " shards";
  os << "\n";
  std::vector<std::string> header = {"unit", "system", "seed"};
  if (shard_count > 1) header.push_back(selected_index ? "shard (*=mine)" : "shard");
  stats::Table table(header);
  for (const SweepUnit& unit : plan.units) {
    std::vector<std::string> row = {
        unit.id, to_string(plan.cases[unit.case_index].config.system),
        std::to_string(unit.seed)};
    if (shard_count > 1) {
      const std::uint32_t bucket = ShardSpec::bucket_of(unit.hash, shard_count);
      std::string cell = std::to_string(bucket + 1) + "/" + std::to_string(shard_count);
      if (selected_index && bucket + 1 == *selected_index) cell += " *";
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  table.print(os);
}

stats::Json plan_json(const SweepPlan& plan, std::uint32_t shard_count) {
  stats::Json root = stats::Json::object();
  root["tool"] = "brbsim-plan";
  root["scenario"] = plan.scenario;
  root["cases"] = plan.cases.size();
  stats::Json seeds = stats::Json::array();
  for (const std::uint64_t seed : plan.seeds) seeds.push_back(seed);
  root["seeds"] = std::move(seeds);
  if (shard_count > 1) root["shards"] = shard_count;
  stats::Json units = stats::Json::array();
  for (const SweepUnit& unit : plan.units) {
    stats::Json u = stats::Json::object();
    u["id"] = unit.id;
    u["case"] = unit.case_index;
    u["label"] = plan.cases[unit.case_index].label;
    u["system"] = to_string(plan.cases[unit.case_index].config.system);
    u["seed"] = unit.seed;
    if (shard_count > 1) u["shard"] = ShardSpec::bucket_of(unit.hash, shard_count) + 1;
    units.push_back(std::move(u));
  }
  root["units"] = std::move(units);
  return root;
}

}  // namespace brb::cli
