// Figure 1 of the paper, executable.
//
// Tasks T1 = [A, B, C] and T2 = [D, E] hit a 3-server store with
// single-core servers and placement S1 = {A, E}, S2 = {B, C},
// S3 = {D}. All requests cost one time unit. A task-oblivious schedule
// serves A before E at S1, completing T2 after 2 units; the task-aware
// schedule gives E priority (T2's bottleneck is 1 unit; T1's is 2, so
// A has slack) and T2 completes after 1 unit — without delaying T1.
//
// The runner below reproduces this inside the real simulator: a short
// warm-up request occupies S1 just long enough for both A and E to be
// queued, so the queue discipline (not arrival order) decides.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace brb::core {

/// One served request in the observed schedule.
struct Fig1Entry {
  std::string key;       // "A".."E" (the warm-up request is omitted)
  std::string server;    // "S1".."S3"
  double start_units;    // service start, in request-time units
  double end_units;      // service end
};

struct Fig1Result {
  std::vector<Fig1Entry> schedule;  // in completion order
  double t1_completion_units = 0.0;
  double t2_completion_units = 0.0;
};

/// Runs the example under the given priority policy ("fifo",
/// "equalmax" or "unifincr").
Fig1Result run_fig1(const std::string& policy_name);

/// The full Figure 1 presentation (per-policy schedules plus the
/// summary line); bench_fig1_schedule is a thin wrapper around this.
void print_fig1_report(std::ostream& os);

}  // namespace brb::core
