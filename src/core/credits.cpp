#include "core/credits.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/ewma.hpp"

namespace brb::core {

namespace {
// Sparse demand pairs whose EWMA decays below this rate (req/s) are
// dropped from the controller's books. With the default alpha of 0.5
// a 1 req/s pair is forgotten after ~30 idle reports (~3 s).
constexpr double kDemandRetentionFloor = 1e-9;
}  // namespace

// ---------------------------------------------------------------------------
// CreditGate

CreditGate::CreditGate(sim::Simulator& sim, std::uint32_t num_servers, CreditsConfig config,
                       std::vector<double> initial_credits)
    : sim_(&sim), config_(config) {
  if (num_servers == 0) throw std::invalid_argument("CreditGate: no servers");
  if (initial_credits.size() != num_servers) {
    throw std::invalid_argument("CreditGate: initial credits arity mismatch");
  }
  servers_.resize(num_servers);
  for (std::uint32_t s = 0; s < num_servers; ++s) servers_[s].balance = initial_credits[s];
}

CreditGate::CreditGate(sim::Simulator& sim, CreditsConfig config, double default_credit)
    : sim_(&sim), config_(config), sparse_(true), default_credit_(default_credit) {
  if (default_credit < 0.0) throw std::invalid_argument("CreditGate: negative default credit");
}

CreditGate::PerServer& CreditGate::slot(store::ServerId server) {
  if (!sparse_) {
    if (server >= servers_.size()) throw std::out_of_range("CreditGate: bad server");
    return servers_[server];
  }
  auto [it, inserted] = sparse_servers_.try_emplace(server);
  if (inserted) {
    it->second.balance = default_credit_;
    sync_balance(server, it->second.balance);
  }
  return it->second;
}

void CreditGate::attach_signals(ctrl::SignalTable* signals) {
  signals_ = signals;
  if (signals_ == nullptr) return;
  if (sparse_) {
    for (const auto& [server, ps] : sparse_servers_) sync_balance(server, ps.balance);
    return;
  }
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    sync_balance(static_cast<store::ServerId>(s), servers_[s].balance);
  }
}

bool CreditGate::later(const Held& a, const Held& b) noexcept {
  if (a.priority != b.priority) return a.priority > b.priority;
  return a.seq > b.seq;
}

void CreditGate::heap_push(PerServer& ps, Held held) {
  ps.heap.push_back(std::move(held));
  std::size_t i = ps.heap.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(ps.heap[parent], ps.heap[i])) break;
    std::swap(ps.heap[parent], ps.heap[i]);
    i = parent;
  }
}

CreditGate::Held CreditGate::heap_pop(PerServer& ps) {
  Held out = std::move(ps.heap.front());
  ps.heap.front() = std::move(ps.heap.back());
  ps.heap.pop_back();
  std::size_t i = 0;
  const std::size_t n = ps.heap.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t left = 2 * i + 1;
    const std::size_t right = 2 * i + 2;
    if (left < n && later(ps.heap[smallest], ps.heap[left])) smallest = left;
    if (right < n && later(ps.heap[smallest], ps.heap[right])) smallest = right;
    if (smallest == i) break;
    std::swap(ps.heap[i], ps.heap[smallest]);
    i = smallest;
  }
  return out;
}

void CreditGate::start() {
  running_ = true;
  sim_->schedule_after(config_.measure_interval, [this] { measure_tick(); });
}

void CreditGate::measure_tick() {
  if (!running_) return;
  if (sparse_) {
    if (sparse_report_) {
      sparse_rates_scratch_.clear();
      const double window_sec = config_.measure_interval.as_seconds();
      for (auto& [server, ps] : sparse_servers_) {
        if (ps.offered_in_window == 0) continue;
        sparse_rates_scratch_.emplace_back(
            server, static_cast<double>(ps.offered_in_window) / window_sec);
        ps.offered_in_window = 0;
      }
      // Idle ticks send nothing: a million dormant clients must not
      // produce a million empty control messages per interval.
      if (!sparse_rates_scratch_.empty()) sparse_report_(sparse_rates_scratch_);
    }
  } else if (report_) {
    rates_scratch_.assign(servers_.size(), 0.0);
    const double window_sec = config_.measure_interval.as_seconds();
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      rates_scratch_[s] = static_cast<double>(servers_[s].offered_in_window) / window_sec;
      servers_[s].offered_in_window = 0;
    }
    report_(rates_scratch_);
  }
  sim_->schedule_after(config_.measure_interval, [this] { measure_tick(); });
}

void CreditGate::offer(client::OutboundRequest out) {
  const store::ServerId server = out.server;
  PerServer& ps = slot(server);
  ++ps.offered_in_window;
  if (ps.heap.empty() && ps.balance >= 1.0) {
    ps.balance -= 1.0;
    sync_balance(server, ps.balance);
    transmit(out);
    return;
  }
  heap_push(ps, Held{out.request.priority, next_seq_++, sim_->now(), std::move(out)});
  ++held_;
  ++hold_events_;
}

void CreditGate::on_grant(const std::vector<double>& credits) {
  if (sparse_) throw std::logic_error("CreditGate::on_grant: dense grant on a sparse gate");
  if (credits.size() != servers_.size()) {
    throw std::invalid_argument("CreditGate::on_grant: arity mismatch");
  }
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    // Credits are shares of the *coming* interval; a bounded carryover
    // of unused balance smooths bursts across grant boundaries.
    const double carryover =
        std::min(servers_[s].balance, config_.carryover_cap_factor * credits[s]);
    servers_[s].balance = credits[s] + std::max(0.0, carryover);
    drain(static_cast<store::ServerId>(s), servers_[s]);
  }
}

void CreditGate::on_sparse_grant(const SparseCredits& credits) {
  if (!sparse_) throw std::logic_error("CreditGate::on_sparse_grant: sparse grant on a dense gate");
  for (const auto& [server, amount] : credits) {
    PerServer& ps = slot(server);
    const double carryover = std::min(ps.balance, config_.carryover_cap_factor * amount);
    ps.balance = amount + std::max(0.0, carryover);
    drain(server, ps);
  }
}

void CreditGate::drain(store::ServerId server, PerServer& ps) {
  while (!ps.heap.empty() && ps.balance >= 1.0) {
    Held held = heap_pop(ps);
    ps.balance -= 1.0;
    --held_;
    total_hold_time_ += sim_->now() - held.held_at;
    transmit(held.out);
  }
  sync_balance(server, ps.balance);
}

double CreditGate::balance(store::ServerId server) const {
  if (sparse_) {
    const auto it = sparse_servers_.find(server);
    return it == sparse_servers_.end() ? default_credit_ : it->second.balance;
  }
  if (server >= servers_.size()) throw std::out_of_range("CreditGate::balance: bad server");
  return servers_[server].balance;
}

// ---------------------------------------------------------------------------
// CreditsController

CreditsController::CreditsController(sim::Simulator& sim, std::uint32_t num_clients,
                                     std::vector<double> capacities, CreditsConfig config,
                                     bool sparse_demand)
    : sim_(&sim),
      num_clients_(num_clients),
      capacities_(std::move(capacities)),
      config_(config),
      sparse_(sparse_demand) {
  if (num_clients_ == 0) throw std::invalid_argument("CreditsController: no clients");
  if (capacities_.empty()) throw std::invalid_argument("CreditsController: no servers");
  for (const double c : capacities_) {
    if (c <= 0.0) throw std::invalid_argument("CreditsController: non-positive capacity");
  }
  if (sparse_) {
    // O(active pairs): the dense clients x servers matrix would be
    // 80 GB at 1M clients x 10k servers.
    sparse_demand_.resize(num_clients_);
    server_active_clients_.resize(capacities_.size());
  } else {
    demand_.assign(static_cast<std::size_t>(num_clients_) * capacities_.size(), 0.0);
  }
  capacity_factor_.assign(capacities_.size(), 1.0);
  congested_this_interval_.assign(capacities_.size(), false);
  server_total_demand_.resize(capacities_.size());
  server_floor_each_.resize(capacities_.size());
  server_prop_budget_.resize(capacities_.size());
  grant_scratch_.resize(capacities_.size());
}

void CreditsController::start() {
  running_ = true;
  sim_->schedule_after(config_.adapt_interval, [this] { adapt_tick(); });
}

void CreditsController::on_demand_report(store::ClientId client,
                                         const std::vector<double>& per_server_rate) {
  if (sparse_) throw std::logic_error("CreditsController: dense report in sparse mode");
  if (client >= num_clients_) throw std::out_of_range("CreditsController: bad client id");
  if (per_server_rate.size() != capacities_.size()) {
    throw std::invalid_argument("CreditsController: report arity mismatch");
  }
  ++stats_.demand_reports;
  const double a = config_.demand_ewma_alpha;
  for (std::size_t s = 0; s < capacities_.size(); ++s) {
    double& d = demand_at(client, s);
    d = util::ewma_update(d, a, per_server_rate[s]);
  }
}

void CreditsController::on_sparse_demand_report(store::ClientId client,
                                                const SparseCredits& rates) {
  if (!sparse_) throw std::logic_error("CreditsController: sparse report in dense mode");
  if (client >= num_clients_) throw std::out_of_range("CreditsController: bad client id");
  ++stats_.demand_reports;
  const double a = config_.demand_ewma_alpha;
  std::map<store::ServerId, double>& demand = sparse_demand_[client];
  // Merge-walk the (ascending) report against the (ascending) map:
  // reported servers blend toward the new rate, unreported entries
  // decay toward zero exactly as a dense zero sample would, and
  // entries below the retention floor are forgotten.
  auto it = demand.begin();
  std::size_t r = 0;
  while (it != demand.end() || r < rates.size()) {
    if (it == demand.end() || (r < rates.size() && rates[r].first < it->first)) {
      if (rates[r].first >= capacities_.size()) {
        throw std::out_of_range("CreditsController: bad server id in sparse report");
      }
      const double d = util::ewma_update(0.0, a, rates[r].second);
      if (d >= kDemandRetentionFloor) it = demand.emplace_hint(it, rates[r].first, d);
      ++r;
      if (it != demand.end() && it->first == rates[r - 1].first) ++it;
    } else if (r < rates.size() && rates[r].first == it->first) {
      it->second = util::ewma_update(it->second, a, rates[r].second);
      ++r;
      if (it->second < kDemandRetentionFloor) {
        it = demand.erase(it);
      } else {
        ++it;
      }
    } else {
      it->second = util::ewma_update(it->second, a, 0.0);
      if (it->second < kDemandRetentionFloor) {
        it = demand.erase(it);
      } else {
        ++it;
      }
    }
  }
}

std::size_t CreditsController::live_demand_pairs() const noexcept {
  std::size_t n = 0;
  for (const auto& m : sparse_demand_) n += m.size();
  return n;
}

void CreditsController::on_congestion_signal(store::ServerId server, std::uint32_t) {
  if (server >= capacities_.size()) throw std::out_of_range("CreditsController: bad server id");
  ++stats_.congestion_signals;
  congested_this_interval_[server] = true;
}

std::vector<double> CreditsController::allocate_proportional(const std::vector<double>& demands,
                                                             double capacity_per_interval) {
  std::vector<double> grants(demands.size(), 0.0);
  double total = 0.0;
  for (const double d : demands) total += std::max(0.0, d);
  if (total <= 0.0) {
    // No demand on record: hand out equal shares so newly active
    // clients are not starved until their first report lands.
    const double share = capacity_per_interval / static_cast<double>(demands.size());
    for (double& g : grants) g = share;
    return grants;
  }
  for (std::size_t c = 0; c < demands.size(); ++c) {
    grants[c] = std::max(0.0, demands[c]) / total * capacity_per_interval;
  }
  return grants;
}

void CreditsController::adapt_tick() {
  if (!running_) return;
  ++stats_.adaptations;

  // Update congestion factors: multiplicative decrease on signal,
  // additive recovery otherwise.
  for (std::size_t s = 0; s < capacities_.size(); ++s) {
    if (congested_this_interval_[s]) {
      capacity_factor_[s] =
          std::max(config_.min_capacity_factor, capacity_factor_[s] * config_.congestion_backoff);
      congested_this_interval_[s] = false;
    } else {
      capacity_factor_[s] = std::min(1.0, capacity_factor_[s] + config_.recovery_step);
    }
  }

  const double interval_sec = config_.adapt_interval.as_seconds();

  if (sparse_) {
    // Pass 1: per-server demand totals and active-client counts, in
    // (client asc, server asc) order — deterministic regardless of
    // report arrival order.
    std::fill(server_total_demand_.begin(), server_total_demand_.end(), 0.0);
    std::fill(server_active_clients_.begin(), server_active_clients_.end(), 0u);
    for (const auto& demand : sparse_demand_) {
      for (const auto& [s, d] : demand) {
        server_total_demand_[s] += std::max(0.0, d);
        ++server_active_clients_[s];
      }
    }
    // The equal floor is split among the clients with demand on record
    // for the server (a fleet-wide split rounds to zero at 1M clients);
    // everyone else bootstraps from the gate's first-touch default.
    for (std::size_t s = 0; s < capacities_.size(); ++s) {
      const double budget = capacities_[s] * capacity_factor_[s] * interval_sec;
      const double floor_budget = budget * config_.min_share_fraction;
      server_floor_each_[s] = server_active_clients_[s] > 0
                                  ? floor_budget / static_cast<double>(server_active_clients_[s])
                                  : 0.0;
      server_prop_budget_[s] = budget - floor_budget;
    }
    // Pass 2: one sparse grant per client with live demand. Idle
    // clients get no message at all.
    if (send_sparse_grant_) {
      for (std::uint32_t c = 0; c < num_clients_; ++c) {
        const auto& demand = sparse_demand_[c];
        if (demand.empty()) continue;
        sparse_grant_scratch_.clear();
        for (const auto& [s, d] : demand) {
          const double total = server_total_demand_[s];
          const double share =
              total <= 0.0 ? 0.0 : std::max(0.0, d) / total * server_prop_budget_[s];
          sparse_grant_scratch_.emplace_back(s, server_floor_each_[s] + share);
        }
        send_sparse_grant_(c, sparse_grant_scratch_);
        ++stats_.grants_sent;
      }
    }
    sim_->schedule_after(config_.adapt_interval, [this] { adapt_tick(); });
    return;
  }

  // Per server: a small equal floor (so bursty newcomers are not
  // stalled for a whole interval), the rest proportional to demand.
  // Arithmetic matches allocate_proportional exactly (summation order
  // included) so grants are bit-identical to the per-server-vector
  // formulation; the flat layout just avoids materializing a clients x
  // servers grant matrix every interval.
  const double num_clients = static_cast<double>(num_clients_);
  for (std::size_t s = 0; s < capacities_.size(); ++s) {
    double total = 0.0;
    for (std::uint32_t c = 0; c < num_clients_; ++c) {
      total += std::max(0.0, demand_at(c, s));
    }
    const double budget = capacities_[s] * capacity_factor_[s] * interval_sec;
    const double floor_budget = budget * config_.min_share_fraction;
    server_total_demand_[s] = total;
    server_floor_each_[s] = floor_budget / num_clients;
    server_prop_budget_[s] = budget - floor_budget;
  }

  if (send_grant_) {
    for (std::uint32_t c = 0; c < num_clients_; ++c) {
      for (std::size_t s = 0; s < capacities_.size(); ++s) {
        const double total = server_total_demand_[s];
        const double share = total <= 0.0
                                 ? server_prop_budget_[s] / num_clients
                                 : std::max(0.0, demand_at(c, s)) / total * server_prop_budget_[s];
        grant_scratch_[s] = server_floor_each_[s] + share;
      }
      send_grant_(c, grant_scratch_);
      ++stats_.grants_sent;
    }
  }
  sim_->schedule_after(config_.adapt_interval, [this] { adapt_tick(); });
}

double CreditsController::capacity_factor(store::ServerId server) const {
  if (server >= capacity_factor_.size()) {
    throw std::out_of_range("CreditsController: bad server id");
  }
  return capacity_factor_[server];
}

// ---------------------------------------------------------------------------
// CongestionMonitor

CongestionMonitor::CongestionMonitor(sim::Simulator& sim,
                                     std::vector<server::BackendServer*> servers,
                                     CreditsConfig config, SignalFn signal)
    : sim_(&sim), servers_(std::move(servers)), config_(config), signal_(std::move(signal)) {
  if (servers_.empty()) throw std::invalid_argument("CongestionMonitor: no servers");
  if (!signal_) throw std::invalid_argument("CongestionMonitor: null signal fn");
  thresholds_.reserve(servers_.size());
  for (const server::BackendServer* server : servers_) {
    thresholds_.push_back(static_cast<std::uint32_t>(
        config_.congestion_queue_factor * static_cast<double>(server->config().cores)));
  }
  over_.assign(servers_.size(), false);
}

void CongestionMonitor::start() {
  running_ = true;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    servers_[i]->set_queue_watch(thresholds_[i], [this, i](bool over) { update(i, over); });
  }
  sim_->schedule_after(config_.monitor_interval, [this] { tick(); });
}

void CongestionMonitor::update(std::size_t index, bool over) {
  if (over == over_[index]) return;
  over_[index] = over;
  if (over) {
    ++num_over_;
  } else {
    --num_over_;
  }
}

void CongestionMonitor::tick() {
  if (!running_) return;
  // The common (uncongested) tick is a single counter check; when
  // servers are congested, only they are visited, in ascending index
  // order — the same signal order the old full scan produced.
  if (num_over_ > 0) {
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      if (!over_[i]) continue;
      ++signals_;
      signal_(servers_[i]->config().id, servers_[i]->queue_length());
    }
  }
  sim_->schedule_after(config_.monitor_interval, [this] { tick(); });
}

}  // namespace brb::core
