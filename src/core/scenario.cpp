#include "core/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "client/app_client.hpp"
#include "core/global_queue.hpp"
#include "ctrl/admission.hpp"
#include "ctrl/policy_runtime.hpp"
#include "ctrl/sparse_signal_table.hpp"
#include "net/network.hpp"
#include "policy/priority_policy.hpp"
#include "server/backend_server.hpp"
#include "server/service_model.hpp"
#include "sim/simulator.hpp"
#include "store/partitioner.hpp"
#include "util/logger.hpp"
#include "util/rng.hpp"
#include "workload/task_gen.hpp"
#include "workload/trace.hpp"

namespace brb::core {

namespace {

/// Per-system defaults: replica policy, priority policy, queue
/// discipline, admission policy. Every field is a control-plane
/// registry name, overridable from the command line.
struct SystemProfile {
  std::string selector;
  std::string priority_policy;
  std::string server_discipline;
  bool select_per_subtask = true;
  std::string admission = "direct";
};

SystemProfile profile_for(SystemKind kind) {
  switch (kind) {
    case SystemKind::kC3:
      return {"c3", "fifo", "fifo", /*select_per_subtask=*/false, "cubic-rate"};
    case SystemKind::kEqualMaxCredits:
      return {"least-pending-cost", "equalmax", "priority", true, "credits"};
    case SystemKind::kEqualMaxDirect:
      // BRB selects replicas load-aware per sub-task ("intelligent
      // replica selection", §2). Least-pending-cost tracks the
      // forecast work a client has bound to each server — the
      // strongest decentralized signal available to it (measured in
      // the policy-matrix scenario; beats C3-style ranking for
      // sub-task granularity).
      return {"least-pending-cost", "equalmax", "priority", true};
    case SystemKind::kUnifIncrCredits:
      return {"least-pending-cost", "unifincr", "priority", true, "credits"};
    case SystemKind::kUnifIncrDirect:
      return {"least-pending-cost", "unifincr", "priority", true};
    case SystemKind::kEqualMaxModel:
      return {"first", "equalmax", "priority", true};
    case SystemKind::kUnifIncrModel:
      return {"first", "unifincr", "priority", true};
    case SystemKind::kFifoDirect:
      return {"least-outstanding", "fifo", "fifo", false};
    case SystemKind::kRandomFifo:
      return {"random", "fifo", "fifo", false};
    case SystemKind::kFifoModel:
      return {"first", "fifo", "fifo", true};
    case SystemKind::kRequestSjfDirect:
      return {"least-pending-cost", "request-sjf", "priority", false};
    case SystemKind::kCumSlackCredits:
      return {"least-pending-cost", "cumslack", "priority", true, "credits"};
    case SystemKind::kCumSlackModel:
      return {"first", "cumslack", "priority", true};
  }
  throw std::invalid_argument("profile_for: unknown system kind");
}

}  // namespace

RunResult run_scenario(const ScenarioConfig& config) {
  // Wall-clock instrumentation feeds only RunResult::wall_seconds,
  // which artifacts quarantine in the identity-excluded "timing"
  // subtree; simulated behavior never reads it.
  const auto wall_start = std::chrono::steady_clock::now();  // brblint:allow(BRB-D02): wall timing only, excluded from artifact identity

  if (config.num_clients == 0) throw std::invalid_argument("run_scenario: no clients");
  if (config.num_tasks == 0 && config.tasks_override == nullptr && config.trace_path.empty()) {
    throw std::invalid_argument("run_scenario: no tasks");
  }
  if (config.utilization <= 0.0 || config.utilization >= 1.5) {
    throw std::invalid_argument("run_scenario: utilization out of range (0, 1.5)");
  }
  if (config.warmup_fraction < 0.0 || config.warmup_fraction >= 1.0) {
    throw std::invalid_argument("run_scenario: warmup fraction out of [0,1)");
  }
  if (config.write_fraction < 0.0 || config.write_fraction > 1.0) {
    throw std::invalid_argument("run_scenario: write fraction outside [0, 1]");
  }
  if (config.paced_arrivals && !config.arrival_spec.empty()) {
    throw std::invalid_argument(
        "run_scenario: paced arrivals conflict with an arrival spec; pick one");
  }
  // Trace replay fixes arrival times, request mix and issuing clients,
  // so the generator-side knobs below contradict it.
  const bool replaying = config.tasks_override != nullptr || !config.trace_path.empty();
  if (replaying && !config.arrival_spec.empty()) {
    throw std::invalid_argument(
        "run_scenario: trace replay conflicts with an arrival spec (times come from the trace)");
  }
  if (replaying && config.write_fraction > 0.0) {
    throw std::invalid_argument("run_scenario: trace replay conflicts with write traffic");
  }
  if (replaying && !config.tenant_spec.empty()) {
    throw std::invalid_argument("run_scenario: trace replay conflicts with a tenant mix");
  }

  const SystemProfile profile = profile_for(config.system);
  const std::uint32_t num_servers = config.cluster.num_servers;
  const std::uint32_t num_clients = config.num_clients;

  // --- signal-store resolution ---
  // "auto" flips to the sparse windowed store once the clients x
  // servers cross-product would make dense per-pair columns a memory
  // problem. The threshold (2^24 pairs = a few hundred MB of dense
  // columns fleet-wide) keeps every nightly scenario short of
  // mega-fleet on the dense path, where artifacts are byte-frozen.
  bool sparse_store = false;
  bool sparse_credits_mode = false;
  std::uint32_t sparse_cap = 128;
  {
    constexpr std::uint64_t kAutoSparsePairs = 1ull << 24;
    const std::uint64_t pairs = static_cast<std::uint64_t>(num_clients) * num_servers;
    const std::string& spec = config.signal_store;
    if (spec.empty() || spec == "auto") {
      sparse_store = pairs > kAutoSparsePairs;
    } else if (spec == "dense") {
      sparse_store = false;
    } else if (spec == "sparse" || spec.rfind("sparse:", 0) == 0) {
      sparse_store = true;
      if (spec.size() > 7) {
        const unsigned long cap = std::stoul(spec.substr(7));
        if (cap == 0) throw std::invalid_argument("run_scenario: sparse store cap must be > 0");
        sparse_cap = static_cast<std::uint32_t>(cap);
      }
    } else {
      throw std::invalid_argument("run_scenario: signal store must be auto|dense|sparse[:CAP]");
    }
    // Sparse credits bookkeeping (first-touch balances, grants only to
    // live-demand pairs, floor shared among active clients) carries
    // slightly different floor-sharing semantics than the dense
    // controller, so it engages only past the auto threshold — where
    // the dense per-fleet bootstrap vectors are the thing being
    // avoided. Below it, an explicit sparse store keeps the exact
    // dense credits path: the sparse SignalTable alone is
    // decision-identical whenever the cap covers the fleet.
    sparse_credits_mode = sparse_store && pairs > kAutoSparsePairs;
  }

  // --- latency statistics resolution ---
  const bool sketch_stats = config.stats_spec == "sketch";
  if (!config.stats_spec.empty() && config.stats_spec != "exact" && !sketch_stats) {
    throw std::invalid_argument("run_scenario: stats must be exact|sketch");
  }

  // Trace replay: tasks come from a file or an in-memory list.
  std::vector<workload::TaskSpec> trace_storage;
  const std::vector<workload::TaskSpec>* replay = config.tasks_override;
  if (replay == nullptr && !config.trace_path.empty()) {
    trace_storage = workload::TraceReader::read_file(config.trace_path);
    std::sort(trace_storage.begin(), trace_storage.end(),
              [](const workload::TaskSpec& a, const workload::TaskSpec& b) {
                return a.arrival < b.arrival;
              });
    replay = &trace_storage;
  }
  if (replay != nullptr && replay->empty()) {
    throw std::invalid_argument("run_scenario: empty trace");
  }
  const std::uint64_t total_tasks = replay ? replay->size() : config.num_tasks;

  // --- RNG streams: one independent stream per concern. ---
  util::Rng master(config.seed);
  util::Rng rng_network = master.split();
  util::Rng rng_dataset = master.split();
  util::Rng rng_workload = master.split();
  std::vector<util::Rng> rng_servers;
  rng_servers.reserve(num_servers);
  for (std::uint32_t s = 0; s < num_servers; ++s) rng_servers.push_back(master.split());
  std::vector<util::Rng> rng_clients;
  rng_clients.reserve(num_clients);
  for (std::uint32_t c = 0; c < num_clients; ++c) rng_clients.push_back(master.split());

  // --- substrate ---
  sim::Simulator sim;
  net::Network::Config net_config;
  net_config.one_way_latency = config.net_latency;
  net_config.jitter_max = config.net_jitter;
  // Topology size is known upfront (servers, clients, controller,
  // global queue), so the network's dense pair tables never reallocate.
  net_config.num_nodes = num_servers + num_clients + 2;
  net::Network network(sim, net_config, rng_network);

  store::RingPartitioner partitioner(num_servers, config.replication);

  const auto size_dist = workload::make_size_distribution(config.size_spec);
  const auto key_dist = workload::make_key_distribution(config.key_spec);
  const auto fanout_dist = workload::make_fanout_distribution(config.fanout_spec);
  workload::Dataset dataset(key_dist->num_keys(), *size_dist, rng_dataset);

  // Calibrate the service model against the workload's mean value size
  // (trace replay uses the trace's own empirical mean).
  double mean_size = size_dist->mean();
  if (replay != nullptr) {
    double acc = 0.0;
    std::uint64_t count = 0;
    for (const workload::TaskSpec& task : *replay) {
      for (const workload::RequestSpec& request : task.requests) {
        acc += request.size_hint;
        ++count;
      }
    }
    if (count == 0) throw std::invalid_argument("run_scenario: trace has no requests");
    mean_size = std::max(1.0, acc / static_cast<double>(count));
  }

  // --- tenants (parsed before capacity planning: their fan-out and
  // write overrides change the offered load per task). ---
  std::vector<workload::TenantMix> tenant_mixes;
  if (!config.tenant_spec.empty()) {
    tenant_mixes = workload::parse_tenant_mixes(config.tenant_spec);
  }

  // --- arrival rate from capacity planning (never hard-coded). ---
  // A task's expected server work is its mean fan-out times the write
  // amplification: each write request executes on every replica, so a
  // write-bearing workload at the same task rate offers
  // (1 + wf * (R - 1)) times the requests. Folding both into the rate
  // keeps `utilization` meaning actual offered load / capacity for
  // every scenario (the read-only single-tenant path reduces to the
  // paper's original arithmetic).
  workload::CapacityPlanner planner(config.cluster);
  const double write_copies = static_cast<double>(config.replication - 1);
  double requests_per_task;
  if (!tenant_mixes.empty()) {
    // Per-tenant expectation, then share-weighted: fan-out and write
    // fraction are correlated across tenants (the heavy tenant is
    // often also the writing one), so the amplification must be
    // applied inside each tenant's term, not to the pooled means.
    double total_share = 0.0;
    for (const workload::TenantMix& mix : tenant_mixes) total_share += mix.share;
    requests_per_task = 0.0;
    for (const workload::TenantMix& mix : tenant_mixes) {
      const double fanout = mix.fanout ? mix.fanout->mean() : fanout_dist->mean();
      const double write_fraction =
          mix.write_fraction >= 0.0 ? mix.write_fraction : config.write_fraction;
      requests_per_task +=
          mix.share / total_share * fanout * (1.0 + write_fraction * write_copies);
    }
  } else if (config.write_fraction > 0.0) {
    requests_per_task = fanout_dist->mean() * (1.0 + config.write_fraction * write_copies);
  } else {
    requests_per_task = fanout_dist->mean();
  }
  const double task_rate =
      replay ? static_cast<double>(replay->size()) /
                   std::max(1e-3, replay->back().arrival.as_seconds())
             : planner.task_rate_for_utilization(config.utilization, requests_per_task);

  // The clients' forecast model runs at the fleet-mean per-core rate;
  // in a heterogeneous fleet each server additionally gets its own
  // model at its class rate. The homogeneous branch keeps the original
  // single-rate arithmetic so legacy runs stay bit-identical.
  const double forecast_rate =
      config.cluster.heterogeneous()
          ? planner.system_capacity_rps() / static_cast<double>(config.cluster.total_cores())
          : config.cluster.service_rate_per_core;
  const server::SizeLinearServiceModel service_model = server::SizeLinearServiceModel::calibrate(
      forecast_rate, mean_size, config.service_base, config.service_noise_sigma);
  std::vector<server::SizeLinearServiceModel> per_server_models;
  if (config.cluster.heterogeneous()) {
    per_server_models.reserve(num_servers);
    for (std::uint32_t s = 0; s < num_servers; ++s) {
      per_server_models.push_back(server::SizeLinearServiceModel::calibrate(
          config.cluster.rate_of(s), mean_size, config.service_base,
          config.service_noise_sigma));
    }
  }
  const auto server_model = [&](std::uint32_t s) -> const server::ServiceTimeModel& {
    return per_server_models.empty() ? service_model : per_server_models[s];
  };

  // --- node ids: servers, then clients, then controller, then queue. ---
  const net::NodeId controller_node = num_servers + num_clients;
  const net::NodeId global_queue_node = controller_node + 1;

  // --- servers ---
  std::vector<std::unique_ptr<server::BackendServer>> servers;
  servers.reserve(num_servers);
  for (std::uint32_t s = 0; s < num_servers; ++s) {
    server::BackendServer::Config server_config;
    server_config.id = s;
    server_config.cores = config.cluster.cores_of(s);
    servers.push_back(std::make_unique<server::BackendServer>(sim, server_config, server_model(s),
                                                              rng_servers[s]));
  }
  // Populate every replica with the dataset (value sizes drive work).
  if (replay != nullptr) {
    for (const workload::TaskSpec& task : *replay) {
      for (const workload::RequestSpec& request : task.requests) {
        for (const store::ServerId s : partitioner.replicas_for_key(request.key)) {
          servers[s]->storage().put_meta(request.key, std::max(1u, request.size_hint));
        }
      }
    }
  } else {
    for (std::uint64_t key = 0; key < dataset.num_keys(); ++key) {
      for (const store::ServerId s : partitioner.replicas_for_key(key)) {
        servers[s]->storage().put_meta(key, dataset.size_of(key));
      }
    }
  }

  // --- work sources ---
  std::unique_ptr<GlobalQueueModel> global_queue;
  if (uses_global_queue(config.system)) {
    global_queue = std::make_unique<GlobalQueueModel>(partitioner, [&] {
      return server::make_discipline(profile.server_discipline);
    });
    std::vector<server::BackendServer*> raw;
    raw.reserve(servers.size());
    for (const auto& s : servers) raw.push_back(s.get());
    global_queue->attach_servers(std::move(raw));
  } else {
    for (const auto& s : servers) {
      s->use_private_queue(server::make_discipline(profile.server_discipline));
    }
  }

  // --- result & hooks ---
  RunResult result;
  result.system = config.system;
  result.seed = config.seed;
  result.task_latency = stats::LatencyRecorder(config.keep_raw_latencies);
  result.request_latency = stats::LatencyRecorder(config.keep_raw_latencies);
  // Only the task sketch reaches artifacts; the request recorder keeps
  // its histogram-only footprint even in sketch runs.
  if (sketch_stats) result.task_latency.enable_sketch();
  const std::uint64_t warmup_tasks =
      static_cast<std::uint64_t>(config.warmup_fraction * static_cast<double>(total_tasks));

  // --- control plane: policy runtime + admission registry ---
  const std::string selector_name =
      config.selector_override.empty() ? profile.selector : config.selector_override;
  const auto priority_policy = policy::make_priority_policy(profile.priority_policy);
  const std::string admission_name = ctrl::canonical_admission_name(
      config.admission_override.empty() ? profile.admission : config.admission_override);
  // The credits controller/monitor machinery follows the *effective*
  // admission policy: `--admission=direct` on a credits system runs
  // its priorities ungated, `--admission=credits` on a direct system
  // adds the full credit loop.
  const bool credits_admission = admission_name == "credits";

  // Tenant-indexed policy binding: client blocks are the same
  // share-proportional partition the task generator uses.
  std::vector<std::string> tenant_names;
  std::vector<std::uint32_t> tenant_blocks;
  if (!tenant_mixes.empty()) {
    tenant_names.reserve(tenant_mixes.size());
    for (const workload::TenantMix& mix : tenant_mixes) tenant_names.push_back(mix.name);
    tenant_blocks = workload::tenant_client_blocks(tenant_mixes, num_clients);
  }
  const auto tenant_of_client = [&](store::ClientId c) -> store::TenantId {
    if (tenant_blocks.empty()) return store::TenantId{0};
    std::uint32_t t = 0;
    while (t + 1 < tenant_blocks.size() - 1 && c >= tenant_blocks[t + 1]) ++t;
    return store::TenantId{t};
  };

  ctrl::PolicyRuntime::Config runtime_config;
  runtime_config.default_policy = selector_name;
  runtime_config.policy_spec = config.policy_spec;
  runtime_config.dispatch_spec = config.dispatch_spec;
  runtime_config.switch_spec = config.policy_switch_spec;
  runtime_config.signals.ewma_alpha = config.c3.ewma_alpha;
  runtime_config.signals.sparse = sparse_store;
  runtime_config.signals.sparse_cap = sparse_cap;
  runtime_config.c3.queue_exponent = config.c3.queue_exponent;
  runtime_config.c3.num_clients = num_clients;
  runtime_config.c3.prior_service_time = config.c3.prior_service_time;
  runtime_config.credit_aware = credits_admission;
  runtime_config.tenants = tenant_names;
  ctrl::PolicyRuntime runtime(sim, std::move(runtime_config));
  // Duplicate-issuing dispatch modes cancel losers at the server's
  // dequeue point; the shared global queue has no per-server dequeue to
  // intercept, so the combination is rejected rather than silently
  // serving every copy.
  const bool tail_cutting = runtime.may_dispatch_duplicates();
  if (tail_cutting && uses_global_queue(config.system)) {
    throw std::invalid_argument(
        "run_scenario: dispatch modes that issue duplicates (hedge/tied/kofn) are incompatible "
        "with global-queue model systems");
  }
  // kofn multiplies *every* logical request n-fold — unlike hedge
  // (conditional on the deadline) or tied (losers cancel at dequeue,
  // cheaply). At high utilization that amplification alone can push
  // offered load past capacity and the run collapses. Warn once per
  // process; the run still proceeds (hedging-shootout deliberately
  // probes this regime).
  const bool uses_kofn = config.dispatch_spec.find("kofn") != std::string::npos ||
                         config.policy_switch_spec.find("kofn") != std::string::npos;
  if (uses_kofn && config.utilization >= 0.6) {
    static std::once_flag kofn_warned;
    std::call_once(kofn_warned, [&config] {
      BRB_WARN("scenario") << "kofn dispatch at utilization " << config.utilization
                           << " >= 0.6: n-fold load amplification may exceed fleet capacity "
                              "(see README, tail-cutting regimes)";
    });
  }

  // Credits machinery (wired iff the credits admission policy is in
  // effect).
  std::unique_ptr<CreditsController> controller;
  std::unique_ptr<CongestionMonitor> monitor;
  std::vector<CreditGate*> credit_gates(num_clients, nullptr);

  // Mean per-server capacity seeds the C3 rate limiter; the credits
  // machinery below uses true per-server capacities (they differ in a
  // heterogeneous fleet). The homogeneous expression is unchanged.
  const double per_server_capacity =
      config.cluster.heterogeneous()
          ? planner.system_capacity_rps() / static_cast<double>(num_servers)
          : static_cast<double>(config.cluster.cores_per_server) *
                config.cluster.service_rate_per_core;

  std::vector<std::unique_ptr<client::AppClient>> clients;
  clients.reserve(num_clients);
  for (std::uint32_t c = 0; c < num_clients; ++c) {
    client::AppClient::Config client_config;
    client_config.id = c;
    client_config.cost_noise_sigma = config.cost_noise_sigma;
    client_config.select_per_subtask = profile.select_per_subtask;

    // Sequence the split explicitly: argument evaluation order is
    // unspecified and both expressions touch rng_clients[c]. One split
    // per client for the policy stream, exactly as before the runtime.
    util::Rng selector_rng = rng_clients[c].split();
    std::unique_ptr<ctrl::DispatchEndpoint> endpoint =
        runtime.bind_client(c, tenant_of_client(c), selector_rng);

    // Admission policy by name; stateful gates mirror balances / rate
    // caps into this client's SignalTable.
    ctrl::AdmissionContext admission;
    admission.sim = &sim;
    admission.num_servers = num_servers;
    admission.signals = &runtime.signals_of(c);
    if (credits_admission) {
      admission.credits = config.credits;
      if (sparse_credits_mode) {
        // Sparse credits: no per-fleet bootstrap vector; slots open on
        // first touch with an equal share of the *mean* server
        // capacity (heterogeneous fleets get the exact per-server
        // share with their first grant, one interval later).
        admission.sparse_credits = true;
        admission.sparse_default_credit = per_server_capacity *
                                          config.credits.adapt_interval.as_seconds() /
                                          static_cast<double>(num_clients);
      } else {
        // Bootstrap: equal share of each server's capacity per interval.
        admission.initial_credits.resize(num_servers);
        for (std::uint32_t s = 0; s < num_servers; ++s) {
          admission.initial_credits[s] = config.cluster.capacity_of(s) *
                                         config.credits.adapt_interval.as_seconds() /
                                         static_cast<double>(num_clients);
        }
      }
    } else if (admission_name == "cubic-rate") {
      admission.rate = config.rate;
      if (admission.rate.initial_rate <= 0.0) {
        admission.rate.initial_rate = per_server_capacity / static_cast<double>(num_clients);
      }
    }
    std::unique_ptr<client::DispatchGate> gate =
        ctrl::make_admission_policy(admission_name, admission);
    if (credits_admission) credit_gates[c] = static_cast<CreditGate*>(gate.get());

    clients.push_back(std::make_unique<client::AppClient>(
        sim, client_config, partitioner, service_model, std::move(endpoint), *priority_policy,
        std::move(gate), rng_clients[c]));
  }

  // Tail-cutting executor: loser copies are finalized at the server's
  // dequeue point by asking the issuing client whether the copy is
  // still live. Installed only when some mode can issue duplicates, so
  // single-target runs keep an empty (never-called) filter slot.
  if (tail_cutting) {
    for (std::uint32_t s = 0; s < num_servers; ++s) {
      servers[s]->set_service_filter([&clients](const store::ReadRequest& request) {
        return clients[request.client]->admit_service(request);
      });
    }
  }

  // --- transport wiring ---
  for (std::uint32_t c = 0; c < num_clients; ++c) {
    client::AppClient* client = clients[c].get();
    const net::NodeId client_node = num_servers + c;
    if (uses_global_queue(config.system)) {
      // Writes are pinned to their replica: each copy must execute on
      // its own server, so it may not float freely within the group.
      client->set_network_send([&network, &sim, client_node, global_queue_node,
                                queue = global_queue.get()](const client::OutboundRequest& out) {
        network.send(client_node, global_queue_node, store::request_wire_bytes(out.request),
                     [queue, request = out.request, group = out.group, server = out.server,
                      &sim] {
                       if (request.is_write) {
                         queue->submit_pinned(server::QueuedRead{request, sim.now()}, server);
                       } else {
                         queue->submit(server::QueuedRead{request, sim.now()}, group);
                       }
                     });
      });
    } else {
      client->set_network_send(
          [&network, &sim, client_node, &servers](const client::OutboundRequest& out) {
            server::BackendServer* target = servers[out.server].get();
            network.send(client_node, out.server, store::request_wire_bytes(out.request),
                         [target, request = out.request] { target->receive(request); });
          });
    }
  }
  for (std::uint32_t s = 0; s < num_servers; ++s) {
    servers[s]->set_response_handler(
        [&network, &clients, s, num_servers](const store::ReadResponse& response) {
          const net::NodeId client_node = num_servers + response.client;
          client::AppClient* target = clients[response.client].get();
          network.send(s, client_node, store::kResponseHeaderBytes + response.value_size,
                       [target, response] { target->on_response(response); });
        });
  }

  // --- credits wiring ---
  if (credits_admission) {
    std::vector<double> capacities(num_servers);
    for (std::uint32_t s = 0; s < num_servers; ++s) {
      capacities[s] = config.cluster.capacity_of(s);
    }
    controller =
        std::make_unique<CreditsController>(sim, num_clients, std::move(capacities),
                                            config.credits, /*sparse_demand=*/sparse_credits_mode);
    for (std::uint32_t c = 0; c < num_clients; ++c) {
      CreditGate* gate = credit_gates[c];
      const net::NodeId client_node = num_servers + c;
      if (sparse_credits_mode) {
        gate->set_sparse_report([&network, client_node, controller_node, c,
                                 ctrl = controller.get()](const SparseCredits& rates) {
          network.send(client_node, controller_node, 64,
                       [ctrl, c, rates] { ctrl->on_sparse_demand_report(c, rates); });
        });
      } else {
        gate->set_report([&network, client_node, controller_node, c,
                          ctrl = controller.get()](const std::vector<double>& rates) {
          network.send(client_node, controller_node, 64,
                       [ctrl, c, rates] { ctrl->on_demand_report(c, rates); });
        });
      }
      gate->start();
    }
    if (sparse_credits_mode) {
      controller->set_sparse_grant_sender([&network, controller_node, num_servers, &credit_gates](
                                              store::ClientId client,
                                              const SparseCredits& credits) {
        const net::NodeId client_node = num_servers + client;
        CreditGate* gate = credit_gates[client];
        network.send(controller_node, client_node, 64,
                     [gate, credits] { gate->on_sparse_grant(credits); });
      });
    } else {
      controller->set_grant_sender([&network, controller_node, num_servers, &credit_gates](
                                       store::ClientId client, const std::vector<double>& credits) {
        const net::NodeId client_node = num_servers + client;
        CreditGate* gate = credit_gates[client];
        network.send(controller_node, client_node, 64,
                     [gate, credits] { gate->on_grant(credits); });
      });
    }
    controller->start();

    std::vector<server::BackendServer*> raw;
    raw.reserve(servers.size());
    for (const auto& s : servers) raw.push_back(s.get());
    monitor = std::make_unique<CongestionMonitor>(
        sim, std::move(raw), config.credits,
        [&network, controller_node, ctrl = controller.get()](store::ServerId server,
                                                             std::uint32_t queue_length) {
          network.send(server, controller_node, 64, [ctrl, server, queue_length] {
            ctrl->on_congestion_signal(server, queue_length);
          });
        });
    monitor->start();
  }

  // --- per-tenant result slots (mixes parsed above, pre-planning) ---
  result.tenants.resize(tenant_mixes.size());
  for (std::size_t t = 0; t < tenant_mixes.size(); ++t) {
    result.tenants[t].name = tenant_mixes[t].name;
  }

  // --- completion accounting ---
  std::uint64_t completed = 0;
  for (const auto& client : clients) {
    client::AppClient::Hooks hooks;
    hooks.on_task_complete = [&result, &completed, &sim, &config, total_tasks, warmup_tasks](
                                 const workload::TaskSpec& task, sim::Duration latency) {
      ++completed;
      ++result.tasks_completed;
      const bool measured = task.id >= warmup_tasks;
      if (measured) {
        result.task_latency.record(latency);
        ++result.tasks_measured;
      }
      if (!result.tenants.empty()) {
        TenantResult& tenant = result.tenants[task.tenant.value()];
        ++tenant.tasks_completed;
        if (measured) {
          tenant.task_latency.record(latency);
          ++tenant.tasks_measured;
        }
      }
      if (config.on_task_complete) config.on_task_complete(task, latency);
      if (completed == total_tasks) sim.stop();
    };
    hooks.on_request_complete = [&result](sim::Duration latency) {
      result.request_latency.record(latency);
      ++result.requests_completed;
    };
    client->set_hooks(hooks);
  }

  // --- workload ---
  workload::TaskGenerator::Config gen_config;
  gen_config.num_clients = num_clients;
  std::unique_ptr<workload::ArrivalProcess> arrivals;
  if (!config.arrival_spec.empty()) {
    arrivals = workload::make_arrival_process(config.arrival_spec, task_rate);
  } else if (config.paced_arrivals) {
    arrivals = std::make_unique<workload::PacedArrivals>(task_rate);
  } else {
    arrivals = std::make_unique<workload::PoissonArrivals>(task_rate);
  }
  workload::TaskGenerator generator(gen_config, dataset, *key_dist, *fanout_dist,
                                    std::move(arrivals), rng_workload);
  generator.set_write_traffic(config.write_fraction, size_dist.get());
  if (!tenant_mixes.empty()) generator.set_tenants(std::move(tenant_mixes));

  // Arrival pump. Trace replay schedules everything upfront (arrival
  // order is arbitrary but times are fixed); generated workloads pump
  // lazily in pregenerated blocks: the generator fills a TaskBlock of
  // up to kArrivalBlock tasks at once (batched sampling, slab-backed
  // requests), and each arrival event submits its task straight from
  // the block and chains the next. Event order is identical to the
  // one-task-at-a-time pump — exactly one arrival is outstanding, and
  // the block is refilled only after its last task is consumed.
  constexpr std::size_t kArrivalBlock = 256;
  workload::TaskBlock arrival_block;
  std::size_t arrival_next = 0;
  std::function<void()> schedule_next = [&] {
    if (arrival_next == arrival_block.size()) {
      const std::uint64_t remaining = total_tasks - generator.tasks_generated();
      if (remaining == 0) return;
      generator.fill_block(arrival_block, static_cast<std::size_t>(std::min<std::uint64_t>(
                                              kArrivalBlock, remaining)));
      arrival_next = 0;
    }
    result.tasks_submitted++;
    sim.schedule_at(arrival_block.view(arrival_next).arrival, [&] {
      const workload::TaskView task = arrival_block.view(arrival_next++);
      clients[task.client]->submit(task);
      schedule_next();
    });
  };
  if (replay != nullptr) {
    for (const workload::TaskSpec& task : *replay) {
      result.tasks_submitted++;
      sim.schedule_at(task.arrival, [&clients, &task, num_clients] {
        clients[task.client % num_clients]->submit(task);
      });
    }
  } else {
    schedule_next();
  }

  // Watchdog: generous bound on total simulated time; a healthy run
  // stops at task completion long before this fires.
  const double expected_span_sec = static_cast<double>(total_tasks) / task_rate;
  const sim::Time deadline = sim::Time::seconds(expected_span_sec * 3.0 + 120.0);
  sim.schedule_at(deadline, [&sim] { sim.stop(); });

  // Arm the policy-switch epochs (no-op for static bindings).
  runtime.start();

  sim.run();

  // --- teardown checks & result assembly ---
  if (result.tasks_completed != total_tasks) {
    throw std::runtime_error(
        "run_scenario: simulation stalled: completed " + std::to_string(result.tasks_completed) +
        " of " + std::to_string(total_tasks) + " tasks (system " + to_string(config.system) +
        ", seed " + std::to_string(config.seed) + ")");
  }

  result.sim_duration = sim.now() - sim::Time::zero();
  result.events_processed = sim.events_processed();
  if (sparse_store) {
    result.sparse_signal_store = true;
    for (std::uint32_t c = 0; c < num_clients; ++c) {
      if (const ctrl::SparseSignalTable* sp = runtime.signals_of(c).sparse_store()) {
        result.signal_entries_live += sp->live_entries();
        result.signal_evictions += sp->evictions();
      }
    }
  }
  result.network_messages = network.stats().messages_sent;
  result.network_bytes = network.stats().bytes_sent;
  result.policy_switches = runtime.switches_applied();

  result.server_utilization.reserve(num_servers);
  double util_acc = 0.0;
  const double span_sec = result.sim_duration.as_seconds();
  for (const auto& s : servers) {
    const double busy = s->stats().busy_time.as_seconds() /
                        (span_sec * static_cast<double>(s->config().cores));
    result.server_utilization.push_back(busy);
    util_acc += busy;
  }
  result.mean_utilization = util_acc / static_cast<double>(num_servers);

  if (controller) {
    result.congestion_signals = controller->stats().congestion_signals;
    result.controller_adaptations = controller->stats().adaptations;
    for (const CreditGate* gate : credit_gates) {
      if (gate == nullptr) continue;
      result.credit_hold_events += gate->hold_events();
      result.credit_hold_time += gate->total_hold_time();
    }
  }
  std::uint64_t held = 0;
  for (const auto& client : clients) {
    held = std::max<std::uint64_t>(held, client->gate().held());
    result.write_requests_sent += client->stats().writes_sent;
    result.write_requests_acked += client->stats().writes_acked;
    result.hedges_issued += client->stats().hedges_issued;
    result.hedges_won += client->stats().hedges_won;
    result.hedges_cancelled += client->stats().hedges_cancelled;
    result.hedges_skipped_fresh += client->stats().hedges_skipped_fresh;
    result.duplicates_sent += client->stats().duplicates_sent;
    result.duplicates_cancelled += client->stats().duplicates_cancelled;
    result.duplicates_served += client->stats().duplicates_served;
  }
  result.gate_held_requests = held;
  result.dispatch_metrics = !config.dispatch_spec.empty() || tail_cutting;
  // Wasted-work headline: of all full read services performed, the
  // fraction that went to copies whose logical request was already
  // complete. Denominator = counted responses + absorbed duplicates.
  const std::uint64_t full_services = result.requests_completed + result.duplicates_served;
  if (full_services > 0) {
    result.duplicate_work_fraction =
        static_cast<double>(result.duplicates_served) / static_cast<double>(full_services);
  }
  if (result.write_requests_acked != result.write_requests_sent) {
    throw std::runtime_error("run_scenario: write replica copies lost: acked " +
                             std::to_string(result.write_requests_acked) + " of " +
                             std::to_string(result.write_requests_sent));
  }

  // Fairness headline for multi-tenant runs: spread of task p99 across
  // tenants (max/min; 1.0 = perfectly even).
  if (result.tenants.size() >= 2) {
    double min_p99 = 0.0;
    double max_p99 = 0.0;
    bool any = false;
    for (const TenantResult& tenant : result.tenants) {
      if (tenant.tasks_measured == 0) continue;
      const double p99 = tenant.task_latency.percentile(99).as_millis();
      if (!any || p99 < min_p99) min_p99 = p99;
      if (!any || p99 > max_p99) max_p99 = p99;
      any = true;
    }
    if (any && min_p99 > 0.0) result.tenant_p99_ratio = max_p99 / min_p99;
  }

  // brblint:allow(BRB-D02): wall timing only, excluded from artifact identity
  result.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return result;
}

LatencySummary summarize_tasks(const RunResult& result) {
  LatencySummary summary;
  summary.p50_ms = result.task_latency.percentile(50).as_millis();
  summary.p95_ms = result.task_latency.percentile(95).as_millis();
  summary.p99_ms = result.task_latency.percentile(99).as_millis();
  summary.mean_ms = result.task_latency.mean().as_millis();
  return summary;
}

void accumulate_summary(AggregateResult& aggregate, const LatencySummary& summary) {
  aggregate.p50_ms.add(summary.p50_ms);
  aggregate.p95_ms.add(summary.p95_ms);
  aggregate.p99_ms.add(summary.p99_ms);
  aggregate.mean_ms.add(summary.mean_ms);
}

AggregateResult aggregate_runs(SystemKind system, std::vector<RunResult> runs) {
  AggregateResult aggregate;
  aggregate.system = system;
  for (RunResult& run : runs) {
    accumulate_summary(aggregate, summarize_tasks(run));
    aggregate.runs.push_back(std::move(run));
  }
  return aggregate;
}

AggregateResult run_seeds(const ScenarioConfig& config, const std::vector<std::uint64_t>& seeds,
                          bool parallel) {
  RunSeedsOptions options;
  options.max_threads = parallel ? 0 : 1;
  return run_seeds(config, seeds, options);
}

AggregateResult run_seeds(const ScenarioConfig& config, const std::vector<std::uint64_t>& seeds,
                          RunSeedsOptions options) {
  if (seeds.empty()) throw std::invalid_argument("run_seeds: no seeds");
  std::vector<RunResult> runs(seeds.size());
  const std::size_t num_workers =
      options.max_threads == 0 ? seeds.size() : std::min(options.max_threads, seeds.size());
  if (num_workers > 1) {
    // Strided seed assignment across workers: simulations share no
    // mutable state and land in their seed-indexed slot, so the result
    // (and any artifact derived from it) is identical for any worker
    // count. First exception (if any) is rethrown after all join.
    std::vector<std::thread> workers;
    std::vector<std::exception_ptr> errors(seeds.size());
    workers.reserve(num_workers);
    for (std::size_t w = 0; w < num_workers; ++w) {
      // brblint:allow(BRB-R01): disjoint seed-indexed slots (runs[i], errors[i]) pre-sized above; workers joined before any read
      workers.emplace_back([&, w] {
        for (std::size_t i = w; i < seeds.size(); i += num_workers) {
          try {
            ScenarioConfig run_config = config;
            run_config.seed = seeds[i];
            runs[i] = run_scenario(run_config);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    for (const std::exception_ptr& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  } else {
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      ScenarioConfig run_config = config;
      run_config.seed = seeds[i];
      runs[i] = run_scenario(run_config);
    }
  }

  return aggregate_runs(config.system, std::move(runs));
}

}  // namespace brb::core
