// The systems under comparison.
//
// Figure 2 of the paper compares five: C3 (state of the art) and the
// {EqualMax, UnifIncr} x {Credits, Model} matrix. The remaining kinds
// are ablations this reproduction adds to separate mechanisms (see
// DESIGN.md section 4).
#pragma once

#include <stdexcept>
#include <string>

namespace brb::core {

enum class SystemKind {
  /// C3 (NSDI '15): cubic replica ranking + cubic rate control,
  /// task-oblivious FIFO servers.
  kC3,
  /// BRB EqualMax priorities, credits realization.
  kEqualMaxCredits,
  /// BRB UnifIncr priorities, credits realization.
  kUnifIncrCredits,
  /// BRB EqualMax priorities, ideal global-queue model.
  kEqualMaxModel,
  /// BRB UnifIncr priorities, ideal global-queue model.
  kUnifIncrModel,
  // --- ablations beyond the paper's Figure 2 ---
  /// Task-oblivious baseline: least-outstanding selection, FIFO servers.
  kFifoDirect,
  /// Random replica selection, FIFO servers (memcached-era floor).
  kRandomFifo,
  /// BRB EqualMax without any admission control (no credits).
  kEqualMaxDirect,
  /// BRB UnifIncr without any admission control (no credits).
  kUnifIncrDirect,
  /// Ideal global queue but FIFO (separates pooling from priorities).
  kFifoModel,
  /// Per-request SJF, direct (separates size-aware from task-aware).
  kRequestSjfDirect,
  /// CumSlack extension (exact serialized slack), credits realization.
  kCumSlackCredits,
  /// CumSlack extension, ideal global queue.
  kCumSlackModel,
};

inline std::string to_string(SystemKind kind) {
  switch (kind) {
    case SystemKind::kC3:
      return "c3";
    case SystemKind::kEqualMaxCredits:
      return "equalmax-credits";
    case SystemKind::kUnifIncrCredits:
      return "unifincr-credits";
    case SystemKind::kEqualMaxModel:
      return "equalmax-model";
    case SystemKind::kUnifIncrModel:
      return "unifincr-model";
    case SystemKind::kFifoDirect:
      return "fifo-direct";
    case SystemKind::kRandomFifo:
      return "random-fifo";
    case SystemKind::kEqualMaxDirect:
      return "equalmax-direct";
    case SystemKind::kUnifIncrDirect:
      return "unifincr-direct";
    case SystemKind::kFifoModel:
      return "fifo-model";
    case SystemKind::kRequestSjfDirect:
      return "request-sjf-direct";
    case SystemKind::kCumSlackCredits:
      return "cumslack-credits";
    case SystemKind::kCumSlackModel:
      return "cumslack-model";
  }
  return "unknown";
}

inline SystemKind system_kind_from_name(const std::string& name) {
  if (name == "c3") return SystemKind::kC3;
  if (name == "equalmax-credits") return SystemKind::kEqualMaxCredits;
  if (name == "unifincr-credits") return SystemKind::kUnifIncrCredits;
  if (name == "equalmax-model") return SystemKind::kEqualMaxModel;
  if (name == "unifincr-model") return SystemKind::kUnifIncrModel;
  if (name == "fifo-direct") return SystemKind::kFifoDirect;
  if (name == "random-fifo") return SystemKind::kRandomFifo;
  if (name == "equalmax-direct") return SystemKind::kEqualMaxDirect;
  if (name == "unifincr-direct") return SystemKind::kUnifIncrDirect;
  if (name == "fifo-model") return SystemKind::kFifoModel;
  if (name == "request-sjf-direct") return SystemKind::kRequestSjfDirect;
  if (name == "cumslack-credits") return SystemKind::kCumSlackCredits;
  if (name == "cumslack-model") return SystemKind::kCumSlackModel;
  throw std::invalid_argument("system_kind_from_name: unknown system: " + name);
}

/// True when servers pull from the shared global queue.
inline bool uses_global_queue(SystemKind kind) {
  return kind == SystemKind::kEqualMaxModel || kind == SystemKind::kUnifIncrModel ||
         kind == SystemKind::kFifoModel || kind == SystemKind::kCumSlackModel;
}

/// True when the credits controller machinery is active.
inline bool uses_credits(SystemKind kind) {
  return kind == SystemKind::kEqualMaxCredits || kind == SystemKind::kUnifIncrCredits ||
         kind == SystemKind::kCumSlackCredits;
}

/// True for task-aware (BRB) priority assignment.
inline bool is_task_aware(SystemKind kind) {
  switch (kind) {
    case SystemKind::kEqualMaxCredits:
    case SystemKind::kUnifIncrCredits:
    case SystemKind::kEqualMaxModel:
    case SystemKind::kUnifIncrModel:
    case SystemKind::kEqualMaxDirect:
    case SystemKind::kUnifIncrDirect:
    case SystemKind::kCumSlackCredits:
    case SystemKind::kCumSlackModel:
      return true;
    default:
      return false;
  }
}

}  // namespace brb::core
