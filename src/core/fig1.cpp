#include "core/fig1.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <ostream>
#include <stdexcept>

#include "client/app_client.hpp"
#include "ctrl/dispatch_policy.hpp"
#include "net/network.hpp"
#include "policy/priority_policy.hpp"
#include "server/backend_server.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"
#include "store/partitioner.hpp"
#include "util/rng.hpp"
#include "workload/task.hpp"

namespace brb::core {

namespace {

// Keys: A=0, B=1, C=2, D=3, E=4, warm-up F=5.
constexpr store::KeyId kA = 0, kB = 1, kC = 2, kD = 3, kE = 4, kF = 5;

/// Fixed placement matching the figure: replication factor 1,
/// group g == server g. A,E,F -> S1(0); B,C -> S2(1); D -> S3(2).
class Fig1Partitioner final : public store::Partitioner {
 public:
  Fig1Partitioner() : groups_{{0}, {1}, {2}} {}

  store::GroupId group_of(store::KeyId key) const override {
    switch (key) {
      case kA:
      case kE:
      case kF:
        return 0;
      case kB:
      case kC:
        return 1;
      case kD:
        return 2;
      default:
        throw std::out_of_range("Fig1Partitioner: unknown key");
    }
  }
  const std::vector<store::ServerId>& replicas_of(store::GroupId group) const override {
    return groups_.at(group);
  }
  std::uint32_t num_groups() const noexcept override { return 3; }
  std::uint32_t num_servers() const noexcept override { return 3; }
  std::uint32_t replication_factor() const noexcept override { return 1; }

 private:
  std::vector<std::vector<store::ServerId>> groups_;
};

}  // namespace

Fig1Result run_fig1(const std::string& policy_name) {
  // One "unit" = 1 ms of service; the warm-up request takes 0.1 unit.
  constexpr std::uint32_t kUnitBytes = 1000;
  constexpr std::uint32_t kWarmupBytes = 100;
  const sim::Duration unit = sim::Duration::millis(1.0);

  sim::Simulator sim;
  util::Rng rng(1);
  net::Network::Config net_config;
  net_config.one_way_latency = sim::Duration::micros(10);
  net::Network network(sim, net_config, rng.split());

  Fig1Partitioner partitioner;
  // 1 us per byte, no base cost and no noise: exactly unit-cost requests.
  const server::SizeLinearServiceModel service_model(sim::Duration::zero(), 1000.0, 0.0);

  const auto priority_policy = policy::make_priority_policy(policy_name);

  std::vector<std::unique_ptr<server::BackendServer>> servers;
  for (std::uint32_t s = 0; s < 3; ++s) {
    server::BackendServer::Config config;
    config.id = s;
    config.cores = 1;
    servers.push_back(
        std::make_unique<server::BackendServer>(sim, config, service_model, rng.split()));
    // Priority queues reveal the policy; with FifoPolicy all priorities
    // equal the task arrival time, which degrades to FIFO order.
    servers.back()->use_private_queue(server::make_discipline("priority"));
  }
  for (const store::KeyId key : {kA, kB, kC, kD, kE}) {
    servers[partitioner.group_of(key)]->storage().put_meta(key, kUnitBytes);
  }
  servers[0]->storage().put_meta(kF, kWarmupBytes);

  Fig1Result result;
  std::map<store::TaskId, double> completions;

  std::vector<std::unique_ptr<client::AppClient>> clients;
  for (std::uint32_t c = 0; c < 2; ++c) {
    client::AppClient::Config config;
    config.id = c;
    util::Rng client_rng = rng.split();
    auto endpoint = std::make_unique<ctrl::DispatchEndpoint>(
        ctrl::SignalTableConfig{},
        std::make_unique<ctrl::SingleTargetAdapter>(std::make_unique<ctrl::FirstReplicaPolicy>()),
        client_rng, store::TenantId{0});
    clients.push_back(std::make_unique<client::AppClient>(
        sim, config, partitioner, service_model, std::move(endpoint), *priority_policy,
        std::make_unique<client::DirectGate>(), client_rng));
  }

  const auto key_name = [](store::KeyId key) {
    switch (key) {
      case kA:
        return "A";
      case kB:
        return "B";
      case kC:
        return "C";
      case kD:
        return "D";
      case kE:
        return "E";
      default:
        return "?";
    }
  };

  for (std::uint32_t c = 0; c < 2; ++c) {
    const net::NodeId client_node = 3 + c;
    clients[c]->set_network_send(
        [&network, &servers, client_node](const client::OutboundRequest& out) {
          server::BackendServer* target = servers[out.server].get();
          network.send(client_node, out.server, store::kRequestWireBytes,
                       [target, request = out.request] { target->receive(request); });
        });
    client::AppClient::Hooks hooks;
    hooks.on_task_complete = [&completions, &sim, unit](const workload::TaskSpec& task,
                                                        sim::Duration) {
      completions[task.id] = sim.now().as_millis() / unit.as_millis();
    };
    clients[c]->set_hooks(hooks);
  }
  for (std::uint32_t s = 0; s < 3; ++s) {
    servers[s]->set_response_handler([&, s](const store::ReadResponse& response) {
      if (response.key != kF) {
        const double end = sim.now().as_millis();
        const double start = end - response.feedback.service_time.as_millis();
        result.schedule.push_back(Fig1Entry{key_name(response.key), "S" + std::to_string(s + 1),
                                            start, end});
      }
      const net::NodeId client_node = 3 + response.client;
      client::AppClient* target = clients[response.client].get();
      network.send(s, client_node, store::kResponseHeaderBytes,
                   [target, response] { target->on_response(response); });
    });
  }

  // Warm-up task occupies S1 so that A and E are both queued when the
  // first scheduling decision happens.
  workload::TaskSpec warmup;
  warmup.id = 0;
  warmup.client = 0;
  warmup.requests = {workload::RequestSpec{kF, kWarmupBytes}};
  workload::TaskSpec t1;
  t1.id = 1;
  t1.client = 0;
  t1.requests = {workload::RequestSpec{kA, kUnitBytes}, workload::RequestSpec{kB, kUnitBytes},
                 workload::RequestSpec{kC, kUnitBytes}};
  workload::TaskSpec t2;
  t2.id = 2;
  t2.client = 1;
  t2.requests = {workload::RequestSpec{kD, kUnitBytes}, workload::RequestSpec{kE, kUnitBytes}};

  sim.schedule_at(sim::Time::zero(), [&] { clients[0]->submit(warmup); });
  sim.schedule_at(sim::Time::zero(), [&] { clients[0]->submit(t1); });
  sim.schedule_at(sim::Time::zero(), [&] { clients[1]->submit(t2); });
  sim.run();

  if (completions.size() != 3) throw std::logic_error("run_fig1: not all tasks completed");
  result.t1_completion_units = completions[1];
  result.t2_completion_units = completions[2];
  std::sort(result.schedule.begin(), result.schedule.end(),
            [](const Fig1Entry& a, const Fig1Entry& b) { return a.end_units < b.end_units; });
  return result;
}

void print_fig1_report(std::ostream& os) {
  os << "# Figure 1: task-oblivious vs task-aware scheduling\n";
  os << "# T1=[A,B,C], T2=[D,E]; S1={A,E}, S2={B,C}, S3={D}; unit-cost requests\n";
  os << "# (0.1-unit warm-up on S1 so both A and E are queued at decision time)\n\n";

  for (const char* policy : {"fifo", "equalmax", "unifincr"}) {
    const Fig1Result result = run_fig1(policy);
    os << "policy: " << policy << "\n";
    stats::Table table({"request", "server", "start", "end"});
    for (const Fig1Entry& entry : result.schedule) {
      table.add_row({entry.key, entry.server, stats::fmt_double(entry.start_units, 2),
                     stats::fmt_double(entry.end_units, 2)});
    }
    table.print(os);
    os << "T1 completes at " << stats::fmt_double(result.t1_completion_units, 2)
       << " units, T2 completes at " << stats::fmt_double(result.t2_completion_units, 2)
       << " units\n\n";
  }

  const Fig1Result fifo = run_fig1("fifo");
  const Fig1Result equalmax = run_fig1("equalmax");
  const Fig1Result unifincr = run_fig1("unifincr");
  os << "summary: T2 completion  fifo=" << stats::fmt_double(fifo.t2_completion_units, 2)
     << "  equalmax=" << stats::fmt_double(equalmax.t2_completion_units, 2)
     << "  unifincr=" << stats::fmt_double(unifincr.t2_completion_units, 2) << "\n";
  os << "paper:   T2 ends at 2 units (oblivious) vs 1 unit (optimal); T1 unaffected\n";
}

}  // namespace brb::core
