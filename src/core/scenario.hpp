// Scenario configuration and the experiment runner.
//
// `ScenarioConfig` defaults to the paper's evaluation setup (§2.2):
// 18 clients, 9 servers with 4 cores at 3500 req/s each, 50 us one-way
// network latency, ~500 k tasks with mean fan-out 8.6, Atikoglu-Pareto
// value sizes, Poisson arrivals at 70% of system capacity, repeated
// over seeds. `run_scenario` builds the whole system for one
// (system, seed) pair, runs it to completion, and returns latency
// distributions plus internal counters.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/credits.hpp"
#include "core/system_kind.hpp"
#include "policy/c3.hpp"
#include "sim/time.hpp"
#include "stats/latency_recorder.hpp"
#include "stats/summary.hpp"
#include "workload/capacity.hpp"
#include "workload/task.hpp"

namespace brb::core {

struct ScenarioConfig {
  // --- cluster (paper defaults) ---
  /// 9 servers x 4 cores x 3500 req/s by default; heterogeneous fleets
  /// via ClusterSpec::parse("hetero:6x4x3500,3x8x7000").
  workload::ClusterSpec cluster{};
  std::uint32_t replication = 3;
  std::uint32_t num_clients = 18;

  // --- workload ---
  std::uint64_t num_tasks = 500'000;
  double utilization = 0.70;
  /// Replay a recorded trace instead of generating tasks: either a
  /// trace file path or an in-memory task list (takes precedence).
  /// Arrival times, fan-outs and value sizes then come from the trace;
  /// num_tasks/utilization/fanout_spec/size_spec/key_spec are ignored.
  std::string trace_path;
  const std::vector<workload::TaskSpec>* tasks_override = nullptr;
  /// Mean 8.6 (the SoundCloud trace's published mean). Sigma 2.0 gives
  /// the playlist-like skew (median ~1-2 requests, p99 ~150) that the
  /// paper's intro motivates; with it, the measured BRB-vs-C3 factors
  /// land on the paper's reported 2-3x (see EXPERIMENTS.md).
  std::string fanout_spec = "lognormal:8.6:2.0:512";
  std::string size_spec = "gpareto";
  std::string key_spec = "zipf:100000:0.9";
  bool paced_arrivals = false;  // Poisson by default
  /// Time-varying arrival envelope ("" = stationary Poisson/paced):
  /// "diurnal:LOW:HIGH:PERIOD_S" or "steps:M1,M2,...:PERIOD_S"
  /// (workload::make_arrival_process). Mutually exclusive with
  /// paced_arrivals and trace replay.
  std::string arrival_spec;
  /// Task-level write probability: a write task fans each request out
  /// to every replica of its key and resizes the stored value there.
  /// Mutually exclusive with trace replay.
  double write_fraction = 0.0;
  /// Multi-tenant mix ("" = single tenant): tenants separated by ';',
  /// each NAME[,share=W][,fanout=SPEC][,keys=SPEC][,write=F]
  /// (workload::parse_tenant_mixes). Clients are partitioned into
  /// per-tenant blocks; RunResult then carries per-tenant latency.
  std::string tenant_spec;

  // --- timing ---
  sim::Duration net_latency = sim::Duration::micros(50);
  sim::Duration net_jitter = sim::Duration::zero();
  /// Fixed per-request overhead inside the service time. The paper
  /// specifies only the mean rate (3500 req/s per core) with work
  /// driven by value size, i.e. purely size-proportional service.
  sim::Duration service_base = sim::Duration::zero();
  /// log-normal sigma of service-time noise (0 = deterministic in size).
  double service_noise_sigma = 0.0;
  /// log-normal sigma of the client's cost-forecast noise.
  double cost_noise_sigma = 0.0;

  // --- measurement ---
  /// Leading fraction of tasks excluded from latency statistics.
  double warmup_fraction = 0.05;
  bool keep_raw_latencies = false;

  // --- system under test ---
  SystemKind system = SystemKind::kEqualMaxCredits;
  std::uint64_t seed = 1;
  CreditsConfig credits{};
  policy::C3Config c3{};  // num_clients is filled in by the runner
  policy::CubicRateController::Config rate{};
  /// Override the replica selector ("" = system default). Accepts any
  /// registered replica policy name or alias (ctrl/replica_policy.hpp);
  /// equivalent to a tenant-less --policy binding.
  std::string selector_override;
  /// Replica-policy bindings for the control-plane runtime ("" = the
  /// system default / selector_override): "NAME" binds every tenant,
  /// "tenantA:c3,tenantB:lor" binds per tenant (later entries win).
  std::string policy_spec;
  /// Epoch-scheduled mid-run policy switching:
  /// "t0:random,30s:c3[,45s:tenantA:lor]". Epoch payloads may also be
  /// dispatch modes ("30s:hedge:q95"). Signals (EWMAs, outstanding
  /// counts, balances) live in the per-client SignalTable and survive
  /// each switch.
  std::string policy_switch_spec;
  /// Dispatch-mode bindings ("" = single-target dispatch everywhere):
  /// "hedge:q95" binds every tenant, "tenantA:tied,tenantB:kofn:2"
  /// binds per tenant. Modes: single | hedge[:qNN] | tied | kofn[:K]
  /// (ctrl::parse_dispatch_spec). Duplicate-issuing modes are
  /// incompatible with global-queue (model) systems.
  std::string dispatch_spec;
  /// Override the admission policy ("" = system default: "credits" for
  /// credits systems, "cubic-rate" for C3, "direct" otherwise). The
  /// credits controller/monitor machinery follows the effective
  /// admission policy, not the system kind.
  std::string admission_override;
  /// Control-plane signal store: "" / "auto" (sparse iff the
  /// clients x servers cross-product exceeds an internal threshold),
  /// "dense" (force the legacy per-pair columns), or "sparse[:CAP]"
  /// (windowed per-client store, CAP live servers per client).
  /// Past the auto threshold the sparse store also switches the
  /// credits machinery to sparse demand/grant bookkeeping; below it,
  /// an explicit sparse store keeps the exact dense credits path, so
  /// sparse-vs-dense runs are decision-identical whenever CAP covers
  /// the fleet. Dense runs are byte-identical to before the flag
  /// existed.
  std::string signal_store;
  /// Latency statistics: "" / "exact" (histogram + optional raw
  /// samples, the legacy artifacts) or "sketch" (additionally record
  /// into mergeable DDSketch-style quantile sketches whose serialized
  /// form replaces per-seed raw samples in artifacts).
  std::string stats_spec;

  /// Optional observer invoked on every task completion (including
  /// warmup tasks), after the built-in recording. Useful for custom
  /// breakdowns (e.g. latency by fan-out bucket).
  std::function<void(const workload::TaskSpec&, sim::Duration)> on_task_complete;
};

/// Per-tenant slice of one run (multi-tenant scenarios only).
struct TenantResult {
  std::string name;
  std::uint64_t tasks_completed = 0;
  std::uint64_t tasks_measured = 0;
  stats::LatencyRecorder task_latency{false};  // measured tasks only
};

struct RunResult {
  SystemKind system{};
  std::uint64_t seed = 0;

  stats::LatencyRecorder task_latency;     // measured tasks only
  stats::LatencyRecorder request_latency;  // measured tasks only

  /// One entry per tenant when the scenario declares a tenant mix;
  /// empty otherwise. `tenant_p99_ratio` is max/min task p99 across
  /// tenants with measured tasks (1.0 = perfectly fair, 0 = n/a).
  std::vector<TenantResult> tenants;
  double tenant_p99_ratio = 0.0;

  std::uint64_t tasks_submitted = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t tasks_measured = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t write_requests_sent = 0;   // replica copies of writes
  std::uint64_t write_requests_acked = 0;  // must equal sent at teardown

  std::vector<double> server_utilization;  // busy fraction per server
  double mean_utilization = 0.0;
  std::uint64_t network_messages = 0;
  std::uint64_t network_bytes = 0;
  std::uint64_t congestion_signals = 0;
  std::uint64_t controller_adaptations = 0;
  std::uint64_t gate_held_requests = 0;  // held at end of run (should be 0)
  std::uint64_t credit_hold_events = 0;  // requests ever held for credits
  sim::Duration credit_hold_time = sim::Duration::zero();  // cumulative
  /// Per-client policy rebinds applied by the runtime (mid-run
  /// switching only; 0 for static bindings).
  std::uint64_t policy_switches = 0;

  /// Control-plane store telemetry (sparse signal store only; all
  /// zero/false on the dense path so legacy artifacts are untouched).
  bool sparse_signal_store = false;
  std::uint64_t signal_entries_live = 0;  // summed over clients at teardown
  std::uint64_t signal_evictions = 0;     // window evictions over the run

  /// Tail-cutting executor counters (all zero in single-target runs).
  /// `dispatch_metrics` marks runs where the dispatch plumbing was in
  /// play (a --dispatch spec or a mode-switching epoch) so reports can
  /// gate the extra columns without disturbing legacy artifacts.
  bool dispatch_metrics = false;
  std::uint64_t hedges_issued = 0;     // backup copies actually fired
  std::uint64_t hedges_won = 0;        // logical completed by a backup
  std::uint64_t hedges_cancelled = 0;  // timers cancelled pre-fire
  /// Hedge plans degraded to single because the primary's feedback was
  /// fresher than the fresh= age threshold (signal-aware skip).
  std::uint64_t hedges_skipped_fresh = 0;
  std::uint64_t duplicates_sent = 0;   // extra copies beyond `needed`
  std::uint64_t duplicates_cancelled = 0;  // rejected before service
  std::uint64_t duplicates_served = 0;     // absorbed full service
  /// duplicates_served / responses received: the fraction of server
  /// work wasted on copies that lost their race (0 = no tail-cutting
  /// waste).
  double duplicate_work_fraction = 0.0;

  sim::Duration sim_duration = sim::Duration::zero();
  std::uint64_t events_processed = 0;
  double wall_seconds = 0.0;

  RunResult() : task_latency(false), request_latency(false) {}
};

/// Builds, runs and tears down one full system instance.
/// Throws std::runtime_error if the run fails to complete every task.
RunResult run_scenario(const ScenarioConfig& config);

/// Percentiles of one run in milliseconds.
struct LatencySummary {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
};
LatencySummary summarize_tasks(const RunResult& result);

/// Multi-seed aggregate: percentile means and standard deviations
/// across runs (the paper averages 6 seeds and reports that the
/// standard deviation is negligible).
struct AggregateResult {
  SystemKind system{};
  stats::Summary p50_ms;
  stats::Summary p95_ms;
  stats::Summary p99_ms;
  stats::Summary mean_ms;
  std::vector<RunResult> runs;
};

/// Accumulates one per-seed latency summary into the aggregate's
/// cross-seed statistics. Order matters for bit-identical artifacts:
/// callers must accumulate in planned seed order (run_seeds and the
/// sharded-sweep merge both do).
void accumulate_summary(AggregateResult& aggregate, const LatencySummary& summary);

/// Re-aggregates already-executed runs into the cross-seed aggregate —
/// the primitive run_seeds and the sharded driver share. `runs` may be
/// empty (a shard that owns no seeds of this case).
AggregateResult aggregate_runs(SystemKind system, std::vector<RunResult> runs);

/// Worker-thread policy for run_seeds.
struct RunSeedsOptions {
  /// Maximum worker threads; 0 = one thread per seed, 1 = serial.
  /// Whatever the count, results are bit-identical: every seed is an
  /// independent simulation and aggregation happens in seed order.
  std::size_t max_threads = 0;
};

/// Runs one scenario per seed. Seeds are independent simulations, so
/// with `parallel` they execute on one thread each (results are
/// bit-identical to the serial path and aggregated in seed order).
/// `config.on_task_complete`, if set, must then be thread-safe.
AggregateResult run_seeds(const ScenarioConfig& config, const std::vector<std::uint64_t>& seeds,
                          bool parallel = false);
AggregateResult run_seeds(const ScenarioConfig& config, const std::vector<std::uint64_t>& seeds,
                          RunSeedsOptions options);

}  // namespace brb::core
