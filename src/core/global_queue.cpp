#include "core/global_queue.hpp"

#include <stdexcept>

namespace brb::core {

GlobalQueueModel::GlobalQueueModel(
    const store::Partitioner& partitioner,
    const std::function<std::unique_ptr<server::QueueDiscipline>()>& discipline_factory)
    : partitioner_(&partitioner), discipline_factory_(discipline_factory) {
  const std::uint32_t num_groups = partitioner_->num_groups();
  group_queues_.reserve(num_groups);
  for (std::uint32_t g = 0; g < num_groups; ++g) group_queues_.push_back(discipline_factory());

  groups_of_.resize(partitioner_->num_servers());
  for (std::uint32_t g = 0; g < num_groups; ++g) {
    for (const store::ServerId s : partitioner_->replicas_of(g)) {
      if (s >= groups_of_.size()) {
        throw std::invalid_argument("GlobalQueueModel: server id outside cluster");
      }
      groups_of_[s].push_back(g);
    }
  }
}

void GlobalQueueModel::attach_servers(std::vector<server::BackendServer*> servers) {
  servers_ = std::move(servers);
  for (server::BackendServer* server : servers_) {
    if (server == nullptr) throw std::invalid_argument("GlobalQueueModel: null server");
    server->set_work_source(*this);
  }
}

void GlobalQueueModel::submit(server::QueuedRead read, store::GroupId group) {
  if (group >= group_queues_.size()) {
    throw std::out_of_range("GlobalQueueModel::submit: bad group");
  }
  read.submit_seq = next_submit_seq_++;
  group_queues_[group]->push(std::move(read));
  ++total_queued_;

  // Work-pull: wake an idle replica of this group (the queue "knows"
  // global state — that is what makes the model ideal/unrealizable).
  for (const store::ServerId s : partitioner_->replicas_of(group)) {
    if (s < servers_.size() && servers_[s]->idle_cores() > 0) {
      servers_[s]->pump();
      break;
    }
  }
}

void GlobalQueueModel::submit_pinned(server::QueuedRead read, store::ServerId server) {
  if (server >= groups_of_.size()) {
    throw std::out_of_range("GlobalQueueModel::submit_pinned: bad server");
  }
  if (pinned_queues_.empty()) pinned_queues_.resize(groups_of_.size());
  if (!pinned_queues_[server]) pinned_queues_[server] = discipline_factory_();
  read.submit_seq = next_submit_seq_++;
  pinned_queues_[server]->push(std::move(read));
  ++total_queued_;
  if (server < servers_.size() && servers_[server]->idle_cores() > 0) {
    servers_[server]->pump();
  }
}

std::optional<server::QueuedRead> GlobalQueueModel::next_for(store::ServerId server) {
  if (server >= groups_of_.size()) return std::nullopt;
  server::QueueDiscipline* best_queue = nullptr;
  server::QueueHead best_head{};
  const auto consider = [&](server::QueueDiscipline* queue) {
    const auto head = queue->peek();
    if (!head) return;
    const bool wins = best_queue == nullptr || head->priority < best_head.priority ||
                      (head->priority == best_head.priority &&
                       head->submit_seq < best_head.submit_seq);
    if (wins) {
      best_queue = queue;
      best_head = *head;
    }
  };
  for (const store::GroupId g : groups_of_[server]) consider(group_queues_[g].get());
  if (server < pinned_queues_.size() && pinned_queues_[server]) {
    consider(pinned_queues_[server].get());
  }
  if (best_queue == nullptr) return std::nullopt;
  auto read = best_queue->pop();
  if (read) --total_queued_;
  return read;
}

std::size_t GlobalQueueModel::backlog(store::ServerId server) const {
  if (server >= groups_of_.size()) return 0;
  std::size_t total = 0;
  for (const store::GroupId g : groups_of_[server]) total += group_queues_[g]->size();
  if (server < pinned_queues_.size() && pinned_queues_[server]) {
    total += pinned_queues_[server]->size();
  }
  return total;
}

}  // namespace brb::core
