// The paper's ideal "model" realization (§2.2).
//
// "Servers utilize a work-pulling mechanism to fetch requests from a
// single global priority-based queue shared by all clients. However,
// such a model is unrealizable since it assumes perfect knowledge of
// global state."
//
// We realize the thought experiment inside the simulator: one logical
// priority queue, partitioned internally by replica group because a
// server may only serve keys it replicates. An idle server instantly
// pulls the highest-priority request among the groups it belongs to;
// ties break on global submission order, making the whole structure
// behave exactly like a single shared priority queue restricted by
// data placement. Coordination is free (that is the point of the
// ideal); the client<->store network latency is still paid.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "server/backend_server.hpp"
#include "server/queue_discipline.hpp"
#include "store/partitioner.hpp"
#include "store/types.hpp"

namespace brb::core {

class GlobalQueueModel final : public server::WorkSource {
 public:
  /// `discipline_factory` builds one queue per replica group —
  /// PriorityDiscipline for BRB-model, FifoDiscipline for the
  /// task-oblivious ideal ablation.
  GlobalQueueModel(const store::Partitioner& partitioner,
                   const std::function<std::unique_ptr<server::QueueDiscipline>()>&
                       discipline_factory);

  /// Registers the serving fleet; must cover every ServerId the
  /// partitioner references.
  void attach_servers(std::vector<server::BackendServer*> servers);

  /// A request reaches the (logically centralized) queue. Stamps the
  /// global submission sequence and immediately offers work to an idle
  /// replica if one exists.
  void submit(server::QueuedRead read, store::GroupId group);

  /// A request bound to one specific server (a write: every replica
  /// must execute its own copy, so the work cannot float freely within
  /// the group). Pinned requests compete with group-queue work by the
  /// same (priority, submission order) total order.
  void submit_pinned(server::QueuedRead read, store::ServerId server);

  // WorkSource interface (invoked by idle servers work-pulling).
  std::optional<server::QueuedRead> next_for(store::ServerId server) override;
  std::size_t backlog(store::ServerId server) const override;

  /// Total queued requests across all groups.
  std::size_t total_backlog() const noexcept { return total_queued_; }

 private:
  const store::Partitioner* partitioner_;
  const std::function<std::unique_ptr<server::QueueDiscipline>()> discipline_factory_;
  std::vector<std::unique_ptr<server::QueueDiscipline>> group_queues_;
  /// pinned_queues_[s] = server-bound requests (writes); created
  /// lazily so read-only runs pay nothing.
  std::vector<std::unique_ptr<server::QueueDiscipline>> pinned_queues_;
  /// groups_of_[s] = replica groups server s participates in.
  std::vector<std::vector<store::GroupId>> groups_of_;
  std::vector<server::BackendServer*> servers_;
  std::uint64_t next_submit_seq_ = 0;
  std::size_t total_queued_ = 0;
};

}  // namespace brb::core
