// The credits realization of BRB (§2.2).
//
// "We develop a credits strategy where clients report their demands at
// measurement intervals and are assigned credits (i.e., shares of
// server capacity) proportionally to demands via a logically-
// centralized controller; once demand exceeds server capacity, a
// congestion signal is sent to the controller and the credits
// allocations are adapted accordingly at 1s intervals. In such a
// realization, each server maintains a separate priority-queue."
//
// Three cooperating pieces:
//   CreditsController — the logically-centralized allocator. Collects
//     demand reports, allocates each server's (possibly congestion-
//     reduced) capacity proportionally to client demands every
//     adaptation interval, and pushes grants to clients.
//   CreditGate — client side. Measures per-server demand, reports it
//     every measurement interval, spends credits to transmit, and holds
//     excess requests in a local priority queue until the next grant.
//   CongestionMonitor — server side. Watches queue lengths and signals
//     the controller when a server's backlog exceeds its capacity
//     threshold.
//
// All control messages travel over the simulated network (latency
// applies), which is exactly the realism gap between credits and the
// ideal model.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "client/dispatch_gate.hpp"
#include "ctrl/signal_table.hpp"
#include "server/backend_server.hpp"
#include "sim/simulator.hpp"
#include "store/types.hpp"

namespace brb::core {

struct CreditsConfig {
  /// Controller re-allocation period (the paper's 1 s).
  sim::Duration adapt_interval = sim::Duration::seconds(1.0);
  /// Client demand-report period (the paper's "measurement interval").
  sim::Duration measure_interval = sim::Duration::millis(100);
  /// Server queue length (in multiples of core count) that triggers a
  /// congestion signal. The signal means "demand exceeds capacity"
  /// (paper §2.2), i.e. a sustained standing queue — not transient
  /// burstiness, which a 70%-utilized server exhibits constantly.
  double congestion_queue_factor = 32.0;
  /// Congestion monitor sampling period.
  sim::Duration monitor_interval = sim::Duration::millis(100);
  /// Multiplicative capacity reduction applied to a congested server's
  /// allocatable capacity.
  double congestion_backoff = 0.9;
  /// Additive recovery (fraction of full capacity) per congestion-free
  /// adaptation interval.
  double recovery_step = 0.25;
  /// Floor on the congestion factor.
  double min_capacity_factor = 0.5;
  /// EWMA weight of the newest demand report.
  double demand_ewma_alpha = 0.5;
  /// Fraction of each server's capacity distributed as a guaranteed
  /// equal floor before proportional allocation. Bounds the stall a
  /// client suffers when it bursts onto a server it has no recent
  /// demand history with (grant would otherwise be ~0 for a whole
  /// adaptation interval).
  double min_share_fraction = 0.10;
  /// Unused balance carried into the next interval, as a multiple of
  /// the new grant (0 = strict reset). Smooths task bursts that span a
  /// grant boundary.
  double carryover_cap_factor = 0.5;
};

struct ControllerStats {
  std::uint64_t demand_reports = 0;
  std::uint64_t congestion_signals = 0;
  std::uint64_t adaptations = 0;
  std::uint64_t grants_sent = 0;
};

/// Sparse (server, value) pairs, ascending by server id. The wire
/// format of demand reports and grants in sparse mode: O(touched
/// servers) instead of O(fleet).
using SparseCredits = std::vector<std::pair<store::ServerId, double>>;

/// Client-side credit gate (one per client).
///
/// Two storage modes:
///  * dense (legacy): one slot per server in the fleet, pre-seeded
///    with initial credits. Reports and grants are full per-server
///    vectors. Byte-identical to the historical behavior.
///  * sparse: slots materialize on first touch with a scalar default
///    credit; reports list only servers offered to since the last
///    tick (idle ticks send nothing) and grants are sparse pairs.
///    Per-client memory is O(servers actually contacted), which is
///    what makes a million-client credits fleet representable at all.
class CreditGate final : public client::DispatchGate {
 public:
  /// `report_demand` ships this client's per-server demand rates
  /// (requests/s since the previous report) to the controller over the
  /// network.
  using ReportFn = std::function<void(const std::vector<double>& per_server_rate)>;
  using SparseReportFn = std::function<void(const SparseCredits& rates)>;

  CreditGate(sim::Simulator& sim, std::uint32_t num_servers, CreditsConfig config,
             std::vector<double> initial_credits);

  /// Sparse-mode constructor: no per-fleet state; a server's slot is
  /// created on first offer with `default_credit` as its opening
  /// balance (the equal-share bootstrap the dense mode pre-computes
  /// per server, collapsed to one scalar).
  CreditGate(sim::Simulator& sim, CreditsConfig config, double default_credit);

  void set_report(ReportFn fn) { report_ = std::move(fn); }
  void set_sparse_report(SparseReportFn fn) { sparse_report_ = std::move(fn); }
  bool sparse() const noexcept { return sparse_; }

  /// Mirrors this gate's per-server balances into the client's
  /// SignalTable (immediately, then on every change), so selection
  /// policies read balances from the unified table instead of the gate.
  void attach_signals(ctrl::SignalTable* signals);

  /// Starts the periodic demand measurement loop.
  void start();
  /// Stops scheduling further measurements (lets the simulation drain).
  void stop() noexcept { running_ = false; }

  void offer(client::OutboundRequest out) override;
  std::size_t held() const noexcept override { return held_; }
  std::string name() const override { return "credits"; }

  /// Grant delivery from the controller: balances reset to the new
  /// allocation and held requests drain in priority order.
  void on_grant(const std::vector<double>& credits);
  /// Sparse grant delivery: only the listed servers are re-funded and
  /// drained; untouched slots keep their balance. (Named, not an
  /// overload: a braced grant list would otherwise be ambiguous.)
  void on_sparse_grant(const SparseCredits& credits);

  /// Current balance. In sparse mode, a never-touched server reports
  /// the default credit it would open with.
  double balance(store::ServerId server) const;
  /// Sparse mode: number of materialized per-server slots.
  std::size_t live_slots() const noexcept { return sparse_ ? sparse_servers_.size() : servers_.size(); }

  /// Requests that were ever held for lack of credits.
  std::uint64_t hold_events() const noexcept { return hold_events_; }
  /// Cumulative time held requests spent waiting for credits.
  sim::Duration total_hold_time() const noexcept { return total_hold_time_; }

 private:
  struct Held {
    store::Priority priority;
    std::uint64_t seq;
    sim::Time held_at;
    client::OutboundRequest out;
  };
  struct PerServer {
    double balance = 0.0;
    std::uint64_t offered_in_window = 0;
    std::vector<Held> heap;  // min-heap on (priority, seq)
  };

  void measure_tick();
  void drain(store::ServerId server, PerServer& ps);
  /// Dense: bounds-checked index. Sparse: find-or-create (opening
  /// balance = default_credit_, mirrored into the signal table).
  PerServer& slot(store::ServerId server);
  static bool later(const Held& a, const Held& b) noexcept;
  void heap_push(PerServer& ps, Held held);
  Held heap_pop(PerServer& ps);
  void sync_balance(store::ServerId server, double balance) {
    if (signals_ != nullptr) signals_->set_credit_balance(server, balance);
  }

  sim::Simulator* sim_;
  CreditsConfig config_;
  bool sparse_ = false;
  double default_credit_ = 0.0;
  std::vector<PerServer> servers_;
  /// Sparse-mode slots; std::map so every iteration (reports,
  /// signal mirroring) runs in ascending server order — deterministic
  /// regardless of touch order.
  std::map<store::ServerId, PerServer> sparse_servers_;
  ctrl::SignalTable* signals_ = nullptr;
  std::vector<double> rates_scratch_;        // reused per measure tick (dense)
  SparseCredits sparse_rates_scratch_;       // reused per measure tick (sparse)
  ReportFn report_;
  SparseReportFn sparse_report_;
  bool running_ = false;
  std::uint64_t next_seq_ = 0;
  std::size_t held_ = 0;
  std::uint64_t hold_events_ = 0;
  sim::Duration total_hold_time_ = sim::Duration::zero();
};

/// The logically-centralized allocator.
///
/// Demand state is dense (a flat clients x servers EWMA matrix) by
/// default. With `sparse_demand`, only (client, server) pairs that
/// actually reported demand are stored — O(active pairs) instead of
/// O(clients x servers) — and grants go out as sparse pairs, only to
/// clients with live demand. Two documented semantic differences from
/// dense: (1) the equal-share floor of each server's budget is split
/// among the clients *with demand on record* for it, not the whole
/// fleet (a fleet-wide floor over a million clients rounds to zero
/// anyway); (2) idle clients receive no grant at all — their
/// bootstrap is the gate's first-touch default credit.
class CreditsController {
 public:
  /// `capacities[s]` = server s's nominal capacity in requests/s.
  /// `send_grant(client, credits)` ships an allocation to one client
  /// over the network.
  using GrantFn = std::function<void(store::ClientId, const std::vector<double>&)>;
  using SparseGrantFn = std::function<void(store::ClientId, const SparseCredits&)>;

  CreditsController(sim::Simulator& sim, std::uint32_t num_clients,
                    std::vector<double> capacities, CreditsConfig config,
                    bool sparse_demand = false);

  void set_grant_sender(GrantFn fn) { send_grant_ = std::move(fn); }
  void set_sparse_grant_sender(SparseGrantFn fn) { send_sparse_grant_ = std::move(fn); }
  bool sparse() const noexcept { return sparse_; }

  /// Begins the periodic adaptation loop.
  void start();
  void stop() noexcept { running_ = false; }

  /// Network delivery of a client demand report.
  void on_demand_report(store::ClientId client, const std::vector<double>& per_server_rate);

  /// Sparse demand report (rates ascending by server id, as the sparse
  /// gate emits them). Servers absent from the report decay toward
  /// zero exactly like a dense zero entry would, and pairs whose EWMA
  /// falls below a retention threshold are dropped — state tracks the
  /// client's *recent* working set, not its history.
  void on_sparse_demand_report(store::ClientId client, const SparseCredits& rates);

  /// Sparse mode: (client, server) demand pairs currently on record.
  std::size_t live_demand_pairs() const noexcept;

  /// Network delivery of a server congestion signal.
  void on_congestion_signal(store::ServerId server, std::uint32_t queue_length);

  /// Proportional allocation (exposed for tests): given per-client
  /// demand for one server and its allocatable capacity, returns each
  /// client's credit share for one adaptation interval.
  static std::vector<double> allocate_proportional(const std::vector<double>& demands,
                                                   double capacity_per_interval);

  const ControllerStats& stats() const noexcept { return stats_; }
  double capacity_factor(store::ServerId server) const;

 private:
  void adapt_tick();

  double& demand_at(store::ClientId client, store::ServerId server) noexcept {
    return demand_[static_cast<std::size_t>(client) * capacities_.size() + server];
  }

  sim::Simulator* sim_;
  std::uint32_t num_clients_;
  std::vector<double> capacities_;
  CreditsConfig config_;
  GrantFn send_grant_;
  SparseGrantFn send_sparse_grant_;
  bool running_ = false;
  bool sparse_ = false;
  /// Flat client x server demand EWMAs (req/s): row-major by client,
  /// so one adaptation pass walks memory linearly instead of chasing
  /// nested vectors. Empty in sparse mode.
  std::vector<double> demand_;
  /// Sparse mode: per-client demand maps (ascending server order, so
  /// totals and grant emission are deterministic). Empty in dense mode.
  std::vector<std::map<store::ServerId, double>> sparse_demand_;
  std::vector<double> capacity_factor_;
  std::vector<bool> congested_this_interval_;
  // Reused adapt_tick buffers (allocation-free steady state).
  std::vector<double> server_total_demand_;
  std::vector<std::uint32_t> server_active_clients_;  // sparse mode only
  std::vector<double> server_floor_each_;
  std::vector<double> server_prop_budget_;
  std::vector<double> grant_scratch_;
  SparseCredits sparse_grant_scratch_;
  ControllerStats stats_;
};

/// Server-side queue watchdog that emits congestion signals.
///
/// Instead of scanning every server's queue each sampling period, the
/// monitor subscribes to each server's threshold-crossing watch
/// (BackendServer::set_queue_watch) and maintains the over-threshold
/// set incrementally; the periodic tick only walks servers already
/// known to be congested (and is a no-op while none are).
class CongestionMonitor {
 public:
  using SignalFn = std::function<void(store::ServerId, std::uint32_t queue_length)>;

  CongestionMonitor(sim::Simulator& sim, std::vector<server::BackendServer*> servers,
                    CreditsConfig config, SignalFn signal);

  void start();
  void stop() noexcept { running_ = false; }
  std::uint64_t signals_emitted() const noexcept { return signals_; }

 private:
  void tick();
  /// O(1) per threshold crossing: flips the server's congestion flag.
  void update(std::size_t index, bool over);

  sim::Simulator* sim_;
  std::vector<server::BackendServer*> servers_;
  CreditsConfig config_;
  SignalFn signal_;
  bool running_ = false;
  std::uint64_t signals_ = 0;
  std::vector<std::uint32_t> thresholds_;
  std::vector<bool> over_;
  std::size_t num_over_ = 0;
};

}  // namespace brb::core
