// Entry point for the unified experiment driver; all logic lives in
// src/cli so it is linkable (and testable) from the library.
#include "cli/driver.hpp"

int main(int argc, char** argv) { return brb::cli::run_brbsim(argc, argv); }
