// Ablation 5: cost-forecast quality.
//
// BRB's priorities derive from *forecast* request costs ("based on the
// size of the value they are requesting"). This sweep injects
// multiplicative log-normal noise into the client's forecasts to ask:
// how good must the size hints be for task-aware scheduling to retain
// its advantage? sigma=0 is the paper's implicit assumption (exact
// sizes); sigma -> large degrades toward cost-oblivious behaviour.
//
// The sweep itself lives in the `brbsim` scenario registry
// ("forecast-noise") — this harness only expands that scenario, runs
// it, and prints the beats-oblivious table the figure wants.
// Flags: --tasks N --seeds N --noise-sigmas a,b,c  (BRB_PAPER=1 for scale)
#include <iostream>
#include <vector>

#include "cli/driver.hpp"
#include "cli/scenario_registry.hpp"
#include "core/scenario.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using brb::core::AggregateResult;
  using brb::core::ScenarioConfig;
  using brb::core::SystemKind;
  const brb::util::Flags flags(argc, argv);
  const bool paper = flags.get_bool("paper", false);

  ScenarioConfig base = brb::cli::config_from_flags(flags);
  if (!flags.has("tasks")) base.num_tasks = paper ? 150'000 : 30'000;
  const std::vector<std::uint64_t> seeds =
      brb::cli::seeds_from_flags(flags, paper ? 4 : 2);

  const brb::cli::ScenarioSpec* scenario = brb::cli::find_scenario("forecast-noise");
  const std::vector<brb::cli::ExperimentCase> cases = scenario->expand(base, flags);

  std::cout << "# Ablation: forecast-noise sweep (EqualMax-Credits), task latency (ms), "
            << seeds.size() << " seeds x " << base.num_tasks << " tasks\n";

  // The expander emits the task-oblivious FIFO reference first, then
  // one credits case per sigma (in --noise-sigmas order).
  double fifo_p50 = 0.0;
  double fifo_p99 = 0.0;
  brb::stats::Table table({"case", "median", "95th", "99th", "still beats oblivious?"});
  for (const brb::cli::ExperimentCase& experiment : cases) {
    const AggregateResult agg = brb::core::run_seeds(experiment.config, seeds);
    if (experiment.config.system == SystemKind::kFifoDirect) {
      fifo_p50 = agg.p50_ms.mean();
      fifo_p99 = agg.p99_ms.mean();
      std::cout << "# task-oblivious reference: median "
                << brb::stats::fmt_double(fifo_p50, 3) << "  p99 "
                << brb::stats::fmt_double(fifo_p99, 3) << "\n\n";
      std::cerr << "[noise] fifo reference done\n";
      continue;
    }
    const bool wins = agg.p99_ms.mean() < fifo_p99 && agg.p50_ms.mean() < fifo_p50;
    table.add_row({experiment.label, brb::stats::fmt_double(agg.p50_ms.mean(), 3),
                   brb::stats::fmt_double(agg.p95_ms.mean(), 3),
                   brb::stats::fmt_double(agg.p99_ms.mean(), 3), wins ? "yes" : "no"});
    std::cerr << "[noise] " << experiment.label << " done\n";
  }
  table.print(std::cout);
  std::cout << "\n# expectation: graceful degradation — even rough size hints beat\n"
               "# task-oblivious FIFO; the advantage erodes as forecasts whiten.\n";
  return 0;
}
