// Ablation 5: cost-forecast quality.
//
// BRB's priorities derive from *forecast* request costs ("based on the
// size of the value they are requesting"). This sweep injects
// multiplicative log-normal noise into the client's forecasts to ask:
// how good must the size hints be for task-aware scheduling to retain
// its advantage? sigma=0 is the paper's implicit assumption (exact
// sizes); sigma -> large degrades toward cost-oblivious behaviour.
// Flags: --tasks N --seeds N  (BRB_PAPER=1 for scale)
#include <iostream>
#include <vector>

#include "core/scenario.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using brb::core::AggregateResult;
  using brb::core::ScenarioConfig;
  using brb::core::SystemKind;
  const brb::util::Flags flags(argc, argv);
  const bool paper = flags.get_bool("paper", false);

  ScenarioConfig base;
  base.num_tasks = static_cast<std::uint64_t>(flags.get_int("tasks", paper ? 150'000 : 30'000));
  const auto num_seeds = static_cast<std::uint64_t>(flags.get_int("seeds", paper ? 4 : 2));
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < num_seeds; ++s) seeds.push_back(s + 1);

  // Reference: the task-oblivious baseline is forecast-independent.
  ScenarioConfig fifo_config = base;
  fifo_config.system = SystemKind::kFifoDirect;
  const AggregateResult fifo = brb::core::run_seeds(fifo_config, seeds);

  const std::vector<double> sigmas = {0.0, 0.25, 0.5, 1.0, 2.0};

  std::cout << "# Ablation: forecast-noise sweep (EqualMax-Credits), task latency (ms), "
            << seeds.size() << " seeds x " << base.num_tasks << " tasks\n";
  std::cout << "# task-oblivious reference: median "
            << brb::stats::fmt_double(fifo.p50_ms.mean(), 3) << "  p99 "
            << brb::stats::fmt_double(fifo.p99_ms.mean(), 3) << "\n\n";
  brb::stats::Table table({"noise sigma", "median", "95th", "99th", "still beats oblivious?"});
  for (const double sigma : sigmas) {
    ScenarioConfig config = base;
    config.system = SystemKind::kEqualMaxCredits;
    config.cost_noise_sigma = sigma;
    const AggregateResult agg = brb::core::run_seeds(config, seeds);
    const bool wins = agg.p99_ms.mean() < fifo.p99_ms.mean() &&
                      agg.p50_ms.mean() < fifo.p50_ms.mean();
    table.add_row({brb::stats::fmt_double(sigma, 2),
                   brb::stats::fmt_double(agg.p50_ms.mean(), 3),
                   brb::stats::fmt_double(agg.p95_ms.mean(), 3),
                   brb::stats::fmt_double(agg.p99_ms.mean(), 3), wins ? "yes" : "no"});
    std::cerr << "[noise] sigma=" << sigma << " done\n";
  }
  table.print(std::cout);
  std::cout << "\n# expectation: graceful degradation — even rough size hints beat\n"
               "# task-oblivious FIFO; the advantage erodes as forecasts whiten.\n";
  return 0;
}
