// Ablation 6: replication factor and skew.
//
// Replica choice is BRB's spatial lever: with R=1 there is nothing to
// select and only scheduling remains; more replicas give selection more
// freedom (and the ideal model more pooling). The second table sweeps
// key-popularity skew: hotter groups strain decentralized designs.
//
// Both sweeps live in the `brbsim` scenario registry
// ("replication-sweep" and "replication-skew") — this harness only
// expands them, runs the cases, and prints the two ratio tables.
// Flags: --tasks N --seeds N --replications a,b --skews a,b
// (BRB_PAPER=1 for scale)
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "cli/driver.hpp"
#include "cli/scenario_registry.hpp"
#include "core/scenario.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using brb::core::AggregateResult;
  using brb::core::ScenarioConfig;
  using brb::core::SystemKind;
  const brb::util::Flags flags(argc, argv);
  const bool paper = flags.get_bool("paper", false);

  ScenarioConfig base = brb::cli::config_from_flags(flags);
  if (!flags.has("tasks")) base.num_tasks = paper ? 150'000 : 30'000;
  const std::vector<std::uint64_t> seeds =
      brb::cli::seeds_from_flags(flags, paper ? 4 : 2);

  std::cout << "# Ablation: replication factor, task latency p99 (ms), " << seeds.size()
            << " seeds x " << base.num_tasks << " tasks\n\n";

  // (replication -> system -> aggregate), printed in ascending order.
  const brb::cli::ScenarioSpec* sweep = brb::cli::find_scenario("replication-sweep");
  std::map<std::uint32_t, std::map<SystemKind, AggregateResult>> by_replication;
  for (const brb::cli::ExperimentCase& experiment : sweep->expand(base, flags)) {
    by_replication[experiment.config.replication][experiment.config.system] =
        brb::core::run_seeds(experiment.config, seeds);
    std::cerr << "[replication] " << experiment.label << " done\n";
  }
  brb::stats::Table replication_table({"R", "C3 p99", "credits p99", "model p99",
                                       "credits/model gap"});
  for (const auto& [replication, by_system] : by_replication) {
    const auto c3 = by_system.find(SystemKind::kC3);
    const auto credits = by_system.find(SystemKind::kEqualMaxCredits);
    const auto model = by_system.find(SystemKind::kEqualMaxModel);
    if (c3 == by_system.end() || credits == by_system.end() || model == by_system.end()) {
      std::cerr << "[replication] R=" << replication
                << " skipped in table (needs c3 + equalmax-credits + equalmax-model)\n";
      continue;
    }
    replication_table.add_row(
        {std::to_string(replication), brb::stats::fmt_double(c3->second.p99_ms.mean(), 3),
         brb::stats::fmt_double(credits->second.p99_ms.mean(), 3),
         brb::stats::fmt_double(model->second.p99_ms.mean(), 3),
         brb::stats::fmt_double(
             (credits->second.p99_ms.mean() / model->second.p99_ms.mean() - 1.0) * 100.0, 1) +
             "%"});
  }
  replication_table.print(std::cout);

  std::cout << "\n# Ablation: key-popularity skew (Zipf exponent), p99 (ms)\n\n";
  // The registry's replication-skew scenario provides the cases, but
  // this figure keeps its historical defaults: the paper's R=3 (the
  // scenario's own nightly default is a thinner R=2) and the ideal
  // model alongside C3/credits. Synthesized flags carry those defaults
  // while still letting explicit --systems/--replication/--skews win.
  const brb::cli::ScenarioSpec* skew = brb::cli::find_scenario("replication-skew");
  std::vector<std::string> skew_args = {"bench_abl_replication"};
  // Always mark --replication so the expander keeps base.replication
  // (user override or the paper's 3) instead of its R=2 default.
  skew_args.push_back("--replication=" + std::to_string(base.replication));
  skew_args.push_back("--systems=" +
                      flags.get("systems").value_or("c3,equalmax-credits,equalmax-model"));
  // Historical figure grid (the registry's own default is 0,0.9,1.2).
  skew_args.push_back("--skews=" + flags.get("skews").value_or("0,0.5,0.9,1.1"));
  std::vector<const char*> skew_argv;
  skew_argv.reserve(skew_args.size());
  for (const std::string& arg : skew_args) skew_argv.push_back(arg.c_str());
  const brb::util::Flags skew_flags(static_cast<int>(skew_argv.size()), skew_argv.data());

  std::map<std::string, std::map<SystemKind, AggregateResult>> by_skew;
  std::vector<std::string> skew_order;
  for (const brb::cli::ExperimentCase& experiment : skew->expand(base, skew_flags)) {
    if (by_skew.find(experiment.config.key_spec) == by_skew.end()) {
      skew_order.push_back(experiment.config.key_spec);
    }
    by_skew[experiment.config.key_spec][experiment.config.system] =
        brb::core::run_seeds(experiment.config, seeds);
    std::cerr << "[skew] " << experiment.label << " done\n";
  }
  brb::stats::Table skew_table({"keys", "C3 p99", "credits p99", "model p99"});
  for (const std::string& spec : skew_order) {
    const auto& by_system = by_skew[spec];
    const auto cell = [&](SystemKind kind) {
      const auto it = by_system.find(kind);
      return it == by_system.end() ? std::string("n/a")
                                   : brb::stats::fmt_double(it->second.p99_ms.mean(), 3);
    };
    skew_table.add_row({spec, cell(SystemKind::kC3), cell(SystemKind::kEqualMaxCredits),
                        cell(SystemKind::kEqualMaxModel)});
  }
  skew_table.print(std::cout);
  std::cout << "\n# expectation: R=1 removes selection freedom (all systems converge\n"
               "# toward scheduling-only gains); higher skew widens the gap between\n"
               "# decentralized designs and the pooled ideal.\n";
  return 0;
}
