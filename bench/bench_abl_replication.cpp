// Ablation 6: replication factor and skew.
//
// Replica choice is BRB's spatial lever: with R=1 there is nothing to
// select and only scheduling remains; more replicas give selection more
// freedom (and the ideal model more pooling). The second table sweeps
// key-popularity skew: hotter groups strain decentralized designs.
// Flags: --tasks N --seeds N  (BRB_PAPER=1 for scale)
#include <iostream>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using brb::core::AggregateResult;
  using brb::core::ScenarioConfig;
  using brb::core::SystemKind;
  const brb::util::Flags flags(argc, argv);
  const bool paper = flags.get_bool("paper", false);

  ScenarioConfig base;
  base.num_tasks = static_cast<std::uint64_t>(flags.get_int("tasks", paper ? 150'000 : 30'000));
  const auto num_seeds = static_cast<std::uint64_t>(flags.get_int("seeds", paper ? 4 : 2));
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < num_seeds; ++s) seeds.push_back(s + 1);

  std::cout << "# Ablation: replication factor, task latency p99 (ms), " << seeds.size()
            << " seeds x " << base.num_tasks << " tasks\n\n";
  brb::stats::Table replication_table({"R", "C3 p99", "credits p99", "model p99",
                                       "credits/model gap"});
  for (const std::uint32_t replication : {1u, 2u, 3u, 5u, 9u}) {
    const auto run = [&](SystemKind kind) {
      ScenarioConfig config = base;
      config.system = kind;
      config.replication = replication;
      return brb::core::run_seeds(config, seeds);
    };
    const AggregateResult c3 = run(SystemKind::kC3);
    const AggregateResult credits = run(SystemKind::kEqualMaxCredits);
    const AggregateResult model = run(SystemKind::kEqualMaxModel);
    replication_table.add_row(
        {std::to_string(replication), brb::stats::fmt_double(c3.p99_ms.mean(), 3),
         brb::stats::fmt_double(credits.p99_ms.mean(), 3),
         brb::stats::fmt_double(model.p99_ms.mean(), 3),
         brb::stats::fmt_double((credits.p99_ms.mean() / model.p99_ms.mean() - 1.0) * 100.0, 1) +
             "%"});
    std::cerr << "[replication] R=" << replication << " done\n";
  }
  replication_table.print(std::cout);

  std::cout << "\n# Ablation: key-popularity skew (Zipf exponent), p99 (ms)\n\n";
  brb::stats::Table skew_table({"zipf s", "C3 p99", "credits p99", "model p99"});
  for (const double exponent : {0.0, 0.5, 0.9, 1.1}) {
    const auto run = [&](SystemKind kind) {
      ScenarioConfig config = base;
      config.system = kind;
      config.key_spec =
          exponent == 0.0 ? "uniform:100000" : "zipf:100000:" + std::to_string(exponent);
      return brb::core::run_seeds(config, seeds);
    };
    const AggregateResult c3 = run(SystemKind::kC3);
    const AggregateResult credits = run(SystemKind::kEqualMaxCredits);
    const AggregateResult model = run(SystemKind::kEqualMaxModel);
    skew_table.add_row({brb::stats::fmt_double(exponent, 1),
                        brb::stats::fmt_double(c3.p99_ms.mean(), 3),
                        brb::stats::fmt_double(credits.p99_ms.mean(), 3),
                        brb::stats::fmt_double(model.p99_ms.mean(), 3)});
    std::cerr << "[skew] s=" << exponent << " done\n";
  }
  skew_table.print(std::cout);
  std::cout << "\n# expectation: R=1 removes selection freedom (all systems converge\n"
               "# toward scheduling-only gains); higher skew widens the gap between\n"
               "# decentralized designs and the pooled ideal.\n";
  return 0;
}
