// Figure 1 reproduction: the didactic two-task schedule.
//
// Prints the observed per-server schedule and task completion times for
// the task-oblivious policy versus the two task-aware BRB policies.
// Expected (paper): task-oblivious lets T2 finish only at ~2 time
// units; task-aware finishes T2 at ~1 unit without delaying T1.
#include <cstdio>
#include <iostream>

#include "core/fig1.hpp"
#include "stats/table.hpp"

int main() {
  std::cout << "# Figure 1: task-oblivious vs task-aware scheduling\n";
  std::cout << "# T1=[A,B,C], T2=[D,E]; S1={A,E}, S2={B,C}, S3={D}; unit-cost requests\n";
  std::cout << "# (0.1-unit warm-up on S1 so both A and E are queued at decision time)\n\n";

  for (const char* policy : {"fifo", "equalmax", "unifincr"}) {
    const brb::core::Fig1Result result = brb::core::run_fig1(policy);
    std::cout << "policy: " << policy << "\n";
    brb::stats::Table table({"request", "server", "start", "end"});
    for (const auto& entry : result.schedule) {
      table.add_row({entry.key, entry.server, brb::stats::fmt_double(entry.start_units, 2),
                     brb::stats::fmt_double(entry.end_units, 2)});
    }
    table.print(std::cout);
    std::cout << "T1 completes at " << brb::stats::fmt_double(result.t1_completion_units, 2)
              << " units, T2 completes at "
              << brb::stats::fmt_double(result.t2_completion_units, 2) << " units\n\n";
  }

  const auto fifo = brb::core::run_fig1("fifo");
  const auto equalmax = brb::core::run_fig1("equalmax");
  const auto unifincr = brb::core::run_fig1("unifincr");
  std::cout << "summary: T2 completion  fifo=" << brb::stats::fmt_double(fifo.t2_completion_units, 2)
            << "  equalmax=" << brb::stats::fmt_double(equalmax.t2_completion_units, 2)
            << "  unifincr=" << brb::stats::fmt_double(unifincr.t2_completion_units, 2) << "\n";
  std::cout << "paper:   T2 ends at 2 units (oblivious) vs 1 unit (optimal); T1 unaffected\n";
  return 0;
}
