// Figure 1 reproduction: the didactic two-task schedule.
//
// Expected (paper): task-oblivious lets T2 finish only at ~2 time
// units; task-aware finishes T2 at ~1 unit without delaying T1.
// Thin wrapper: the presentation lives in core::print_fig1_report.
#include <iostream>

#include "core/fig1.hpp"

int main() {
  brb::core::print_fig1_report(std::cout);
  return 0;
}
