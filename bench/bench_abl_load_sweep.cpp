// Ablation 1: utilization sweep.
//
// Where does BRB's advantage over C3 grow, and when does the credits
// realization start to diverge from the ideal model? The paper pins
// Figure 2 at 70% utilization; this sweep maps the neighbourhood.
//
// The sweep itself lives in the `brbsim` scenario registry
// ("load-sweep") — this harness only expands that scenario, runs it,
// and prints the C3/credits/model ratio table the figure wants.
// Flags: --tasks N --seeds N --loads a,b,c  (BRB_PAPER=1 for scale)
#include <iostream>
#include <map>
#include <utility>
#include <vector>

#include "cli/driver.hpp"
#include "cli/scenario_registry.hpp"
#include "core/scenario.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using brb::core::AggregateResult;
  using brb::core::ScenarioConfig;
  using brb::core::SystemKind;
  const brb::util::Flags flags(argc, argv);
  const bool paper = flags.get_bool("paper", false);

  ScenarioConfig base = brb::cli::config_from_flags(flags);
  if (!flags.has("tasks")) base.num_tasks = paper ? 150'000 : 30'000;
  const std::vector<std::uint64_t> seeds =
      brb::cli::seeds_from_flags(flags, paper ? 4 : 2);

  const brb::cli::ScenarioSpec* scenario = brb::cli::find_scenario("load-sweep");
  const std::vector<brb::cli::ExperimentCase> cases = scenario->expand(base, flags);

  std::cout << "# Ablation: utilization sweep, task latency p99 (ms), " << seeds.size()
            << " seeds x " << base.num_tasks << " tasks\n\n";

  // (utilization -> system -> aggregate); the table prints in
  // ascending-utilization order whatever order --loads gave.
  std::map<double, std::map<SystemKind, AggregateResult>> by_util;
  for (const brb::cli::ExperimentCase& experiment : cases) {
    by_util[experiment.config.utilization][experiment.config.system] =
        brb::core::run_seeds(experiment.config, seeds);
    std::cerr << "[load] " << experiment.label << " done\n";
  }

  brb::stats::Table table({"util", "C3 p99", "credits p99", "model p99", "C3/credits",
                           "credits/model gap"});
  for (const auto& [util, by_system] : by_util) {
    const auto c3 = by_system.find(SystemKind::kC3);
    const auto credits = by_system.find(SystemKind::kEqualMaxCredits);
    const auto model = by_system.find(SystemKind::kEqualMaxModel);
    if (c3 == by_system.end() || credits == by_system.end() || model == by_system.end()) {
      std::cerr << "[load] util=" << util
                << " skipped in table (needs c3 + equalmax-credits + equalmax-model)\n";
      continue;
    }
    table.add_row({brb::stats::fmt_double(util, 2),
                   brb::stats::fmt_double(c3->second.p99_ms.mean(), 3),
                   brb::stats::fmt_double(credits->second.p99_ms.mean(), 3),
                   brb::stats::fmt_double(model->second.p99_ms.mean(), 3),
                   brb::stats::fmt_ratio(c3->second.p99_ms.mean() / credits->second.p99_ms.mean()),
                   brb::stats::fmt_double((credits->second.p99_ms.mean() /
                                               model->second.p99_ms.mean() -
                                           1.0) *
                                              100.0,
                                          1) +
                       "%"});
  }
  table.print(std::cout);
  std::cout << "\n# expectation: C3/credits grows with load; credits tracks model until\n"
               "# high load, where decentralized queues and grant lag bite.\n";
  return 0;
}
