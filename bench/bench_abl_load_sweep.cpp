// Ablation 1: utilization sweep.
//
// Where does BRB's advantage over C3 grow, and when does the credits
// realization start to diverge from the ideal model? The paper pins
// Figure 2 at 70% utilization; this sweep maps the neighbourhood.
// Flags: --tasks N --seeds N  (BRB_PAPER=1 for scale)
#include <iostream>
#include <vector>

#include "core/scenario.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using brb::core::AggregateResult;
  using brb::core::ScenarioConfig;
  using brb::core::SystemKind;
  const brb::util::Flags flags(argc, argv);
  const bool paper = flags.get_bool("paper", false);

  ScenarioConfig base;
  base.num_tasks = static_cast<std::uint64_t>(flags.get_int("tasks", paper ? 150'000 : 30'000));
  const auto num_seeds = static_cast<std::uint64_t>(flags.get_int("seeds", paper ? 4 : 2));
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < num_seeds; ++s) seeds.push_back(s + 1);

  const std::vector<double> loads = {0.50, 0.60, 0.70, 0.80, 0.90};

  std::cout << "# Ablation: utilization sweep, task latency p99 (ms), " << seeds.size()
            << " seeds x " << base.num_tasks << " tasks\n\n";
  brb::stats::Table table({"util", "C3 p99", "credits p99", "model p99", "C3/credits",
                           "credits/model gap"});
  for (const double util : loads) {
    const auto run = [&](SystemKind kind) {
      ScenarioConfig config = base;
      config.system = kind;
      config.utilization = util;
      return brb::core::run_seeds(config, seeds);
    };
    const AggregateResult c3 = run(SystemKind::kC3);
    const AggregateResult credits = run(SystemKind::kEqualMaxCredits);
    const AggregateResult model = run(SystemKind::kEqualMaxModel);
    table.add_row({brb::stats::fmt_double(util, 2),
                   brb::stats::fmt_double(c3.p99_ms.mean(), 3),
                   brb::stats::fmt_double(credits.p99_ms.mean(), 3),
                   brb::stats::fmt_double(model.p99_ms.mean(), 3),
                   brb::stats::fmt_ratio(c3.p99_ms.mean() / credits.p99_ms.mean()),
                   brb::stats::fmt_double(
                       (credits.p99_ms.mean() / model.p99_ms.mean() - 1.0) * 100.0, 1) +
                       "%"});
    std::cerr << "[load] util=" << util << " done\n";
  }
  table.print(std::cout);
  std::cout << "\n# expectation: C3/credits grows with load; credits tracks model until\n"
               "# high load, where decentralized queues and grant lag bite.\n";
  return 0;
}
