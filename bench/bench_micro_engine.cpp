// Engine micro-benchmarks + the perf-trajectory artifact.
//
// Self-contained (no google-benchmark dependency): times the substrate
// pieces the figure-scale simulations lean on, then measures headline
// engine throughput — events/second of a full paper-scenario credits
// run — and writes `BENCH_engine.json` so CI can track the trajectory
// against the checked-in pre-refactor baseline.
//
//   bench_micro_engine [--tasks N] [--json BENCH_engine.json] [--quick]
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "ctrl/signal_table.hpp"
#include "policy/c3.hpp"
#include "server/backend_server.hpp"
#include "server/queue_discipline.hpp"
#include "server/service_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "stats/report.hpp"
#include "stats/table.hpp"
#include "store/partitioner.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "workload/task_gen.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// Throughput of the pre-refactor engine on the reference measurement
/// below (equalmax-credits paper scenario, 60k tasks, seed 1),
/// recorded before the dense-ID refactor landed. CI compares the
/// current measurement against this to keep the 2x win from eroding.
constexpr double kBaselineEventsPerSec = 1'748'891.0;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct MicroResult {
  std::string name;
  double ops_per_sec = 0.0;
};

template <typename Body>
MicroResult run_micro(const std::string& name, std::uint64_t ops, Body&& body) {
  const auto start = Clock::now();
  body();
  const double elapsed = seconds_since(start);
  return {name, elapsed > 0 ? static_cast<double>(ops) / elapsed : 0.0};
}

MicroResult bench_event_queue_push_pop(std::uint64_t rounds) {
  brb::sim::EventQueue queue;
  brb::util::Rng rng(1);
  const std::uint64_t batch = 1024;
  return run_micro("event_queue_push_pop", rounds * batch, [&] {
    for (std::uint64_t r = 0; r < rounds; ++r) {
      for (std::uint64_t i = 0; i < batch; ++i) {
        queue.push(brb::sim::Time::nanos(rng.uniform_int(0, 1'000'000)), [] {});
      }
      while (auto entry = queue.pop()) {
        if (entry->when.count_nanos() < 0) std::abort();  // keep the loop live
      }
    }
  });
}

MicroResult bench_event_queue_cancel(std::uint64_t rounds) {
  // Schedule/cancel churn: every event is cancelled before it can run.
  // O(log n) cancellation keeps this linear in the event count; the
  // seed-era linear scan made it quadratic.
  brb::sim::EventQueue queue;
  brb::util::Rng rng(2);
  const std::uint64_t batch = 1024;
  std::vector<brb::sim::EventId> ids(batch);
  return run_micro("event_queue_cancel", rounds * batch, [&] {
    for (std::uint64_t r = 0; r < rounds; ++r) {
      for (std::uint64_t i = 0; i < batch; ++i) {
        ids[i] = queue.push(brb::sim::Time::nanos(rng.uniform_int(0, 1'000'000)), [] {});
      }
      for (std::uint64_t i = 0; i < batch; ++i) {
        if (!queue.cancel(ids[i])) std::abort();
      }
    }
  });
}

MicroResult bench_wheel_short_delta_push_pop(std::uint64_t rounds) {
  // Steady-state wheel traffic: every push lands a short delta ahead
  // of the advancing cursor (levels 0-1), every pop drains in tick
  // order — the pattern network deliveries and service completions
  // produce at paper scale. Everything stays wheel-resident, so this
  // isolates the O(1) link/unlink path from the heap tier.
  brb::sim::EventQueue queue;
  brb::util::Rng rng(3);
  const std::uint64_t batch = 1024;
  std::int64_t now = 0;
  return run_micro("wheel_short_delta_push_pop", rounds * batch, [&] {
    for (std::uint64_t r = 0; r < rounds; ++r) {
      for (std::uint64_t i = 0; i < batch; ++i) {
        queue.push(brb::sim::Time::nanos(now + rng.uniform_int(4'096, 1'000'000)), [] {});
      }
      if (queue.wheel_resident() + queue.heap_resident() != batch) std::abort();
      while (auto entry = queue.pop()) now = entry->when.count_nanos();
    }
  });
}

MicroResult bench_wheel_cascade(std::uint64_t rounds) {
  // Far-delta events (levels 2-3): each pop first lazily relinks the
  // event down through the lower levels — the full cascade path, cost
  // amortized O(1) but with the worst constant the wheel has.
  brb::sim::EventQueue queue;
  brb::util::Rng rng(4);
  const std::uint64_t batch = 256;
  std::int64_t now = 0;
  return run_micro("wheel_cascade_far_delta", rounds * batch, [&] {
    for (std::uint64_t r = 0; r < rounds; ++r) {
      for (std::uint64_t i = 0; i < batch; ++i) {
        queue.push(brb::sim::Time::nanos(now + rng.uniform_int(300'000'000, 50'000'000'000)),
                   [] {});
      }
      while (auto entry = queue.pop()) now = entry->when.count_nanos();
    }
  });
}

MicroResult bench_event_queue_cancel_heap(std::uint64_t rounds) {
  // Same churn as event_queue_cancel but with every event beyond the
  // wheel horizon: cancel pays the O(log n) heap unlink instead of the
  // O(1) intrusive-list unlink, giving the two tiers' cancellation
  // costs side by side in the artifact.
  brb::sim::EventQueue queue;
  brb::util::Rng rng(7);
  const std::int64_t horizon_ns = brb::sim::EventQueue::kWheelSpanTicks
                                  << brb::sim::EventQueue::kGranularityBits;
  const std::uint64_t batch = 1024;
  std::vector<brb::sim::EventId> ids(batch);
  return run_micro("event_queue_cancel_heap", rounds * batch, [&] {
    for (std::uint64_t r = 0; r < rounds; ++r) {
      for (std::uint64_t i = 0; i < batch; ++i) {
        ids[i] = queue.push(
            brb::sim::Time::nanos(horizon_ns + rng.uniform_int(0, 1'000'000)), [] {});
      }
      if (queue.heap_resident() != batch) std::abort();
      for (std::uint64_t i = 0; i < batch; ++i) {
        if (!queue.cancel(ids[i])) std::abort();
      }
    }
  });
}

MicroResult bench_batch_drain_same_timestamp(std::uint64_t rounds) {
  // Same-timestamp burst delivery: pop_batch takes the whole
  // coincident group in one call and claim() hands out each callback
  // without re-touching the queue's ordering structures per event —
  // the path Simulator::run() drives for every batch.
  brb::sim::EventQueue queue;
  const std::uint64_t batch = 1024;
  std::vector<brb::sim::EventQueue::Ready> ready;
  brb::sim::EventQueue::Callback fn;
  std::int64_t now = 0;
  std::uint64_t ran = 0;
  MicroResult result = run_micro("batch_drain_same_timestamp", rounds * batch, [&] {
    for (std::uint64_t r = 0; r < rounds; ++r) {
      now += 1'000'000;
      for (std::uint64_t i = 0; i < batch; ++i) {
        queue.push(brb::sim::Time::nanos(now), [&ran] { ++ran; });
      }
      ready.clear();
      if (!queue.pop_batch(ready) || ready.size() != batch) std::abort();
      for (const auto& ev : ready) {
        if (!queue.claim(ev, fn)) std::abort();
        fn();
        fn.reset();
      }
    }
  });
  if (ran != rounds * batch) std::abort();
  return result;
}

MicroResult bench_simulator_self_scheduling(std::uint64_t rounds) {
  const std::uint64_t chain = 10'000;
  return run_micro("simulator_self_scheduling", rounds * chain, [&] {
    for (std::uint64_t r = 0; r < rounds; ++r) {
      brb::sim::Simulator sim;
      std::uint64_t remaining = chain;
      std::function<void()> tick = [&] {
        if (--remaining > 0) sim.schedule_after(brb::sim::Duration::nanos(100), [&tick] { tick(); });
      };
      sim.schedule_after(brb::sim::Duration::nanos(100), [&tick] { tick(); });
      sim.run();
    }
  });
}

MicroResult bench_priority_discipline(std::uint64_t rounds) {
  brb::server::PriorityDiscipline discipline;
  brb::util::Rng rng(5);
  const std::uint64_t batch = 512;
  return run_micro("priority_discipline", rounds * batch, [&] {
    for (std::uint64_t r = 0; r < rounds; ++r) {
      for (std::uint64_t i = 0; i < batch; ++i) {
        brb::server::QueuedRead read;
        read.request.priority = rng.uniform();
        discipline.push(std::move(read));
      }
      while (auto read = discipline.pop()) {
        if (read->request.priority < 0) std::abort();
      }
    }
  });
}

MicroResult bench_c3_scoring(std::uint64_t ops) {
  brb::policy::C3Config config;
  config.num_clients = 18;
  brb::policy::C3Selector selector(config);
  const std::vector<brb::store::ServerId> replicas = {0, 1, 2};
  brb::store::ServerFeedback feedback;
  feedback.queue_length = 3;
  feedback.service_rate = 14'000.0;
  feedback.service_time = brb::sim::Duration::micros(280);
  for (brb::store::ServerId s : replicas) {
    selector.on_send(s, brb::sim::Duration::micros(280));
    selector.on_response(s, feedback, brb::sim::Duration::micros(500),
                         brb::sim::Duration::micros(280));
  }
  std::uint64_t sink = 0;
  MicroResult result = run_micro("c3_scoring", ops, [&] {
    for (std::uint64_t i = 0; i < ops; ++i) {
      sink += selector.select(replicas, brb::sim::Duration::micros(280));
    }
  });
  if (sink == 0xffff'ffff) std::abort();
  return result;
}

MicroResult bench_signal_table_update(std::uint64_t ops) {
  // One on_send + on_response round trip per op, cycling a paper-sized
  // 9-server table — the full per-request bookkeeping the unified
  // control-plane feedback path performs (in-flight counts, pending
  // cost, three EWMAs). The engine hot path pays exactly this per
  // request, so a regression here shows up before the headline number.
  brb::ctrl::SignalTable table;
  brb::store::ServerFeedback feedback;
  feedback.queue_length = 3;
  feedback.service_rate = 14'000.0;
  feedback.service_time = brb::sim::Duration::micros(280);
  const brb::sim::Duration cost = brb::sim::Duration::micros(280);
  const brb::sim::Duration rtt = brb::sim::Duration::micros(500);
  MicroResult result = run_micro("signal_table_update", ops, [&] {
    for (std::uint64_t i = 0; i < ops; ++i) {
      const auto server = static_cast<brb::store::ServerId>(i % 9);
      table.on_send(server, cost);
      table.on_response(server, feedback, rtt, cost);
    }
  });
  if (table.responses_recorded() != ops) std::abort();  // keep the loop live
  return result;
}

MicroResult bench_task_gen_fill(std::uint64_t tasks_target) {
  // Block-filled task generation at the paper's default workload:
  // Zipf(0.9) keys over 100k, lognormal fan-out, gpareto sizes,
  // Poisson arrivals — the exact distributions the headline engine run
  // draws from. Ops are whole tasks (each task internally draws its
  // gap, fan-out, and `fanout` distinct keys into the block slab).
  const auto sizes = brb::workload::make_size_distribution("gpareto");
  const auto keys = brb::workload::make_key_distribution("zipf:100000:0.9");
  const auto fanout = brb::workload::make_fanout_distribution("lognormal:8.6:2.0:512");
  brb::workload::Dataset dataset(keys->num_keys(), *sizes, brb::util::Rng(11));
  brb::workload::TaskGenerator::Config cfg;
  brb::workload::TaskGenerator gen(cfg, dataset, *keys, *fanout,
                                   std::make_unique<brb::workload::PoissonArrivals>(14'000.0),
                                   brb::util::Rng(12));
  brb::workload::TaskBlock block;
  const std::uint64_t blocks = tasks_target / 256;
  std::uint64_t requests = 0;
  MicroResult result = run_micro("task_gen_fill", blocks * 256, [&] {
    for (std::uint64_t r = 0; r < blocks; ++r) {
      gen.fill_block(block, 256);
      requests += block.pool.size();
    }
  });
  if (requests == 0) std::abort();  // keep the loop live
  return result;
}

MicroResult bench_service_start(std::uint64_t ops) {
  // The devirtualized service fast path end-to-end: receive -> FIFO
  // ring push/pop -> inline service-time draw -> completion
  // event -> pump. A closed loop of 8 outstanding requests keeps all 4
  // cores busy, so every op is one full queued-service round trip.
  brb::sim::Simulator sim;
  brb::server::BackendServer::Config cfg;
  cfg.cores = 4;
  const auto model = brb::server::SizeLinearServiceModel::calibrate(
      14'000.0, 4096.0, brb::sim::Duration::micros(5), 0.0);
  brb::server::BackendServer server(sim, cfg, model, brb::util::Rng(13));
  server.use_private_queue(std::make_unique<brb::server::FifoDiscipline>());
  for (std::uint32_t k = 0; k < 1024; ++k) server.storage().put_meta(k, 512 + (7 * k) % 8192);
  std::uint64_t sent = 0;
  const auto send_one = [&] {
    brb::store::ReadRequest request;
    request.request_id = sent;
    request.task_id = sent;
    request.key = static_cast<brb::store::KeyId>(sent % 1024);
    request.client = 0;
    ++sent;
    server.receive(request);
  };
  server.set_response_handler([&](const brb::store::ReadResponse&) {
    if (sent < ops) send_one();
  });
  MicroResult result = run_micro("service_start", ops, [&] {
    sim.schedule_at(brb::sim::Time::zero(), [&] {
      for (int i = 0; i < 8; ++i) send_one();
    });
    sim.run();
  });
  if (server.stats().served != ops) std::abort();
  return result;
}

MicroResult bench_ring_partitioner(std::uint64_t ops) {
  brb::store::RingPartitioner partitioner(9, 3);
  brb::util::Rng rng(6);
  std::uint64_t sink = 0;
  MicroResult result = run_micro("ring_partitioner_lookup", ops, [&] {
    for (std::uint64_t i = 0; i < ops; ++i) {
      sink += partitioner.replicas_for_key(static_cast<brb::store::KeyId>(rng.next_u64())).front();
    }
  });
  if (sink == 0xffff'ffff) std::abort();
  return result;
}

/// Headline number: events/second of a full credits run at paper scale
/// (the measurement `kBaselineEventsPerSec` was recorded against).
struct EngineResult {
  double events_per_sec = 0.0;
  std::uint64_t events_processed = 0;
  std::uint64_t requests_completed = 0;
  double wall_seconds = 0.0;
  std::uint64_t tasks = 0;
};

EngineResult bench_engine_paper_scenario(std::uint64_t tasks, int repeats) {
  // Best-of-N: throughput measurements on shared machines are noisy
  // downward only, so the fastest repeat is the least-perturbed one.
  EngineResult result;
  result.tasks = tasks;
  for (int r = 0; r < repeats; ++r) {
    brb::core::ScenarioConfig config;  // paper defaults, 9x18 cluster
    config.system = brb::core::SystemKind::kEqualMaxCredits;
    config.num_tasks = tasks;
    config.seed = 1;
    const brb::core::RunResult run = brb::core::run_scenario(config);
    const double events_per_sec =
        run.wall_seconds > 0 ? static_cast<double>(run.events_processed) / run.wall_seconds : 0.0;
    if (events_per_sec > result.events_per_sec) {
      result.events_per_sec = events_per_sec;
      result.events_processed = run.events_processed;
      result.requests_completed = run.requests_completed;
      result.wall_seconds = run.wall_seconds;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const brb::util::Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  const std::uint64_t tasks = flags.get_uint("tasks", quick ? 10'000 : 60'000);
  const std::uint64_t rounds = quick ? 200 : 2'000;
  const std::uint64_t ops = quick ? 200'000 : 2'000'000;

  std::vector<MicroResult> micro;
  micro.push_back(bench_event_queue_push_pop(rounds));
  micro.push_back(bench_event_queue_cancel(rounds));
  micro.push_back(bench_wheel_short_delta_push_pop(rounds));
  micro.push_back(bench_wheel_cascade(rounds));
  micro.push_back(bench_event_queue_cancel_heap(rounds));
  micro.push_back(bench_batch_drain_same_timestamp(rounds));
  micro.push_back(bench_simulator_self_scheduling(quick ? 20 : 200));
  micro.push_back(bench_priority_discipline(rounds));
  micro.push_back(bench_c3_scoring(ops));
  micro.push_back(bench_signal_table_update(ops));
  micro.push_back(bench_ring_partitioner(ops));
  // The two gated rows (see check_claims.py --engine-budget) get the
  // same best-of-N treatment as the headline: single-pass micros swing
  // ~15% on a shared container, which is wider than the -6% budget.
  const auto best_of = [quick](auto&& bench_fn) {
    MicroResult best = bench_fn();
    for (int r = 1; r < (quick ? 1 : 3); ++r) {
      MicroResult again = bench_fn();
      if (again.ops_per_sec > best.ops_per_sec) best = again;
    }
    return best;
  };
  micro.push_back(best_of([&] { return bench_task_gen_fill(quick ? 25'600 : 256'000); }));
  micro.push_back(best_of([&] { return bench_service_start(ops / 2); }));

  std::cerr << "[bench] micro done; engine run (" << tasks << " tasks)...\n";
  const EngineResult engine = bench_engine_paper_scenario(tasks, quick ? 1 : 3);
  // The baseline constant was recorded at the default config (60k
  // tasks, best-of-3); a ratio against any other config would not
  // compare like with like.
  const bool comparable = !quick && tasks == 60'000;

  brb::stats::Table table({"benchmark", "ops/sec"});
  for (const MicroResult& m : micro) {
    table.add_row({m.name, brb::stats::fmt_double(m.ops_per_sec, 0)});
  }
  table.add_row({"engine_events_per_sec", brb::stats::fmt_double(engine.events_per_sec, 0)});
  table.print(std::cout);

  // Per-phase cycle accounting for the headline run: each phase's
  // estimated share of the engine wall is (scenario count) / (micro
  // rate) for the micro bench that isolates that phase. Estimates, not
  // measurements — micro loops are cache-hot and the engine run is not
  // — but the fractions show where the next point of leverage is.
  const auto micro_rate = [&micro](const std::string& name) {
    for (const MicroResult& m : micro) {
      if (m.name == name) return m.ops_per_sec;
    }
    return 0.0;
  };
  struct Phase {
    const char* name;
    const char* micro_name;
    std::uint64_t count;
  };
  const Phase phases[] = {
      {"task_gen", "task_gen_fill", engine.tasks},
      {"service", "service_start", engine.requests_completed},
      {"event_queue", "wheel_short_delta_push_pop", engine.events_processed},
      {"policy_feedback", "signal_table_update", engine.requests_completed},
  };
  double accounted_seconds = 0.0;
  brb::stats::Json phases_json = brb::stats::Json::object();
  brb::stats::Table phase_table({"phase", "count", "est_seconds", "frac_of_wall"});
  for (const Phase& p : phases) {
    const double rate = micro_rate(p.micro_name);
    const double est = rate > 0 ? static_cast<double>(p.count) / rate : 0.0;
    accounted_seconds += est;
    const double frac = engine.wall_seconds > 0 ? est / engine.wall_seconds : 0.0;
    phase_table.add_row({p.name, std::to_string(p.count), brb::stats::fmt_double(est, 4),
                         brb::stats::fmt_double(frac, 3)});
    brb::stats::Json entry = brb::stats::Json::object();
    entry["micro"] = p.micro_name;
    entry["count"] = p.count;
    entry["est_seconds"] = est;
    entry["fraction_of_wall"] = frac;
    phases_json[p.name] = std::move(entry);
  }
  const double other_seconds = engine.wall_seconds - accounted_seconds;
  phase_table.add_row({"other", "-", brb::stats::fmt_double(other_seconds, 4),
                       brb::stats::fmt_double(
                           engine.wall_seconds > 0 ? other_seconds / engine.wall_seconds : 0.0,
                           3)});
  phase_table.print(std::cout);
  std::cout << "engine: " << engine.events_processed << " events in " << engine.wall_seconds
            << " s = " << engine.events_per_sec << " events/sec";
  if (comparable) {
    std::cout << " (" << engine.events_per_sec / kBaselineEventsPerSec
              << "x pre-refactor baseline)";
  } else {
    std::cout << " (no baseline comparison: non-default --tasks/--quick)";
  }
  std::cout << "\n";

  if (const auto json_path = flags.get("json")) {
    brb::stats::Json root = brb::stats::Json::object();
    root["tool"] = "bench_micro_engine";
    brb::stats::Json engine_json = brb::stats::Json::object();
    engine_json["scenario"] = "paper/equalmax-credits";
    engine_json["tasks"] = engine.tasks;
    engine_json["events_processed"] = engine.events_processed;
    engine_json["requests_completed"] = engine.requests_completed;
    engine_json["wall_seconds"] = engine.wall_seconds;
    engine_json["events_per_sec"] = engine.events_per_sec;
    if (comparable) {
      engine_json["baseline_events_per_sec"] = kBaselineEventsPerSec;
      engine_json["speedup_vs_baseline"] = engine.events_per_sec / kBaselineEventsPerSec;
    } else {
      engine_json["baseline_events_per_sec"] = brb::stats::Json();  // null: config mismatch
      engine_json["speedup_vs_baseline"] = brb::stats::Json();
    }
    root["engine"] = std::move(engine_json);
    brb::stats::Json micro_json = brb::stats::Json::object();
    for (const MicroResult& m : micro) micro_json[m.name] = m.ops_per_sec;
    root["micro_ops_per_sec"] = std::move(micro_json);
    brb::stats::Json accounting = brb::stats::Json::object();
    accounting["note"] =
        "estimated decomposition of the headline run's wall time: phase count / micro rate "
        "(micro loops are cache-hot, so fractions are lower bounds on real phase cost)";
    accounting["wall_seconds"] = engine.wall_seconds;
    accounting["accounted_seconds"] = accounted_seconds;
    accounting["other_seconds"] = other_seconds;
    accounting["phases"] = std::move(phases_json);
    root["phase_accounting"] = std::move(accounting);
    std::ofstream os(*json_path);
    if (!os) {
      std::cerr << "bench_micro_engine: cannot write " << *json_path << "\n";
      return 1;
    }
    root.dump(os);
    os << "\n";
    std::cout << "wrote " << *json_path << "\n";
  }
  return 0;
}
