// Micro-benchmarks (google-benchmark): throughput of the substrate
// pieces the figure-scale simulations lean on. Not a paper figure —
// these guard against performance regressions that would make the
// paper-scale runs impractical.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "policy/c3.hpp"
#include "server/queue_discipline.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "stats/histogram.hpp"
#include "stats/quantile.hpp"
#include "store/partitioner.hpp"
#include "util/rng.hpp"
#include "workload/fanout_dist.hpp"
#include "workload/size_dist.hpp"

namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  brb::sim::EventQueue queue;
  brb::util::Rng rng(1);
  const int batch = 1024;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      queue.push(brb::sim::Time::nanos(rng.uniform_int(0, 1'000'000)), [] {});
    }
    while (auto entry = queue.pop()) benchmark::DoNotOptimize(entry->when);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_SimulatorSelfScheduling(benchmark::State& state) {
  for (auto _ : state) {
    brb::sim::Simulator sim;
    int remaining = 10'000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.schedule_after(brb::sim::Duration::nanos(100), tick);
    };
    sim.schedule_after(brb::sim::Duration::nanos(100), tick);
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorSelfScheduling);

void BM_HistogramRecord(benchmark::State& state) {
  brb::stats::Histogram histogram;
  brb::util::Rng rng(2);
  for (auto _ : state) {
    histogram.record(rng.uniform_int(1, 100'000'000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramQuantile(benchmark::State& state) {
  brb::stats::Histogram histogram;
  brb::util::Rng rng(3);
  for (int i = 0; i < 1'000'000; ++i) histogram.record(rng.uniform_int(1, 100'000'000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram.value_at_quantile(0.99));
  }
}
BENCHMARK(BM_HistogramQuantile);

void BM_P2QuantileAdd(benchmark::State& state) {
  brb::stats::P2Quantile p2(0.99);
  brb::util::Rng rng(4);
  for (auto _ : state) {
    p2.add(rng.uniform());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_P2QuantileAdd);

void BM_PriorityDiscipline(benchmark::State& state) {
  brb::server::PriorityDiscipline discipline;
  brb::util::Rng rng(5);
  const int batch = 512;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      brb::server::QueuedRead read;
      read.request.priority = rng.uniform();
      discipline.push(std::move(read));
    }
    while (auto read = discipline.pop()) benchmark::DoNotOptimize(read->request.priority);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_PriorityDiscipline);

void BM_C3Scoring(benchmark::State& state) {
  brb::policy::C3Config config;
  config.num_clients = 18;
  brb::policy::C3Selector selector(config);
  const std::vector<brb::store::ServerId> replicas = {0, 1, 2};
  brb::store::ServerFeedback feedback;
  feedback.queue_length = 3;
  feedback.service_rate = 14'000.0;
  feedback.service_time = brb::sim::Duration::micros(280);
  for (brb::store::ServerId s : replicas) {
    selector.on_send(s, brb::sim::Duration::micros(280));
    selector.on_response(s, feedback, brb::sim::Duration::micros(500),
                         brb::sim::Duration::micros(280));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(replicas, brb::sim::Duration::micros(280)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_C3Scoring);

void BM_RingPartitionerLookup(benchmark::State& state) {
  brb::store::RingPartitioner partitioner(9, 3);
  brb::util::Rng rng(6);
  for (auto _ : state) {
    const auto key = static_cast<brb::store::KeyId>(rng.next_u64());
    benchmark::DoNotOptimize(partitioner.replicas_for_key(key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingPartitionerLookup);

void BM_ConsistentHashLookup(benchmark::State& state) {
  std::vector<brb::store::ServerId> servers;
  for (brb::store::ServerId s = 0; s < 9; ++s) servers.push_back(s);
  brb::store::ConsistentHashPartitioner partitioner(servers, 3, 64);
  brb::util::Rng rng(7);
  for (auto _ : state) {
    const auto key = static_cast<brb::store::KeyId>(rng.next_u64());
    benchmark::DoNotOptimize(partitioner.group_of(key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConsistentHashLookup);

void BM_GeneralizedParetoSample(benchmark::State& state) {
  brb::workload::GeneralizedParetoSizeDist dist;
  brb::util::Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GeneralizedParetoSample);

void BM_LogNormalFanoutSample(benchmark::State& state) {
  const auto dist = brb::workload::LogNormalFanout::for_mean(8.6, 2.0, 512);
  brb::util::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogNormalFanoutSample);

void BM_ZipfSample(benchmark::State& state) {
  brb::util::ZipfDistribution zipf(0.9, 100'000);
  brb::util::Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

}  // namespace

BENCHMARK_MAIN();
