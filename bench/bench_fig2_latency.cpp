// Figure 2 reproduction: task read latency at {median, 95th, 99th}
// percentile for C3, EqualMax-{Credits,Model}, UnifIncr-{Credits,Model},
// plus the paper's two headline claims (Claim A/B).
//
// Thin wrapper over the driver's plan layer: the five systems come
// from the registry's "paper" scenario, execution and the artifact
// table/claims are the driver's own. Defaults are a quick
// calibration-scale run; BRB_PAPER=1 (or --paper) switches to the
// paper's full 500k-task, 6-seed configuration.
// Flags: --tasks N --seeds N --utilization F --threads N --csv
#include <iostream>
#include <vector>

#include "cli/driver.hpp"
#include "stats/artifact.hpp"

int main(int argc, char** argv) {
  try {
    const brb::util::Flags flags(argc, argv);
    const bool paper = flags.get_bool("paper", false);

    const brb::core::ScenarioConfig base = brb::cli::config_from_flags(flags);
    const std::vector<std::uint64_t> seeds = brb::cli::seeds_from_flags(flags, paper ? 6 : 3);
    const brb::cli::SweepPlan plan = brb::cli::build_sweep_plan("paper", base, seeds, flags);

    std::cout << "# Figure 2: task latency percentiles (ms), averaged over " << seeds.size()
              << " seeds\n";
    std::cout << "# config: " << base.cluster.describe() << ", " << base.num_clients
              << " clients, " << base.num_tasks << " tasks, utilization " << base.utilization
              << ", fanout " << base.fanout_spec << ", sizes " << base.size_spec << "\n\n";

    brb::core::RunSeedsOptions options;
    options.max_threads = flags.get_bool("serial", false) ? 1 : flags.get_uint("threads", 0);
    const std::vector<brb::cli::CaseResult> results = brb::cli::execute_shard(
        plan, brb::cli::ShardSpec{}, options,
        [](const brb::cli::ExperimentCase& experiment, std::size_t) {
          std::cerr << "[fig2] finished " << experiment.label << "\n";
        });

    const brb::stats::Json doc = brb::cli::report_json("paper", base, seeds, results);
    if (flags.get_bool("csv", false)) {
      brb::stats::artifact_csv(std::cout, doc);
    } else {
      brb::cli::print_case_table(std::cout, doc);
    }
    return brb::cli::print_paper_claims(std::cout, doc) ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "fig2: " << e.what() << "\n";
    return 1;
  }
}
