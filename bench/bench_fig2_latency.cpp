// Figure 2 reproduction: task read latency at {median, 95th, 99th}
// percentile for C3, EqualMax-{Credits,Model}, UnifIncr-{Credits,Model}.
//
// Also prints the paper's two headline claims:
//   Claim A: credits within 38% of the ideal model at p99.
//   Claim B: BRB improves on C3 by up to 3x (median/p95), up to 2x (p99).
//
// Defaults are a quick calibration-scale run; BRB_PAPER=1 (or --paper)
// switches to the paper's full 500k-task, 6-seed configuration.
// Flags: --tasks N --seeds N --utilization F --csv
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"

namespace {

using brb::core::AggregateResult;
using brb::core::ScenarioConfig;
using brb::core::SystemKind;

struct SystemRow {
  SystemKind kind;
  std::string label;
};

}  // namespace

int main(int argc, char** argv) {
  const brb::util::Flags flags(argc, argv);
  const bool paper = flags.get_bool("paper", false);

  ScenarioConfig base;
  base.num_tasks = static_cast<std::uint64_t>(
      flags.get_int("tasks", paper ? 500'000 : 60'000));
  base.utilization = flags.get_double("utilization", 0.70);
  const auto num_seeds = static_cast<std::uint64_t>(flags.get_int("seeds", paper ? 6 : 3));
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < num_seeds; ++s) seeds.push_back(s + 1);

  std::cout << "# Figure 2: task latency percentiles (ms), averaged over " << seeds.size()
            << " seeds\n";
  std::cout << "# config: " << base.cluster.num_servers << " servers x "
            << base.cluster.cores_per_server << " cores @ " << base.cluster.service_rate_per_core
            << " req/s, " << base.num_clients << " clients, " << base.num_tasks
            << " tasks, utilization " << base.utilization << ", fanout " << base.fanout_spec
            << ", sizes " << base.size_spec << "\n\n";

  const std::vector<SystemRow> systems = {
      {SystemKind::kC3, "C3"},
      {SystemKind::kEqualMaxCredits, "EqualMax - Credits"},
      {SystemKind::kEqualMaxModel, "EqualMax - Model"},
      {SystemKind::kUnifIncrCredits, "UnifIncr - Credits"},
      {SystemKind::kUnifIncrModel, "UnifIncr - Model"},
  };

  brb::stats::Table table({"system", "median", "95th", "99th", "mean", "sd(p99)"});
  std::vector<AggregateResult> results;
  results.reserve(systems.size());
  for (const SystemRow& row : systems) {
    ScenarioConfig config = base;
    config.system = row.kind;
    AggregateResult agg = brb::core::run_seeds(config, seeds, /*parallel=*/true);
    table.add_row({row.label, brb::stats::fmt_double(agg.p50_ms.mean(), 3),
                   brb::stats::fmt_double(agg.p95_ms.mean(), 3),
                   brb::stats::fmt_double(agg.p99_ms.mean(), 3),
                   brb::stats::fmt_double(agg.mean_ms.mean(), 3),
                   brb::stats::fmt_double(agg.p99_ms.stddev(), 3)});
    results.push_back(std::move(agg));
    std::cerr << "[fig2] finished " << row.label << "\n";
  }

  if (flags.get_bool("csv", false)) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  // --- headline claims ---
  const AggregateResult& c3 = results[0];
  const AggregateResult& em_credits = results[1];
  const AggregateResult& em_model = results[2];
  const AggregateResult& ui_credits = results[3];
  const AggregateResult& ui_model = results[4];

  const double gap_em = em_credits.p99_ms.mean() / em_model.p99_ms.mean() - 1.0;
  const double gap_ui = ui_credits.p99_ms.mean() / ui_model.p99_ms.mean() - 1.0;
  std::cout << "\nClaim A (paper: credits within 38% of model at p99)\n";
  std::cout << "  EqualMax: credits/model p99 gap = " << brb::stats::fmt_double(gap_em * 100, 1)
            << "%\n";
  std::cout << "  UnifIncr: credits/model p99 gap = " << brb::stats::fmt_double(gap_ui * 100, 1)
            << "%\n";

  std::cout << "\nClaim B (paper: BRB vs C3 up to 3x at median/p95, up to 2x at p99)\n";
  const auto speedup = [&](const AggregateResult& brb_result, const char* name) {
    std::cout << "  C3 / " << name << ":  median "
              << brb::stats::fmt_ratio(c3.p50_ms.mean() / brb_result.p50_ms.mean()) << "  p95 "
              << brb::stats::fmt_ratio(c3.p95_ms.mean() / brb_result.p95_ms.mean()) << "  p99 "
              << brb::stats::fmt_ratio(c3.p99_ms.mean() / brb_result.p99_ms.mean()) << "\n";
  };
  speedup(em_credits, "EqualMax-Credits");
  speedup(ui_credits, "UnifIncr-Credits");
  speedup(em_model, "EqualMax-Model  ");
  speedup(ui_model, "UnifIncr-Model  ");
  return 0;
}
