// Ablation 3: credits controller cadence.
//
// The paper fixes adaptation at 1 s intervals with faster demand
// measurement. This sweep varies both; the interesting question is how
// slow the control loop can get before the credits realization falls
// away from the ideal model.
// Flags: --tasks N --seeds N  (BRB_PAPER=1 for scale)
#include <iostream>
#include <vector>

#include "core/scenario.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using brb::core::AggregateResult;
  using brb::core::ScenarioConfig;
  using brb::core::SystemKind;
  const brb::util::Flags flags(argc, argv);
  const bool paper = flags.get_bool("paper", false);

  ScenarioConfig base;
  base.num_tasks = static_cast<std::uint64_t>(flags.get_int("tasks", paper ? 150'000 : 30'000));
  const auto num_seeds = static_cast<std::uint64_t>(flags.get_int("seeds", paper ? 4 : 2));
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < num_seeds; ++s) seeds.push_back(s + 1);

  // Reference: the ideal model (no control loop at all).
  ScenarioConfig model_config = base;
  model_config.system = SystemKind::kEqualMaxModel;
  const AggregateResult model = brb::core::run_seeds(model_config, seeds);

  const std::vector<double> adapt_ms = {100, 250, 500, 1000, 2000, 4000};

  std::cout << "# Ablation: credits adaptation interval, task latency (ms), " << seeds.size()
            << " seeds x " << base.num_tasks << " tasks\n";
  std::cout << "# model reference p99 = " << brb::stats::fmt_double(model.p99_ms.mean(), 3)
            << " ms\n\n";
  brb::stats::Table table({"adapt interval", "median", "95th", "99th", "gap vs model p99",
                           "holds/run"});
  for (const double interval : adapt_ms) {
    ScenarioConfig config = base;
    config.system = SystemKind::kEqualMaxCredits;
    config.credits.adapt_interval = brb::sim::Duration::millis(interval);
    config.credits.measure_interval =
        brb::sim::Duration::millis(std::min(100.0, interval / 2.0));
    const AggregateResult agg = brb::core::run_seeds(config, seeds);
    double holds = 0.0;
    for (const auto& run : agg.runs) holds += static_cast<double>(run.credit_hold_events);
    holds /= static_cast<double>(agg.runs.size());
    table.add_row({brb::stats::fmt_double(interval, 0) + "ms",
                   brb::stats::fmt_double(agg.p50_ms.mean(), 3),
                   brb::stats::fmt_double(agg.p95_ms.mean(), 3),
                   brb::stats::fmt_double(agg.p99_ms.mean(), 3),
                   brb::stats::fmt_double(
                       (agg.p99_ms.mean() / model.p99_ms.mean() - 1.0) * 100.0, 1) +
                       "%",
                   brb::stats::fmt_double(holds, 1)});
    std::cerr << "[credits-interval] " << interval << "ms done\n";
  }
  table.print(std::cout);
  std::cout << "\n# paper operating point: 1000ms adaptation; gap should stay within ~38%.\n";
  return 0;
}
