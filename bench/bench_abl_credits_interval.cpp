// Ablation 3: credits controller cadence.
//
// The paper fixes adaptation at 1 s intervals with faster demand
// measurement. This sweep varies both; the interesting question is how
// slow the control loop can get before the credits realization falls
// away from the ideal model.
//
// The sweep itself lives in the `brbsim` scenario registry
// ("credits-interval") — this harness only expands that scenario, runs
// it, and prints the gap-vs-model table the figure wants.
// Flags: --tasks N --seeds N --intervals-ms a,b,c  (BRB_PAPER=1 for scale)
#include <iostream>
#include <vector>

#include "cli/driver.hpp"
#include "cli/scenario_registry.hpp"
#include "core/scenario.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using brb::core::AggregateResult;
  using brb::core::ScenarioConfig;
  using brb::core::SystemKind;
  const brb::util::Flags flags(argc, argv);
  const bool paper = flags.get_bool("paper", false);

  ScenarioConfig base = brb::cli::config_from_flags(flags);
  if (!flags.has("tasks")) base.num_tasks = paper ? 150'000 : 30'000;
  const std::vector<std::uint64_t> seeds =
      brb::cli::seeds_from_flags(flags, paper ? 4 : 2);

  const brb::cli::ScenarioSpec* scenario = brb::cli::find_scenario("credits-interval");
  const std::vector<brb::cli::ExperimentCase> cases = scenario->expand(base, flags);

  std::cout << "# Ablation: credits adaptation interval, task latency (ms), " << seeds.size()
            << " seeds x " << base.num_tasks << " tasks\n";

  // The expander emits the model reference first, then one credits
  // case per interval (in --intervals-ms order).
  double model_p99 = 0.0;
  brb::stats::Table table({"case", "median", "95th", "99th", "gap vs model p99", "holds/run"});
  for (const brb::cli::ExperimentCase& experiment : cases) {
    const AggregateResult agg = brb::core::run_seeds(experiment.config, seeds);
    if (experiment.config.system == SystemKind::kEqualMaxModel) {
      model_p99 = agg.p99_ms.mean();
      std::cout << "# model reference p99 = " << brb::stats::fmt_double(model_p99, 3)
                << " ms\n\n";
      std::cerr << "[credits-interval] model reference done\n";
      continue;
    }
    double holds = 0.0;
    for (const auto& run : agg.runs) holds += static_cast<double>(run.credit_hold_events);
    holds /= static_cast<double>(agg.runs.size());
    table.add_row({experiment.label, brb::stats::fmt_double(agg.p50_ms.mean(), 3),
                   brb::stats::fmt_double(agg.p95_ms.mean(), 3),
                   brb::stats::fmt_double(agg.p99_ms.mean(), 3),
                   model_p99 > 0.0
                       ? brb::stats::fmt_double((agg.p99_ms.mean() / model_p99 - 1.0) * 100.0, 1) +
                             "%"
                       : "n/a",
                   brb::stats::fmt_double(holds, 1)});
    std::cerr << "[credits-interval] " << experiment.label << " done\n";
  }
  table.print(std::cout);
  std::cout << "\n# paper operating point: 1000ms adaptation; gap should stay within ~38%.\n";
  return 0;
}
