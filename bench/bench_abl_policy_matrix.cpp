// Ablation 4: the full system matrix.
//
// Separates BRB's mechanisms: replica selection (random / LOR / C3),
// server scheduling (FIFO / priority / SJF), task-awareness (EqualMax,
// UnifIncr vs per-request SJF), dispatch (direct / credits / ideal
// global queue). The case set — all 13 SystemKinds plus the
// selector-override ablation on equalmax-direct — lives in the
// registry's "policy-matrix" scenario; this harness only expands that
// scenario through the plan layer, runs it, and prints the table with
// its mean-utilization column.
// Flags: --tasks N --seeds N --utilization F  (BRB_PAPER=1 for scale)
#include <iostream>
#include <vector>

#include "cli/driver.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  try {
    const brb::util::Flags flags(argc, argv);
    const bool paper = flags.get_bool("paper", false);

    brb::core::ScenarioConfig base = brb::cli::config_from_flags(flags);
    // get() (not has()) so a BRB_TASKS environment default survives.
    if (!flags.get("tasks")) base.num_tasks = paper ? 200'000 : 40'000;
    const std::vector<std::uint64_t> seeds = brb::cli::seeds_from_flags(flags, paper ? 4 : 2);
    const brb::cli::SweepPlan plan =
        brb::cli::build_sweep_plan("policy-matrix", base, seeds, flags);

    std::cout << "# Ablation: mechanism matrix, task latency (ms) over " << seeds.size()
              << " seeds, " << base.num_tasks << " tasks, utilization " << base.utilization
              << "\n\n";

    brb::core::RunSeedsOptions options;
    options.max_threads = flags.get_bool("serial", false) ? 1 : flags.get_uint("threads", 0);
    const std::vector<brb::cli::CaseResult> results = brb::cli::execute_shard(
        plan, brb::cli::ShardSpec{}, options,
        [](const brb::cli::ExperimentCase& experiment, std::size_t) {
          std::cerr << "[matrix] finished " << experiment.label << "\n";
        });

    brb::stats::Table table({"system", "median", "95th", "99th", "mean", "util"});
    for (const brb::cli::CaseResult& result : results) {
      const brb::core::AggregateResult& agg = result.aggregate;
      double util = 0.0;
      for (const auto& run : agg.runs) util += run.mean_utilization;
      util /= static_cast<double>(agg.runs.empty() ? 1 : agg.runs.size());
      table.add_row({result.spec.label, brb::stats::fmt_double(agg.p50_ms.mean(), 3),
                     brb::stats::fmt_double(agg.p95_ms.mean(), 3),
                     brb::stats::fmt_double(agg.p99_ms.mean(), 3),
                     brb::stats::fmt_double(agg.mean_ms.mean(), 3),
                     brb::stats::fmt_double(util, 3)});
    }
    if (flags.get_bool("csv", false)) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "matrix: " << e.what() << "\n";
    return 1;
  }
}
