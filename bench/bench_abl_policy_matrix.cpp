// Ablation 4: the full system matrix.
//
// Separates BRB's mechanisms: replica selection (random / LOR / C3),
// server scheduling (FIFO / priority / SJF), task-awareness (EqualMax,
// UnifIncr vs per-request SJF), dispatch (direct / credits / ideal
// global queue). Each row is one SystemKind from core/system_kind.hpp.
// Flags: --tasks N --seeds N --utilization F  (BRB_PAPER=1 for scale)
#include <iostream>
#include <vector>

#include "core/scenario.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using brb::core::ScenarioConfig;
  using brb::core::SystemKind;
  const brb::util::Flags flags(argc, argv);
  const bool paper = flags.get_bool("paper", false);

  ScenarioConfig base;
  base.num_tasks =
      static_cast<std::uint64_t>(flags.get_int("tasks", paper ? 200'000 : 40'000));
  base.utilization = flags.get_double("utilization", 0.70);
  const auto num_seeds = static_cast<std::uint64_t>(flags.get_int("seeds", paper ? 4 : 2));
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < num_seeds; ++s) seeds.push_back(s + 1);

  const std::vector<SystemKind> systems = {
      SystemKind::kRandomFifo,      SystemKind::kFifoDirect,
      SystemKind::kC3,              SystemKind::kRequestSjfDirect,
      SystemKind::kEqualMaxDirect,  SystemKind::kUnifIncrDirect,
      SystemKind::kEqualMaxCredits, SystemKind::kUnifIncrCredits,
      SystemKind::kCumSlackCredits, SystemKind::kFifoModel,
      SystemKind::kEqualMaxModel,   SystemKind::kUnifIncrModel,
      SystemKind::kCumSlackModel,
  };

  std::cout << "# Ablation: mechanism matrix, task latency (ms) over " << seeds.size()
            << " seeds, " << base.num_tasks << " tasks, utilization " << base.utilization
            << "\n\n";
  brb::stats::Table table({"system", "median", "95th", "99th", "mean", "util"});
  for (const SystemKind kind : systems) {
    ScenarioConfig config = base;
    config.system = kind;
    const brb::core::AggregateResult agg = brb::core::run_seeds(config, seeds);
    double util = 0.0;
    for (const auto& run : agg.runs) util += run.mean_utilization;
    util /= static_cast<double>(agg.runs.size());
    table.add_row({to_string(kind), brb::stats::fmt_double(agg.p50_ms.mean(), 3),
                   brb::stats::fmt_double(agg.p95_ms.mean(), 3),
                   brb::stats::fmt_double(agg.p99_ms.mean(), 3),
                   brb::stats::fmt_double(agg.mean_ms.mean(), 3),
                   brb::stats::fmt_double(util, 3)});
    std::cerr << "[matrix] finished " << to_string(kind) << "\n";
  }
  // Selector ablation on the direct BRB system: how much of the tail
  // is replica-selection quality?
  const std::vector<std::string> selectors = {"c3", "least-pending-cost", "least-outstanding",
                                              "random"};
  for (const std::string& selector : selectors) {
    ScenarioConfig config = base;
    config.system = SystemKind::kEqualMaxDirect;
    config.selector_override = selector;
    const brb::core::AggregateResult agg = brb::core::run_seeds(config, seeds);
    double util = 0.0;
    for (const auto& run : agg.runs) util += run.mean_utilization;
    util /= static_cast<double>(agg.runs.size());
    table.add_row({"equalmax-direct/" + selector, brb::stats::fmt_double(agg.p50_ms.mean(), 3),
                   brb::stats::fmt_double(agg.p95_ms.mean(), 3),
                   brb::stats::fmt_double(agg.p99_ms.mean(), 3),
                   brb::stats::fmt_double(agg.mean_ms.mean(), 3),
                   brb::stats::fmt_double(util, 3)});
    std::cerr << "[matrix] finished selector " << selector << "\n";
  }

  if (flags.get_bool("csv", false)) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
