// Ablation 2: fan-out sweep.
//
// Task-awareness should matter only when tasks actually fan out: with
// fan-out 1 every policy degenerates to per-request scheduling, and the
// BRB-vs-C3 gap should shrink; with large skewed fan-outs the
// bottleneck structure dominates and the gap widens.
// Flags: --tasks N --seeds N  (BRB_PAPER=1 for scale)
#include <iostream>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using brb::core::AggregateResult;
  using brb::core::ScenarioConfig;
  using brb::core::SystemKind;
  const brb::util::Flags flags(argc, argv);
  const bool paper = flags.get_bool("paper", false);

  ScenarioConfig base;
  base.num_tasks = static_cast<std::uint64_t>(flags.get_int("tasks", paper ? 150'000 : 30'000));
  const auto num_seeds = static_cast<std::uint64_t>(flags.get_int("seeds", paper ? 4 : 2));
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < num_seeds; ++s) seeds.push_back(s + 1);

  struct FanoutCase {
    std::string label;
    std::string spec;
  };
  const std::vector<FanoutCase> cases = {
      {"fixed 1", "fixed:1"},
      {"fixed 4", "fixed:4"},
      {"geometric 8.6", "geometric:8.6"},
      {"lognormal 8.6 s=1.0", "lognormal:8.6:1.0:512"},
      {"lognormal 8.6 s=2.0", "lognormal:8.6:2.0:512"},
      {"fixed 32", "fixed:32"},
  };

  std::cout << "# Ablation: fan-out sweep, task latency (ms), " << seeds.size() << " seeds x "
            << base.num_tasks << " tasks, utilization " << base.utilization << "\n\n";
  brb::stats::Table table({"fanout", "C3 p50", "BRB p50", "C3 p99", "BRB p99", "p50 ratio",
                           "p99 ratio"});
  for (const FanoutCase& fc : cases) {
    const auto run = [&](SystemKind kind) {
      ScenarioConfig config = base;
      config.system = kind;
      config.fanout_spec = fc.spec;
      return brb::core::run_seeds(config, seeds);
    };
    const AggregateResult c3 = run(SystemKind::kC3);
    const AggregateResult brb_credits = run(SystemKind::kEqualMaxCredits);
    table.add_row({fc.label, brb::stats::fmt_double(c3.p50_ms.mean(), 3),
                   brb::stats::fmt_double(brb_credits.p50_ms.mean(), 3),
                   brb::stats::fmt_double(c3.p99_ms.mean(), 3),
                   brb::stats::fmt_double(brb_credits.p99_ms.mean(), 3),
                   brb::stats::fmt_ratio(c3.p50_ms.mean() / brb_credits.p50_ms.mean()),
                   brb::stats::fmt_ratio(c3.p99_ms.mean() / brb_credits.p99_ms.mean())});
    std::cerr << "[fanout] " << fc.label << " done\n";
  }
  table.print(std::cout);
  std::cout << "\n# expectation: ratios near 1x at fan-out 1, growing with fan-out and skew.\n";
  return 0;
}
