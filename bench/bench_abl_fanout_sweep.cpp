// Ablation 2: fan-out sweep.
//
// Task-awareness should matter only when tasks actually fan out: with
// fan-out 1 every policy degenerates to per-request scheduling, and the
// BRB-vs-C3 gap should shrink; with large skewed fan-outs the
// bottleneck structure dominates and the gap widens.
//
// The sweep itself lives in the `brbsim` scenario registry
// ("fanout-sweep") — this harness only expands that scenario, runs it,
// and prints the C3-vs-BRB ratio table.
// Flags: --tasks N --seeds N --fanouts spec,...  (BRB_PAPER=1 for scale)
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "cli/driver.hpp"
#include "cli/scenario_registry.hpp"
#include "core/scenario.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using brb::core::AggregateResult;
  using brb::core::ScenarioConfig;
  using brb::core::SystemKind;
  const brb::util::Flags flags(argc, argv);
  const bool paper = flags.get_bool("paper", false);

  ScenarioConfig base = brb::cli::config_from_flags(flags);
  if (!flags.has("tasks")) base.num_tasks = paper ? 150'000 : 30'000;
  const std::vector<std::uint64_t> seeds =
      brb::cli::seeds_from_flags(flags, paper ? 4 : 2);

  const brb::cli::ScenarioSpec* scenario = brb::cli::find_scenario("fanout-sweep");
  const std::vector<brb::cli::ExperimentCase> cases = scenario->expand(base, flags);

  std::cout << "# Ablation: fan-out sweep, task latency (ms), " << seeds.size() << " seeds x "
            << base.num_tasks << " tasks, utilization " << base.utilization << "\n\n";

  // (fanout spec -> system -> aggregate); specs keep expansion order.
  std::vector<std::string> spec_order;
  std::map<std::string, std::map<SystemKind, AggregateResult>> by_spec;
  for (const brb::cli::ExperimentCase& experiment : cases) {
    if (by_spec.find(experiment.config.fanout_spec) == by_spec.end()) {
      spec_order.push_back(experiment.config.fanout_spec);
    }
    by_spec[experiment.config.fanout_spec][experiment.config.system] =
        brb::core::run_seeds(experiment.config, seeds);
    std::cerr << "[fanout] " << experiment.label << " done\n";
  }

  brb::stats::Table table({"fanout", "C3 p50", "BRB p50", "C3 p99", "BRB p99", "p50 ratio",
                           "p99 ratio"});
  for (const std::string& spec : spec_order) {
    const auto& by_system = by_spec[spec];
    const auto c3 = by_system.find(SystemKind::kC3);
    const auto brb_credits = by_system.find(SystemKind::kEqualMaxCredits);
    if (c3 == by_system.end() || brb_credits == by_system.end()) {
      std::cerr << "[fanout] " << spec
                << " skipped in table (needs c3 + equalmax-credits)\n";
      continue;
    }
    table.add_row({spec, brb::stats::fmt_double(c3->second.p50_ms.mean(), 3),
                   brb::stats::fmt_double(brb_credits->second.p50_ms.mean(), 3),
                   brb::stats::fmt_double(c3->second.p99_ms.mean(), 3),
                   brb::stats::fmt_double(brb_credits->second.p99_ms.mean(), 3),
                   brb::stats::fmt_ratio(c3->second.p50_ms.mean() /
                                         brb_credits->second.p50_ms.mean()),
                   brb::stats::fmt_ratio(c3->second.p99_ms.mean() /
                                         brb_credits->second.p99_ms.mean())});
  }
  table.print(std::cout);
  std::cout << "\n# expectation: ratios near 1x at fan-out 1, growing with fan-out and skew.\n";
  return 0;
}
