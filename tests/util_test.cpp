// Tests for the util module: flags parsing, the logger, and the shared
// EWMA helpers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "util/ewma.hpp"
#include "util/flags.hpp"
#include "util/logger.hpp"

namespace brb::util {
namespace {

Flags parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()), args.data());
}

TEST(Flags, SpaceSeparatedValue) {
  const Flags flags = parse({"--tasks", "500"});
  EXPECT_EQ(flags.get_int("tasks", 0), 500);
  EXPECT_TRUE(flags.has("tasks"));
}

TEST(Flags, EqualsSeparatedValue) {
  const Flags flags = parse({"--utilization=0.7"});
  EXPECT_DOUBLE_EQ(flags.get_double("utilization", 0.0), 0.7);
}

TEST(Flags, BareFlagIsBooleanTrue) {
  const Flags flags = parse({"--paper"});
  EXPECT_TRUE(flags.get_bool("paper", false));
}

TEST(Flags, BooleanFollowedByFlag) {
  const Flags flags = parse({"--csv", "--tasks", "10"});
  EXPECT_TRUE(flags.get_bool("csv", false));
  EXPECT_EQ(flags.get_int("tasks", 0), 10);
}

TEST(Flags, BooleanSpellings) {
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=on"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=1"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x=no"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=off"}).get_bool("x", true));
}

TEST(Flags, FallbacksWhenAbsent) {
  const Flags flags = parse({});
  EXPECT_EQ(flags.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(flags.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(flags.get_string("missing", "dflt"), "dflt");
  EXPECT_FALSE(flags.get_bool("missing", false));
  EXPECT_FALSE(flags.has("missing"));
}

TEST(Flags, PositionalArguments) {
  const Flags flags = parse({"input.csv", "--tasks", "5", "output.csv"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.csv");
  EXPECT_EQ(flags.positional()[1], "output.csv");
}

TEST(Flags, MalformedNumberThrows) {
  const Flags flags = parse({"--tasks", "abc"});
  EXPECT_THROW(flags.get_int("tasks", 0), std::invalid_argument);
  const Flags flags2 = parse({"--ratio", "x.y"});
  EXPECT_THROW(flags2.get_double("ratio", 0.0), std::invalid_argument);
}

TEST(Flags, GetUintParsesAndRejectsNegatives) {
  const Flags flags = parse({"--tasks", "500", "--seeds", "-1"});
  EXPECT_EQ(flags.get_uint("tasks", 0), 500u);
  EXPECT_EQ(flags.get_uint("missing", 7), 7u);
  // Counts must not wrap through an unsigned cast: -1 is an error, not
  // 2^64 - 1 seeds.
  EXPECT_THROW(flags.get_uint("seeds", 1), std::invalid_argument);
  const Flags bad = parse({"--tasks", "many"});
  EXPECT_THROW(bad.get_uint("tasks", 0), std::invalid_argument);
}

TEST(Flags, EnvironmentFallback) {
  ::setenv("BRB_TEST_ONLY_FLAG", "77", 1);
  const Flags flags = parse({});
  EXPECT_EQ(flags.get_int("test-only-flag", 0), 77);
  ::unsetenv("BRB_TEST_ONLY_FLAG");
  EXPECT_EQ(flags.get_int("test-only-flag", 5), 5);
}

TEST(Flags, CommandLineBeatsEnvironment) {
  ::setenv("BRB_PRIORITY_SRC", "env", 1);
  const Flags flags = parse({"--priority-src", "cli"});
  EXPECT_EQ(flags.get_string("priority-src", ""), "cli");
  ::unsetenv("BRB_PRIORITY_SRC");
}

TEST(Logger, LevelFiltering) {
  const LogLevel original = Logger::level();
  Logger::set_level(LogLevel::kError);
  EXPECT_FALSE(Logger::enabled(LogLevel::kDebug));
  EXPECT_FALSE(Logger::enabled(LogLevel::kWarn));
  EXPECT_TRUE(Logger::enabled(LogLevel::kError));
  Logger::set_level(LogLevel::kTrace);
  EXPECT_TRUE(Logger::enabled(LogLevel::kDebug));
  Logger::set_level(original);
}

TEST(Logger, LevelFromName) {
  const LogLevel original = Logger::level();
  EXPECT_TRUE(Logger::set_level_from_name("debug"));
  EXPECT_EQ(Logger::level(), LogLevel::kDebug);
  EXPECT_TRUE(Logger::set_level_from_name("off"));
  EXPECT_EQ(Logger::level(), LogLevel::kOff);
  EXPECT_FALSE(Logger::set_level_from_name("verbose"));
  EXPECT_EQ(Logger::level(), LogLevel::kOff);  // unchanged on failure
  Logger::set_level(original);
}

TEST(Logger, MacroShortCircuitsWhenDisabled) {
  const LogLevel original = Logger::level();
  Logger::set_level(LogLevel::kOff);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  BRB_DEBUG("test") << expensive();
  EXPECT_EQ(evaluations, 0);
  Logger::set_level(original);
}

// ---------------------------------------------------------------------------
// EWMA (the single smoothing implementation every component shares)

TEST(Ewma, UpdateIsTheExactHistoricalExpression) {
  // Every pre-dedupe call site computed a*sample + (1-a)*previous;
  // artifact byte-identity depends on this staying bit-exact.
  const double a = 0.3;
  const double previous = 123.456;
  const double sample = 789.0123;
  EXPECT_EQ(ewma_update(previous, a, sample), a * sample + (1.0 - a) * previous);
}

TEST(Ewma, UnseededSeedsWithFirstObservation) {
  Ewma ewma(0.5);
  EXPECT_FALSE(ewma.seen());
  ewma.observe(1000.0);
  EXPECT_TRUE(ewma.seen());
  EXPECT_DOUBLE_EQ(ewma.value(), 1000.0);  // verbatim, not blended with 0
  ewma.observe(2000.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 1500.0);
}

TEST(Ewma, SeededBlendsFromThePrior) {
  Ewma ewma(0.2, 100.0);
  EXPECT_TRUE(ewma.seen());
  ewma.observe(200.0);
  EXPECT_DOUBLE_EQ(ewma.value(), ewma_update(100.0, 0.2, 200.0));
}

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(Ewma(0.0), std::invalid_argument);
  EXPECT_THROW(Ewma(-0.1), std::invalid_argument);
  EXPECT_THROW(Ewma(1.1, 5.0), std::invalid_argument);
  EXPECT_NO_THROW(Ewma(1.0));  // alpha 1 = no smoothing, legal
}

}  // namespace
}  // namespace brb::util
