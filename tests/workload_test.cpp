// Tests for the workload module: size/fan-out/key distributions,
// arrival processes, dataset, task generation, trace I/O, capacity
// planning.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <unordered_set>

#include "stats/summary.hpp"
#include "util/rng.hpp"
#include "workload/arrival.hpp"
#include "workload/capacity.hpp"
#include "workload/fanout_dist.hpp"
#include "workload/key_dist.hpp"
#include "workload/size_dist.hpp"
#include "workload/task_gen.hpp"
#include "workload/trace.hpp"

namespace brb::workload {
namespace {

// ---------------------------------------------------------------------------
// Size distributions

TEST(GeneralizedParetoSizeDist, AtikogluDefaultsSampleInRange) {
  GeneralizedParetoSizeDist dist;
  util::Rng rng(1);
  for (int i = 0; i < 50000; ++i) {
    const std::uint32_t v = dist.sample(rng);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, dist.max_size());
  }
}

TEST(GeneralizedParetoSizeDist, EmpiricalMeanMatchesAnalytic) {
  GeneralizedParetoSizeDist dist;
  util::Rng rng(2);
  stats::Summary s;
  for (int i = 0; i < 400000; ++i) s.add(dist.sample(rng));
  EXPECT_NEAR(s.mean(), dist.mean(), dist.mean() * 0.03);
}

TEST(GeneralizedParetoSizeDist, UncappedMeanApproximatesFormula) {
  // For GP(shape k < 1, location 0): E[X] = scale / (1 - k); the 1 MiB
  // cap and the 1-byte floor barely move it for the Atikoglu fit.
  GeneralizedParetoSizeDist dist;
  const double formula = 214.476 / (1.0 - 0.348238);
  EXPECT_NEAR(dist.mean(), formula, formula * 0.05);
}

TEST(GeneralizedParetoSizeDist, HeavyTail) {
  GeneralizedParetoSizeDist dist;
  util::Rng rng(3);
  std::uint32_t max_seen = 0;
  for (int i = 0; i < 200000; ++i) max_seen = std::max(max_seen, dist.sample(rng));
  // With 200k draws from the ETC fit we should see multi-KB values.
  EXPECT_GT(max_seen, 10'000u);
}

TEST(FixedSizeDist, AlwaysSame) {
  FixedSizeDist dist(777);
  util::Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.sample(rng), 777u);
  EXPECT_DOUBLE_EQ(dist.mean(), 777.0);
  EXPECT_THROW(FixedSizeDist(0), std::invalid_argument);
}

TEST(BoundedParetoSizeDist, StaysWithinBoundsAndMatchesMean) {
  BoundedParetoSizeDist dist(1.3, 64, 65536);
  util::Rng rng(5);
  stats::Summary s;
  for (int i = 0; i < 400000; ++i) {
    const std::uint32_t v = dist.sample(rng);
    ASSERT_GE(v, 64u);
    ASSERT_LE(v, 65536u);
    s.add(v);
  }
  EXPECT_NEAR(s.mean(), dist.mean(), dist.mean() * 0.05);
}

TEST(BoundedParetoSizeDist, RejectsBadParameters) {
  EXPECT_THROW(BoundedParetoSizeDist(0.0, 1, 10), std::invalid_argument);
  EXPECT_THROW(BoundedParetoSizeDist(1.0, 10, 10), std::invalid_argument);
  EXPECT_THROW(BoundedParetoSizeDist(1.0, 0, 10), std::invalid_argument);
}

TEST(LogNormalSizeDist, MeanMatchesQuadrature) {
  LogNormalSizeDist dist(6.0, 1.0, 1 << 20);
  util::Rng rng(6);
  stats::Summary s;
  for (int i = 0; i < 400000; ++i) s.add(dist.sample(rng));
  EXPECT_NEAR(s.mean(), dist.mean(), dist.mean() * 0.03);
}

TEST(SizeDistFactory, ParsesSpecs) {
  EXPECT_EQ(make_size_distribution("gpareto")->name(), "gpareto");
  EXPECT_EQ(make_size_distribution("fixed:512")->mean(), 512.0);
  EXPECT_EQ(make_size_distribution("bpareto:1.2:64:4096")->name(), "bpareto");
  EXPECT_EQ(make_size_distribution("lognormal:5:1:100000")->name(), "lognormal");
  EXPECT_THROW(make_size_distribution("nope"), std::invalid_argument);
  EXPECT_THROW(make_size_distribution(""), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fan-out distributions

TEST(FixedFanout, Constant) {
  FixedFanout f(8);
  util::Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(f.sample(rng), 8u);
  EXPECT_THROW(FixedFanout(0), std::invalid_argument);
}

TEST(GeometricFanout, MeanMatchesTarget) {
  GeometricFanout f(8.6);
  util::Rng rng(8);
  stats::Summary s;
  for (int i = 0; i < 400000; ++i) s.add(f.sample(rng));
  EXPECT_NEAR(s.mean(), 8.6, 0.1);
}

TEST(GeometricFanout, MinimumIsOne) {
  GeometricFanout f(1.0);
  util::Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(f.sample(rng), 1u);
}

TEST(LogNormalFanout, ForMeanCalibratesDiscretizedMean) {
  const auto f = LogNormalFanout::for_mean(8.6, 2.0, 512);
  EXPECT_NEAR(f.mean(), 8.6, 0.05);
  util::Rng rng(10);
  stats::Summary s;
  for (int i = 0; i < 400000; ++i) s.add(f.sample(rng));
  EXPECT_NEAR(s.mean(), 8.6, 0.25);
}

TEST(LogNormalFanout, SkewMatchesIntuition) {
  // With sigma 2.0 the median should be far below the mean.
  const auto f = LogNormalFanout::for_mean(8.6, 2.0, 512);
  util::Rng rng(11);
  std::vector<std::uint32_t> draws;
  for (int i = 0; i < 100000; ++i) draws.push_back(f.sample(rng));
  std::sort(draws.begin(), draws.end());
  EXPECT_LE(draws[draws.size() / 2], 3u);
  EXPECT_GE(draws[static_cast<std::size_t>(draws.size() * 0.99)], 50u);
}

TEST(LogNormalFanout, RespectsCap) {
  const auto f = LogNormalFanout::for_mean(8.6, 2.0, 64);
  util::Rng rng(12);
  for (int i = 0; i < 100000; ++i) ASSERT_LE(f.sample(rng), 64u);
}

TEST(EmpiricalFanout, MatchesWeights) {
  EmpiricalFanout f({0.0, 1.0, 0.0, 3.0});  // fanouts 2 and 4 at 1:3
  util::Rng rng(13);
  std::uint64_t twos = 0;
  std::uint64_t fours = 0;
  for (int i = 0; i < 100000; ++i) {
    const std::uint32_t v = f.sample(rng);
    ASSERT_TRUE(v == 2 || v == 4);
    (v == 2 ? twos : fours) += 1;
  }
  EXPECT_NEAR(static_cast<double>(fours) / static_cast<double>(twos), 3.0, 0.2);
  EXPECT_DOUBLE_EQ(f.mean(), 0.25 * 2 + 0.75 * 4);
}

TEST(EmpiricalFanout, RejectsDegenerate) {
  EXPECT_THROW(EmpiricalFanout({}), std::invalid_argument);
  EXPECT_THROW(EmpiricalFanout({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(EmpiricalFanout({1.0, -1.0}), std::invalid_argument);
}

TEST(FanoutFactory, ParsesSpecs) {
  EXPECT_EQ(make_fanout_distribution("fixed:4")->mean(), 4.0);
  EXPECT_NEAR(make_fanout_distribution("geometric:8.6")->mean(), 8.6, 1e-9);
  EXPECT_NEAR(make_fanout_distribution("lognormal:8.6:2.0:512")->mean(), 8.6, 0.05);
  EXPECT_THROW(make_fanout_distribution("bogus"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Key distributions

TEST(UniformKeys, CoversKeyspace) {
  UniformKeys keys(100);
  util::Rng rng(14);
  std::set<store::KeyId> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(keys.sample(rng));
  EXPECT_GT(seen.size(), 95u);
  for (const store::KeyId k : seen) ASSERT_LT(k, 100u);
}

TEST(ZipfKeys, SkewedButInRange) {
  ZipfKeys keys(1000, 1.0);
  util::Rng rng(15);
  std::map<store::KeyId, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[keys.sample(rng)];
  for (const auto& [k, c] : counts) ASSERT_LT(k, 1000u);
  // The hottest key should far exceed the uniform share.
  int hottest = 0;
  for (const auto& [k, c] : counts) hottest = std::max(hottest, c);
  EXPECT_GT(hottest, 5 * (100000 / 1000));
}

TEST(KeyFactory, ParsesSpecs) {
  EXPECT_EQ(make_key_distribution("uniform:500")->num_keys(), 500u);
  EXPECT_EQ(make_key_distribution("zipf:500:0.9")->num_keys(), 500u);
  EXPECT_THROW(make_key_distribution("what"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Arrival processes

TEST(PoissonArrivals, MeanGapMatchesRate) {
  PoissonArrivals arrivals(1000.0);
  util::Rng rng(16);
  stats::Summary s;
  for (int i = 0; i < 200000; ++i) s.add(arrivals.next_gap(rng).as_seconds());
  EXPECT_NEAR(s.mean(), 1e-3, 5e-5);
  // Exponential gaps: CV = 1.
  EXPECT_NEAR(s.stddev() / s.mean(), 1.0, 0.05);
}

TEST(PoissonArrivals, GapsAreStrictlyPositive) {
  PoissonArrivals arrivals(1e9);
  util::Rng rng(17);
  for (int i = 0; i < 10000; ++i) ASSERT_GT(arrivals.next_gap(rng).count_nanos(), 0);
}

TEST(PacedArrivals, ConstantGap) {
  PacedArrivals arrivals(100.0);
  util::Rng rng(18);
  EXPECT_EQ(arrivals.next_gap(rng).count_nanos(), 10'000'000);
  EXPECT_EQ(arrivals.next_gap(rng).count_nanos(), 10'000'000);
}

TEST(ArrivalProcesses, RejectNonPositiveRates) {
  EXPECT_THROW(PoissonArrivals(0.0), std::invalid_argument);
  EXPECT_THROW(PacedArrivals(-1.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Dataset + TaskGenerator

TEST(Dataset, StableSizesPerKey) {
  FixedSizeDist sizes(100);
  Dataset d(50, sizes, util::Rng(19));
  EXPECT_EQ(d.num_keys(), 50u);
  EXPECT_EQ(d.size_of(0), 100u);
  EXPECT_THROW(d.size_of(50), std::out_of_range);
}

TEST(Dataset, SameSeedSameSizes) {
  GeneralizedParetoSizeDist sizes;
  Dataset a(100, sizes, util::Rng(20));
  Dataset b(100, sizes, util::Rng(20));
  for (store::KeyId k = 0; k < 100; ++k) ASSERT_EQ(a.size_of(k), b.size_of(k));
}

TaskGenerator make_generator(const Dataset& dataset, const KeyDistribution& keys,
                             const FanoutDistribution& fanout, std::uint64_t seed) {
  TaskGenerator::Config config;
  config.num_clients = 4;
  return TaskGenerator(config, dataset, keys, fanout,
                       std::make_unique<PoissonArrivals>(1000.0), util::Rng(seed));
}

TEST(TaskGenerator, ArrivalsStrictlyIncreaseAndIdsSequential) {
  FixedSizeDist sizes(100);
  Dataset dataset(1000, sizes, util::Rng(21));
  UniformKeys keys(1000);
  FixedFanout fanout(4);
  auto generator = make_generator(dataset, keys, fanout, 22);
  sim::Time last = sim::Time::zero();
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const TaskSpec task = generator.next();
    EXPECT_EQ(task.id, i);
    EXPECT_GT(task.arrival, last);
    last = task.arrival;
  }
}

TEST(TaskGenerator, RoundRobinClientAssignment) {
  FixedSizeDist sizes(100);
  Dataset dataset(1000, sizes, util::Rng(23));
  UniformKeys keys(1000);
  FixedFanout fanout(2);
  auto generator = make_generator(dataset, keys, fanout, 24);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(generator.next().client, static_cast<store::ClientId>(i % 4));
  }
}

TEST(TaskGenerator, DistinctKeysWithinTask) {
  FixedSizeDist sizes(100);
  Dataset dataset(50, sizes, util::Rng(25));
  UniformKeys keys(50);
  FixedFanout fanout(20);
  auto generator = make_generator(dataset, keys, fanout, 26);
  for (int i = 0; i < 200; ++i) {
    const TaskSpec task = generator.next();
    std::unordered_set<store::KeyId> unique;
    for (const auto& request : task.requests) unique.insert(request.key);
    EXPECT_EQ(unique.size(), task.requests.size());
  }
}

TEST(TaskGenerator, DistinctKeyStreamIsPinned) {
  // Regression pin for the distinct-key sampling path: the sorted-vector
  // dedup scratch must consume the RNG stream and emit keys exactly as
  // the original unordered_set-based membership check did. Any change to
  // the sampling order shifts every downstream artifact, so the full
  // (client, key, size_hint) stream is pinned by hash for a fixed seed.
  GeneralizedParetoSizeDist sizes;
  Dataset dataset(2000, sizes, util::Rng(77));
  ZipfKeys keys(2000, 0.9);
  FixedFanout fanout(16);
  auto generator = make_generator(dataset, keys, fanout, 78);
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a 64
  const auto mix = [&hash](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      hash ^= (v >> (8 * b)) & 0xff;
      hash *= 1099511628211ull;
    }
  };
  for (int i = 0; i < 500; ++i) {
    const TaskSpec task = generator.next();
    mix(task.client);
    for (const auto& request : task.requests) {
      mix(request.key);
      mix(request.size_hint);
    }
  }
  EXPECT_EQ(hash, 0xf964fe5a03ddc8b0ull);
}

TEST(TaskGenerator, FanoutClampedToKeyspace) {
  FixedSizeDist sizes(100);
  Dataset dataset(3, sizes, util::Rng(27));
  UniformKeys keys(3);
  FixedFanout fanout(10);  // more than the keyspace holds
  auto generator = make_generator(dataset, keys, fanout, 28);
  const TaskSpec task = generator.next();
  EXPECT_EQ(task.requests.size(), 3u);
}

TEST(TaskGenerator, SizeHintsMatchDataset) {
  GeneralizedParetoSizeDist sizes;
  Dataset dataset(500, sizes, util::Rng(29));
  UniformKeys keys(500);
  FixedFanout fanout(5);
  auto generator = make_generator(dataset, keys, fanout, 30);
  for (int i = 0; i < 100; ++i) {
    const TaskSpec task = generator.next();
    for (const auto& request : task.requests) {
      ASSERT_EQ(request.size_hint, dataset.size_of(request.key));
    }
  }
}

TEST(TaskGenerator, EmpiricalMeanFanoutTracksDistribution) {
  FixedSizeDist sizes(100);
  Dataset dataset(100'000, sizes, util::Rng(31));
  UniformKeys keys(100'000);
  const auto fanout = LogNormalFanout::for_mean(8.6, 2.0, 512);
  auto generator = make_generator(dataset, keys, fanout, 32);
  stats::Summary s;
  for (int i = 0; i < 20000; ++i) s.add(generator.next().fanout());
  EXPECT_NEAR(s.mean(), 8.6, 0.5);
}

// ---------------------------------------------------------------------------
// Batched sampling: every sample_batch/next_gap_batch path must consume
// the RNG stream draw-for-draw identically to scalar sampling — the
// byte-identity of seeded artifacts rests on it.

template <typename Dist, typename Value>
void expect_batch_matches_scalar(const Dist& dist, std::uint64_t seed, std::size_t n) {
  util::Rng scalar_rng(seed);
  util::Rng batch_rng(seed);
  std::vector<Value> batch(n);
  dist.sample_batch(batch_rng, batch.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(batch[i], dist.sample(scalar_rng)) << "draw " << i;
  }
  // Both streams must land on the same state: no extra or missing draws.
  EXPECT_EQ(scalar_rng.next_u64(), batch_rng.next_u64());
}

TEST(KeyDistBatch, MatchesScalarDrawForDraw) {
  expect_batch_matches_scalar<ZipfKeys, store::KeyId>(ZipfKeys(100'000, 0.9), 41, 4096);
  expect_batch_matches_scalar<UniformKeys, store::KeyId>(UniformKeys(5000), 42, 4096);
}

TEST(FanoutBatch, MatchesScalarDrawForDraw) {
  expect_batch_matches_scalar<FixedFanout, std::uint32_t>(FixedFanout(16), 43, 1024);
  expect_batch_matches_scalar<GeometricFanout, std::uint32_t>(GeometricFanout(8.6), 44, 4096);
  expect_batch_matches_scalar<LogNormalFanout, std::uint32_t>(
      LogNormalFanout(2.0, 0.8, 512), 45, 4096);
  expect_batch_matches_scalar<EmpiricalFanout, std::uint32_t>(
      EmpiricalFanout({0.5, 0.3, 0.2}), 46, 1024);  // default (virtual-loop) batch path
}

TEST(SizeDistBatch, MatchesScalarDrawForDraw) {
  expect_batch_matches_scalar<GeneralizedParetoSizeDist, std::uint32_t>(
      GeneralizedParetoSizeDist(), 47, 4096);
  expect_batch_matches_scalar<FixedSizeDist, std::uint32_t>(FixedSizeDist(100), 48, 512);
}

TEST(ArrivalBatch, MatchesScalarDrawForDraw) {
  PoissonArrivals poisson(14'000.0);
  util::Rng scalar_rng(49);
  util::Rng batch_rng(49);
  std::vector<sim::Duration> gaps(4096);
  poisson.next_gap_batch(batch_rng, gaps.data(), gaps.size());
  for (std::size_t i = 0; i < gaps.size(); ++i) {
    ASSERT_EQ(gaps[i], poisson.next_gap(scalar_rng)) << "gap " << i;
  }
  EXPECT_EQ(scalar_rng.next_u64(), batch_rng.next_u64());

  PacedArrivals paced(1000.0);
  util::Rng paced_rng(50);
  std::vector<sim::Duration> paced_gaps(64);
  paced.next_gap_batch(paced_rng, paced_gaps.data(), paced_gaps.size());
  for (const sim::Duration gap : paced_gaps) EXPECT_EQ(gap, paced.next_gap(paced_rng));
}

TEST(TaskGenerator, FillBlockMatchesNextDrawForDraw) {
  // Two identically-seeded generators: one consumed task-by-task via
  // next(), one in uneven fill_block chunks. Every field of every task
  // (and the final RNG stream position, via the last arrival) must
  // coincide — the block path is the scalar path.
  GeneralizedParetoSizeDist sizes;
  Dataset dataset(2000, sizes, util::Rng(61));
  ZipfKeys keys(2000, 0.9);
  GeometricFanout fanout(6.0);
  auto scalar_gen = make_generator(dataset, keys, fanout, 62);
  auto block_gen = make_generator(dataset, keys, fanout, 62);
  FixedSizeDist write_sizes(256);
  scalar_gen.set_write_traffic(0.25, &write_sizes);
  block_gen.set_write_traffic(0.25, &write_sizes);

  TaskBlock block;
  const std::size_t chunks[] = {1, 64, 7, 256, 128, 44};
  for (const std::size_t chunk : chunks) {
    block_gen.fill_block(block, chunk);
    ASSERT_EQ(block.size(), chunk);
    for (std::size_t i = 0; i < block.size(); ++i) {
      const TaskSpec expected = scalar_gen.next();
      const TaskView got = block.view(i);
      ASSERT_EQ(got.id, expected.id);
      ASSERT_EQ(got.client, expected.client);
      ASSERT_EQ(got.tenant, expected.tenant);
      ASSERT_EQ(got.arrival, expected.arrival);
      ASSERT_EQ(got.fanout, expected.requests.size());
      for (std::size_t r = 0; r < got.fanout; ++r) {
        ASSERT_EQ(got.requests[r].key, expected.requests[r].key);
        ASSERT_EQ(got.requests[r].size_hint, expected.requests[r].size_hint);
        ASSERT_EQ(got.requests[r].is_write, expected.requests[r].is_write);
      }
    }
  }
}

TEST(TenantClientBlocks, LargestRemainderBoundariesPinned) {
  // Regression pin for the sort-based largest-remainder split: slots go
  // to the largest fractional parts, ties to the lowest tenant index —
  // exactly the order the old repeated-argmax rescan awarded them.
  const auto make_tenants = [](std::initializer_list<double> shares) {
    std::vector<TenantMix> tenants;
    for (const double share : shares) {
      TenantMix mix;
      mix.name = "t" + std::to_string(tenants.size());
      mix.share = share;
      tenants.push_back(std::move(mix));
    }
    return tenants;
  };
  // Three-way fractional tie (.667 each), two spare slots: tenants 0
  // and 1 win.
  EXPECT_EQ(tenant_client_blocks(make_tenants({1.0, 1.0, 1.0}), 11),
            (std::vector<std::uint32_t>{0, 4, 8, 11}));
  // Two-way tie (.5 vs .5), one slot: lowest index wins.
  EXPECT_EQ(tenant_client_blocks(make_tenants({0.5, 0.25, 0.25}), 9),
            (std::vector<std::uint32_t>{0, 4, 7, 9}));
  // Mixed fractions: award order .833, .833 (tie -> index 3 then 4), .667.
  EXPECT_EQ(tenant_client_blocks(make_tenants({5.0, 3.0, 2.0, 1.0, 1.0}), 27),
            (std::vector<std::uint32_t>{0, 10, 16, 21, 24, 27}));
}

// ---------------------------------------------------------------------------
// Trace I/O

TEST(Trace, RoundTripsThroughStream) {
  FixedSizeDist sizes(64);
  Dataset dataset(100, sizes, util::Rng(33));
  UniformKeys keys(100);
  FixedFanout fanout(3);
  auto generator = make_generator(dataset, keys, fanout, 34);
  const auto tasks = generator.generate(50);

  std::stringstream buffer;
  TraceWriter::write(buffer, tasks);
  const auto replayed = TraceReader::read(buffer);

  ASSERT_EQ(replayed.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    ASSERT_EQ(replayed[i].id, tasks[i].id);
    ASSERT_EQ(replayed[i].client, tasks[i].client);
    ASSERT_EQ(replayed[i].arrival, tasks[i].arrival);
    ASSERT_EQ(replayed[i].requests.size(), tasks[i].requests.size());
    for (std::size_t r = 0; r < tasks[i].requests.size(); ++r) {
      ASSERT_EQ(replayed[i].requests[r].key, tasks[i].requests[r].key);
      ASSERT_EQ(replayed[i].requests[r].size_hint, tasks[i].requests[r].size_hint);
    }
  }
}

TEST(Trace, RejectsMissingHeader) {
  std::stringstream buffer("1,0,100,5:10\n");
  EXPECT_THROW(TraceReader::read(buffer), std::runtime_error);
}

TEST(Trace, RejectsMalformedLine) {
  std::stringstream buffer("#brb-trace-v1\n1,0,100,notakey\n");
  EXPECT_THROW(TraceReader::read(buffer), std::runtime_error);
}

TEST(Trace, RejectsTaskWithoutRequests) {
  std::stringstream buffer("#brb-trace-v1\n1,0,100,\n");
  EXPECT_THROW(TraceReader::read(buffer), std::runtime_error);
}

TEST(Trace, SkipsCommentsAndBlankLines) {
  std::stringstream buffer("#brb-trace-v1\n\n# comment\n1,0,100,5:10\n");
  const auto tasks = TraceReader::read(buffer);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].requests[0].key, 5u);
}

TEST(Trace, FileRoundTrip) {
  FixedSizeDist sizes(64);
  Dataset dataset(10, sizes, util::Rng(35));
  UniformKeys keys(10);
  FixedFanout fanout(2);
  auto generator = make_generator(dataset, keys, fanout, 36);
  const auto tasks = generator.generate(5);
  const std::string path = "/tmp/brb_trace_test.csv";
  TraceWriter::write_file(path, tasks);
  const auto replayed = TraceReader::read_file(path);
  EXPECT_EQ(replayed.size(), 5u);
  std::remove(path.c_str());
  EXPECT_THROW(TraceReader::read_file("/nonexistent/path.csv"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Capacity planning

TEST(CapacityPlanner, PaperNumbers) {
  CapacityPlanner planner(ClusterSpec{});  // 9 x 4 x 3500
  EXPECT_DOUBLE_EQ(planner.system_capacity_rps(), 126'000.0);
  EXPECT_DOUBLE_EQ(planner.request_rate_for_utilization(0.7), 88'200.0);
  EXPECT_NEAR(planner.task_rate_for_utilization(0.7, 8.6), 10'255.8, 0.1);
  EXPECT_NEAR(planner.utilization_for_task_rate(10'255.8, 8.6), 0.7, 1e-4);
}

TEST(CapacityPlanner, RejectsDegenerateClusters) {
  EXPECT_THROW(CapacityPlanner(ClusterSpec{0, 4, 3500.0}), std::invalid_argument);
  EXPECT_THROW(CapacityPlanner(ClusterSpec{9, 0, 3500.0}), std::invalid_argument);
  EXPECT_THROW(CapacityPlanner(ClusterSpec{9, 4, 0.0}), std::invalid_argument);
}

TEST(CapacityPlanner, RejectsBadQueries) {
  CapacityPlanner planner(ClusterSpec{});
  EXPECT_THROW(planner.request_rate_for_utilization(-0.1), std::invalid_argument);
  EXPECT_THROW(planner.task_rate_for_utilization(0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(planner.utilization_for_task_rate(-1.0, 8.6), std::invalid_argument);
}

}  // namespace
}  // namespace brb::workload
