// Tests for the credits realization: controller allocation, the
// client-side gate, congestion monitoring, credit-aware selection.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/credits.hpp"
#include "ctrl/replica_policy.hpp"
#include "ctrl/signal_table.hpp"
#include "server/backend_server.hpp"
#include "server/service_model.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace brb::core {
namespace {

using sim::Duration;
using sim::Time;

// ---------------------------------------------------------------------------
// Proportional allocation (pure function)

TEST(AllocateProportional, ProportionalToDemand) {
  const auto grants = CreditsController::allocate_proportional({100.0, 300.0}, 1000.0);
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_DOUBLE_EQ(grants[0], 250.0);
  EXPECT_DOUBLE_EQ(grants[1], 750.0);
}

TEST(AllocateProportional, ZeroDemandGivesEqualShares) {
  const auto grants = CreditsController::allocate_proportional({0.0, 0.0, 0.0, 0.0}, 1000.0);
  for (const double g : grants) EXPECT_DOUBLE_EQ(g, 250.0);
}

TEST(AllocateProportional, NegativeDemandTreatedAsZero) {
  const auto grants = CreditsController::allocate_proportional({-50.0, 100.0}, 300.0);
  EXPECT_DOUBLE_EQ(grants[0], 0.0);
  EXPECT_DOUBLE_EQ(grants[1], 300.0);
}

TEST(AllocateProportional, ConservesCapacity) {
  const auto grants =
      CreditsController::allocate_proportional({17.0, 3.0, 42.0, 8.0, 30.0}, 12345.0);
  double total = 0.0;
  for (const double g : grants) total += g;
  EXPECT_NEAR(total, 12345.0, 1e-9);
}

// ---------------------------------------------------------------------------
// CreditGate

client::OutboundRequest make_out(store::ServerId server, store::Priority priority,
                                 store::RequestId id) {
  client::OutboundRequest out;
  out.server = server;
  out.request.request_id = id;
  out.request.priority = priority;
  return out;
}

struct GateFixture {
  sim::Simulator simulator;
  CreditsConfig config;
  std::unique_ptr<CreditGate> gate;
  std::vector<store::RequestId> transmitted;

  explicit GateFixture(std::vector<double> initial) {
    gate = std::make_unique<CreditGate>(simulator, static_cast<std::uint32_t>(initial.size()),
                                        config, std::move(initial));
    gate->set_transmit([this](client::OutboundRequest& out) {
      transmitted.push_back(out.request.request_id);
    });
  }
};

TEST(CreditGate, SpendsCreditsToTransmit) {
  GateFixture f({2.0, 2.0});
  f.gate->offer(make_out(0, 1.0, 1));
  f.gate->offer(make_out(0, 1.0, 2));
  EXPECT_EQ(f.transmitted.size(), 2u);
  EXPECT_DOUBLE_EQ(f.gate->balance(0), 0.0);
}

TEST(CreditGate, HoldsWhenBroke) {
  GateFixture f({1.0, 1.0});
  f.gate->offer(make_out(0, 1.0, 1));
  f.gate->offer(make_out(0, 1.0, 2));
  EXPECT_EQ(f.transmitted.size(), 1u);
  EXPECT_EQ(f.gate->held(), 1u);
  EXPECT_EQ(f.gate->hold_events(), 1u);
}

TEST(CreditGate, GrantDrainsInPriorityOrder) {
  GateFixture f({0.0, 0.0});
  f.gate->offer(make_out(0, 5.0, 1));
  f.gate->offer(make_out(0, 1.0, 2));
  f.gate->offer(make_out(0, 3.0, 3));
  EXPECT_EQ(f.gate->held(), 3u);
  f.gate->on_grant({10.0, 10.0});
  ASSERT_EQ(f.transmitted.size(), 3u);
  EXPECT_EQ(f.transmitted, (std::vector<store::RequestId>{2, 3, 1}));
}

TEST(CreditGate, PartialGrantDrainsHighestPriorityOnly) {
  GateFixture f({0.0});
  f.gate->offer(make_out(0, 5.0, 1));
  f.gate->offer(make_out(0, 1.0, 2));
  f.gate->on_grant({1.0});
  ASSERT_EQ(f.transmitted.size(), 1u);
  EXPECT_EQ(f.transmitted[0], 2u);
  EXPECT_EQ(f.gate->held(), 1u);
}

TEST(CreditGate, CarryoverIsBounded) {
  GateFixture f({100.0});
  // Nothing spent; carryover cap 0.5 * grant.
  f.gate->on_grant({10.0});
  EXPECT_DOUBLE_EQ(f.gate->balance(0), 10.0 + 5.0);
}

TEST(CreditGate, HoldTimeAccumulates) {
  GateFixture f({0.0});
  f.simulator.schedule_at(Time::millis(1), [&] { f.gate->offer(make_out(0, 1.0, 1)); });
  f.simulator.schedule_at(Time::millis(5), [&] { f.gate->on_grant({1.0}); });
  f.simulator.run();
  EXPECT_EQ(f.gate->total_hold_time().count_nanos(), Duration::millis(4).count_nanos());
}

TEST(CreditGate, FifoWithinEqualPriority) {
  GateFixture f({0.0});
  for (store::RequestId id = 1; id <= 10; ++id) f.gate->offer(make_out(0, 7.0, id));
  f.gate->on_grant({10.0});
  for (store::RequestId id = 1; id <= 10; ++id) ASSERT_EQ(f.transmitted[id - 1], id);
}

TEST(CreditGate, MeasurementReportsDemandRates) {
  GateFixture f({100.0, 100.0});
  std::vector<std::vector<double>> reports;
  f.gate->set_report([&](const std::vector<double>& rates) { reports.push_back(rates); });
  f.gate->start();
  f.simulator.schedule_at(Time::millis(10), [&] {
    for (int i = 0; i < 7; ++i) f.gate->offer(make_out(0, 1.0, static_cast<std::uint64_t>(i)));
    f.gate->offer(make_out(1, 1.0, 99));
  });
  f.simulator.run_until(Time::millis(150));
  f.gate->stop();
  ASSERT_GE(reports.size(), 1u);
  // 7 offers to server 0 in a 100ms window -> 70 req/s.
  EXPECT_NEAR(reports[0][0], 70.0, 1e-9);
  EXPECT_NEAR(reports[0][1], 10.0, 1e-9);
  // Second window has no offers.
  if (reports.size() > 1) EXPECT_DOUBLE_EQ(reports[1][0], 0.0);
}

TEST(CreditGate, RejectsMalformedInput) {
  sim::Simulator simulator;
  CreditsConfig config;
  EXPECT_THROW(CreditGate(simulator, 0, config, {}), std::invalid_argument);
  EXPECT_THROW(CreditGate(simulator, 2, config, {1.0}), std::invalid_argument);
  GateFixture f({1.0});
  EXPECT_THROW(f.gate->offer(make_out(5, 1.0, 1)), std::out_of_range);
  EXPECT_THROW(f.gate->on_grant({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(f.gate->balance(9), std::out_of_range);
}

// ---------------------------------------------------------------------------
// CreditsController

struct ControllerFixture {
  sim::Simulator simulator;
  CreditsConfig config;
  std::unique_ptr<CreditsController> controller;
  std::vector<std::pair<store::ClientId, std::vector<double>>> grants;

  ControllerFixture(std::uint32_t clients, std::vector<double> capacities) {
    controller = std::make_unique<CreditsController>(simulator, clients, std::move(capacities),
                                                     config);
    controller->set_grant_sender([this](store::ClientId client, const std::vector<double>& g) {
      grants.emplace_back(client, g);
    });
  }
};

TEST(CreditsController, GrantsProportionallyAfterReports) {
  ControllerFixture f(2, {1000.0});
  f.controller->on_demand_report(0, {100.0});
  f.controller->on_demand_report(1, {300.0});
  f.controller->start();
  f.simulator.run_until(Time::seconds(1.5));
  f.controller->stop();
  ASSERT_EQ(f.grants.size(), 2u);
  // EWMA from zero with alpha 0.5 halves the report, but proportions
  // are preserved: client 1 gets 3x client 0 of the proportional pool.
  const double floor_each = 1000.0 * f.config.min_share_fraction / 2.0;
  const double pool = 1000.0 * (1.0 - f.config.min_share_fraction);
  EXPECT_NEAR(f.grants[0].second[0], floor_each + pool * 0.25, 1e-6);
  EXPECT_NEAR(f.grants[1].second[0], floor_each + pool * 0.75, 1e-6);
}

TEST(CreditsController, TotalGrantsEqualCapacityPerInterval) {
  ControllerFixture f(3, {500.0, 700.0});
  f.controller->on_demand_report(0, {10.0, 20.0});
  f.controller->on_demand_report(1, {30.0, 40.0});
  f.controller->on_demand_report(2, {60.0, 0.0});
  f.controller->start();
  f.simulator.run_until(Time::seconds(1.5));
  f.controller->stop();
  ASSERT_EQ(f.grants.size(), 3u);
  double total_s0 = 0.0;
  double total_s1 = 0.0;
  for (const auto& [client, grant] : f.grants) {
    total_s0 += grant[0];
    total_s1 += grant[1];
  }
  EXPECT_NEAR(total_s0, 500.0, 1e-6);
  EXPECT_NEAR(total_s1, 700.0, 1e-6);
}

TEST(CreditsController, CongestionShrinksThenRecovers) {
  ControllerFixture f(1, {1000.0});
  f.controller->start();
  f.controller->on_congestion_signal(0, 99);
  f.simulator.run_until(Time::seconds(1.5));
  EXPECT_NEAR(f.controller->capacity_factor(0), f.config.congestion_backoff, 1e-9);
  // No further signals: factor recovers toward 1.
  f.simulator.run_until(Time::seconds(4.5));
  f.controller->stop();
  EXPECT_NEAR(f.controller->capacity_factor(0), 1.0, 1e-9);
}

TEST(CreditsController, FactorNeverBelowFloor) {
  ControllerFixture f(1, {1000.0});
  f.controller->start();
  // Signal congestion every interval for a long time.
  for (int i = 0; i < 40; ++i) {
    f.simulator.schedule_at(Time::seconds(0.5 + i), [&] {
      f.controller->on_congestion_signal(0, 500);
    });
  }
  f.simulator.run_until(Time::seconds(42));
  f.controller->stop();
  EXPECT_GE(f.controller->capacity_factor(0), f.config.min_capacity_factor - 1e-9);
}

TEST(CreditsController, RejectsMalformedInput) {
  sim::Simulator simulator;
  CreditsConfig config;
  EXPECT_THROW(CreditsController(simulator, 0, {100.0}, config), std::invalid_argument);
  EXPECT_THROW(CreditsController(simulator, 1, {}, config), std::invalid_argument);
  EXPECT_THROW(CreditsController(simulator, 1, {0.0}, config), std::invalid_argument);
  ControllerFixture f(2, {100.0});
  EXPECT_THROW(f.controller->on_demand_report(5, {1.0}), std::out_of_range);
  EXPECT_THROW(f.controller->on_demand_report(0, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(f.controller->on_congestion_signal(3, 1), std::out_of_range);
  EXPECT_THROW(f.controller->capacity_factor(3), std::out_of_range);
}

TEST(CreditsController, StatsCount) {
  ControllerFixture f(1, {100.0});
  f.controller->on_demand_report(0, {1.0});
  f.controller->on_congestion_signal(0, 10);
  f.controller->start();
  f.simulator.run_until(Time::seconds(2.5));
  f.controller->stop();
  EXPECT_EQ(f.controller->stats().demand_reports, 1u);
  EXPECT_EQ(f.controller->stats().congestion_signals, 1u);
  EXPECT_EQ(f.controller->stats().adaptations, 2u);
  EXPECT_EQ(f.controller->stats().grants_sent, 2u);
}

// ---------------------------------------------------------------------------
// CongestionMonitor

TEST(CongestionMonitor, SignalsOnlyAboveThreshold) {
  sim::Simulator simulator;
  server::DeterministicServiceModel model(Duration::millis(10));
  server::BackendServer::Config server_config;
  server_config.id = 0;
  server_config.cores = 1;
  server::BackendServer server(simulator, server_config, model, util::Rng(1));
  server.use_private_queue(server::make_discipline("fifo"));
  server.set_response_handler([](const store::ReadResponse&) {});
  server.storage().put_meta(1, 100);

  CreditsConfig config;
  config.congestion_queue_factor = 4.0;  // threshold: queue > 4
  std::vector<std::uint32_t> signals;
  CongestionMonitor monitor(simulator, {&server}, config,
                            [&](store::ServerId, std::uint32_t queue) {
                              signals.push_back(queue);
                            });
  monitor.start();

  // Queue only 3 deep: below threshold, silent.
  simulator.schedule_at(Time::millis(1), [&] {
    for (store::RequestId id = 0; id < 4; ++id) {
      store::ReadRequest request;
      request.request_id = id;
      request.key = 1;
      server.receive(request);
    }
  });
  simulator.run_until(Time::millis(9));
  EXPECT_TRUE(signals.empty());

  // Pile on 20 more: queue length exceeds 4, monitor fires.
  simulator.schedule_at(Time::millis(10), [&] {
    for (store::RequestId id = 100; id < 120; ++id) {
      store::ReadRequest request;
      request.request_id = id;
      request.key = 1;
      server.receive(request);
    }
  });
  simulator.run_until(Time::millis(250));
  monitor.stop();
  EXPECT_FALSE(signals.empty());
  EXPECT_GT(signals.front(), 4u);
}

// ---------------------------------------------------------------------------
// CreditAwarePolicy over the gate-mirrored SignalTable (the ported
// CreditAwareSelector: the gate mirrors balances into the unified
// table, the policy filters funded replicas from it).

TEST(CreditAwarePolicy, PrefersFundedReplicas) {
  sim::Simulator simulator;
  CreditsConfig config;
  ctrl::SignalTable signals;
  CreditGate gate(simulator, 3, config, {0.0, 5.0, 0.0});
  gate.attach_signals(&signals);
  ctrl::CreditAwarePolicy aware(std::make_unique<ctrl::RoundRobinPolicy>());
  // Only server 1 is funded.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(aware.select(signals, {0, 1, 2}, Duration::zero()), 1u);
  }
}

TEST(CreditAwarePolicy, FallsBackWhenAllBroke) {
  sim::Simulator simulator;
  CreditsConfig config;
  ctrl::SignalTable signals;
  CreditGate gate(simulator, 3, config, {0.0, 0.0, 0.0});
  gate.attach_signals(&signals);
  ctrl::CreditAwarePolicy aware(std::make_unique<ctrl::FirstReplicaPolicy>());
  EXPECT_EQ(aware.select(signals, {2, 1, 0}, Duration::zero()), 2u);  // inner decides
}

TEST(CreditAwarePolicy, PassThroughWhenAllFunded) {
  sim::Simulator simulator;
  CreditsConfig config;
  ctrl::SignalTable signals;
  CreditGate gate(simulator, 3, config, {5.0, 5.0, 5.0});
  gate.attach_signals(&signals);
  ctrl::CreditAwarePolicy aware(std::make_unique<ctrl::RoundRobinPolicy>());
  EXPECT_EQ(aware.select(signals, {0, 1, 2}, Duration::zero()), 0u);
  EXPECT_EQ(aware.select(signals, {0, 1, 2}, Duration::zero()), 1u);
}

TEST(CreditAwarePolicy, MirrorTracksSpends) {
  // Spending a credit through the gate immediately updates the
  // table's balance — selection and admission can never disagree.
  sim::Simulator simulator;
  CreditsConfig config;
  ctrl::SignalTable signals;
  CreditGate gate(simulator, 2, config, {1.0, 5.0});
  gate.attach_signals(&signals);
  EXPECT_DOUBLE_EQ(signals.credit_balance(0), 1.0);
  bool sent = false;
  gate.set_transmit([&](client::OutboundRequest&) { sent = true; });
  client::OutboundRequest out;
  out.server = 0;
  gate.offer(std::move(out));
  EXPECT_TRUE(sent);
  EXPECT_DOUBLE_EQ(signals.credit_balance(0), 0.0);
  EXPECT_DOUBLE_EQ(signals.credit_balance(1), 5.0);

  // A grant refills the mirror too.
  gate.on_grant({3.0, 3.0});
  EXPECT_DOUBLE_EQ(signals.credit_balance(0), 3.0);
}

}  // namespace
}  // namespace brb::core
