// Tests for the application-server client: task splitting, planning,
// dispatch gates, in-flight tracking, completion semantics.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "client/app_client.hpp"
#include "client/dispatch_gate.hpp"
#include "ctrl/dispatch_policy.hpp"
#include "policy/priority_policy.hpp"
#include "server/service_model.hpp"
#include "sim/simulator.hpp"
#include "store/partitioner.hpp"
#include "util/rng.hpp"

namespace brb::client {
namespace {

using sim::Duration;
using sim::Time;

/// Single-target endpoint over one inner replica policy — the
/// dispatch-plan equivalent of the old selector argument.
std::unique_ptr<ctrl::DispatchEndpoint> single_endpoint(
    std::unique_ptr<ctrl::ReplicaPolicy> inner) {
  return std::make_unique<ctrl::DispatchEndpoint>(
      ctrl::SignalTableConfig{},
      std::make_unique<ctrl::SingleTargetAdapter>(std::move(inner)), util::Rng(99),
      store::TenantId{0});
}

/// Captures outbound traffic instead of a network.
struct ClientFixture {
  sim::Simulator simulator;
  store::RingPartitioner partitioner{3, 2};
  server::SizeLinearServiceModel cost_model{Duration::zero(), 1000.0};  // 1us/byte
  std::unique_ptr<policy::PriorityPolicy> policy;
  std::unique_ptr<AppClient> client;
  std::vector<OutboundRequest> sent;
  std::vector<std::pair<store::TaskId, Duration>> completed_tasks;
  std::vector<Duration> completed_requests;

  explicit ClientFixture(const std::string& policy_name, AppClient::Config config = {})
      : policy(policy::make_priority_policy(policy_name)) {
    client = std::make_unique<AppClient>(
        simulator, config, partitioner, cost_model,
        single_endpoint(std::make_unique<ctrl::FirstReplicaPolicy>()), *policy,
        std::make_unique<DirectGate>(), util::Rng(1));
    client->set_network_send([this](const OutboundRequest& out) { sent.push_back(out); });
    AppClient::Hooks hooks;
    hooks.on_task_complete = [this](const workload::TaskSpec& task, Duration latency) {
      completed_tasks.emplace_back(task.id, latency);
    };
    hooks.on_request_complete = [this](Duration latency) {
      completed_requests.push_back(latency);
    };
    client->set_hooks(hooks);
  }

  workload::TaskSpec task(store::TaskId id, std::vector<store::KeyId> keys,
                          std::uint32_t size = 100) {
    workload::TaskSpec spec;
    spec.id = id;
    spec.client = 0;
    for (const store::KeyId key : keys) spec.requests.push_back({key, size});
    return spec;
  }

  store::ReadResponse response_for(const OutboundRequest& out) {
    store::ReadResponse response;
    response.request_id = out.request.request_id;
    response.task_id = out.request.task_id;
    response.key = out.request.key;
    response.client = out.request.client;
    response.server = out.server;
    response.value_size = 100;
    return response;
  }
};

TEST(AppClient, SplitsTaskIntoPerGroupSubtasks) {
  ClientFixture f("equalmax");
  f.simulator.schedule_at(Time::zero(), [&] {
    f.client->submit(f.task(1, {0, 1, 2, 3, 4, 5, 6, 7}));
  });
  f.simulator.run();
  ASSERT_EQ(f.sent.size(), 8u);
  // Every request was routed to a replica of its key's group.
  for (const auto& out : f.sent) {
    const auto group = f.partitioner.group_of(out.request.key);
    EXPECT_EQ(out.group, group);
    const auto& replicas = f.partitioner.replicas_of(group);
    EXPECT_NE(std::find(replicas.begin(), replicas.end(), out.server), replicas.end());
  }
}

TEST(AppClient, SubtaskRequestsShareOneServer) {
  ClientFixture f("equalmax");
  f.simulator.schedule_at(Time::zero(), [&] {
    f.client->submit(f.task(1, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  });
  f.simulator.run();
  std::map<store::GroupId, store::ServerId> chosen;
  for (const auto& out : f.sent) {
    const auto [it, inserted] = chosen.emplace(out.group, out.server);
    if (!inserted) {
      EXPECT_EQ(it->second, out.server) << "sub-task split across servers";
    }
  }
}

TEST(AppClient, EqualMaxStampsBottleneckOnEveryRequest) {
  ClientFixture f("equalmax");
  // Keys chosen so that one group receives two requests: bottleneck =
  // sum of that group's costs. All sizes 100 bytes -> 100us each.
  std::vector<store::KeyId> keys;
  std::map<store::GroupId, int> group_counts;
  for (store::KeyId k = 0; keys.size() < 3; ++k) {
    const auto g = f.partitioner.group_of(k);
    if (group_counts[g] < 2) {
      keys.push_back(k);
      ++group_counts[g];
    }
  }
  f.simulator.schedule_at(Time::zero(), [&] { f.client->submit(f.task(1, keys)); });
  f.simulator.run();
  ASSERT_EQ(f.sent.size(), 3u);
  int max_group_requests = 0;
  for (const auto& [g, c] : group_counts) max_group_requests = std::max(max_group_requests, c);
  const double expected_priority = 100'000.0 * max_group_requests;
  for (const auto& out : f.sent) {
    EXPECT_DOUBLE_EQ(out.request.priority, expected_priority);
  }
}

TEST(AppClient, UnifIncrSlackMatchesBottleneckStructure) {
  ClientFixture f("unifincr");
  f.simulator.schedule_at(Time::zero(), [&] { f.client->submit(f.task(1, {0, 1, 2, 3, 4})); });
  f.simulator.run();
  // All requests cost 100us; the bottleneck sub-task holds the largest
  // group, so the minimum slack is (bottleneck_count - 1) * 100us —
  // slack is measured against a request's *individual* cost (paper 2.1).
  std::map<store::GroupId, int> group_counts;
  for (const auto& out : f.sent) ++group_counts[out.group];
  int bottleneck_count = 0;
  for (const auto& [g, c] : group_counts) bottleneck_count = std::max(bottleneck_count, c);
  double min_priority = 1e18;
  for (const auto& out : f.sent) min_priority = std::min(min_priority, out.request.priority);
  EXPECT_DOUBLE_EQ(min_priority, (bottleneck_count - 1) * 100'000.0);
}

TEST(AppClient, TaskCompletesOnlyAfterLastResponse) {
  ClientFixture f("equalmax");
  f.simulator.schedule_at(Time::zero(), [&] { f.client->submit(f.task(7, {0, 1, 2})); });
  f.simulator.run();
  ASSERT_EQ(f.sent.size(), 3u);
  f.simulator.schedule_at(Time::micros(100), [&] {
    f.client->on_response(f.response_for(f.sent[0]));
    f.client->on_response(f.response_for(f.sent[1]));
  });
  f.simulator.run();
  EXPECT_TRUE(f.completed_tasks.empty());
  EXPECT_EQ(f.client->in_flight(), 1u);
  f.simulator.schedule_at(Time::micros(250), [&] {
    f.client->on_response(f.response_for(f.sent[2]));
  });
  f.simulator.run();
  ASSERT_EQ(f.completed_tasks.size(), 1u);
  EXPECT_EQ(f.completed_tasks[0].first, 7u);
  EXPECT_EQ(f.completed_tasks[0].second.count_nanos(), Duration::micros(250).count_nanos());
  EXPECT_EQ(f.completed_requests.size(), 3u);
}

TEST(AppClient, StatsTrackLifecycle) {
  ClientFixture f("equalmax");
  f.simulator.schedule_at(Time::zero(), [&] { f.client->submit(f.task(1, {0, 1})); });
  f.simulator.run();
  EXPECT_EQ(f.client->stats().tasks_submitted, 1u);
  EXPECT_EQ(f.client->stats().requests_sent, 2u);
  f.simulator.schedule_at(Time::micros(10), [&] {
    for (const auto& out : f.sent) f.client->on_response(f.response_for(out));
  });
  f.simulator.run();
  EXPECT_EQ(f.client->stats().responses_received, 2u);
  EXPECT_EQ(f.client->stats().tasks_completed, 1u);
  EXPECT_EQ(f.client->in_flight(), 0u);
}

TEST(AppClient, UnknownResponseThrows) {
  ClientFixture f("equalmax");
  store::ReadResponse bogus;
  bogus.request_id = 424242;
  EXPECT_THROW(f.client->on_response(bogus), std::logic_error);
}

TEST(AppClient, EmptyTaskRejected) {
  ClientFixture f("equalmax");
  workload::TaskSpec empty;
  empty.id = 1;
  EXPECT_THROW(f.client->submit(empty), std::invalid_argument);
}

TEST(AppClient, RequestIdsGloballyUniquePerClient) {
  ClientFixture f("equalmax");
  f.simulator.schedule_at(Time::zero(), [&] {
    f.client->submit(f.task(1, {0, 1, 2}));
    f.client->submit(f.task(2, {3, 4, 5}));
  });
  f.simulator.run();
  std::set<store::RequestId> ids;
  for (const auto& out : f.sent) ids.insert(out.request.request_id);
  EXPECT_EQ(ids.size(), f.sent.size());
}

TEST(AppClient, CostNoiseProducesUnbiasedForecasts) {
  AppClient::Config config;
  config.cost_noise_sigma = 0.5;
  ClientFixture f("equalmax", config);
  double total = 0.0;
  int n = 0;
  f.simulator.schedule_at(Time::zero(), [&] {
    for (store::TaskId t = 1; t <= 400; ++t) {
      f.client->submit(f.task(t, {static_cast<store::KeyId>(t % 50)}));
    }
  });
  f.simulator.run();
  for (const auto& out : f.sent) {
    total += static_cast<double>(out.request.expected_cost.count_nanos());
    ++n;
  }
  // Unit-mean noise over 100us exact cost.
  EXPECT_NEAR(total / n, 100'000.0, 6'000.0);
  // Complete everything so in_flight drains (sanity).
  for (const auto& out : f.sent) f.client->on_response(f.response_for(out));
  EXPECT_EQ(f.client->in_flight(), 0u);
}

TEST(AppClient, PerRequestSelectionMode) {
  AppClient::Config config;
  config.select_per_subtask = false;
  // Round-robin per request: requests in one group may go to different
  // replicas (C3-style independence).
  sim::Simulator simulator;
  store::RingPartitioner partitioner(3, 3);  // every key: all 3 servers
  server::SizeLinearServiceModel cost_model(Duration::zero(), 1000.0);
  policy::FifoPolicy fifo;
  std::vector<OutboundRequest> sent;
  AppClient client(simulator, config, partitioner, cost_model,
                   single_endpoint(std::make_unique<ctrl::RoundRobinPolicy>()), fifo,
                   std::make_unique<DirectGate>(), util::Rng(2));
  client.set_network_send([&sent](const OutboundRequest& out) { sent.push_back(out); });
  workload::TaskSpec task;
  task.id = 1;
  task.requests = {{0, 10}, {1, 10}, {2, 10}};
  simulator.schedule_at(Time::zero(), [&] { client.submit(task); });
  simulator.run();
  std::set<store::ServerId> servers;
  for (const auto& out : sent) servers.insert(out.server);
  EXPECT_GT(servers.size(), 1u);
}

// ---------------------------------------------------------------------------
// RateLimitedGate

TEST(RateLimitedGate, TransmitsWithinRateImmediately) {
  sim::Simulator simulator;
  policy::CubicRateController::Config config;
  config.initial_rate = 1000.0;
  RateLimitedGate gate(simulator, config);
  int transmitted = 0;
  gate.set_transmit([&](OutboundRequest&) { ++transmitted; });
  OutboundRequest out;
  out.server = 0;
  gate.offer(out);
  EXPECT_EQ(transmitted, 1);
  EXPECT_EQ(gate.held(), 0u);
}

TEST(RateLimitedGate, HoldsBeyondBurstAndDrainsLater) {
  sim::Simulator simulator;
  policy::CubicRateController::Config config;
  config.initial_rate = 1000.0;  // burst 8
  RateLimitedGate gate(simulator, config);
  std::vector<Time> transmit_times;
  gate.set_transmit([&](OutboundRequest&) { transmit_times.push_back(simulator.now()); });
  simulator.schedule_at(Time::zero(), [&] {
    for (int i = 0; i < 12; ++i) {
      OutboundRequest out;
      out.server = 0;
      gate.offer(out);
    }
  });
  simulator.run();
  ASSERT_EQ(transmit_times.size(), 12u);
  // First 8 immediate, the rest paced at ~1ms each.
  EXPECT_EQ(transmit_times[7], Time::zero());
  EXPECT_GT(transmit_times[8], Time::zero());
  EXPECT_GE(transmit_times[11], transmit_times[8] + Duration::millis(2));
  EXPECT_EQ(gate.held(), 0u);
}

TEST(RateLimitedGate, PerServerIndependence) {
  sim::Simulator simulator;
  policy::CubicRateController::Config config;
  config.initial_rate = 1000.0;
  RateLimitedGate gate(simulator, config);
  int transmitted = 0;
  gate.set_transmit([&](OutboundRequest&) { ++transmitted; });
  simulator.schedule_at(Time::zero(), [&] {
    for (int i = 0; i < 8; ++i) {
      OutboundRequest a;
      a.server = 0;
      gate.offer(a);
    }
    OutboundRequest b;
    b.server = 1;  // different token bucket: goes out immediately
    gate.offer(b);
    EXPECT_EQ(transmitted, 9);
  });
  simulator.run();
}

}  // namespace
}  // namespace brb::client
