// Correctness suite for the two-tier event scheduler (hierarchical
// timing wheel + generation-validated heap) behind `EventQueue`.
//
// The heart of the suite is a randomized differential fuzz against a
// brute-force reference queue: same operation stream in, identical pop
// order, peek times, and cancel outcomes out. Around it sit
// deterministic regressions for the cascade edge cases that a wheel
// can get wrong — bucket-boundary deltas, slot 0, level rollover,
// far-future overflow into the heap tier — including the
// aligned-cursor inclusive-scan case that the fuzzer originally
// caught, plus generation-reuse checks for ids recycled through
// cancel and the pop_batch claim/restore protocol.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace brb {
namespace {

using sim::EventId;
using sim::EventQueue;
using sim::Time;

/// A queue time on an exact level-0 wheel tick boundary.
Time at_tick(std::int64_t tick) {
  return Time::nanos(tick << EventQueue::kGranularityBits);
}

// ---------------------------------------------------------------------------
// Differential fuzz vs a brute-force reference

/// Reference model: a flat list ordered on demand. Push appends,
/// pop removes the (when, push-order) minimum, cancel flips liveness.
struct RefEvent {
  std::int64_t when_ns = 0;
  std::uint64_t order = 0;
  EventId id = 0;
  bool live = true;
};

class RefQueue {
 public:
  void push(std::int64_t when_ns, EventId id) {
    events_.push_back({when_ns, next_order_++, id, true});
  }

  /// Index of the live minimum, or npos when drained.
  std::size_t min_index() const {
    std::size_t best = npos;
    for (std::size_t i = 0; i < events_.size(); ++i) {
      if (!events_[i].live) continue;
      if (best == npos || earlier(events_[i], events_[best])) best = i;
    }
    return best;
  }

  bool cancel(EventId id) {
    for (RefEvent& e : events_) {
      if (e.id == id && e.live) {
        e.live = false;
        --live_;
        return true;
      }
    }
    return false;
  }

  void note_push() { ++live_; }
  void note_pop(std::size_t i) {
    events_[i].live = false;
    --live_;
  }
  std::size_t live() const { return live_; }
  const RefEvent& at(std::size_t i) const { return events_[i]; }
  const std::vector<RefEvent>& all() const { return events_; }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  static bool earlier(const RefEvent& a, const RefEvent& b) {
    if (a.when_ns != b.when_ns) return a.when_ns < b.when_ns;
    return a.order < b.order;
  }

  std::vector<RefEvent> events_;
  std::uint64_t next_order_ = 0;
  std::size_t live_ = 0;
};

TEST(EventQueueWheelFuzz, MatchesHeapReferencePopOrderAndCancels) {
  // Deltas span every routing class: level 0/1 (sub-ms), level 2
  // (hundreds of ms), level 3 (tens of seconds), past-of-cursor and
  // beyond-horizon (both heap tier).
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    util::Rng rng(seed);
    EventQueue q;
    RefQueue ref;
    std::vector<EventId> issued;  // cancel targets, live or stale
    std::int64_t now_ns = 0;

    for (int round = 0; round < 60'000; ++round) {
      const double op = rng.uniform();
      if (op < 0.50) {
        std::int64_t when_ns;
        const double d = rng.uniform();
        if (d < 0.45) {
          when_ns = now_ns + rng.uniform_int(0, 1'000'000);
        } else if (d < 0.70) {
          when_ns = now_ns + rng.uniform_int(0, 300'000'000);
        } else if (d < 0.85) {
          when_ns = now_ns + rng.uniform_int(0, 60'000'000'000);
        } else if (d < 0.93) {
          when_ns = now_ns + rng.uniform_int(0, std::int64_t{1} << 45);  // past horizon
        } else {
          when_ns = now_ns - rng.uniform_int(0, 1'000'000'000);  // before cursor
        }
        const EventId id = q.push(Time::nanos(when_ns), [] {});
        ref.push(when_ns, id);
        ref.note_push();
        issued.push_back(id);
      } else if (op < 0.80) {
        const std::size_t want = ref.min_index();
        if (want != RefQueue::npos) {
          const auto peek = q.peek_time();
          ASSERT_TRUE(peek.has_value());
          ASSERT_EQ(peek->count_nanos(), ref.at(want).when_ns) << "seed " << seed;
        } else {
          ASSERT_FALSE(q.peek_time().has_value());
        }
        auto e = q.pop();
        if (want == RefQueue::npos) {
          ASSERT_FALSE(e.has_value()) << "seed " << seed << " round " << round;
          continue;
        }
        ASSERT_TRUE(e.has_value()) << "seed " << seed << " round " << round;
        ASSERT_EQ(e->when.count_nanos(), ref.at(want).when_ns)
            << "seed " << seed << " round " << round;
        ASSERT_EQ(e->id, ref.at(want).id) << "seed " << seed << " round " << round;
        ref.note_pop(want);
        now_ns = e->when.count_nanos();
      } else if (!issued.empty()) {
        const std::size_t pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(issued.size()) - 1));
        const bool expect = ref.cancel(issued[pick]);
        ASSERT_EQ(q.cancel(issued[pick]), expect)
            << "seed " << seed << " round " << round;
      }
      ASSERT_EQ(q.size(), ref.live());
    }

    // Drain: the survivors must come out in exact (when, order) order.
    while (auto e = q.pop()) {
      const std::size_t want = ref.min_index();
      ASSERT_NE(want, RefQueue::npos);
      ASSERT_EQ(e->id, ref.at(want).id);
      ref.note_pop(want);
    }
    EXPECT_EQ(ref.live(), 0u);
    EXPECT_TRUE(q.empty());
  }
}

// ---------------------------------------------------------------------------
// Cascade boundary cases

TEST(EventQueueWheel, BoundaryDeltasRouteAndPopInOrder) {
  // One event per routing boundary: the last tick of each level, the
  // first tick of the next, and one past it. Everything below the
  // horizon must be wheel-resident; the horizon itself spills to the
  // heap tier, as does a pre-cursor (past) event.
  EventQueue q;
  const std::vector<std::int64_t> wheel_ticks = {
      0,       1,        255,      256,        257,        65'535,   65'536,
      65'537,  16'777'215, 16'777'216, 16'777'217, EventQueue::kWheelSpanTicks - 1};
  for (const std::int64_t tick : wheel_ticks) q.push(at_tick(tick), [] {});
  EXPECT_EQ(q.wheel_resident(), wheel_ticks.size());
  EXPECT_EQ(q.heap_resident(), 0u);

  q.push(at_tick(EventQueue::kWheelSpanTicks), [] {});  // horizon -> heap
  q.push(Time::nanos(-5), [] {});                       // past -> heap
  EXPECT_EQ(q.heap_resident(), 2u);

  std::vector<std::int64_t> expected;
  expected.push_back(-5);
  for (const std::int64_t tick : wheel_ticks) expected.push_back(tick << 12);
  expected.push_back(EventQueue::kWheelSpanTicks << 12);
  std::sort(expected.begin(), expected.end());

  for (const std::int64_t when_ns : expected) {
    auto e = q.pop();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->when.count_nanos(), when_ns);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueWheel, SlotZeroCascadesThroughEveryLevel) {
  // Ticks that are exact powers of the level width land in bucket
  // index 0 (or 1) of their level and cascade down through slot 0 of
  // every lower level — the all-zero-low-bits path.
  EventQueue q;
  std::vector<std::int64_t> ticks = {0, 256, 65'536, 16'777'216};
  for (auto it = ticks.rbegin(); it != ticks.rend(); ++it) q.push(at_tick(*it), [] {});
  for (const std::int64_t tick : ticks) {
    auto e = q.pop();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->when.count_nanos(), tick << 12);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.wheel_resident(), 0u);
}

TEST(EventQueueWheel, AlignedCursorCascadeScansOwnBucketInclusively) {
  // Regression for the launch bug the differential fuzzer caught: a
  // higher-level cascade lands the cursor exactly on a level-1 bucket
  // boundary while the bucket at the cursor's own index holds a
  // current-rotation event. The level scan must then include that
  // bucket; an exclusive scan only sees it a full rotation later and
  // pops a later event first.
  //
  //   A @ tick 0x1FFF0  -> level 2 (delta >= 2^16)
  //   F @ tick 0x0FFF0  -> level 1; popping it parks the cursor at
  //                        0xFFF0 (unaligned)
  //   B @ tick 0x100F8  -> delta 0x108 -> level 1, bucket index 0
  //
  // The next pop ties level 1 and level 2 at start tick 0x10000; the
  // level-2 cascade wins the tie and moves the cursor to 0x10000 —
  // exactly aligned — while B still sits in level-1 bucket 0. B
  // (0x100F8) must pop before A (0x1FFF0).
  EventQueue q;
  q.push(at_tick(0x1FFF0), [] {});
  q.push(at_tick(0x0FFF0), [] {});

  auto f = q.pop();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->when.count_nanos(), std::int64_t{0x0FFF0} << 12);

  q.push(at_tick(0x100F8), [] {});

  auto b = q.pop();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->when.count_nanos(), std::int64_t{0x100F8} << 12);

  auto a = q.pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->when.count_nanos(), std::int64_t{0x1FFF0} << 12);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueWheel, LevelRolloverWrapsTheLevelZeroRing) {
  // Cross a level-0 ring boundary: park the cursor late in one
  // rotation, then schedule into the next rotation (bucket indices
  // numerically below the cursor's). The circular scan must wrap.
  EventQueue q;
  q.push(at_tick(250), [] {});
  ASSERT_TRUE(q.pop().has_value());  // cursor now at tick 250

  q.push(at_tick(260), [] {});  // next rotation, bucket index 4
  q.push(at_tick(255), [] {});  // this rotation, bucket index 255
  auto first = q.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->when.count_nanos(), std::int64_t{255} << 12);
  auto second = q.pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->when.count_nanos(), std::int64_t{260} << 12);
}

// ---------------------------------------------------------------------------
// Generation reuse and cancellation across tiers

TEST(EventQueueWheel, CancelledIdsStayStaleAcrossSlotReuse) {
  EventQueue q;
  std::set<EventId> seen;
  // Churn a single slot through many push/cancel generations: every
  // id is distinct, and every stale id keeps failing validation even
  // after its slot is reoccupied.
  EventId previous = 0;
  for (int i = 0; i < 1'000; ++i) {
    const EventId id = q.push(at_tick(10 + i), [] {});
    EXPECT_TRUE(seen.insert(id).second) << "EventId reused at iteration " << i;
    if (previous != 0) {
      EXPECT_FALSE(q.cancel(previous));  // already cancelled; slot reused
    }
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
    previous = id;
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueWheel, CancelIsHonoredInBothTiers) {
  EventQueue q;
  const EventId wheel_id = q.push(at_tick(100), [] {});
  const EventId heap_id = q.push(at_tick(EventQueue::kWheelSpanTicks + 7), [] {});
  EXPECT_EQ(q.wheel_resident(), 1u);
  EXPECT_EQ(q.heap_resident(), 1u);

  EXPECT_TRUE(q.cancel(wheel_id));
  EXPECT_EQ(q.wheel_resident(), 0u);
  EXPECT_TRUE(q.cancel(heap_id));
  EXPECT_EQ(q.heap_resident(), 0u);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
}

// ---------------------------------------------------------------------------
// Batched same-timestamp drain (pop_batch / claim / restore)

TEST(EventQueueBatch, DrainsExactlyTheEarliestTimestampInSeqOrder) {
  EventQueue q;
  const Time t = Time::micros(50);
  int ran = 0;
  for (int i = 0; i < 5; ++i) {
    q.push(t, [&ran, i] { ran += 1 << i; });
  }
  q.push(Time::micros(50) + sim::Duration::nanos(1), [] {});  // same tick, later ns
  q.push(Time::micros(900), [] {});

  std::vector<EventQueue::Ready> batch;
  ASSERT_TRUE(q.pop_batch(batch));
  ASSERT_EQ(batch.size(), 5u);  // not the +1ns neighbor, not the far one
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].when, t);
    if (i > 0) EXPECT_LT(batch[i - 1].seq, batch[i].seq);
  }
  EXPECT_EQ(q.size(), 2u);  // batch members no longer counted live

  EventQueue::Callback fn;
  for (const EventQueue::Ready& ev : batch) {
    ASSERT_TRUE(q.claim(ev, fn));
    fn();
    fn.reset();
  }
  EXPECT_EQ(ran, 0b11111);
}

TEST(EventQueueBatch, CancelBetweenPopAndClaimSuppressesExecution) {
  EventQueue q;
  const Time t = Time::micros(10);
  int ran = 0;
  q.push(t, [&ran] { ran += 1; });
  const EventId middle = q.push(t, [&ran] { ran += 10; });
  q.push(t, [&ran] { ran += 100; });

  std::vector<EventQueue::Ready> batch;
  ASSERT_TRUE(q.pop_batch(batch));
  ASSERT_EQ(batch.size(), 3u);

  // The id stays valid while the batch is in flight — cancel it.
  EXPECT_TRUE(q.cancel(middle));
  EXPECT_FALSE(q.cancel(middle));

  EventQueue::Callback fn;
  int claimed = 0;
  for (const EventQueue::Ready& ev : batch) {
    if (q.claim(ev, fn)) {
      fn();
      fn.reset();
      ++claimed;
    }
  }
  EXPECT_EQ(claimed, 2);
  EXPECT_EQ(ran, 101);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueBatch, RestorePutsUnexecutedEventsBackUnchanged) {
  EventQueue q;
  const Time t = Time::micros(10);
  int ran = 0;
  q.push(t, [&ran] { ran += 1; });
  const EventId second_id = q.push(t, [&ran] { ran += 10; });
  q.push(Time::micros(20), [&ran] { ran += 100; });

  std::vector<EventQueue::Ready> batch;
  ASSERT_TRUE(q.pop_batch(batch));
  ASSERT_EQ(batch.size(), 2u);

  // Execute the first, put the second back (as a mid-batch stop()
  // would), remembering its seq.
  EventQueue::Callback fn;
  ASSERT_TRUE(q.claim(batch[0], fn));
  fn();
  const std::uint64_t kept_seq = batch[1].seq;
  q.restore(batch[1]);
  EXPECT_EQ(q.size(), 2u);

  // Its id survived the round-trip; its time and seq are unchanged,
  // so it still pops before the later event and cancels normally.
  std::vector<EventQueue::Ready> next;
  ASSERT_TRUE(q.pop_batch(next));
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].when, t);
  EXPECT_EQ(next[0].seq, kept_seq);
  ASSERT_TRUE(q.claim(next[0], fn));
  fn();
  EXPECT_EQ(ran, 11);
  EXPECT_TRUE(q.cancel(second_id) == false);  // claimed: id now stale

  next.clear();  // pop_batch appends
  ASSERT_TRUE(q.pop_batch(next));
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].when, Time::micros(20));
}

TEST(EventQueueBatch, RestoredEventRemainsCancellable) {
  EventQueue q;
  const EventId id = q.push(Time::micros(5), [] {});
  std::vector<EventQueue::Ready> batch;
  ASSERT_TRUE(q.pop_batch(batch));
  ASSERT_EQ(batch.size(), 1u);
  q.restore(batch[0]);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop_batch(batch));
}

}  // namespace
}  // namespace brb
